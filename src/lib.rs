//! # osm-repro — reproduction of the OSM retargetable simulation framework
//!
//! Facade crate re-exporting every component of the reproduction of
//! *"Flexible and Formal Modeling of Microprocessors with Application to
//! Retargetable Simulation"* (Qin & Malik, DATE 2003):
//!
//! * [`osm_core`] — the operation state machine formalism (the paper's
//!   contribution): tokens, token managers, the Λ transaction language, the
//!   director (Fig. 3) and the DE kernel (Fig. 4).
//! * [`osm_adl`] — a declarative architecture description language that
//!   synthesizes OSM specs (the paper's proposed next step, §7).
//! * [`minirisc`] — the MiniRISC-32 ISA substrate: assembler, encodings,
//!   functional execution, ISS.
//! * [`memsys`] — cache/TLB/bus timing models.
//! * [`portsim`] — a SystemC-like port/signal kernel (baseline substrate).
//! * [`sa1100`] — the StrongARM case study (§5.1): OSM model + independent
//!   hand-sequenced reference simulator.
//! * [`ppc750`] — the PowerPC 750 case study (§5.2): OSM model + port/signal
//!   hardware-centric baseline.
//! * [`workloads`] — MediaBench-like kernels, the 40 diagnostic loops, a
//!   SPECint-like mix and a random program generator.
//! * [`vliw`] — the §6 VLIW demonstration: a two-slot bundle scheduler and
//!   a lockstep OSM core model.
//! * [`simfarm`] — a sharded parallel simulation farm: work-stealing job
//!   queue over all four machine models with deterministic aggregation.
//!
//! See `README.md` for the quickstart, `DESIGN.md` for the system map and
//! `EXPERIMENTS.md` for the reproduced tables and figures.

pub use memsys;
pub use minirisc;
pub use osm_adl;
pub use osm_core;
pub use portsim;
pub use ppc750;
pub use sa1100;
pub use simfarm;
pub use vliw;
pub use workloads;
