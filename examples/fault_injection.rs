//! Resilience walk-through: deterministic fault injection, the stall
//! watchdog, and checkpoint/restore recovery on the StrongARM OSM model.
//!
//! The scenario: a fault injector sits in front of the buffer stage's token
//! manager (the D-cache port) and, from cycle 120 on, denies every token
//! transaction — a stuck-at fault on the port arbiter. The pipeline wedges;
//! the watchdog diagnoses *which* operations are blocked, in which states,
//! waiting on which managers; the operator repairs the fault, rewinds to the
//! last known-good checkpoint and completes the run — with a result that
//! matches the fault-free reference bit for bit.
//!
//! Run with: `cargo run --release --example fault_injection`

use osm_repro::osm_core::{Checkpoint, FaultPlan, ModelError};
use osm_repro::sa1100::{SaConfig, SaOsmSim, SaShared};

const KERNEL: &str = "
    li r1, 40
    li r2, 0
    la r3, buf
loop:
    add r2, r2, r1
    sw r2, 0(r3)
    lw r4, 0(r3)
    addi r3, r3, 4
    addi r1, r1, -1
    bne r1, r0, loop
    li r10, 0
    add r11, r2, r0
    syscall
buf:
    .space 256
";

/// Cycles between checkpoints.
const CKPT_PERIOD: u64 = 50;
/// Watchdog limit: must exceed the worst-case natural stall (cold TLB walk
/// + cache miss + bus is ~60 cycles in the paper configuration).
const STALL_LIMIT: u64 = 200;

fn main() {
    let program = minirisc::assemble(KERNEL, 0x1000).expect("kernel assembles");
    let cfg = SaConfig::paper();

    // Fault-free reference run.
    let mut clean = SaOsmSim::new(cfg, &program);
    let reference = clean.run_to_halt(1_000_000).expect("reference completes");
    println!("reference : {} cycles, {} retired, exit {}", reference.cycles, reference.retired, reference.exit_code);

    // Faulty run: blackhole the buffer stage (D-cache port) from cycle 120.
    let mut sim = SaOsmSim::new(cfg, &program);
    sim.set_stall_limit(Some(STALL_LIMIT));
    let plan = FaultPlan::new(0x5EED).blackhole(120, u64::MAX);
    let handle = sim.inject_faults(sim.ids.mb, plan);

    let mut last_good: Checkpoint<SaShared> = sim.checkpoint().expect("checkpoint");
    let mut transitions_at_ckpt = 0u64;
    let stall = loop {
        match sim.step() {
            Ok(()) if sim.machine().shared.halted => {
                unreachable!("the injected fault cannot let the run complete")
            }
            Ok(()) => {
                let cycle = sim.machine().cycle();
                let transitions = sim.machine().stats.transitions;
                // Periodic checkpoint, kept only if the pipeline has made
                // progress since the previous one (i.e. it is known good).
                if cycle.is_multiple_of(CKPT_PERIOD) && transitions > transitions_at_ckpt {
                    last_good = sim.checkpoint().expect("checkpoint");
                    transitions_at_ckpt = transitions;
                }
            }
            Err(ModelError::Stalled(report)) => break report,
            Err(other) => panic!("unexpected simulator error: {other}"),
        }
    };

    println!("\nwatchdog  : {} at cycle {} (no progress for {} cycles)", stall.kind, stall.cycle, stall.stalled_for);
    for b in &stall.blocked {
        println!("  osm {:>2} [{}] in state {}", b.osm.0, b.spec, b.state);
        for w in &b.waiting_on {
            println!("      waiting: {w}");
        }
    }
    println!("faults    : {} injected so far", handle.stats().total());

    // Operator repair: disable the injector, rewind, re-run to completion.
    handle.disable();
    sim.restore(&last_good).expect("restore last good checkpoint");
    println!("\nrestored  : cycle {} (last known-good checkpoint)", sim.machine().cycle());
    let recovered = sim.run_to_halt(1_000_000).expect("recovered run completes");
    println!("recovered : {} cycles, {} retired, exit {}", recovered.cycles, recovered.retired, recovered.exit_code);

    assert_eq!(recovered.exit_code, reference.exit_code);
    assert_eq!(recovered.retired, reference.retired);
    assert_eq!(recovered.output, reference.output);
    println!("\nrecovered run matches the fault-free reference (exit code, retired instructions, output).");
}
