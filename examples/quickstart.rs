//! Quickstart: model the paper's 5-stage pipeline example (Figs. 5/6) from
//! scratch with `osm-core` and watch operations flow through it.
//!
//! Run with: `cargo run --example quickstart`

use osm_repro::osm_core::{
    ExclusivePool, IdentExpr, InertBehavior, Machine, ModelError, SpecBuilder,
};

fn main() -> Result<(), ModelError> {
    // --- Hardware layer: five pipeline stages, one occupancy token each ---
    let mut machine: Machine<()> = Machine::new(());
    let stages: Vec<_> = ["IF", "ID", "EX", "BF", "WB"]
        .iter()
        .map(|name| machine.add_manager(ExclusivePool::new(*name, 1)))
        .collect();

    // --- Operation layer: the Fig. 6 state machine ------------------------
    let mut b = SpecBuilder::new("op");
    let states: Vec<_> = ["I", "F", "D", "E", "B", "W"]
        .iter()
        .map(|n| b.state(*n))
        .collect();
    b.initial(states[0]);
    // I -> F: allocate the fetch stage.
    b.edge(states[0], states[1])
        .named("e0")
        .allocate(stages[0], IdentExpr::Const(0));
    // F -> D -> E -> B -> W: release the stage behind, allocate the next.
    for k in 1..5 {
        b.edge(states[k], states[k + 1])
            .named(format!("e{k}"))
            .release(stages[k - 1], IdentExpr::AnyHeld)
            .allocate(stages[k], IdentExpr::Const(0));
    }
    // W -> I: release write-back; the OSM is free to carry a new operation.
    b.edge(states[5], states[0])
        .named("e5")
        .release(stages[4], IdentExpr::AnyHeld);
    let spec = b.build().expect("spec is valid");

    // Eight operations compete for the pipeline (more than its depth).
    for _ in 0..8 {
        machine.add_osm(&spec, InertBehavior);
    }

    machine.enable_trace();
    println!("cycle | operations in each state");
    println!("------+--------------------------");
    for _ in 0..12 {
        machine.step()?;
        let mut names: Vec<&str> = machine.osms().map(|o| o.state_name()).collect();
        names.sort_unstable();
        println!("{:5} | {}", machine.cycle(), names.join(" "));
    }

    let trace = machine.take_trace().expect("tracing enabled");
    println!("\n{} transitions committed; first five:", trace.len());
    for ev in trace.events().take(5) {
        println!("  {ev}");
    }
    println!(
        "\nsteady state: one operation per stage, one retiring per cycle \
         (transitions/cycle = {:.2})",
        machine.stats.transitions_per_cycle()
    );
    Ok(())
}
