//! The multithreading extension sketched in paper §6: "each OSM carries a
//! tag indicating the thread that it belongs to. The tags are used as part
//! of the identifiers for token transactions and may contribute to the
//! ranking of the OSMs."
//!
//! Two hardware threads share one 3-stage pipeline; each thread has its own
//! register scoreboard (the thread tag selects the manager), and a
//! tag-aware ranker arbitrates fetch between the threads round-robin.
//!
//! Run with: `cargo run --example multithreaded`

use osm_repro::osm_core::{
    Edge, ExclusivePool, FnRanker, IdentExpr, Machine, OsmView, SpecBuilder, TransitionCtx,
};

/// Shared state: per-thread fetch counters (how many ops each thread issued).
#[derive(Debug, Default)]
struct SmtState {
    issued: [u64; 2],
    preferred: u64, // thread to favour this cycle (flips each cycle)
}

impl osm_repro::osm_core::HardwareLayer for SmtState {
    fn clock(&mut self, cycle: u64, _managers: &mut osm_repro::osm_core::ManagerTable) {
        self.preferred = cycle % 2;
    }
}

struct CountIssue;

impl osm_repro::osm_core::Behavior<SmtState> for CountIssue {
    fn on_transition(&mut self, edge: &Edge, ctx: &mut TransitionCtx<'_, SmtState>) {
        if edge.name == "enter" {
            ctx.shared.issued[ctx.tag as usize] += 1;
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut machine: Machine<SmtState> = Machine::new(SmtState::default());
    let fetch = machine.add_manager(ExclusivePool::new("fetch", 1));
    let exec = machine.add_manager(ExclusivePool::new("exec", 1));

    let mut b = SpecBuilder::new("smt-op");
    let i = b.state("I");
    let f = b.state("F");
    let e = b.state("E");
    b.initial(i);
    b.edge(i, f).named("enter").allocate(fetch, IdentExpr::Const(0));
    b.edge(f, e)
        .named("exec")
        .release(fetch, IdentExpr::AnyHeld)
        .allocate(exec, IdentExpr::Const(0));
    b.edge(e, i).named("done").release(exec, IdentExpr::AnyHeld);
    let spec = b.build()?;

    // Four operation slots per thread, tagged with their thread id.
    for tag in 0..2u64 {
        for _ in 0..4 {
            machine.add_osm_tagged(&spec, CountIssue, tag);
        }
    }

    // Ranking: seniors first as usual, but among *idle* OSMs the preferred
    // thread of the cycle wins — round-robin fetch arbitration via tags.
    machine.set_ranker(FnRanker(Box::new(|view: &OsmView<'_>, shared: &SmtState| {
        if view.age != u64::MAX {
            view.age // in-flight: ordinary age ranking
        } else if view.tag == shared.preferred {
            u64::MAX - 1 // idle, preferred thread: ahead of the other thread
        } else {
            u64::MAX
        }
    })));

    machine.run(40)?;
    let s = &machine.shared;
    println!("after 40 cycles: thread0 issued {}, thread1 issued {}", s.issued[0], s.issued[1]);
    assert!((s.issued[0] as i64 - s.issued[1] as i64).abs() <= 1, "round-robin should be fair");
    println!("round-robin arbitration through tag-aware ranking: fair within one op\n");

    // The same idea at full scale: the two-thread SMT StrongARM, where the
    // thread tag is part of every register-token identifier.
    use osm_repro::minirisc::assemble;
    use osm_repro::sa1100::{SaConfig, SaOsmSim, SmtSim};
    let pa = assemble(
        "li r1, 200\nli r2, 0\nloop:\nadd r2, r2, r1\naddi r1, r1, -1\nbne r1, r0, loop\nli r10, 0\nandi r11, r2, 8191\nsyscall\n",
        0x1000,
    )?;
    let pb = assemble(
        "li r1, 150\nli r3, 1\nloop:\nmul r3, r3, r1\nandi r3, r3, 1023\nori r3, r3, 1\naddi r1, r1, -1\nbne r1, r0, loop\nli r10, 0\nadd r11, r3, r0\nsyscall\n",
        0x4000,
    )?;
    let smt = SmtSim::new(SaConfig::paper(), [&pa, &pb]).run_to_halt(1_000_000)?;
    let a = SaOsmSim::new(SaConfig::paper(), &pa).run_to_halt(1_000_000)?;
    let b = SaOsmSim::new(SaConfig::paper(), &pb).run_to_halt(1_000_000)?;
    println!(
        "SMT StrongARM: {} cycles for both threads (exit {}, {});\nback-to-back single-thread runs: {} + {} = {} cycles -> {:.2}x throughput",
        smt.cycles,
        smt.threads[0].exit_code,
        smt.threads[1].exit_code,
        a.cycles,
        b.cycles,
        a.cycles + b.cycles,
        (a.cycles + b.cycles) as f64 / smt.cycles as f64,
    );
    Ok(())
}
