//! The StrongARM case study end to end: assemble a MediaBench-like kernel,
//! run it on the OSM model and on the independent reference simulator, and
//! compare timing (the paper's Table 1 methodology in miniature).
//!
//! Run with: `cargo run --release --example strongarm_pipeline`
//!
//! Observability flags (all optional):
//!   --kernel <name>        kernel to instrument (default: the first)
//!   --trace-out <path>     write a Chrome `chrome://tracing`/Perfetto JSON
//!                          trace of the instrumented kernel
//!   --metrics-out <path>   write the machine-readable metrics JSON
//!   --pipeview <cycles>    print a textual pipeline diagram of the first N
//!                          cycles
//!
//! Example: `cargo run --release --example strongarm_pipeline -- \
//!     --trace-out trace.json --pipeview 60`

use osm_repro::sa1100::{RefSim, SaConfig, SaOsmSim};
use osm_repro::workloads::mediabench;

struct Args {
    kernel: Option<String>,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    pipeview: Option<u64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        kernel: None,
        trace_out: None,
        metrics_out: None,
        pipeview: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--kernel" => args.kernel = Some(value("--kernel")),
            "--trace-out" => args.trace_out = Some(value("--trace-out")),
            "--metrics-out" => args.metrics_out = Some(value("--metrics-out")),
            "--pipeview" => {
                args.pipeview = Some(
                    value("--pipeview")
                        .parse()
                        .expect("--pipeview takes a cycle count"),
                )
            }
            other => panic!("unknown flag {other} (see the example's doc comment)"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let cfg = SaConfig::paper();
    println!("StrongARM SA-1100: OSM model vs hand-sequenced reference\n");
    println!(
        "{:<10} {:>12} {:>12} {:>8} {:>8} {:>9} {:>8}",
        "kernel", "OSM cycles", "ref cycles", "CPI", "squash", "i$ miss", "exit"
    );

    for w in mediabench() {
        let program = w.program();

        let mut osm = SaOsmSim::new(cfg, &program);
        let osm_result = osm.run_to_halt(100_000_000).expect("no deadlock");

        let mut reference = RefSim::new(cfg, &program);
        let ref_result = reference.run_to_halt(100_000_000);

        assert_eq!(
            osm_result.exit_code, ref_result.exit_code,
            "functional mismatch on {}",
            w.name
        );

        println!(
            "{:<10} {:>12} {:>12} {:>8.3} {:>8} {:>9} {:>8}",
            w.name,
            osm_result.cycles,
            ref_result.cycles,
            osm_result.cpi(),
            osm_result.squashed,
            osm_result.icache_misses,
            osm_result.exit_code,
        );
    }

    println!(
        "\nBoth simulators share only the functional ISA layer; matching cycle\n\
         counts validate the OSM model the way the paper's iPAQ comparison does."
    );

    let observing =
        args.trace_out.is_some() || args.metrics_out.is_some() || args.pipeview.is_some();
    if !observing {
        return;
    }

    // Re-run one kernel with the observability stack on and export.
    let kernels = mediabench();
    let w = match &args.kernel {
        Some(name) => kernels
            .iter()
            .find(|w| w.name == *name)
            .unwrap_or_else(|| panic!("unknown kernel `{name}`")),
        None => &kernels[0],
    };
    println!("\ninstrumented run: {}", w.name);
    let mut sim = SaOsmSim::new(cfg, &w.program());
    sim.enable_observability();
    sim.run_to_halt(100_000_000).expect("no deadlock");

    let stats = &sim.machine().stats;
    let hist = sim.stall_histogram().expect("attribution enabled");
    println!(
        "observed {} token events total; stall charges {}, idle steps {} (Stats::idle_steps {})",
        sim.machine().event_log().map_or(0, |l| l.total()),
        hist.charged,
        hist.global_stall_cycles,
        stats.idle_steps,
    );
    println!("{hist}");

    if let Some(n) = args.pipeview {
        match sim.pipeline_diagram(0, n) {
            Some(d) => print!("{d}"),
            None => println!("(no event log)"),
        }
    }
    if let Some(path) = &args.trace_out {
        let json = sim.chrome_trace().expect("event log enabled");
        std::fs::write(path, &json).expect("write trace file");
        println!("wrote Chrome trace to {path} ({} bytes); load it in chrome://tracing or ui.perfetto.dev", json.len());
    }
    if let Some(path) = &args.metrics_out {
        let report = sim.metrics_report().expect("metrics enabled");
        let json = osm_core::export::metrics_json(&report);
        std::fs::write(path, &json).expect("write metrics file");
        println!("wrote metrics JSON to {path}");
    }
}
