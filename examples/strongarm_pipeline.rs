//! The StrongARM case study end to end: assemble a MediaBench-like kernel,
//! run it on the OSM model and on the independent reference simulator, and
//! compare timing (the paper's Table 1 methodology in miniature).
//!
//! Run with: `cargo run --release --example strongarm_pipeline`

use osm_repro::sa1100::{RefSim, SaConfig, SaOsmSim};
use osm_repro::workloads::mediabench;

fn main() {
    let cfg = SaConfig::paper();
    println!("StrongARM SA-1100: OSM model vs hand-sequenced reference\n");
    println!(
        "{:<10} {:>12} {:>12} {:>8} {:>8} {:>9} {:>8}",
        "kernel", "OSM cycles", "ref cycles", "CPI", "squash", "i$ miss", "exit"
    );

    for w in mediabench() {
        let program = w.program();

        let mut osm = SaOsmSim::new(cfg, &program);
        let osm_result = osm.run_to_halt(100_000_000).expect("no deadlock");

        let mut reference = RefSim::new(cfg, &program);
        let ref_result = reference.run_to_halt(100_000_000);

        assert_eq!(
            osm_result.exit_code, ref_result.exit_code,
            "functional mismatch on {}",
            w.name
        );

        println!(
            "{:<10} {:>12} {:>12} {:>8.3} {:>8} {:>9} {:>8}",
            w.name,
            osm_result.cycles,
            ref_result.cycles,
            osm_result.cpi(),
            osm_result.squashed,
            osm_result.icache_misses,
            osm_result.exit_code,
        );
    }

    println!(
        "\nBoth simulators share only the functional ISA layer; matching cycle\n\
         counts validate the OSM model the way the paper's iPAQ comparison does."
    );
}
