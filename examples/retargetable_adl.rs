//! Retargetable simulator generation from the architecture description
//! language — the paper's proposed next step (§7), implemented in
//! `osm-adl`: the declarative part of a processor model (managers, state
//! machines, conditions) is written as text and synthesized; only the
//! instruction semantics remain Rust.
//!
//! Run with: `cargo run --example retargetable_adl`

use osm_repro::osm_adl::{export, parse, synthesize};
use osm_repro::osm_core::{InertBehavior, Machine};

const PIPELINE_ADL: &str = "
    # The paper's Fig. 5/6 five-stage pipeline, declaratively.
    machine pipe5 {
        manager fetch     : exclusive(1);
        manager decode    : exclusive(1);
        manager execute   : exclusive(1);
        manager buffer    : exclusive(1);
        manager writeback : exclusive(1);
        manager regs      : scoreboard(32);
        manager rst       : reset;

        osm op {
            states I, F, D, E, B, W;
            initial I;
            edge e0 : I -> F { allocate fetch[0]; }
            edge rF : F -> I priority 10 { inquire rst[0]; discard all; }
            edge e1 : F -> D { release fetch[held]; allocate decode[0]; }
            edge rD : D -> I priority 10 { inquire rst[0]; discard all; }
            edge e2 : D -> E {
                release decode[held];
                allocate execute[0];
                inquire regs[slot 0];
                inquire regs[slot 1];
                allocate regs[slot 2];
            }
            edge e3 : E -> B { release execute[held]; allocate buffer[0]; }
            edge e4 : B -> W { release buffer[held]; allocate writeback[0]; }
            edge e5 : W -> I { release writeback[held]; release regs[slot 2]; }
        }
    }
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Parse + synthesize the declarative model.
    let decl = parse(PIPELINE_ADL)?;
    let synth = synthesize(&decl)?;
    println!(
        "synthesized machine `{}`: {} managers, {} OSM class(es)",
        synth.name,
        synth.managers.len(),
        synth.specs.len()
    );

    // Instantiate and run it (inert behaviors: pure structure/timing).
    let mut machine: Machine<()> = Machine::new(());
    synth.install_managers(&mut machine);
    let spec = synth.spec("op").expect("declared");
    for _ in 0..8 {
        machine.add_osm(spec, InertBehavior);
    }
    machine.run(20)?;
    println!(
        "ran 20 cycles: {} transitions ({:.2}/cycle — full pipeline)",
        machine.stats.transitions,
        machine.stats.transitions_per_cycle()
    );

    // Declarativeness: the model exports back to ADL text losslessly.
    let text = export(&synth);
    let reparsed = synthesize(&parse(&text)?)?;
    assert_eq!(reparsed.managers, synth.managers);
    assert_eq!(
        reparsed.spec("op").expect("present").edge_count(),
        spec.edge_count()
    );
    println!("\nexport/parse round-trip verified; exported description:\n");
    println!("{text}");
    Ok(())
}
