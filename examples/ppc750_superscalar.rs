//! The PowerPC 750 case study: dual-issue out-of-order execution with
//! reservation stations, rename buffers, branch prediction and in-order
//! completion — the Fig. 2 state machine in action, plus the comparison
//! against the hardware-centric port/signal model.
//!
//! Run with: `cargo run --release --example ppc750_superscalar`

use osm_repro::ppc750::{PpcConfig, PpcOsmSim, PpcPortSim};
use osm_repro::workloads::{mediabench, specint_mix};

fn main() {
    let cfg = PpcConfig::paper();
    println!("PowerPC 750: OSM model vs port/signal (SystemC-style) model\n");

    // Show the Fig. 2 spec shape once.
    let demo = mediabench().remove(0);
    let sim = PpcOsmSim::new(cfg, &demo.program());
    let spec = sim.spec();
    println!(
        "operation state machine: {} states, {} edges (both the direct Q->E \
         dispatch paths\nand the Q->R->E reservation-station paths of Fig. 2)\n",
        spec.state_count(),
        spec.edge_count()
    );

    println!(
        "{:<12} {:>10} {:>10} {:>7} {:>7} {:>14} {:>8}",
        "benchmark", "OSM cyc", "port cyc", "diff", "CPI", "mispredict", "squash"
    );
    let mut workloads = mediabench();
    workloads.push(specint_mix());
    for w in workloads {
        let program = w.program();
        let mut osm = PpcOsmSim::new(cfg, &program);
        let o = osm.run_to_halt(100_000_000).expect("no deadlock");
        let mut port = PpcPortSim::new(cfg, &program);
        let p = port.run_to_halt(100_000_000);
        assert_eq!(o.exit_code, p.exit_code, "functional mismatch on {}", w.name);
        println!(
            "{:<12} {:>10} {:>10} {:>6.2}% {:>7.3} {:>8}/{:<5} {:>8}",
            w.name,
            o.cycles,
            p.cycles,
            100.0 * (p.cycles as f64 - o.cycles as f64) / o.cycles as f64,
            o.cpi(),
            o.mispredicts,
            o.branches,
            o.squashed,
        );
    }

    println!(
        "\nCPI < 1 shows dual issue at work; squashes come from the control-hazard\n\
         idiom (reset manager + high-priority reset edges, paper §4)."
    );
}
