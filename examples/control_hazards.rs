//! Control hazards through the reset-manager idiom (paper §4): a branchy
//! program on the StrongARM model, with the transition trace showing the
//! speculative wrong-path operation taking its high-priority reset edge.
//!
//! Run with: `cargo run --example control_hazards`

use osm_repro::minirisc::assemble;
use osm_repro::sa1100::{SaConfig, SaOsmSim};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A loop whose branch direction alternates: maximally unfriendly to the
    // sequential-fetch front end.
    let program = assemble(
        "
            li r1, 8
            li r3, 0
        loop:
            andi r2, r1, 1
            beq r2, r0, even
            addi r3, r3, 100
        even:
            addi r3, r3, 1
            addi r1, r1, -1
            bne r1, r0, loop
            li r10, 0
            add r11, r3, r0
            syscall
        ",
        0x1000,
    )?;

    let mut sim = SaOsmSim::new(SaConfig::paper(), &program);
    sim.machine_mut().enable_trace();
    let result = sim.run_to_halt(1_000_000)?;

    println!("exit code: {} (4 odd iterations x 100 + 8 x 1 = 408)", result.exit_code);
    println!(
        "cycles: {}, retired: {}, squashed wrong-path ops: {}\n",
        result.cycles, result.retired, result.squashed
    );

    // Show reset edges firing in the trace.
    let trace = sim.machine_mut().take_trace().expect("tracing enabled");
    let spec = sim.spec().clone();
    println!("reset-edge transitions (speculative operations being killed):");
    let mut shown = 0;
    for ev in trace.events() {
        let edge = spec.edge(ev.edge);
        if edge.name.starts_with("reset") {
            println!(
                "  cycle {:>3}: {} took `{}` ({} -> {})",
                ev.cycle,
                ev.osm,
                edge.name,
                spec.state_name(ev.from),
                spec.state_name(ev.to)
            );
            shown += 1;
            if shown == 8 {
                break;
            }
        }
    }
    println!(
        "\neach kill: the branch resolved in E, armed the reset manager, and the\n\
         wrong-path operation's priority-10 reset edge discarded its tokens."
    );
    Ok(())
}
