//! The §6 VLIW demonstration: schedule a kernel into two-slot bundles, run
//! it on the lockstep OSM model, and compare against unscheduled execution.
//!
//! Run with: `cargo run --example vliw_bundles`

use osm_repro::minirisc::{AluOp, BranchCond, Instr, Reg};
use osm_repro::vliw::{interpret, schedule, Bundle, VliwConfig, VliwIr, VliwProgram, VliwSim};

fn addi(rd: u8, rs1: u8, imm: i32) -> Instr {
    Instr::AluImm {
        op: AluOp::Add,
        rd: Reg(rd),
        rs1: Reg(rs1),
        imm,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An unrolled accumulation kernel with plenty of slot-level parallelism.
    let mut ir = VliwIr::new();
    ir.push(addi(1, 0, 100)); // loop counter
    let top = ir.instrs.len();
    for k in 0..6 {
        ir.push(addi(2 + k, 0, k as i32 + 1)); // independent work
    }
    ir.push(Instr::Alu {
        op: AluOp::Add,
        rd: Reg(9),
        rs1: Reg(9),
        rs2: Reg(2),
    });
    ir.push(addi(1, 1, -1));
    ir.branch(
        Instr::Branch {
            cond: BranchCond::Ne,
            rs1: Reg(1),
            rs2: Reg(0),
            offset: 0,
        },
        top,
    );
    ir.push(addi(10, 0, 0));
    ir.push(Instr::Alu {
        op: AluOp::Add,
        rd: Reg(11),
        rs1: Reg(9),
        rs2: Reg(0),
    });
    ir.push(Instr::Syscall);

    // The "compiler": pack into 2-slot bundles.
    let packed = schedule(&ir, vec![]);
    println!(
        "scheduled {} operations into {} bundles ({:.0}% NOP padding)",
        packed.op_count(),
        packed.bundles.len(),
        100.0 * packed.nop_fraction()
    );
    for (k, b) in packed.bundles.iter().take(6).enumerate() {
        println!("  bundle {k}: [{} | {}]", b.slots[0], b.slots[1]);
    }

    // Scalar rendition of the same program (one op per bundle).
    let scalar = VliwProgram {
        bundles: ir
            .instrs
            .iter()
            .map(|&i| Bundle {
                slots: [i, Instr::NOP],
            })
            .collect(),
        data: vec![],
        targets: ir.targets.clone(),
    };

    let golden = interpret(&packed, 1_000_000);
    let fast = VliwSim::new(VliwConfig::default(), &packed).run_to_halt(10_000_000)?;
    let slow = VliwSim::new(VliwConfig::default(), &scalar).run_to_halt(10_000_000)?;
    assert_eq!(fast.exit_code, golden.exit_code);
    assert_eq!(fast.exit_code, slow.exit_code);

    println!("\nexit code: {}", fast.exit_code);
    println!(
        "packed : {:>6} cycles, {:.2} cycles/op, {} squashed",
        fast.cycles,
        fast.cpo(),
        fast.squashed
    );
    println!(
        "scalar : {:>6} cycles, {:.2} cycles/op",
        slow.cycles,
        slow.cpo()
    );
    println!(
        "speedup: {:.2}x — hazards live in the scheduler, the OSM model only\n\
         needs stage tokens, memory latency and the reset manager (paper §6).",
        slow.cycles as f64 / fast.cycles as f64
    );
    Ok(())
}
