//! A SPECint-2000-like integer mix: pointer chasing over a linked structure,
//! hashing, and data-dependent branching — the control- and memory-bound
//! profile of `gcc`/`mcf`-style workloads, in one kernel. Used together with
//! MediaBench for the PPC-750 validation mix (paper §5.2).

use crate::Workload;

/// Builds the SPECint-like mix at default scale.
pub fn specint_mix() -> Workload {
    specint_scaled(1)
}

/// Builds the SPECint-like mix with the outer iteration count scaled.
pub fn specint_scaled(scale: u32) -> Workload {
    let rounds = 400 * scale;
    let asm = format!(
        "
        ; specint-like mix: build a 16-node ring of (value, next) pairs,
        ; then chase it while hashing values and branching on them.
            li   r20, 0
            ; --- build phase -------------------------------------------------
            la   r2, nodes
            li   r3, 16            ; node count
            li   r4, 0             ; index
        build:
            ; value = (index * 2654435761) >> 16 (Knuth hash), 8 bytes/node
            li   r5, 40503         ; golden-ratio-ish 16-bit constant
            mul  r6, r4, r5
            srli r6, r6, 4
            sw   r6, 0(r2)         ; value
            ; next pointer: (index + 7) % 16 (co-prime stride ring)
            addi r7, r4, 7
            andi r7, r7, 15
            slli r7, r7, 3
            la   r8, nodes
            add  r7, r7, r8
            sw   r7, 4(r2)         ; next
            addi r2, r2, 8
            addi r4, r4, 1
            bne  r4, r3, build
            ; --- chase phase -------------------------------------------------
            li   r1, {rounds}
            la   r9, nodes
        chase:
            lw   r12, 0(r9)        ; value
            lw   r9, 4(r9)         ; follow next
            ; hash step
            xor  r20, r20, r12
            slli r13, r20, 3
            srli r14, r20, 2
            add  r20, r13, r14
            ; data-dependent branching
            andi r15, r12, 3
            beq  r15, r0, b0
            andi r16, r12, 4
            bne  r16, r0, b1
            addi r20, r20, 5
            j    bend
        b1:
            addi r20, r20, 7
            j    bend
        b0:
            addi r20, r20, 11
        bend:
            addi r1, r1, -1
            bne  r1, r0, chase
            li   r10, 0
            andi r11, r20, 8191
            syscall
        nodes:
            .space 128
        "
    );
    Workload::new("specint/mix", asm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minirisc::{Iss, SparseMemory};

    #[test]
    fn mix_runs_and_halts() {
        let p = specint_mix().program();
        let mut iss = Iss::with_program(SparseMemory::new(), &p);
        let steps = iss.run(10_000_000).expect("runs");
        assert!(iss.halted);
        assert!(steps > 4000, "expected substantial work, got {steps}");
    }

    #[test]
    fn scaled_mix_does_more_work() {
        let run = |w: &Workload| {
            let p = w.program();
            let mut iss = Iss::with_program(SparseMemory::new(), &p);
            iss.run(50_000_000).unwrap()
        };
        assert!(run(&specint_scaled(2)) > run(&specint_scaled(1)));
    }
}
