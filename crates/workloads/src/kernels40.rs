//! The 40 diagnostic micro-kernels (paper §5.1: "We used 40 small kernel
//! loops to diagnose timing mismatches between the model and the real
//! processor").
//!
//! Each kernel isolates one timing behaviour — a forwarding distance, a
//! load-use bubble, a multiplier latency, a branch pattern, a cache or TLB
//! access pattern — so a cycle-count disagreement between two simulators
//! points directly at the mis-modeled mechanism.

use crate::Workload;

/// Wraps a loop body in the standard iterate-and-exit harness.
fn kernel(name: &str, iters: u32, body: &str, data: &str) -> Workload {
    let asm = format!(
        "
            li r20, 0
            li r1, {iters}
        loop:
{body}
            addi r1, r1, -1
            bne r1, r0, loop
            li r10, 0
            andi r11, r20, 8191
            syscall
{data}
        "
    );
    Workload::new(format!("k40/{name}"), asm)
}

/// Builds all 40 kernels.
pub fn kernels40() -> Vec<Workload> {
    let mut ks: Vec<Workload> = Vec::with_capacity(40);

    // --- Forwarding distances (producer-to-consumer gap 1..4) -------------
    for dist in 1..=4u32 {
        let mut body = String::from("            add r2, r1, r1\n");
        for k in 0..dist - 1 {
            body.push_str(&format!("            addi r{}, r0, 1\n", 12 + k));
        }
        body.push_str("            add r20, r20, r2\n");
        ks.push(kernel(&format!("fwd_dist_{dist}"), 400, &body, ""));
    }

    // --- Load-use bubbles (0..2 fillers after a load) ----------------------
    for gap in 0..=2u32 {
        let mut body = String::from("            la r3, ldat\n            lw r2, 0(r3)\n");
        for k in 0..gap {
            body.push_str(&format!("            addi r{}, r0, 1\n", 12 + k));
        }
        body.push_str("            add r20, r20, r2\n");
        ks.push(kernel(
            &format!("load_use_{gap}"),
            400,
            &body,
            "        ldat:\n            .word 7",
        ));
    }

    // --- Multiplier / divider latencies ------------------------------------
    ks.push(kernel(
        "mul_lat",
        300,
        "            mul r2, r1, r1\n            add r20, r20, r2\n",
        "",
    ));
    ks.push(kernel(
        "div_lat",
        80,
        "            addi r3, r1, 1\n            div r2, r1, r3\n            add r20, r20, r2\n",
        "",
    ));
    ks.push(kernel(
        "mul_chain",
        200,
        "            mul r2, r1, r1\n            mul r3, r2, r1\n            mul r4, r3, r1\n            add r20, r20, r4\n",
        "",
    ));

    // --- Branch patterns ----------------------------------------------------
    ks.push(kernel(
        "branch_taken",
        400,
        "            beq r0, r0, t1\n            addi r20, r20, 99\n        t1:\n            addi r20, r20, 1\n",
        "",
    ));
    ks.push(kernel(
        "branch_nottaken",
        400,
        "            bne r0, r0, t2\n            addi r20, r20, 1\n        t2:\n",
        "",
    ));
    ks.push(kernel(
        "branch_alt",
        400,
        "            andi r2, r1, 1\n            beq r2, r0, t3\n            addi r20, r20, 1\n        t3:\n            addi r20, r20, 2\n",
        "",
    ));
    ks.push(kernel(
        "branch_dense",
        300,
        "            andi r2, r1, 3\n            beq r2, r0, d0\n            addi r20, r20, 1\n        d0:\n            andi r3, r1, 7\n            bne r3, r0, d1\n            addi r20, r20, 2\n        d1:\n            andi r4, r1, 1\n            beq r4, r0, d2\n            addi r20, r20, 3\n        d2:\n",
        "",
    ));

    // --- Instruction-cache behaviour ---------------------------------------
    // Small hot loop (fits one line), medium loop, and a long straight body.
    ks.push(kernel(
        "icache_hot",
        600,
        "            add r20, r20, r1\n",
        "",
    ));
    {
        let mut body = String::new();
        for k in 0..24 {
            body.push_str(&format!("            addi r{}, r0, {}\n", 2 + (k % 8), k));
        }
        body.push_str("            add r20, r20, r2\n");
        ks.push(kernel("icache_medium", 200, &body, ""));
    }
    {
        let mut body = String::new();
        for k in 0..120 {
            body.push_str(&format!("            addi r{}, r0, {}\n", 2 + (k % 8), k % 100));
        }
        body.push_str("            add r20, r20, r2\n");
        ks.push(kernel("icache_long", 60, &body, ""));
    }

    // --- Data-cache behaviour ------------------------------------------------
    ks.push(kernel(
        "dcache_hit",
        400,
        "            la r3, darr\n            lw r2, 0(r3)\n            lw r4, 4(r3)\n            add r20, r20, r2\n            add r20, r20, r4\n",
        "        darr:\n            .word 5\n            .word 6",
    ));
    ks.push(kernel(
        "dcache_stride",
        150,
        "            la r3, big\n            andi r2, r1, 7\n            slli r2, r2, 7      ; stride 128\n            add r3, r3, r2\n            lw r4, 0(r3)\n            add r20, r20, r4\n",
        "        big:\n            .space 1024",
    ));
    ks.push(kernel(
        "dcache_writeback",
        200,
        "            la r3, warr\n            andi r2, r1, 15\n            slli r2, r2, 2\n            add r3, r3, r2\n            sw r1, 0(r3)\n            lw r4, 0(r3)\n            add r20, r20, r4\n",
        "        warr:\n            .space 64",
    ));

    // --- TLB walks -------------------------------------------------------------
    ks.push(kernel(
        "tlb_walk",
        60,
        "            la r3, pages\n            andi r2, r1, 7\n            slli r2, r2, 12     ; stride 4096\n            add r3, r3, r2\n            lw r4, 0(r3)\n            add r20, r20, r4\n",
        "        pages:\n            .word 1",
    ));

    // --- Calls and indirect jumps ----------------------------------------------
    ks.push(Workload::new(
        "k40/call_ret",
        "
            li r20, 0
            li r1, 300
        loop:
            call addone
            addi r1, r1, -1
            bne r1, r0, loop
            li r10, 0
            andi r11, r20, 8191
            syscall
        addone:
            addi r20, r20, 1
            ret
        ",
    ));
    ks.push(Workload::new(
        "k40/jalr_indirect",
        "
            li r20, 0
            li r1, 300
            la r5, hop
        loop:
            jalr r31, 0(r5)
            addi r1, r1, -1
            bne r1, r0, loop
            li r10, 0
            andi r11, r20, 8191
            syscall
        hop:
            addi r20, r20, 2
            ret
        ",
    ));
    ks.push(kernel(
        "jal_dense",
        300,
        "            j j1\n        j1:\n            j j2\n        j2:\n            addi r20, r20, 1\n",
        "",
    ));

    // --- Floating point ----------------------------------------------------------
    ks.push(kernel(
        "fp_add_chain",
        200,
        "            cvtsw f1, r1\n            fadd f2, f1, f1\n            fadd f3, f2, f1\n            cvtws r2, f3\n            add r20, r20, r2\n",
        "",
    ));
    ks.push(kernel(
        "fp_mul_chain",
        200,
        "            cvtsw f1, r1\n            fmul f2, f1, f1\n            fmul f3, f2, f1\n            cvtws r2, f3\n            andi r2, r2, 255\n            add r20, r20, r2\n",
        "",
    ));
    ks.push(kernel(
        "fp_div",
        80,
        "            cvtsw f1, r1\n            addi r3, r1, 1\n            cvtsw f2, r3\n            fdiv f3, f2, f1\n            cvtws r2, f3\n            add r20, r20, r2\n",
        "",
    ));

    // --- Store/load interactions ---------------------------------------------------
    ks.push(kernel(
        "store_load_same",
        300,
        "            la r3, slot\n            sw r1, 0(r3)\n            lw r2, 0(r3)\n            add r20, r20, r2\n",
        "        slot:\n            .space 4",
    ));
    ks.push(kernel(
        "store_stream",
        200,
        "            la r3, sarr\n            andi r2, r1, 15\n            slli r2, r2, 2\n            add r3, r3, r2\n            sw r1, 0(r3)\n            sw r1, 4(r3)\n            addi r20, r20, 1\n",
        "        sarr:\n            .space 128",
    ));
    ks.push(kernel(
        "load_stream",
        200,
        "            la r3, larr\n            andi r2, r1, 7\n            slli r2, r2, 2\n            add r3, r3, r2\n            lw r4, 0(r3)\n            lw r5, 4(r3)\n            lw r6, 8(r3)\n            add r20, r20, r4\n            add r20, r20, r5\n            add r20, r20, r6\n",
        "        larr:\n            .word 1\n            .word 2\n            .word 3\n            .word 4\n            .word 5\n            .word 6\n            .word 7\n            .word 8\n            .word 9\n            .word 10",
    ));

    // --- Hazard mixes ------------------------------------------------------------------
    ks.push(kernel(
        "raw_waw_mix",
        300,
        "            add r2, r1, r1\n            add r2, r2, r1      ; RAW + WAW on r2\n            add r2, r2, r2\n            add r20, r20, r2\n",
        "",
    ));
    ks.push(kernel(
        "nop_sled",
        300,
        "            nop\n            nop\n            nop\n            nop\n            addi r20, r20, 1\n",
        "",
    ));
    ks.push(kernel(
        "mixed_alu",
        300,
        "            xor r2, r1, r20\n            sll r3, r1, r1\n            sltu r4, r2, r3\n            sub r5, r3, r2\n            or r6, r4, r5\n            add r20, r20, r6\n",
        "",
    ));
    ks.push(Workload::new(
        "k40/output_bytes",
        "
            li r20, 0
            li r1, 20
        loop:
            li r10, 1
            li r11, 46      ; '.'
            syscall
            addi r20, r20, 1
            addi r1, r1, -1
            bne r1, r0, loop
            li r10, 0
            andi r11, r20, 8191
            syscall
        ",
    ));

    // --- Constant materialization, shifts, compares, memcpy ---------------------------------
    ks.push(kernel(
        "lui_heavy",
        300,
        "            li r2, 0x12345\n            li r3, 0x54321\n            xor r4, r2, r3\n            andi r4, r4, 1023\n            add r20, r20, r4\n",
        "",
    ));
    ks.push(kernel(
        "shift_chain",
        300,
        "            sll r2, r1, r1\n            srl r3, r2, r1\n            sra r4, r3, r1\n            add r20, r20, r4\n",
        "",
    ));
    ks.push(kernel(
        "compare_chain",
        300,
        "            slt r2, r1, r20\n            sltu r3, r20, r1\n            slti r4, r1, 100\n            add r5, r2, r3\n            add r5, r5, r4\n            add r20, r20, r5\n",
        "",
    ));
    ks.push(kernel(
        "mem_copy",
        150,
        "            la r3, srcb\n            la r4, dstb\n            li r5, 8\n        cp:\n            lw r6, 0(r3)\n            sw r6, 0(r4)\n            addi r3, r3, 4\n            addi r4, r4, 4\n            addi r5, r5, -1\n            bne r5, r0, cp\n            addi r20, r20, 1\n",
        "        srcb:\n            .word 1\n            .word 2\n            .word 3\n            .word 4\n            .word 5\n            .word 6\n            .word 7\n            .word 8\n        dstb:\n            .space 32",
    ));

    // --- Sub-word memory, halves and bytes ----------------------------------------------------
    ks.push(kernel(
        "subword_mem",
        200,
        "            la r3, bdat\n            lb r2, 0(r3)\n            lbu r4, 1(r3)\n            lh r5, 2(r3)\n            lhu r6, 0(r3)\n            sb r1, 4(r3)\n            sh r1, 6(r3)\n            add r20, r20, r2\n            add r20, r20, r4\n            add r20, r20, r5\n            add r20, r20, r6\n",
        "        bdat:\n            .word 0x80FF7F01\n            .space 8",
    ));
    ks.push(kernel(
        "long_dep_chain",
        200,
        "            add r2, r20, r1\n            add r2, r2, r2\n            add r2, r2, r2\n            add r2, r2, r2\n            add r2, r2, r2\n            add r2, r2, r2\n            andi r20, r2, 4095\n",
        "",
    ));

    debug_assert_eq!(ks.len(), 40, "expected exactly 40 kernels, got {}", ks.len());
    ks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_forty() {
        assert_eq!(kernels40().len(), 40);
    }

    #[test]
    fn all_assemble() {
        for k in kernels40() {
            let _ = k.program(); // panics on failure
        }
    }
}
