//! MediaBench-like synthetic kernels (Table 1 workloads).
//!
//! Each kernel reproduces the dominant loop structure and instruction-class
//! mix of its namesake: GSM's multiply-accumulate LPC filters, G.721's
//! branchy ADPCM quantization ladders, and MPEG-2's memory-bound
//! DCT/motion-compensation inner loops.

use crate::Workload;

/// The six MediaBench-like kernels at default scale (the paper's Table 1
/// rows: gsm/dec, gsm/enc, g721/dec, g721/enc, mpeg2/dec, mpeg2/enc).
pub fn mediabench() -> Vec<Workload> {
    mediabench_scaled(1)
}

/// The six kernels with iteration counts multiplied by `scale` (for speed
/// benchmarks that need longer runs).
pub fn mediabench_scaled(scale: u32) -> Vec<Workload> {
    vec![
        gsm_dec(400 * scale),
        gsm_enc(220 * scale),
        g721_dec(3000 * scale),
        g721_enc(2400 * scale),
        mpeg2_dec(260 * scale),
        mpeg2_enc(180 * scale),
    ]
}

/// GSM decoder stand-in: LPC short-term synthesis filter (8-tap MAC loop
/// per output sample, rotating filter state).
fn gsm_dec(frames: u32) -> Workload {
    let asm = format!(
        "
        ; gsm/dec — LPC synthesis filter
            li   r20, 0            ; checksum
            li   r1, {frames}
        frame:
            la   r2, coefs
            la   r3, state
            li   r4, 8
            li   r5, 0
        mac:
            lw   r6, 0(r2)
            lw   r7, 0(r3)
            mul  r8, r6, r7
            add  r5, r5, r8
            addi r2, r2, 4
            addi r3, r3, 4
            addi r4, r4, -1
            bne  r4, r0, mac
            srai r5, r5, 12
            ; rotate the new sample into the filter state
            la   r3, state
            andi r9, r1, 7
            slli r9, r9, 2
            add  r9, r9, r3
            sw   r5, 0(r9)
            add  r20, r20, r5
            addi r1, r1, -1
            bne  r1, r0, frame
            andi r11, r20, 8191
            li   r10, 0
            syscall
        coefs:
            .word 3317
            .word -2796
            .word 1841
            .word -923
            .word 512
            .word -205
            .word 88
            .word -31
        state:
            .word 100
            .word -200
            .word 300
            .word -400
            .word 500
            .word -600
            .word 700
            .word -800
        "
    );
    Workload::new("gsm/dec", asm)
}

/// GSM encoder stand-in: autocorrelation (nested MAC over a window) plus
/// reflection-coefficient update — more multiplies per sample than decode.
fn gsm_enc(frames: u32) -> Workload {
    let asm = format!(
        "
        ; gsm/enc — autocorrelation + schur-like recursion
            li   r20, 0
            li   r1, {frames}
        frame:
            ; autocorrelation: lags 0..3 over a 16-sample window
            li   r2, 4             ; lag counter (4 lags)
        lagloop:
            la   r3, window
            li   r4, 12            ; n = 12 inner products per lag
            li   r5, 0             ; acc
        corr:
            lw   r6, 0(r3)
            slli r7, r2, 2
            add  r7, r7, r3
            lw   r7, 0(r7)
            mul  r8, r6, r7
            add  r5, r5, r8
            addi r3, r3, 4
            addi r4, r4, -1
            bne  r4, r0, corr
            srai r5, r5, 8
            ; store r[lag]
            la   r9, acf
            slli r12, r2, 2
            add  r12, r12, r9
            sw   r5, 0(r12)
            add  r20, r20, r5
            addi r2, r2, -1
            bne  r2, r0, lagloop
            ; schur-like update: two muls + division-free normalization
            la   r9, acf
            lw   r13, 4(r9)
            lw   r14, 8(r9)
            mul  r15, r13, r14
            srai r15, r15, 10
            add  r20, r20, r15
            addi r1, r1, -1
            bne  r1, r0, frame
            andi r11, r20, 8191
            li   r10, 0
            syscall
        window:
            .word 12
            .word -34
            .word 56
            .word -78
            .word 90
            .word -123
            .word 145
            .word -167
            .word 189
            .word -201
            .word 223
            .word -245
            .word 267
            .word -289
            .word 301
            .word -323
            .word 345
            .word -367
            .word 389
            .word -401
        acf:
            .space 20
        "
    );
    Workload::new("gsm/enc", asm)
}

/// G.721 decoder stand-in: ADPCM reconstruction — LFSR-generated 4-bit
/// codes, table dequantization, sign handling and output clamping. Branchy.
fn g721_dec(samples: u32) -> Workload {
    let asm = format!(
        "
        ; g721/dec — ADPCM reconstruction
            li   r20, 0
            li   r14, 0            ; reconstructed signal
            li   r1, {samples}
            li   r2, 0x1234        ; LFSR input-bit state
        samp:
            andi r3, r2, 15        ; 4-bit code
            andi r4, r2, 1
            srli r2, r2, 1
            beq  r4, r0, nofb
            li   r5, 0xB400
            xor  r2, r2, r5
        nofb:
            andi r6, r3, 7         ; magnitude
            andi r7, r3, 8         ; sign bit
            la   r8, qtab
            slli r9, r6, 2
            add  r9, r9, r8
            lw   r9, 0(r9)         ; step size
            slli r12, r6, 1
            addi r12, r12, 1
            mul  r13, r9, r12
            srai r13, r13, 3
            beq  r7, r0, pos
            sub  r13, r0, r13
        pos:
            add  r14, r14, r13
            li   r15, 4095
            blt  r14, r15, nocu
            add  r14, r15, r0
        nocu:
            li   r15, -4096
            bge  r14, r15, nocl
            add  r14, r15, r0
        nocl:
            add  r20, r20, r14
            addi r1, r1, -1
            bne  r1, r0, samp
            andi r11, r20, 8191
            li   r10, 0
            syscall
        qtab:
            .word 16
            .word 17
            .word 19
            .word 21
            .word 23
            .word 25
            .word 28
            .word 31
        "
    );
    Workload::new("g721/dec", asm)
}

/// G.721 encoder stand-in: ADPCM quantization — a compare/branch ladder per
/// sample plus step-size adaptation. The branchiest kernel of the set.
fn g721_enc(samples: u32) -> Workload {
    let asm = format!(
        "
        ; g721/enc — ADPCM quantization ladder
            li   r20, 0
            li   r1, {samples}
            li   r2, 0x2468        ; LFSR signal source
            li   r14, 64           ; adaptive step
        samp:
            ; synthesize an input sample from the LFSR
            andi r4, r2, 1
            srli r2, r2, 1
            beq  r4, r0, nofb
            li   r5, 0xB400
            xor  r2, r2, r5
        nofb:
            andi r3, r2, 1023
            subi r3, r3, 512       ; sample in [-512, 511]
            ; quantize |sample| against the step ladder
            bge  r3, r0, abs_done
            sub  r3, r0, r3
        abs_done:
            li   r6, 0             ; code
            blt  r3, r14, q_done
            addi r6, r6, 1
            slli r7, r14, 1
            blt  r3, r7, q_done
            addi r6, r6, 1
            slli r7, r14, 2
            blt  r3, r7, q_done
            addi r6, r6, 1
        q_done:
            ; step adaptation: step += table[code]; clamp to [32, 2048]
            la   r8, adapt
            slli r9, r6, 2
            add  r9, r9, r8
            lw   r9, 0(r9)
            add  r14, r14, r9
            li   r12, 32
            bge  r14, r12, no_lo
            add  r14, r12, r0
        no_lo:
            li   r12, 2048
            blt  r14, r12, no_hi
            add  r14, r12, r0
        no_hi:
            add  r20, r20, r6
            add  r20, r20, r14
            addi r1, r1, -1
            bne  r1, r0, samp
            andi r11, r20, 8191
            li   r10, 0
            syscall
        adapt:
            .word -12
            .word -4
            .word 8
            .word 24
        "
    );
    Workload::new("g721/enc", asm)
}

/// MPEG-2 decoder stand-in: 8-point IDCT butterflies plus motion
/// compensation (block copy with residual add). Memory-bound with multiplies.
fn mpeg2_dec(blocks: u32) -> Workload {
    let asm = format!(
        "
        ; mpeg2/dec — IDCT butterfly + motion compensation
            li   r20, 0
            li   r1, {blocks}
        block:
            ; seed the coefficient row from the block counter
            la   r2, row
            li   r3, 8
            add  r4, r1, r0
        seed:
            sw   r4, 0(r2)
            mul  r4, r4, r4
            andi r4, r4, 2047
            addi r2, r2, 4
            addi r3, r3, -1
            bne  r3, r0, seed
            ; 4 butterfly pairs: t0 = a + b; t1 = (a - b) * c >> 9
            la   r2, row
            li   r3, 4
        bfly:
            lw   r5, 0(r2)
            lw   r6, 16(r2)
            add  r7, r5, r6
            sub  r8, r5, r6
            li   r9, 362           ; cos constant
            mul  r8, r8, r9
            srai r8, r8, 9
            sw   r7, 0(r2)
            sw   r8, 16(r2)
            addi r2, r2, 4
            addi r3, r3, -1
            bne  r3, r0, bfly
            ; motion compensation: out[i] = ref[i] + row[i] over 8 samples
            la   r2, row
            la   r5, refblk
            la   r6, outblk
            li   r3, 8
        mc:
            lw   r7, 0(r2)
            lw   r8, 0(r5)
            add  r7, r7, r8
            sw   r7, 0(r6)
            add  r20, r20, r7
            addi r2, r2, 4
            addi r5, r5, 4
            addi r6, r6, 4
            addi r3, r3, -1
            bne  r3, r0, mc
            addi r1, r1, -1
            bne  r1, r0, block
            andi r11, r20, 8191
            li   r10, 0
            syscall
        row:
            .space 32
        refblk:
            .word 11
            .word 22
            .word 33
            .word 44
            .word 55
            .word 66
            .word 77
            .word 88
        outblk:
            .space 32
        "
    );
    Workload::new("mpeg2/dec", asm)
}

/// MPEG-2 encoder stand-in: sum-of-absolute-differences motion search over
/// candidate offsets (branches + memory) followed by a DCT-like MAC row.
fn mpeg2_enc(blocks: u32) -> Workload {
    let asm = format!(
        "
        ; mpeg2/enc — SAD motion search + forward DCT row
            li   r20, 0
            li   r1, {blocks}
        block:
            li   r2, 4             ; candidate offsets
            li   r15, 0x7FFF
            li   r16, 0            ; best offset
        cand:
            la   r3, cur
            la   r4, refwin
            slli r5, r2, 2
            add  r4, r4, r5        ; ref + offset*4
            li   r5, 8
            li   r6, 0             ; sad
        sad:
            lw   r7, 0(r3)
            lw   r8, 0(r4)
            sub  r9, r7, r8
            bge  r9, r0, posd
            sub  r9, r0, r9
        posd:
            add  r6, r6, r9
            addi r3, r3, 4
            addi r4, r4, 4
            addi r5, r5, -1
            bne  r5, r0, sad
            ; keep the minimum
            bge  r6, r15, worse
            add  r15, r6, r0
            add  r16, r2, r0
        worse:
            addi r2, r2, -1
            bne  r2, r0, cand
            add  r20, r20, r15
            add  r20, r20, r16
            ; forward DCT row on the chosen residual: 8 MACs
            la   r3, cur
            li   r5, 8
            li   r6, 0
        dct:
            lw   r7, 0(r3)
            li   r8, 473
            mul  r7, r7, r8
            srai r7, r7, 8
            add  r6, r6, r7
            addi r3, r3, 4
            addi r5, r5, -1
            bne  r5, r0, dct
            add  r20, r20, r6
            addi r1, r1, -1
            bne  r1, r0, block
            andi r11, r20, 8191
            li   r10, 0
            syscall
        cur:
            .word 120
            .word 95
            .word 140
            .word 83
            .word 152
            .word 71
            .word 164
            .word 59
        refwin:
            .word 118
            .word 97
            .word 138
            .word 85
            .word 150
            .word 73
            .word 162
            .word 61
            .word 116
            .word 99
            .word 136
            .word 87
        "
    );
    Workload::new("mpeg2/enc", asm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minirisc::{Iss, SparseMemory};

    fn exit_code(w: &Workload) -> u32 {
        let p = w.program();
        let mut iss = Iss::with_program(SparseMemory::new(), &p);
        iss.run(50_000_000).expect("runs");
        iss.exit_code
    }

    #[test]
    fn kernels_produce_stable_checksums() {
        // Golden checksums: any functional regression in a simulator or the
        // assembler shows up here first.
        let sums: Vec<(String, u32)> = mediabench()
            .iter()
            .map(|w| (w.name.clone(), exit_code(w)))
            .collect();
        for (name, sum) in &sums {
            assert!(*sum > 0, "{name} checksum is zero — degenerate kernel");
        }
        // Deterministic across runs.
        let again: Vec<(String, u32)> = mediabench()
            .iter()
            .map(|w| (w.name.clone(), exit_code(w)))
            .collect();
        assert_eq!(sums, again);
    }

    #[test]
    fn scaling_multiplies_work() {
        let base = &mediabench_scaled(1)[0];
        let big = &mediabench_scaled(2)[0];
        let count = |w: &Workload| {
            let p = w.program();
            let mut iss = Iss::with_program(SparseMemory::new(), &p);
            iss.run(50_000_000).unwrap()
        };
        let a = count(base);
        let b = count(big);
        assert!(b > a + a / 2, "scale=2 should roughly double work");
    }
}
