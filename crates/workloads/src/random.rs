//! Seeded random program generation for differential testing.
//!
//! Generates terminating programs (straight-line random instruction blocks
//! inside a bounded counting loop) that exercise random register dependences,
//! memory traffic within a scratch buffer, and occasional forward branches.
//! Running the same program on the ISS, the OSM models and the baseline
//! simulators and comparing exit codes is the property test that guards
//! functional equivalence.

use crate::Workload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a random terminating program from `seed`.
///
/// `block_len` is the number of random instructions per loop body (the loop
/// runs a fixed 50 iterations and then exits with a checksum).
pub fn random_program(seed: u64, block_len: usize) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut body = String::new();
    // Work registers r2..r9; the scratch pointer lives in r21.
    let reg = |rng: &mut StdRng| 2 + rng.gen_range(0..8u32);
    let mut fwd_label = 0u32;

    for _ in 0..block_len {
        match rng.gen_range(0..100u32) {
            0..=39 => {
                // Register ALU.
                let ops = ["add", "sub", "and", "or", "xor", "slt", "sltu"];
                let op = ops[rng.gen_range(0..ops.len())];
                body.push_str(&format!(
                    "            {op} r{}, r{}, r{}\n",
                    reg(&mut rng),
                    reg(&mut rng),
                    reg(&mut rng)
                ));
            }
            40..=59 => {
                // Immediate ALU.
                let ops = ["addi", "andi", "ori", "xori"];
                let op = ops[rng.gen_range(0..ops.len())];
                body.push_str(&format!(
                    "            {op} r{}, r{}, {}\n",
                    reg(&mut rng),
                    reg(&mut rng),
                    rng.gen_range(-512..512)
                ));
            }
            60..=69 => {
                // Shift by a small immediate (keeps values bounded-ish).
                let ops = ["slli", "srli", "srai"];
                let op = ops[rng.gen_range(0..ops.len())];
                body.push_str(&format!(
                    "            {op} r{}, r{}, {}\n",
                    reg(&mut rng),
                    reg(&mut rng),
                    rng.gen_range(0..16)
                ));
            }
            70..=76 => {
                // Multiply (multi-cycle path).
                body.push_str(&format!(
                    "            mul r{}, r{}, r{}\n",
                    reg(&mut rng),
                    reg(&mut rng),
                    reg(&mut rng)
                ));
            }
            77..=86 => {
                // Scratch-buffer load (address masked into the buffer).
                let a = reg(&mut rng);
                let d = reg(&mut rng);
                body.push_str(&format!(
                    "            andi r22, r{a}, 60\n            add r22, r22, r21\n            lw r{d}, 0(r22)\n"
                ));
            }
            87..=93 => {
                // Scratch-buffer store.
                let a = reg(&mut rng);
                let v = reg(&mut rng);
                body.push_str(&format!(
                    "            andi r22, r{a}, 60\n            add r22, r22, r21\n            sw r{v}, 0(r22)\n"
                ));
            }
            _ => {
                // Forward branch over one instruction (always terminates).
                let c = reg(&mut rng);
                let l = fwd_label;
                fwd_label += 1;
                body.push_str(&format!(
                    "            andi r23, r{c}, 1\n            beq r23, r0, fb{l}\n            addi r20, r20, 1\n        fb{l}:\n"
                ));
            }
        }
    }

    let asm = format!(
        "
        ; random program (seed {seed}, block {block_len})
            li r20, 0
            la r21, scratch
            li r2, 3
            li r3, 5
            li r4, 7
            li r5, 11
            li r6, 13
            li r7, 17
            li r8, 19
            li r9, 23
            li r1, 50
        loop:
{body}
            ; fold the work registers into the checksum
            add r20, r20, r2
            xor r20, r20, r5
            add r20, r20, r9
            addi r1, r1, -1
            bne r1, r0, loop
            li r10, 0
            andi r11, r20, 8191
            syscall
        scratch:
            .space 64
        "
    );
    Workload::new(format!("random/{seed}"), asm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minirisc::{Iss, SparseMemory};

    #[test]
    fn random_programs_terminate_deterministically() {
        for seed in 0..10 {
            let w = random_program(seed, 30);
            let p = w.program();
            let mut a = Iss::with_program(SparseMemory::new(), &p);
            a.run(10_000_000).expect("terminates");
            let mut b = Iss::with_program(SparseMemory::new(), &p);
            b.run(10_000_000).expect("terminates");
            assert_eq!(a.exit_code, b.exit_code);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_program(1, 40).asm;
        let b = random_program(2, 40).asm;
        assert_ne!(a, b);
    }
}
