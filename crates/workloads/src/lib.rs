//! # workloads — benchmark programs for the OSM reproduction
//!
//! The paper evaluates on MediaBench (gsm, g721, mpeg2 encoders/decoders),
//! a SPECint 2000 mix, and "40 small kernel loops" used to diagnose timing
//! mismatches. Those binaries cannot be run on MiniRISC-32, so this crate
//! provides synthetic stand-ins with the same *instruction-class mixes*
//! (multiply-heavy filters, branchy quantizers, memory-bound transforms),
//! which is what the timing experiments actually exercise — see `DESIGN.md`
//! for the substitution argument.
//!
//! Every workload is MiniRISC assembly that ends in an exit syscall whose
//! code is a checksum, so functional correctness is checkable on every
//! simulator.
//!
//! ```
//! use minirisc::{Iss, SparseMemory};
//! use workloads::mediabench;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let gsm_dec = &mediabench()[0];
//! let mut iss = Iss::with_program(SparseMemory::new(), &gsm_dec.program());
//! iss.run(10_000_000)?;
//! assert!(iss.halted);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod kernels40;
mod mediabench;
mod random;
mod specint;

pub use kernels40::kernels40;
pub use mediabench::{mediabench, mediabench_scaled};
pub use random::random_program;
pub use specint::{specint_mix, specint_scaled};

use minirisc::{assemble, Program};

/// A named benchmark program in source form.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Benchmark name (e.g. `gsm/dec`).
    pub name: String,
    /// MiniRISC assembly source.
    pub asm: String,
}

impl Workload {
    /// Creates a workload.
    pub fn new(name: impl Into<String>, asm: impl Into<String>) -> Self {
        Workload {
            name: name.into(),
            asm: asm.into(),
        }
    }

    /// Assembles the workload at the conventional base address.
    ///
    /// # Panics
    /// Panics if the source does not assemble — workload sources are
    /// generated and must be valid by construction.
    pub fn program(&self) -> Program {
        assemble(&self.asm, 0x1000)
            .unwrap_or_else(|e| panic!("workload `{}` failed to assemble: {e}", self.name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minirisc::{Iss, SparseMemory};

    /// Every shipped workload must assemble, run on the ISS, and halt.
    #[test]
    fn all_workloads_run_on_the_iss() {
        let mut all = mediabench();
        all.extend(kernels40());
        all.push(specint_mix());
        for w in &all {
            let p = w.program();
            let mut iss = Iss::with_program(SparseMemory::new(), &p);
            let steps = iss
                .run(20_000_000)
                .unwrap_or_else(|e| panic!("workload `{}` failed: {e}", w.name));
            assert!(steps > 0, "workload `{}` did nothing", w.name);
            assert!(iss.halted);
        }
    }

    #[test]
    fn workload_count_matches_paper() {
        assert_eq!(mediabench().len(), 6);
        assert_eq!(kernels40().len(), 40);
    }

    #[test]
    fn kernels_have_unique_names() {
        let ks = kernels40();
        let mut names: Vec<_> = ks.iter().map(|k| k.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 40);
    }
}
