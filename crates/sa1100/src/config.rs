//! Configuration and result types shared by the OSM model and the reference
//! simulator, so the two can be compared field by field.

use memsys::MemSystemConfig;

/// Timing configuration of the StrongARM-like core.
#[derive(Debug, Clone, Copy)]
pub struct SaConfig {
    /// Memory subsystem geometry and latencies.
    pub mem: MemSystemConfig,
    /// Enable the forwarding (bypass) network.
    pub forwarding: bool,
    /// Extra execute-stage occupancy of a multiply beyond 1 cycle.
    pub mul_extra: u32,
    /// Extra execute-stage occupancy of a divide/remainder beyond 1 cycle.
    pub div_extra: u32,
    /// Number of OSM instances (in-flight operation slots). Must exceed the
    /// pipeline depth (5) for full throughput.
    pub osm_count: usize,
    /// Deterministic "DRAM refresh" stall inserted by the *hardware proxy*
    /// every this many cycles (0 = never). Used only by the reference
    /// simulator when it stands in for the iPAQ hardware of Table 1; it
    /// models timing detail absent from both micro-architecture models.
    pub refresh_interval: u64,
    /// The *hardware proxy* pays one extra refetch cycle on every `N`-th
    /// taken branch (0 = never). Only the reference simulator honours it —
    /// it stands in for branch-unit detail the micro-architecture models
    /// abstract away, making branch-dense benchmarks deviate more (the
    /// paper's Table 1 spread).
    pub hw_branch_stall_every: u32,
}

impl SaConfig {
    /// The configuration used by the paper-reproduction experiments.
    pub fn paper() -> Self {
        SaConfig {
            mem: MemSystemConfig::strongarm_like(),
            forwarding: true,
            mul_extra: 2,
            div_extra: 16,
            osm_count: 8,
            refresh_interval: 0,
            hw_branch_stall_every: 0,
        }
    }

    /// Small caches — more misses, good for exercising stall paths in tests.
    pub fn tiny_mem() -> Self {
        SaConfig {
            mem: memsys::MemSystemConfig::tiny(),
            ..Self::paper()
        }
    }
}

impl Default for SaConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Outcome of running a program on either simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimResult {
    /// Total cycles simulated until the pipeline drained.
    pub cycles: u64,
    /// Retired (architecturally completed) instructions.
    pub retired: u64,
    /// Squashed wrong-path operations.
    pub squashed: u64,
    /// Program exit code.
    pub exit_code: u32,
    /// Program output bytes.
    pub output: Vec<u8>,
    /// Instruction-cache misses.
    pub icache_misses: u64,
    /// Data-cache misses.
    pub dcache_misses: u64,
}

impl SimResult {
    /// Cycles per retired instruction.
    pub fn cpi(&self) -> f64 {
        if self.retired == 0 {
            0.0
        } else {
            self.cycles as f64 / self.retired as f64
        }
    }

    /// Output as lossy UTF-8.
    pub fn output_string(&self) -> String {
        String::from_utf8_lossy(&self.output).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpi_handles_zero() {
        let r = SimResult {
            cycles: 10,
            retired: 0,
            squashed: 0,
            exit_code: 0,
            output: Vec::new(),
            icache_misses: 0,
            dcache_misses: 0,
        };
        assert_eq!(r.cpi(), 0.0);
        let r = SimResult { retired: 5, ..r };
        assert_eq!(r.cpi(), 2.0);
    }

    #[test]
    fn presets_differ_in_cache_size() {
        assert!(SaConfig::paper().mem.icache.capacity() > SaConfig::tiny_mem().mem.icache.capacity());
    }
}
