//! # sa1100 — the StrongARM case study (paper §5.1)
//!
//! Two cycle-accurate simulators of the same StrongARM-like 5-stage core
//! running MiniRISC-32:
//!
//! * [`SaOsmSim`] — built on the OSM formalism (`osm-core`): stages,
//!   register file + forwarding network, multiplier and reset manager are
//!   token managers; operations are state machines following Fig. 6 of the
//!   paper.
//! * [`RefSim`] — an independent hand-sequenced pipeline simulator in the
//!   SimpleScalar style, used as the validation ground truth ("iPAQ" stand-
//!   in) and as the speed baseline.
//!
//! Both share the functional ISA layer (`minirisc`) and memory timing
//! models (`memsys`) but no scheduling code, so their cycle-count agreement
//! validates the OSM model the way Table 1 of the paper does.
//!
//! [`SmtSim`] extends the OSM model to two hardware threads (paper §6):
//! thread tags become part of the register-token identifiers and drive the
//! fetch-arbitration ranking.
//!
//! ```
//! use minirisc::assemble;
//! use sa1100::{SaConfig, SaOsmSim, RefSim};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble("li r11, 9\nli r10, 0\nsyscall\n", 0x1000)?;
//! let osm = SaOsmSim::new(SaConfig::paper(), &program).run_to_halt(10_000)?;
//! let reference = RefSim::new(SaConfig::paper(), &program).run_to_halt(10_000);
//! assert_eq!(osm.exit_code, 9);
//! assert_eq!(osm.cycles, reference.cycles);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod forward;
mod osm_model;
mod reference;
mod smt;

pub use config::{SaConfig, SimResult};
pub use forward::{RegForwardFile, UPDATE_BIT};
pub use osm_model::{build_spec, SaManagers, SaOsmSim, SaShared, S_DEST, S_MULT, S_SRC1, S_SRC2};
pub use reference::RefSim;
pub use smt::{SmtResult, SmtShared, SmtSim, SmtThreadResult};
