//! A two-thread SMT variant of the StrongARM pipeline — the paper's
//! multithreading extension (§6): "each OSM carries a tag indicating the
//! thread that it belongs to. The tags are used as part of the identifiers
//! for token transactions and may contribute to the ranking of the OSMs."
//!
//! Both points are taken literally:
//!
//! * one [`RegForwardFile`] serves both threads; thread `t`'s register `r`
//!   is identifier `t * 64 + r` — the tag is part of the token identifier;
//! * fetch arbitration is a tag-aware ranking policy: among idle OSMs the
//!   cycle's preferred thread ranks first (round-robin), while in-flight
//!   operations keep ordinary age order.
//!
//! The pipeline stages, multiplier and caches are *shared* (true SMT): one
//! thread's bubbles (taken-branch squashes, data-hazard stalls) are filled
//! by the other thread's operations.

use crate::config::SaConfig;
use crate::forward::RegForwardFile;
use minirisc::{
    decode, effective_address, execute, CpuState, Instr, InstrClass, Memory, Outcome, Program,
    Reg, SparseMemory,
};
use memsys::MemSystem;
use osm_core::{
    Behavior, Edge, ExclusivePool, FnRanker, HardwareLayer, IdentExpr, Machine, ManagerId,
    ManagerTable, ModelError, OsmId, OsmView, ResetManager, RestartPolicy, SlotId, SpecBuilder,
    StateMachineSpec, TokenIdent, TransitionCtx, IDLE_AGE,
};
use std::sync::Arc;

const S_SRC1: SlotId = SlotId(0);
const S_SRC2: SlotId = SlotId(1);
const S_DEST: SlotId = SlotId(2);
const S_MULT: SlotId = SlotId(3);

/// Per-thread architectural and front-end state.
#[derive(Debug)]
struct ThreadState {
    cpu: CpuState,
    next_fetch_pc: u32,
    stop_fetch: bool,
    halted: bool,
    exit_code: u32,
    output: Vec<u8>,
    young: Vec<OsmId>,
    retired: u64,
    squashed: u64,
}

impl ThreadState {
    fn new(entry: u32) -> Self {
        ThreadState {
            cpu: CpuState::new(entry),
            next_fetch_pc: entry,
            stop_fetch: false,
            halted: false,
            exit_code: 0,
            output: Vec::new(),
            young: Vec::new(),
            retired: 0,
            squashed: 0,
        }
    }
}

/// Shared hardware state of the SMT core.
#[derive(Debug)]
pub struct SmtShared {
    threads: [ThreadState; 2],
    /// Shared functional memory (both programs loaded at distinct bases).
    pub mem: SparseMemory,
    /// Shared caches and TLBs.
    pub memsys: MemSystem,
    /// Thread preferred by this cycle's fetch arbitration.
    pub preferred: u64,
    fetch_timer: u32,
    bstage_timer: u32,
    mult_timer: u32,
    ids: SmtManagers,
    cfg: SaConfig,
}

#[derive(Debug, Clone, Copy)]
struct SmtManagers {
    mf: ManagerId,
    md: ManagerId,
    me: ManagerId,
    mb: ManagerId,
    mw: ManagerId,
    rff: ManagerId,
    mult: ManagerId,
    reset: ManagerId,
}

impl HardwareLayer for SmtShared {
    fn clock(&mut self, cycle: u64, managers: &mut ManagerTable) {
        self.preferred = cycle % 2;
        let pool: &mut ExclusivePool = managers.downcast_mut(self.ids.mf);
        pool.block_release(0, self.fetch_timer > 0);
        self.fetch_timer = self.fetch_timer.saturating_sub(1);
        let pool: &mut ExclusivePool = managers.downcast_mut(self.ids.mb);
        pool.block_release(0, self.bstage_timer > 0);
        self.bstage_timer = self.bstage_timer.saturating_sub(1);
        let pool: &mut ExclusivePool = managers.downcast_mut(self.ids.mult);
        pool.block_release(0, self.mult_timer > 0);
        self.mult_timer = self.mult_timer.saturating_sub(1);
    }
}

fn build_spec(ids: SmtManagers) -> Arc<StateMachineSpec> {
    let mut b = SpecBuilder::new("smt-op");
    let i = b.state("I");
    let f = b.state("F");
    let d = b.state("D");
    let e = b.state("E");
    let bb = b.state("B");
    let w = b.state("W");
    b.initial(i);
    b.edge(i, f).named("fetch").allocate(ids.mf, IdentExpr::Const(0));
    b.edge(f, i)
        .named("reset_f")
        .priority(10)
        .inquire(ids.reset, IdentExpr::Const(0))
        .discard_all();
    b.edge(f, d)
        .named("decode")
        .release(ids.mf, IdentExpr::AnyHeld)
        .allocate(ids.md, IdentExpr::Const(0));
    b.edge(d, i)
        .named("reset_d")
        .priority(10)
        .inquire(ids.reset, IdentExpr::Const(0))
        .discard_all();
    b.edge(d, e)
        .named("issue")
        .release(ids.md, IdentExpr::AnyHeld)
        .allocate(ids.me, IdentExpr::Const(0))
        .allocate(ids.mult, IdentExpr::Slot(S_MULT))
        .inquire(ids.rff, IdentExpr::Slot(S_SRC1))
        .inquire(ids.rff, IdentExpr::Slot(S_SRC2))
        .allocate(ids.rff, IdentExpr::Slot(S_DEST));
    b.edge(e, bb)
        .named("mem")
        .release(ids.me, IdentExpr::AnyHeld)
        .release(ids.mult, IdentExpr::Slot(S_MULT))
        .allocate(ids.mb, IdentExpr::Const(0));
    b.edge(bb, w)
        .named("wb")
        .release(ids.mb, IdentExpr::AnyHeld)
        .allocate(ids.mw, IdentExpr::Const(0));
    b.edge(w, i)
        .named("retire")
        .release(ids.mw, IdentExpr::AnyHeld)
        .release(ids.rff, IdentExpr::Slot(S_DEST));
    b.build().expect("static spec is valid")
}

/// The tag is part of every register-token identifier (§6).
fn thread_reg(tag: u64, flat: usize) -> usize {
    tag as usize * 64 + flat
}

#[derive(Debug, Default)]
struct SmtOp {
    pc: u32,
    instr: Instr,
    mem_addr: Option<u32>,
    is_halting: bool,
}

impl Behavior<SmtShared> for SmtOp {
    fn edge_enabled(&self, edge: &Edge, view: &OsmView<'_>, shared: &SmtShared) -> bool {
        edge.name != "fetch" || !shared.threads[view.tag as usize].stop_fetch
    }

    fn on_transition(&mut self, edge: &Edge, ctx: &mut TransitionCtx<'_, SmtShared>) {
        let tag = ctx.tag as usize;
        match edge.name.as_str() {
            "fetch" => {
                let thread = &mut ctx.shared.threads[tag];
                self.pc = thread.next_fetch_pc;
                thread.next_fetch_pc = thread.next_fetch_pc.wrapping_add(4);
                self.is_halting = false;
                self.mem_addr = None;
                thread.young.push(ctx.osm);
                let penalty = ctx.shared.memsys.fetch_penalty(self.pc);
                ctx.shared.fetch_timer = penalty;
            }
            "decode" => {
                let word = ctx.shared.mem.read_u32(self.pc);
                self.instr = decode(word).unwrap_or(Instr::NOP);
                let sources = self.instr.sources();
                let tag = ctx.tag;
                let src = |k: usize| {
                    sources
                        .get(k)
                        .map(|r| RegForwardFile::value_ident(thread_reg(tag, r.flat_index())))
                        .unwrap_or(TokenIdent::NONE)
                };
                ctx.set_slot(S_SRC1, src(0));
                ctx.set_slot(S_SRC2, src(1));
                let dest = self
                    .instr
                    .dest()
                    .map(|r| RegForwardFile::update_ident(thread_reg(ctx.tag, r.flat_index())))
                    .unwrap_or(TokenIdent::NONE);
                ctx.set_slot(S_DEST, dest);
                let uses_mult = matches!(
                    self.instr.class(),
                    InstrClass::IntMul | InstrClass::IntDiv
                );
                ctx.set_slot(
                    S_MULT,
                    if uses_mult {
                        TokenIdent(0)
                    } else {
                        TokenIdent::NONE
                    },
                );
            }
            "issue" => {
                let osm = ctx.osm;
                ctx.shared.threads[tag].young.retain(|o| *o != osm);
                // Execute against this thread's architectural state.
                let (threads, mem) = (&mut ctx.shared.threads, &mut ctx.shared.mem);
                let thread = &mut threads[tag];
                self.mem_addr = effective_address(self.instr, &thread.cpu);
                thread.cpu.pc = self.pc;
                let outcome = execute(self.instr, &mut thread.cpu, mem);
                match outcome {
                    Outcome::Next => {}
                    Outcome::Taken(target) => {
                        thread.next_fetch_pc = target;
                        let young = thread.young.clone();
                        let reset: &mut ResetManager =
                            ctx.managers.downcast_mut(ctx.shared.ids.reset);
                        for osm in young {
                            reset.arm(osm);
                        }
                    }
                    Outcome::Halt => {
                        self.is_halting = true;
                        thread.stop_fetch = true;
                        let young = thread.young.clone();
                        let reset: &mut ResetManager =
                            ctx.managers.downcast_mut(ctx.shared.ids.reset);
                        for osm in young {
                            reset.arm(osm);
                        }
                    }
                    Outcome::Syscall => {
                        let nr = thread.cpu.gpr(Reg(10));
                        let arg = thread.cpu.gpr(Reg(11));
                        match nr {
                            minirisc::syscalls::EXIT => {
                                self.is_halting = true;
                                thread.exit_code = arg;
                                thread.stop_fetch = true;
                                let young = thread.young.clone();
                                let reset: &mut ResetManager =
                                    ctx.managers.downcast_mut(ctx.shared.ids.reset);
                                for osm in young {
                                    reset.arm(osm);
                                }
                            }
                            minirisc::syscalls::PUTCHAR => thread.output.push(arg as u8),
                            minirisc::syscalls::PUTUINT => {
                                thread.output.extend_from_slice(arg.to_string().as_bytes())
                            }
                            _ => {
                                self.is_halting = true;
                                thread.stop_fetch = true;
                            }
                        }
                    }
                }
                match self.instr.class() {
                    InstrClass::IntMul => ctx.shared.mult_timer = ctx.shared.cfg.mul_extra,
                    InstrClass::IntDiv => ctx.shared.mult_timer = ctx.shared.cfg.div_extra,
                    _ => {}
                }
                if self.instr.class() != InstrClass::Load {
                    if let Some(dest) = self.instr.dest() {
                        let rff: &mut RegForwardFile =
                            ctx.managers.downcast_mut(ctx.shared.ids.rff);
                        rff.mark_ready(thread_reg(ctx.tag, dest.flat_index()));
                    }
                }
            }
            "mem" => {
                if let Some(addr) = self.mem_addr.take() {
                    ctx.shared.bstage_timer = ctx.shared.memsys.data_penalty(addr);
                }
            }
            "wb" => {
                if self.instr.class() == InstrClass::Load {
                    if let Some(dest) = self.instr.dest() {
                        let rff: &mut RegForwardFile =
                            ctx.managers.downcast_mut(ctx.shared.ids.rff);
                        rff.mark_ready(thread_reg(ctx.tag, dest.flat_index()));
                    }
                }
            }
            "retire" => {
                let thread = &mut ctx.shared.threads[tag];
                thread.retired += 1;
                if self.is_halting {
                    thread.halted = true;
                }
            }
            "reset_f" | "reset_d" => {
                let osm = ctx.osm;
                let thread = &mut ctx.shared.threads[tag];
                thread.young.retain(|o| *o != osm);
                thread.squashed += 1;
                if edge.name == "reset_f" {
                    ctx.shared.fetch_timer = 0;
                    let pool: &mut ExclusivePool = ctx.managers.downcast_mut(ctx.shared.ids.mf);
                    pool.block_release(0, false);
                }
                let reset: &mut ResetManager = ctx.managers.downcast_mut(ctx.shared.ids.reset);
                reset.disarm(osm);
            }
            other => unreachable!("unknown edge `{other}`"),
        }
    }
}

/// Per-thread results of an SMT run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmtThreadResult {
    /// Retired instructions.
    pub retired: u64,
    /// Squashed wrong-path operations.
    pub squashed: u64,
    /// Exit code.
    pub exit_code: u32,
    /// Output bytes.
    pub output: Vec<u8>,
}

/// Result of an SMT run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmtResult {
    /// Cycles until both threads halted.
    pub cycles: u64,
    /// Per-thread results.
    pub threads: [SmtThreadResult; 2],
}

/// The two-thread SMT StrongARM simulator.
pub struct SmtSim {
    machine: Machine<SmtShared>,
}

impl std::fmt::Debug for SmtSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmtSim")
            .field("cycle", &self.machine.cycle())
            .finish()
    }
}

impl SmtSim {
    /// Builds the SMT core with one program per thread (the programs must
    /// occupy disjoint address ranges — both are loaded into the shared
    /// memory).
    pub fn new(cfg: SaConfig, programs: [&Program; 2]) -> Self {
        let mut mem = SparseMemory::new();
        programs[0].load_into(&mut mem);
        programs[1].load_into(&mut mem);
        let shared = SmtShared {
            threads: [
                ThreadState::new(programs[0].entry),
                ThreadState::new(programs[1].entry),
            ],
            mem,
            memsys: MemSystem::new(cfg.mem),
            preferred: 0,
            fetch_timer: 0,
            bstage_timer: 0,
            mult_timer: 0,
            ids: SmtManagers {
                mf: ManagerId(u32::MAX),
                md: ManagerId(u32::MAX),
                me: ManagerId(u32::MAX),
                mb: ManagerId(u32::MAX),
                mw: ManagerId(u32::MAX),
                rff: ManagerId(u32::MAX),
                mult: ManagerId(u32::MAX),
                reset: ManagerId(u32::MAX),
            },
            cfg,
        };
        let mut machine = Machine::new(shared);
        let ids = SmtManagers {
            mf: machine.add_manager(ExclusivePool::new("fetch", 1)),
            md: machine.add_manager(ExclusivePool::new("decode", 1)),
            me: machine.add_manager(ExclusivePool::new("execute", 1)),
            mb: machine.add_manager(ExclusivePool::new("buffer", 1)),
            mw: machine.add_manager(ExclusivePool::new("writeback", 1)),
            // 128 registers: thread tag selects the upper half (§6).
            rff: machine.add_manager(RegForwardFile::new("regfile+fwd", 128, cfg.forwarding)),
            mult: machine.add_manager(ExclusivePool::new("multiplier", 1)),
            reset: machine.add_manager(ResetManager::new("reset")),
        };
        machine.shared.ids = ids;
        let spec = build_spec(ids);
        for tag in 0..2u64 {
            for _ in 0..cfg.osm_count.max(6) / 2 + 1 {
                machine.add_osm_tagged(&spec, SmtOp::default(), tag);
            }
        }
        // Tag-aware ranking: in-flight ops by age; among idle OSMs the
        // preferred thread of the cycle fetches first (round-robin).
        machine.set_ranker(FnRanker(Box::new(
            |view: &OsmView<'_>, shared: &SmtShared| {
                if view.age != IDLE_AGE {
                    view.age
                } else if view.tag == shared.preferred {
                    IDLE_AGE - 1
                } else {
                    IDLE_AGE
                }
            },
        )));
        machine.set_restart_policy(RestartPolicy::NoRestart);
        SmtSim { machine }
    }

    /// The underlying machine.
    pub fn machine(&self) -> &Machine<SmtShared> {
        &self.machine
    }

    /// Mutable access to the underlying machine (scheduler-mode selection,
    /// observer installation, A/B experiments).
    pub fn machine_mut(&mut self) -> &mut Machine<SmtShared> {
        &mut self.machine
    }

    /// Runs until both threads halt or `max_cycles` pass.
    ///
    /// # Errors
    /// Propagates [`ModelError`] (deadlock).
    pub fn run_to_halt(&mut self, max_cycles: u64) -> Result<SmtResult, ModelError> {
        while !(self.machine.shared.threads[0].halted && self.machine.shared.threads[1].halted)
            && self.machine.cycle() < max_cycles
        {
            self.machine.step()?;
        }
        let t = &self.machine.shared.threads;
        Ok(SmtResult {
            cycles: self.machine.cycle(),
            threads: [
                SmtThreadResult {
                    retired: t[0].retired,
                    squashed: t[0].squashed,
                    exit_code: t[0].exit_code,
                    output: t[0].output.clone(),
                },
                SmtThreadResult {
                    retired: t[1].retired,
                    squashed: t[1].squashed,
                    exit_code: t[1].exit_code,
                    output: t[1].output.clone(),
                },
            ],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::osm_model::SaOsmSim;
    use minirisc::assemble;

    const LOOP_A: &str = "
        li r1, 60
        li r2, 0
    loop:
        add r2, r2, r1
        addi r1, r1, -1
        bne r1, r0, loop
        li r10, 0
        andi r11, r2, 8191
        syscall
    ";

    const LOOP_B: &str = "
        li r1, 40
        li r3, 1
    loop:
        mul r3, r3, r1
        andi r3, r3, 1023
        addi r1, r1, -1
        bne r1, r0, loop
        li r10, 0
        add r11, r3, r0
        syscall
    ";

    fn programs() -> (minirisc::Program, minirisc::Program) {
        (
            assemble(LOOP_A, 0x1000).unwrap(),
            assemble(LOOP_B, 0x4000).unwrap(),
        )
    }

    #[test]
    fn both_threads_complete_with_correct_results() {
        let (pa, pb) = programs();
        let mut smt = SmtSim::new(SaConfig::paper(), [&pa, &pb]);
        let r = smt.run_to_halt(1_000_000).expect("no deadlock");

        // Single-thread golden results.
        let a = SaOsmSim::new(SaConfig::paper(), &pa)
            .run_to_halt(1_000_000)
            .expect("runs");
        let b = SaOsmSim::new(SaConfig::paper(), &pb)
            .run_to_halt(1_000_000)
            .expect("runs");
        assert_eq!(r.threads[0].exit_code, a.exit_code);
        assert_eq!(r.threads[1].exit_code, b.exit_code);
        assert_eq!(r.threads[0].retired, a.retired);
        assert_eq!(r.threads[1].retired, b.retired);
    }

    #[test]
    fn smt_beats_back_to_back_execution() {
        let (pa, pb) = programs();
        let mut smt = SmtSim::new(SaConfig::paper(), [&pa, &pb]);
        let r = smt.run_to_halt(1_000_000).expect("no deadlock");
        let a = SaOsmSim::new(SaConfig::paper(), &pa)
            .run_to_halt(1_000_000)
            .expect("runs");
        let b = SaOsmSim::new(SaConfig::paper(), &pb)
            .run_to_halt(1_000_000)
            .expect("runs");
        // Interleaving fills each thread's squash/stall bubbles with the
        // other thread's work.
        assert!(
            r.cycles < a.cycles + b.cycles,
            "SMT {} vs serial {}",
            r.cycles,
            a.cycles + b.cycles
        );
    }

    #[test]
    fn threads_are_isolated_through_tagged_identifiers() {
        // Both programs hammer the same architectural registers; tags keep
        // their tokens (and values) apart.
        let (pa, pb) = programs();
        let mut smt = SmtSim::new(SaConfig::paper(), [&pa, &pb]);
        let r = smt.run_to_halt(1_000_000).expect("no deadlock");
        assert_eq!(r.threads[0].exit_code, 1830); // sum 1..60
        assert_ne!(r.threads[0].exit_code, r.threads[1].exit_code);
    }

    #[test]
    fn deterministic() {
        let (pa, pb) = programs();
        let a = SmtSim::new(SaConfig::paper(), [&pa, &pb])
            .run_to_halt(1_000_000)
            .expect("runs");
        let b = SmtSim::new(SaConfig::paper(), [&pa, &pb])
            .run_to_halt(1_000_000)
            .expect("runs");
        assert_eq!(a, b);
    }
}
