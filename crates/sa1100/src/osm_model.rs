//! The OSM-based StrongARM micro-architecture model (paper §5.1, Figs. 5/6).
//!
//! Five pipeline stages — fetch (F), decode (D), execute (E), buffer (B),
//! write-back (W) — each an [`ExclusivePool`] with one occupancy token; the
//! combined register file + forwarding network ([`RegForwardFile`]); a
//! multiplier module; and a reset manager for control hazards. The memory
//! subsystem (caches, TLBs, bus) lives purely in the hardware layer and has
//! no TMI, exactly as in the paper.
//!
//! Timing idioms used (paper §4):
//! * structure hazards — stage occupancy tokens;
//! * data hazards — register-update tokens + value-token inquiries, with the
//!   forwarding network answering inquiries early;
//! * variable latency — cache-miss penalties block the stage token's release;
//! * control hazards — high-priority reset edges gated by the reset manager.

use crate::config::{SaConfig, SimResult};
use crate::forward::RegForwardFile;
use minirisc::{
    Memory,
    decode, effective_address, encode, execute, CpuState, Instr, InstrClass, Outcome, Program,
    Reg, SparseMemory,
};
use memsys::MemSystem;
use osm_core::{
    export, Behavior, BehaviorSnapshot, ByteReader, ByteWriter, Checkpoint, Edge, ExclusivePool,
    FaultHandle, FaultInjector, FaultPlan, HardwareLayer, IdentExpr, Machine, ManagerId,
    ManagerTable, MetricsReport, ModelError, OsmView, ResetManager, RestartPolicy, SlotId,
    SpecBuilder, StallHistogram, StateMachineSpec, TokenIdent, TransitionCtx,
};
use std::sync::Arc;

/// Identifier slot: first source operand (value token).
pub const S_SRC1: SlotId = SlotId(0);
/// Identifier slot: second source operand (value token).
pub const S_SRC2: SlotId = SlotId(1);
/// Identifier slot: destination register (update token).
pub const S_DEST: SlotId = SlotId(2);
/// Identifier slot: multiplier occupancy (set only for mul/div class).
pub const S_MULT: SlotId = SlotId(3);

/// Handles to all token managers of the model.
#[derive(Debug, Clone, Copy)]
pub struct SaManagers {
    /// Fetch-stage occupancy.
    pub mf: ManagerId,
    /// Decode-stage occupancy.
    pub md: ManagerId,
    /// Execute-stage occupancy.
    pub me: ManagerId,
    /// Buffer-stage occupancy.
    pub mb: ManagerId,
    /// Write-back-stage occupancy.
    pub mw: ManagerId,
    /// Combined register file + forwarding network.
    pub rff: ManagerId,
    /// Multiplier module.
    pub mult: ManagerId,
    /// Reset (squash) manager.
    pub reset: ManagerId,
}

impl Default for SaManagers {
    fn default() -> Self {
        let nil = ManagerId(u32::MAX);
        SaManagers {
            mf: nil,
            md: nil,
            me: nil,
            mb: nil,
            mw: nil,
            rff: nil,
            mult: nil,
            reset: nil,
        }
    }
}

/// What each edge of the spec means (precomputed so the hot path never
/// string-matches edge names).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SaEdgeKind {
    Fetch,
    ResetF,
    ResetD,
    Decode,
    Issue,
    Mem,
    Wb,
    Retire,
}

/// Shared hardware-layer state of the StrongARM model.
///
/// `Clone` exists so [`osm_core::Machine::checkpoint`] can capture the whole
/// hardware layer (CPU state, memories, timers) by value.
#[derive(Debug, Clone)]
pub struct SaShared {
    /// Architectural register state (values live here; the token manager
    /// tracks only in-flight-writer status — a representation choice with
    /// identical transaction semantics to keeping values inside `m_r`).
    pub cpu: CpuState,
    /// Functional memory.
    pub mem: SparseMemory,
    /// Timing memory subsystem (no TMI; hardware layer only).
    pub memsys: MemSystem,
    /// Next PC the fetch stage will fetch from.
    pub next_fetch_pc: u32,
    /// Fetch disabled (after halt/exit reached execute).
    pub stop_fetch: bool,
    /// The halting operation has retired; simulation is complete.
    pub halted: bool,
    /// Exit code (from the exit syscall).
    pub exit_code: u32,
    /// Program output bytes.
    pub output: Vec<u8>,
    /// First right-path anomaly (unknown syscall, undecodable instruction).
    pub error: Option<String>,
    /// Operations currently in F or D (squashable on a control transfer).
    young: Vec<osm_core::OsmId>,
    /// Retired instructions.
    pub retired: u64,
    /// Squashed wrong-path operations.
    pub squashed: u64,
    fetch_timer: u32,
    bstage_timer: u32,
    mult_timer: u32,
    edge_kinds: Vec<SaEdgeKind>,
    ids: SaManagers,
    cfg: SaConfig,
}

impl SaShared {
    fn new(cfg: SaConfig, program: &Program) -> Self {
        let mut mem = SparseMemory::new();
        program.load_into(&mut mem);
        SaShared {
            cpu: CpuState::new(program.entry),
            mem,
            memsys: MemSystem::new(cfg.mem),
            next_fetch_pc: program.entry,
            stop_fetch: false,
            halted: false,
            exit_code: 0,
            output: Vec::new(),
            error: None,
            young: Vec::new(),
            retired: 0,
            squashed: 0,
            fetch_timer: 0,
            bstage_timer: 0,
            mult_timer: 0,
            edge_kinds: Vec::new(),
            ids: SaManagers::default(),
            cfg,
        }
    }

    fn squash_young(&mut self, managers: &mut ManagerTable) {
        let reset: &mut ResetManager = managers.downcast_mut(self.ids.reset);
        for &osm in &self.young {
            reset.arm(osm);
        }
    }

    /// Serializes all mutable hardware-layer state (CPU, memories, fetch
    /// redirection, timers, result counters). Static configuration —
    /// manager ids, edge classification, `SaConfig` — is *not* included;
    /// [`SaShared::decode_state`] takes it from a same-construction template.
    pub fn encode_state(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_bytes(&self.cpu.export_state());
        w.put_bytes(&self.mem.export_state());
        w.put_bytes(&self.memsys.export_state());
        w.put_u32(self.next_fetch_pc);
        w.put_bool(self.stop_fetch);
        w.put_bool(self.halted);
        w.put_u32(self.exit_code);
        w.put_bytes(&self.output);
        match &self.error {
            None => w.put_bool(false),
            Some(e) => {
                w.put_bool(true);
                w.put_str(e);
            }
        }
        w.put_u32(self.young.len() as u32);
        for osm in &self.young {
            w.put_u32(osm.0);
        }
        w.put_u64(self.retired);
        w.put_u64(self.squashed);
        w.put_u32(self.fetch_timer);
        w.put_u32(self.bstage_timer);
        w.put_u32(self.mult_timer);
        w.into_bytes()
    }

    /// Rebuilds shared state from bytes written by
    /// [`SaShared::encode_state`]. `template` must come from a
    /// same-construction simulator: it supplies the static configuration and
    /// the memory-subsystem geometry the encoded state must match.
    pub fn decode_state(bytes: &[u8], template: &SaShared) -> Option<SaShared> {
        let mut r = ByteReader::new(bytes);
        let mut s = template.clone();
        if !s.cpu.import_state(r.take_bytes()?) {
            return None;
        }
        if !s.mem.import_state(r.take_bytes()?) {
            return None;
        }
        if !s.memsys.import_state(r.take_bytes()?) {
            return None;
        }
        s.next_fetch_pc = r.take_u32()?;
        s.stop_fetch = r.take_bool()?;
        s.halted = r.take_bool()?;
        s.exit_code = r.take_u32()?;
        s.output = r.take_bytes()?.to_vec();
        s.error = if r.take_bool()? {
            Some(r.take_str()?.to_string())
        } else {
            None
        };
        let n = r.take_u32()? as usize;
        let mut young = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            young.push(osm_core::OsmId(r.take_u32()?));
        }
        s.young = young;
        s.retired = r.take_u64()?;
        s.squashed = r.take_u64()?;
        s.fetch_timer = r.take_u32()?;
        s.bstage_timer = r.take_u32()?;
        s.mult_timer = r.take_u32()?;
        r.is_done().then_some(s)
    }
}

impl HardwareLayer for SaShared {
    fn clock(&mut self, _cycle: u64, managers: &mut ManagerTable) {
        // Variable latency: while a timer runs, the corresponding stage (or
        // multiplier) refuses to release its token (paper §4).
        let pool: &mut ExclusivePool = managers.downcast_mut(self.ids.mf);
        pool.block_release(0, self.fetch_timer > 0);
        self.fetch_timer = self.fetch_timer.saturating_sub(1);

        let pool: &mut ExclusivePool = managers.downcast_mut(self.ids.mb);
        pool.block_release(0, self.bstage_timer > 0);
        self.bstage_timer = self.bstage_timer.saturating_sub(1);

        let pool: &mut ExclusivePool = managers.downcast_mut(self.ids.mult);
        pool.block_release(0, self.mult_timer > 0);
        self.mult_timer = self.mult_timer.saturating_sub(1);
    }
}

/// Builds the Fig. 6 state machine over the given managers.
pub fn build_spec(ids: SaManagers) -> Arc<StateMachineSpec> {
    let mut b = SpecBuilder::new("sa1100-op");
    let i = b.state("I");
    let f = b.state("F");
    let d = b.state("D");
    let e = b.state("E");
    let bb = b.state("B");
    let w = b.state("W");
    b.initial(i);

    b.edge(i, f).named("fetch").allocate(ids.mf, IdentExpr::Const(0));
    // Reset edges carry a higher static priority than the normal flow.
    b.edge(f, i)
        .named("reset_f")
        .priority(10)
        .inquire(ids.reset, IdentExpr::Const(0))
        .discard_all();
    b.edge(f, d)
        .named("decode")
        .release(ids.mf, IdentExpr::AnyHeld)
        .allocate(ids.md, IdentExpr::Const(0));
    b.edge(d, i)
        .named("reset_d")
        .priority(10)
        .inquire(ids.reset, IdentExpr::Const(0))
        .discard_all();
    b.edge(d, e)
        .named("issue")
        .release(ids.md, IdentExpr::AnyHeld)
        .allocate(ids.me, IdentExpr::Const(0))
        .allocate(ids.mult, IdentExpr::Slot(S_MULT))
        .inquire(ids.rff, IdentExpr::Slot(S_SRC1))
        .inquire(ids.rff, IdentExpr::Slot(S_SRC2))
        .allocate(ids.rff, IdentExpr::Slot(S_DEST));
    b.edge(e, bb)
        .named("mem")
        .release(ids.me, IdentExpr::AnyHeld)
        .release(ids.mult, IdentExpr::Slot(S_MULT))
        .allocate(ids.mb, IdentExpr::Const(0));
    b.edge(bb, w)
        .named("wb")
        .release(ids.mb, IdentExpr::AnyHeld)
        .allocate(ids.mw, IdentExpr::Const(0));
    b.edge(w, i)
        .named("retire")
        .release(ids.mw, IdentExpr::AnyHeld)
        .release(ids.rff, IdentExpr::Slot(S_DEST));
    b.build().expect("static spec is valid")
}

/// Per-operation behavior: decodes, initializes token identifiers, executes
/// semantics at E, and drives the hazard idioms.
#[derive(Debug, Default, Clone)]
struct SaOp {
    pc: u32,
    instr: Instr,
    mem_addr: Option<u32>,
    is_halting: bool,
}

impl SaOp {
    fn handle_outcome(
        &mut self,
        outcome: Outcome,
        ctx: &mut TransitionCtx<'_, SaShared>,
    ) {
        match outcome {
            Outcome::Next => {}
            Outcome::Taken(target) => {
                ctx.shared.next_fetch_pc = target;
                ctx.shared.squash_young(ctx.managers);
            }
            Outcome::Halt => {
                self.is_halting = true;
                ctx.shared.stop_fetch = true;
                ctx.shared.squash_young(ctx.managers);
            }
            Outcome::Syscall => {
                let nr = ctx.shared.cpu.gpr(Reg(10));
                let arg = ctx.shared.cpu.gpr(Reg(11));
                match nr {
                    minirisc::syscalls::EXIT => {
                        self.is_halting = true;
                        ctx.shared.exit_code = arg;
                        ctx.shared.stop_fetch = true;
                        ctx.shared.squash_young(ctx.managers);
                    }
                    minirisc::syscalls::PUTCHAR => ctx.shared.output.push(arg as u8),
                    minirisc::syscalls::PUTUINT => ctx
                        .shared
                        .output
                        .extend_from_slice(arg.to_string().as_bytes()),
                    other => {
                        if ctx.shared.error.is_none() {
                            ctx.shared.error =
                                Some(format!("unknown syscall {other} at {:#010x}", self.pc));
                        }
                        self.is_halting = true;
                        ctx.shared.stop_fetch = true;
                        ctx.shared.squash_young(ctx.managers);
                    }
                }
            }
        }
    }
}

fn classify_edges(spec: &StateMachineSpec) -> Vec<SaEdgeKind> {
    spec.edges()
        .map(|e| match e.name.as_str() {
            "fetch" => SaEdgeKind::Fetch,
            "reset_f" => SaEdgeKind::ResetF,
            "reset_d" => SaEdgeKind::ResetD,
            "decode" => SaEdgeKind::Decode,
            "issue" => SaEdgeKind::Issue,
            "mem" => SaEdgeKind::Mem,
            "wb" => SaEdgeKind::Wb,
            "retire" => SaEdgeKind::Retire,
            other => unreachable!("unknown edge `{other}`"),
        })
        .collect()
}

impl Behavior<SaShared> for SaOp {
    fn snapshot(&self) -> BehaviorSnapshot {
        BehaviorSnapshot::of(self.clone())
    }

    fn restore(&mut self, snap: &BehaviorSnapshot) -> bool {
        match snap.downcast::<SaOp>() {
            Some(state) => {
                self.clone_from(state);
                true
            }
            None => false,
        }
    }

    fn encode_snapshot(&self, snap: &BehaviorSnapshot) -> Option<Vec<u8>> {
        let state = snap.downcast::<SaOp>()?;
        let mut w = ByteWriter::new();
        w.put_u32(state.pc);
        w.put_u32(encode(state.instr).ok()?);
        match state.mem_addr {
            None => w.put_bool(false),
            Some(a) => {
                w.put_bool(true);
                w.put_u32(a);
            }
        }
        w.put_bool(state.is_halting);
        Some(w.into_bytes())
    }

    fn decode_snapshot(&self, bytes: &[u8]) -> Option<BehaviorSnapshot> {
        let mut r = ByteReader::new(bytes);
        let pc = r.take_u32()?;
        let instr = decode(r.take_u32()?).ok()?;
        let mem_addr = if r.take_bool()? {
            Some(r.take_u32()?)
        } else {
            None
        };
        let is_halting = r.take_bool()?;
        r.is_done().then(|| {
            BehaviorSnapshot::of(SaOp {
                pc,
                instr,
                mem_addr,
                is_halting,
            })
        })
    }

    fn edge_enabled(&self, edge: &Edge, _view: &OsmView<'_>, shared: &SaShared) -> bool {
        // Fetch stops once the halting operation has executed.
        shared.edge_kinds[edge.id.index()] != SaEdgeKind::Fetch || !shared.stop_fetch
    }

    fn on_transition(&mut self, edge: &Edge, ctx: &mut TransitionCtx<'_, SaShared>) {
        match ctx.shared.edge_kinds[edge.id.index()] {
            SaEdgeKind::Fetch => {
                self.pc = ctx.shared.next_fetch_pc;
                ctx.shared.next_fetch_pc = ctx.shared.next_fetch_pc.wrapping_add(4);
                self.is_halting = false;
                self.mem_addr = None;
                ctx.shared.young.push(ctx.osm);
                let penalty = ctx.shared.memsys.fetch_penalty(self.pc);
                ctx.shared.fetch_timer = penalty;
            }
            SaEdgeKind::Decode => {
                let word = ctx.shared.mem.read_u32(self.pc);
                self.instr = decode(word).unwrap_or(Instr::NOP);
                // Initialize all allocation and inquiry identifiers (§4).
                let sources = self.instr.sources();
                let src_ident = |k: usize| {
                    sources
                        .get(k)
                        .map(|r| RegForwardFile::value_ident(r.flat_index()))
                        .unwrap_or(TokenIdent::NONE)
                };
                ctx.set_slot(S_SRC1, src_ident(0));
                ctx.set_slot(S_SRC2, src_ident(1));
                ctx.set_slot(
                    S_DEST,
                    self.instr
                        .dest()
                        .map(|r| RegForwardFile::update_ident(r.flat_index()))
                        .unwrap_or(TokenIdent::NONE),
                );
                let uses_mult = matches!(
                    self.instr.class(),
                    InstrClass::IntMul | InstrClass::IntDiv
                );
                ctx.set_slot(
                    S_MULT,
                    if uses_mult {
                        TokenIdent(0)
                    } else {
                        TokenIdent::NONE
                    },
                );
            }
            SaEdgeKind::Issue => {
                // The operation leaves the squashable front of the pipeline.
                let osm = ctx.osm;
                ctx.shared.young.retain(|o| *o != osm);
                // Address generation precedes execution (the base register
                // may be overwritten by the instruction itself).
                self.mem_addr = effective_address(self.instr, &ctx.shared.cpu);
                ctx.shared.cpu.pc = self.pc;
                let outcome = execute(self.instr, &mut ctx.shared.cpu, &mut ctx.shared.mem);
                self.handle_outcome(outcome, ctx);
                match self.instr.class() {
                    InstrClass::IntMul => ctx.shared.mult_timer = ctx.shared.cfg.mul_extra,
                    InstrClass::IntDiv => ctx.shared.mult_timer = ctx.shared.cfg.div_extra,
                    _ => {}
                }
                // Non-load results are forwardable as soon as E computes them.
                if self.instr.class() != InstrClass::Load {
                    if let Some(dest) = self.instr.dest() {
                        let rff: &mut RegForwardFile = ctx.managers.downcast_mut(ctx.shared.ids.rff);
                        rff.mark_ready(dest.flat_index());
                    }
                }
            }
            SaEdgeKind::Mem => {
                if let Some(addr) = self.mem_addr.take() {
                    let penalty = ctx.shared.memsys.data_penalty(addr);
                    ctx.shared.bstage_timer = penalty;
                }
            }
            SaEdgeKind::Wb => {
                // Load results become forwardable once the D-cache access in
                // B completes — the classic 1-cycle load-use penalty.
                if self.instr.class() == InstrClass::Load {
                    if let Some(dest) = self.instr.dest() {
                        let rff: &mut RegForwardFile = ctx.managers.downcast_mut(ctx.shared.ids.rff);
                        rff.mark_ready(dest.flat_index());
                    }
                }
            }
            SaEdgeKind::Retire => {
                ctx.shared.retired += 1;
                if self.is_halting {
                    ctx.shared.halted = true;
                }
            }
            kind @ (SaEdgeKind::ResetF | SaEdgeKind::ResetD) => {
                let osm = ctx.osm;
                ctx.shared.young.retain(|o| *o != osm);
                ctx.shared.squashed += 1;
                if kind == SaEdgeKind::ResetF {
                    // Abandon the in-flight instruction fetch.
                    ctx.shared.fetch_timer = 0;
                    let pool: &mut ExclusivePool = ctx.managers.downcast_mut(ctx.shared.ids.mf);
                    pool.block_release(0, false);
                }
                let reset: &mut ResetManager = ctx.managers.downcast_mut(ctx.shared.ids.reset);
                reset.disarm(osm);
            }
        }
    }
}

/// The OSM-based StrongARM simulator.
pub struct SaOsmSim {
    machine: Machine<SaShared>,
    /// Manager handles (exposed for inspection in tests and examples).
    pub ids: SaManagers,
    spec: Arc<StateMachineSpec>,
}

impl std::fmt::Debug for SaOsmSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SaOsmSim")
            .field("cycle", &self.machine.cycle())
            .field("retired", &self.machine.shared.retired)
            .finish()
    }
}

impl SaOsmSim {
    /// Builds the model and loads `program`.
    pub fn new(cfg: SaConfig, program: &Program) -> Self {
        let shared = SaShared::new(cfg, program);
        let mut machine = Machine::new(shared);
        let ids = SaManagers {
            mf: machine.add_manager(ExclusivePool::new("fetch", 1)),
            md: machine.add_manager(ExclusivePool::new("decode", 1)),
            me: machine.add_manager(ExclusivePool::new("execute", 1)),
            mb: machine.add_manager(ExclusivePool::new("buffer", 1)),
            mw: machine.add_manager(ExclusivePool::new("writeback", 1)),
            rff: machine.add_manager(RegForwardFile::new("regfile+fwd", 64, cfg.forwarding)),
            mult: machine.add_manager(ExclusivePool::new("multiplier", 1)),
            reset: machine.add_manager(ResetManager::new("reset")),
        };
        machine.shared.ids = ids;
        let spec = build_spec(ids);
        machine.shared.edge_kinds = classify_edges(&spec);
        for _ in 0..cfg.osm_count.max(6) {
            machine.add_osm(&spec, SaOp::default());
        }
        // The paper's case studies rank by age and skip the outer-loop
        // restart (§5): with seniors served first it changes nothing.
        machine.set_restart_policy(RestartPolicy::NoRestart);
        SaOsmSim { machine, ids, spec }
    }

    /// The underlying machine (for tracing, stats, manager inspection).
    pub fn machine(&self) -> &Machine<SaShared> {
        &self.machine
    }

    /// Mutable access to the underlying machine.
    pub fn machine_mut(&mut self) -> &mut Machine<SaShared> {
        &mut self.machine
    }

    /// The operation state machine spec (Fig. 6).
    pub fn spec(&self) -> &Arc<StateMachineSpec> {
        &self.spec
    }

    /// Advances one cycle.
    ///
    /// # Errors
    /// Propagates [`ModelError`] (deadlock).
    pub fn step(&mut self) -> Result<(), ModelError> {
        self.machine.step().map(|_| ())
    }

    /// Runs until the program halts or `max_cycles` elapse.
    ///
    /// # Errors
    /// Returns [`ModelError`] on deadlock; reaching `max_cycles` is reported
    /// through the result's `cycles == max_cycles` with `halted` false in
    /// the shared state.
    pub fn run_to_halt(&mut self, max_cycles: u64) -> Result<SimResult, ModelError> {
        while !self.machine.shared.halted && self.machine.cycle() < max_cycles {
            self.machine.step()?;
        }
        Ok(self.result())
    }

    /// Captures a full checkpoint of the simulator (OSM states, token
    /// managers, CPU/memory state, timers). Restoring it with
    /// [`SaOsmSim::restore`] replays the continuation cycle-for-cycle.
    ///
    /// # Errors
    /// [`ModelError::SnapshotUnsupported`] if a manager without snapshot
    /// support was installed.
    pub fn checkpoint(&self) -> Result<Checkpoint<SaShared>, ModelError> {
        self.machine.checkpoint()
    }

    /// Rewinds the simulator to `ckpt` (which must come from this
    /// simulator's own [`SaOsmSim::checkpoint`]).
    ///
    /// # Errors
    /// [`ModelError::SnapshotMismatch`] if the checkpoint shape does not
    /// match this machine.
    pub fn restore(&mut self, ckpt: &Checkpoint<SaShared>) -> Result<(), ModelError> {
        self.machine.restore(ckpt)
    }

    /// Serializes a full checkpoint to the versioned, digest-sealed on-disk
    /// byte format (see [`osm_core::CHECKPOINT_MAGIC`]).
    ///
    /// # Errors
    /// Propagates checkpoint errors; [`ModelError::SnapshotUnsupported`] if
    /// any component lacks a byte codec.
    pub fn checkpoint_bytes(&self) -> Result<Vec<u8>, ModelError> {
        let ckpt = self.machine.checkpoint()?;
        let shared_bytes = ckpt.shared().encode_state();
        self.machine.encode_checkpoint(&ckpt, &shared_bytes)
    }

    /// Restores this simulator from bytes written by
    /// [`SaOsmSim::checkpoint_bytes`] on a same-construction simulator.
    ///
    /// # Errors
    /// [`ModelError::SnapshotMismatch`] if the bytes are damaged or were
    /// taken from a differently-configured machine.
    pub fn restore_checkpoint_bytes(&mut self, bytes: &[u8]) -> Result<(), ModelError> {
        let template = &self.machine.shared;
        let ckpt = self
            .machine
            .decode_checkpoint(bytes, |b| SaShared::decode_state(b, template))?;
        self.machine.restore(&ckpt)
    }

    /// Installs a deterministic fault injector in front of manager
    /// `target` (any of the handles in [`SaOsmSim::ids`]) and returns the
    /// operator handle for it.
    pub fn inject_faults(&mut self, target: ManagerId, plan: FaultPlan) -> FaultHandle {
        FaultInjector::install(&mut self.machine.managers, target, plan)
    }

    /// Arms the stall watchdog: if no OSM makes progress for `cycles`
    /// consecutive cycles (see [`osm_core::Machine::set_stall_limit`]),
    /// stepping fails with a diagnosed [`ModelError::Stalled`].
    pub fn set_stall_limit(&mut self, cycles: Option<u64>) {
        self.machine.set_stall_limit(cycles);
    }

    /// Turns on the full observability stack: token-event log, derived
    /// metrics, and stall-cause attribution. Call before the first step for
    /// reports that reconcile exactly with [`osm_core::Stats`].
    pub fn enable_observability(&mut self) {
        self.machine.enable_event_log();
        self.machine.enable_metrics();
        self.machine.enable_stall_attribution();
    }

    /// Structured metrics (state occupancy, manager utilization, throughput
    /// windows), if metrics are enabled.
    pub fn metrics_report(&self) -> Option<MetricsReport> {
        self.machine.metrics_report()
    }

    /// Stall-cause histogram (where the stall cycles went), if stall
    /// attribution is enabled.
    pub fn stall_histogram(&self) -> Option<StallHistogram> {
        self.machine
            .stall_attribution()
            .map(|t| t.histogram(&self.machine.managers))
    }

    /// Chrome `chrome://tracing` / Perfetto JSON of the recorded event log,
    /// if the event log is enabled.
    pub fn chrome_trace(&self) -> Option<String> {
        export::chrome_trace_for(&self.machine)
    }

    /// Textual per-cycle pipeline diagram of cycles `[from, to)`, if the
    /// event log is enabled.
    pub fn pipeline_diagram(&self, from: u64, to: u64) -> Option<String> {
        export::pipeline_diagram_for(&self.machine, from, to)
    }

    /// Snapshot of the current result counters.
    pub fn result(&self) -> SimResult {
        let s = &self.machine.shared;
        SimResult {
            cycles: self.machine.cycle(),
            retired: s.retired,
            squashed: s.squashed,
            exit_code: s.exit_code,
            output: s.output.clone(),
            icache_misses: s.memsys.icache.stats.misses,
            dcache_misses: s.memsys.dcache.stats.misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minirisc::assemble;

    fn run(src: &str, cfg: SaConfig) -> (SimResult, SaOsmSim) {
        let p = assemble(src, 0x1000).expect("assembles");
        let mut sim = SaOsmSim::new(cfg, &p);
        let r = sim.run_to_halt(1_000_000).expect("no deadlock");
        assert!(sim.machine.shared.halted, "program did not halt");
        (r, sim)
    }

    const SUM_LOOP: &str = "
        li r1, 10
        li r2, 0
    loop:
        add r2, r2, r1
        addi r1, r1, -1
        bne r1, r0, loop
        li r10, 0
        add r11, r2, r0
        syscall
    ";

    #[test]
    fn sum_loop_functional_result_matches_iss() {
        let (r, _) = run(SUM_LOOP, SaConfig::paper());
        assert_eq!(r.exit_code, 55);
        // Functional cross-check against the ISS.
        let p = assemble(SUM_LOOP, 0x1000).unwrap();
        let mut iss = minirisc::Iss::with_program(SparseMemory::new(), &p);
        iss.run(100_000).unwrap();
        assert_eq!(iss.exit_code, 55);
        assert_eq!(r.retired, iss.retired);
    }

    #[test]
    fn pipeline_reaches_steady_state_cpi_near_one() {
        // A hot loop of independent ops: icache-warm CPI should approach 1
        // (the loop branch adds a small squash overhead per iteration).
        let mut src = String::from("li r1, 200\nloop:\n");
        for k in 0..14 {
            src.push_str(&format!("addi r{}, r0, 1\n", 2 + (k % 8)));
        }
        src.push_str("addi r1, r1, -1\nbne r1, r0, loop\nhalt\n");
        let (r, _) = run(&src, SaConfig::paper());
        assert!(r.cpi() < 1.35, "cpi {} too high", r.cpi());
    }

    #[test]
    fn taken_branches_squash_wrong_path() {
        let (r, _) = run(SUM_LOOP, SaConfig::paper());
        // 9 taken branches (10-iteration countdown loop). A branch
        // resolves in E while exactly one wrong-path fetch sits in F (the
        // redirect is visible to fetch within the same control step), so
        // one operation is squashed per taken branch — plus one more fetched
        // past the final exit syscall.
        assert_eq!(r.squashed, 10);
    }

    #[test]
    fn data_hazard_stalls_without_forwarding() {
        let dep_chain = "
            li r1, 1
            add r2, r1, r1
            add r3, r2, r2
            add r4, r3, r3
            add r5, r4, r4
            halt
        ";
        let (fwd, _) = run(dep_chain, SaConfig::paper());
        let cfg = SaConfig {
            forwarding: false,
            ..SaConfig::paper()
        };
        let (nofwd, _) = run(dep_chain, cfg);
        assert!(
            nofwd.cycles > fwd.cycles + 4,
            "no-forwarding ({}) should be slower than forwarding ({})",
            nofwd.cycles,
            fwd.cycles
        );
        assert_eq!(fwd.exit_code, nofwd.exit_code);
    }

    #[test]
    fn multiplier_occupies_execute() {
        let muls = "
            li r1, 7
            mul r2, r1, r1
            mul r3, r2, r1
            halt
        ";
        let (r, _) = run(muls, SaConfig::paper());
        let alus = "
            li r1, 7
            add r2, r1, r1
            add r3, r2, r1
            halt
        ";
        let (r2, _) = run(alus, SaConfig::paper());
        assert!(r.cycles > r2.cycles, "muls {} vs adds {}", r.cycles, r2.cycles);
    }

    #[test]
    fn cache_misses_stall_fetch() {
        // Same miss penalties, tiny geometry: more misses, more cycles.
        let mut small = SaConfig::paper();
        small.mem.icache.sets = 4;
        small.mem.icache.ways = 1;
        small.mem.dcache.sets = 4;
        small.mem.dcache.ways = 1;
        let big_loop = "
            li r1, 50
            la r2, buf
        loop:
            lw r3, 0(r2)
            lw r4, 512(r2)
            lw r5, 1024(r2)
            addi r2, r2, 4
            addi r1, r1, -1
            bne r1, r0, loop
            halt
        buf:
            .space 2048
        ";
        let p = minirisc::assemble(big_loop, 0x1000).unwrap();
        let mut small_sim = SaOsmSim::new(small, &p);
        let small_r = small_sim.run_to_halt(1_000_000).unwrap();
        let mut big_sim = SaOsmSim::new(SaConfig::paper(), &p);
        let big_r = big_sim.run_to_halt(1_000_000).unwrap();
        assert!(small_r.dcache_misses > big_r.dcache_misses);
        assert!(small_r.cycles > big_r.cycles);
    }

    #[test]
    fn load_use_has_one_cycle_penalty() {
        let load_use = "
            la r1, data
            lw r2, 0(r1)
            add r3, r2, r2   ; immediately uses the load
            halt
        data:
            .word 21
        ";
        let load_gap = "
            la r1, data
            lw r2, 0(r1)
            add r4, r0, r0   ; filler
            add r3, r2, r2
            halt
        data:
            .word 21
        ";
        let (use_now, _) = run(load_use, SaConfig::paper());
        let (gap, _) = run(load_gap, SaConfig::paper());
        // The filler hides the load-use bubble: same cycle count.
        assert_eq!(use_now.cycles, gap.cycles);
    }

    #[test]
    fn memory_traffic_program_works() {
        let (r, _) = run(
            "
            la r1, buf
            li r2, 8
            li r3, 0
        fill:
            sw r2, 0(r1)
            addi r1, r1, 4
            addi r2, r2, -1
            bne r2, r0, fill
            la r1, buf
            li r2, 8
        sum:
            lw r4, 0(r1)
            add r3, r3, r4
            addi r1, r1, 4
            addi r2, r2, -1
            bne r2, r0, sum
            li r10, 0
            add r11, r3, r0
            syscall
        buf:
            .space 32
        ",
            SaConfig::paper(),
        );
        assert_eq!(r.exit_code, 36); // 8+7+...+1
        assert!(r.dcache_misses > 0);
    }

    #[test]
    fn output_syscalls_captured() {
        let (r, _) = run(
            "
            li r10, 1
            li r11, 79 ; 'O'
            syscall
            li r10, 2
            li r11, 7
            syscall
            halt
        ",
            SaConfig::paper(),
        );
        assert_eq!(r.output_string(), "O7");
    }

    #[test]
    fn restart_policy_produces_identical_timing() {
        let p = assemble(SUM_LOOP, 0x1000).unwrap();
        let mut a = SaOsmSim::new(SaConfig::paper(), &p);
        let ra = a.run_to_halt(100_000).unwrap();
        let mut b = SaOsmSim::new(SaConfig::paper(), &p);
        b.machine_mut().set_restart_policy(RestartPolicy::Restart);
        let rb = b.run_to_halt(100_000).unwrap();
        assert_eq!(ra, rb);
    }

    #[test]
    fn spec_matches_figure6_shape() {
        let spec = build_spec(SaManagers::default());
        assert_eq!(spec.state_count(), 6);
        // 6 normal flow edges + 2 reset edges.
        assert_eq!(spec.edge_count(), 8);
        let f = spec.find_state("F").unwrap();
        // Reset edge first (higher priority).
        let out = spec.out_edges(f);
        assert_eq!(spec.edge(out[0]).name, "reset_f");
    }

    #[test]
    fn checkpoint_restore_replays_pipeline_exactly() {
        let p = assemble(SUM_LOOP, 0x1000).unwrap();
        let mut sim = SaOsmSim::new(SaConfig::paper(), &p);
        // Run into the middle of the loop, checkpoint with operations in
        // flight in every stage, then finish.
        for _ in 0..12 {
            sim.step().unwrap();
        }
        let ckpt = sim.checkpoint().unwrap();
        let reference = sim.run_to_halt(100_000).unwrap();
        assert_eq!(reference.exit_code, 55);
        // Rewind and re-run: bit-identical result, including timing.
        sim.restore(&ckpt).unwrap();
        assert_eq!(sim.machine().cycle(), 12);
        assert!(!sim.machine().shared.halted);
        let replay = sim.run_to_halt(100_000).unwrap();
        assert_eq!(replay, reference);
    }

    #[test]
    fn injected_cache_port_faults_stall_then_recover() {
        let p = assemble(SUM_LOOP, 0x1000).unwrap();
        let mut clean = SaOsmSim::new(SaConfig::paper(), &p);
        let reference = clean.run_to_halt(100_000).unwrap();

        let mut sim = SaOsmSim::new(SaConfig::paper(), &p);
        // Must exceed the worst-case natural stall (cold TLB walk + cache
        // miss + bus is ~60 cycles in the paper configuration).
        sim.set_stall_limit(Some(200));
        // Permanently deny the buffer stage (the D-cache port) from cycle 5:
        // the pipeline wedges and the watchdog must catch it.
        let handle = sim.inject_faults(
            sim.ids.mb,
            FaultPlan::new(0xBAD_5EED).blackhole(5, u64::MAX),
        );
        let ckpt = sim.checkpoint().unwrap(); // last known-good state
        let err = sim.run_to_halt(100_000).unwrap_err();
        let ModelError::Stalled(report) = err else {
            panic!("expected stall, got other error");
        };
        assert!(!report.blocked.is_empty());
        assert!(report
            .blocked
            .iter()
            .any(|b| b.waiting_on.iter().any(|w| w.manager_name == "buffer")));
        // Operator repairs the fault and rewinds to the checkpoint.
        handle.disable();
        assert!(handle.stats().total() > 0);
        sim.restore(&ckpt).unwrap();
        let recovered = sim.run_to_halt(100_000).unwrap();
        assert_eq!(recovered.exit_code, reference.exit_code);
        assert_eq!(recovered.retired, reference.retired);
        assert_eq!(recovered.output, reference.output);
    }

    #[test]
    fn checkpoint_bytes_restore_into_fresh_sim_replays_exactly() {
        let p = assemble(SUM_LOOP, 0x1000).unwrap();
        let mut sim = SaOsmSim::new(SaConfig::paper(), &p);
        for _ in 0..12 {
            sim.step().unwrap();
        }
        let bytes = sim.checkpoint_bytes().unwrap();
        let reference = sim.run_to_halt(100_000).unwrap();
        drop(sim); // the original is gone — restore must work from bytes alone

        let mut fresh = SaOsmSim::new(SaConfig::paper(), &p);
        fresh.restore_checkpoint_bytes(&bytes).unwrap();
        assert_eq!(fresh.machine().cycle(), 12);
        let replay = fresh.run_to_halt(100_000).unwrap();
        assert_eq!(replay, reference);

        // Tampered bytes are rejected by the seal.
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x40;
        let mut victim = SaOsmSim::new(SaConfig::paper(), &p);
        assert!(victim.restore_checkpoint_bytes(&bad).is_err());
        // A differently-configured machine refuses the checkpoint.
        let mut other = SaOsmSim::new(
            SaConfig {
                forwarding: false,
                ..SaConfig::paper()
            },
            &p,
        );
        assert!(other.restore_checkpoint_bytes(&bytes).is_err());
    }

    #[test]
    fn deterministic_across_runs() {
        let p = assemble(SUM_LOOP, 0x1000).unwrap();
        let mut a = SaOsmSim::new(SaConfig::paper(), &p);
        a.machine_mut().enable_trace();
        let ra = a.run_to_halt(100_000).unwrap();
        let ta = a.machine_mut().take_trace().unwrap();
        let mut b = SaOsmSim::new(SaConfig::paper(), &p);
        b.machine_mut().enable_trace();
        let rb = b.run_to_halt(100_000).unwrap();
        let tb = b.machine_mut().take_trace().unwrap();
        assert_eq!(ra, rb);
        assert_eq!(ta.digest(), tb.digest());
    }
}
