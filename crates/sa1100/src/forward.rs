//! The combined register file + forwarding network token manager.
//!
//! The paper's StrongARM model implements "the combined register file and
//! forwarding paths module" as one TMI (§5.1). Each register exposes
//!
//! * a **register-update token**: allocated by a writer at issue (D→E),
//!   released at write-back (W) — its exclusivity resolves WAW hazards;
//! * a **value token**: inquired by readers. The inquiry succeeds when the
//!   register has no in-flight writer, *or* — with forwarding enabled — when
//!   the in-flight writer has already computed its result (the writer's
//!   behavior calls [`RegForwardFile::mark_ready`] from its execute-stage
//!   commit action, modeling the bypass wires).
//!
//! Identifier space: flat register index `0..n` for value tokens; the same
//! index with [`UPDATE_BIT`] set for update tokens (see
//! [`RegForwardFile::value_ident`] / [`RegForwardFile::update_ident`]).

use osm_core::{
    ByteReader, ByteWriter, ManagerId, ManagerSnapshot, OsmId, Snapshot, Token, TokenIdent,
    TokenManager,
};
use std::any::Any;

/// Identifier bit distinguishing update tokens from value tokens.
pub const UPDATE_BIT: u64 = 1 << 32;

/// Kind byte leading this manager's serialized snapshot payload, so a
/// payload misrouted to a different manager kind fails decoding.
const KIND_FORWARD_FILE: u8 = b'W';

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WriterState {
    Free,
    Pending { osm: OsmId },
    Busy { osm: OsmId, ready: bool },
    Releasing { osm: OsmId, ready: bool },
}

/// The combined register-file/forwarding TMI.
#[derive(Debug)]
pub struct RegForwardFile {
    name: String,
    id: ManagerId,
    writers: Vec<WriterState>,
    forwarding: bool,
}

impl RegForwardFile {
    /// Creates a file of `nregs` registers; `forwarding` enables the bypass
    /// network (readers may proceed once the writer's result is computed).
    pub fn new(name: impl Into<String>, nregs: usize, forwarding: bool) -> Self {
        RegForwardFile {
            name: name.into(),
            id: ManagerId(u32::MAX),
            writers: vec![WriterState::Free; nregs],
            forwarding,
        }
    }

    /// Identifier of register `r`'s value token.
    pub fn value_ident(r: usize) -> TokenIdent {
        TokenIdent(r as u64)
    }

    /// Identifier of register `r`'s update token.
    pub fn update_ident(r: usize) -> TokenIdent {
        TokenIdent(r as u64 | UPDATE_BIT)
    }

    /// Marks register `r`'s in-flight result as computed (bypass available).
    /// Called by writer behaviors when their value becomes forwardable.
    pub fn mark_ready(&mut self, r: usize) {
        match &mut self.writers[r] {
            WriterState::Busy { ready, .. } | WriterState::Releasing { ready, .. } => {
                *ready = true;
            }
            _ => {}
        }
    }

    /// True if register `r` has an in-flight (committed) writer.
    pub fn is_busy(&self, r: usize) -> bool {
        !matches!(self.writers[r], WriterState::Free)
    }

    /// True if forwarding is enabled.
    pub fn forwarding(&self) -> bool {
        self.forwarding
    }

    fn split(ident: TokenIdent) -> Option<(bool, usize)> {
        if ident.is_none() || ident.is_any() {
            return None;
        }
        Some((ident.0 & UPDATE_BIT != 0, (ident.0 & !UPDATE_BIT) as usize))
    }
}

impl TokenManager for RegForwardFile {
    fn name(&self) -> &str {
        &self.name
    }

    fn attach(&mut self, id: ManagerId) {
        self.id = id;
    }

    fn prepare_allocate(&mut self, osm: OsmId, ident: TokenIdent) -> Option<Token> {
        let (update, r) = Self::split(ident)?;
        if !update || r >= self.writers.len() {
            return None;
        }
        if self.writers[r] == WriterState::Free {
            self.writers[r] = WriterState::Pending { osm };
            Some(Token::new(self.id, ident.0))
        } else {
            None
        }
    }

    fn inquire(&self, osm: OsmId, ident: TokenIdent) -> bool {
        let Some((update, r)) = Self::split(ident) else {
            return false;
        };
        if update || r >= self.writers.len() {
            return false; // update tokens are allocated, not inquired
        }
        match self.writers[r] {
            WriterState::Free => true,
            WriterState::Pending { osm: o }
            | WriterState::Busy { osm: o, .. }
            | WriterState::Releasing { osm: o, .. }
                if o == osm =>
            {
                // An operation never depends on its own update token.
                true
            }
            WriterState::Busy { ready, .. } | WriterState::Releasing { ready, .. } => {
                self.forwarding && ready
            }
            WriterState::Pending { .. } => false,
        }
    }

    fn prepare_release(&mut self, osm: OsmId, token: Token) -> bool {
        // Fully graceful on out-of-range registers: a fault injector may
        // hand an operation a corrupted token whose raw decodes past the
        // file; refusing (rather than panicking) turns that fault into an
        // observable stall.
        let Some((true, r)) = Self::split(TokenIdent(token.raw)) else {
            return false;
        };
        match self.writers.get(r) {
            Some(WriterState::Busy { osm: o, ready }) if *o == osm => {
                let ready = *ready;
                self.writers[r] = WriterState::Releasing { osm, ready };
                true
            }
            _ => false,
        }
    }

    fn commit_allocate(&mut self, osm: OsmId, token: Token) {
        if let Some((true, r)) = Self::split(TokenIdent(token.raw)) {
            let Some(slot) = self.writers.get_mut(r) else {
                debug_assert!(false, "commit_allocate of foreign token r{r}");
                return;
            };
            debug_assert_eq!(*slot, WriterState::Pending { osm });
            *slot = WriterState::Busy { osm, ready: false };
        }
    }

    fn abort_allocate(&mut self, osm: OsmId, token: Token) {
        if let Some((true, r)) = Self::split(TokenIdent(token.raw)) {
            let Some(slot) = self.writers.get_mut(r) else {
                debug_assert!(false, "abort_allocate of foreign token r{r}");
                return;
            };
            debug_assert_eq!(*slot, WriterState::Pending { osm });
            *slot = WriterState::Free;
        }
    }

    fn commit_release(&mut self, _osm: OsmId, token: Token) {
        if let Some((true, r)) = Self::split(TokenIdent(token.raw)) {
            let Some(slot) = self.writers.get_mut(r) else {
                debug_assert!(false, "commit_release of foreign token r{r}");
                return;
            };
            *slot = WriterState::Free;
        }
    }

    fn abort_release(&mut self, osm: OsmId, token: Token) {
        if let Some((true, r)) = Self::split(TokenIdent(token.raw)) {
            let Some(slot) = self.writers.get_mut(r) else {
                debug_assert!(false, "abort_release of foreign token r{r}");
                return;
            };
            if let WriterState::Releasing { ready, .. } = *slot {
                *slot = WriterState::Busy { osm, ready };
            }
        }
    }

    fn discard(&mut self, _osm: OsmId, token: Token) {
        // Graceful like `prepare_release`: squashing an operation that holds
        // a corrupted token must not bring the simulator down.
        if let Some((true, r)) = Self::split(TokenIdent(token.raw)) {
            if let Some(slot) = self.writers.get_mut(r) {
                *slot = WriterState::Free;
            }
        }
    }

    fn owner_of(&self, ident: TokenIdent) -> Option<OsmId> {
        let (_, r) = Self::split(ident)?;
        match self.writers.get(r)? {
            WriterState::Free => None,
            WriterState::Pending { osm }
            | WriterState::Busy { osm, .. }
            | WriterState::Releasing { osm, .. } => Some(*osm),
        }
    }

    fn snapshot_state(&self) -> Option<ManagerSnapshot> {
        Some(Snapshot::snapshot(self))
    }

    fn restore_state(&mut self, snap: &ManagerSnapshot) -> bool {
        Snapshot::restore(self, snap)
    }

    fn encode_snapshot(&self, snap: &ManagerSnapshot) -> Option<Vec<u8>> {
        let state = snap.downcast::<RegForwardFileState>()?;
        let mut w = ByteWriter::new();
        w.put_u8(KIND_FORWARD_FILE);
        w.put_bool(state.forwarding);
        w.put_u32(state.writers.len() as u32);
        for writer in &state.writers {
            match *writer {
                WriterState::Free => w.put_u8(0),
                WriterState::Pending { osm } => {
                    w.put_u8(1);
                    w.put_u32(osm.0);
                }
                WriterState::Busy { osm, ready } => {
                    w.put_u8(2);
                    w.put_u32(osm.0);
                    w.put_bool(ready);
                }
                WriterState::Releasing { osm, ready } => {
                    w.put_u8(3);
                    w.put_u32(osm.0);
                    w.put_bool(ready);
                }
            }
        }
        Some(w.into_bytes())
    }

    fn decode_snapshot(&self, bytes: &[u8]) -> Option<ManagerSnapshot> {
        let mut r = ByteReader::new(bytes);
        if r.take_u8()? != KIND_FORWARD_FILE {
            return None;
        }
        let forwarding = r.take_bool()?;
        let n = r.take_u32()? as usize;
        let mut writers = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            writers.push(match r.take_u8()? {
                0 => WriterState::Free,
                1 => WriterState::Pending {
                    osm: OsmId(r.take_u32()?),
                },
                2 => WriterState::Busy {
                    osm: OsmId(r.take_u32()?),
                    ready: r.take_bool()?,
                },
                3 => WriterState::Releasing {
                    osm: OsmId(r.take_u32()?),
                    ready: r.take_bool()?,
                },
                _ => return None,
            });
        }
        r.is_done().then(|| {
            ManagerSnapshot::of(RegForwardFileState {
                writers,
                forwarding,
            })
        })
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Snapshot payload for [`RegForwardFile`]: per-register writer states plus
/// the forwarding flag (captured so a restore onto a differently-configured
/// file is refused instead of silently changing hazard semantics).
#[derive(Debug, Clone)]
struct RegForwardFileState {
    writers: Vec<WriterState>,
    forwarding: bool,
}

impl Snapshot for RegForwardFile {
    fn snapshot(&self) -> ManagerSnapshot {
        ManagerSnapshot::of(RegForwardFileState {
            writers: self.writers.clone(),
            forwarding: self.forwarding,
        })
    }

    fn restore(&mut self, snap: &ManagerSnapshot) -> bool {
        let Some(state) = snap.downcast::<RegForwardFileState>() else {
            return false;
        };
        if state.writers.len() != self.writers.len() || state.forwarding != self.forwarding {
            return false;
        }
        self.writers.clone_from(&state.writers);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(forwarding: bool) -> RegForwardFile {
        let mut f = RegForwardFile::new("rf", 8, forwarding);
        f.attach(ManagerId(0));
        f
    }

    #[test]
    fn reader_blocks_until_release_without_forwarding() {
        let mut f = file(false);
        let w = OsmId(1);
        let t = f.prepare_allocate(w, RegForwardFile::update_ident(3)).unwrap();
        f.commit_allocate(w, t);
        assert!(!f.inquire(OsmId(2), RegForwardFile::value_ident(3)));
        f.mark_ready(3);
        // No forwarding: still blocked.
        assert!(!f.inquire(OsmId(2), RegForwardFile::value_ident(3)));
        assert!(f.prepare_release(w, t));
        f.commit_release(w, t);
        assert!(f.inquire(OsmId(2), RegForwardFile::value_ident(3)));
    }

    #[test]
    fn forwarding_unblocks_at_ready() {
        let mut f = file(true);
        let w = OsmId(1);
        let t = f.prepare_allocate(w, RegForwardFile::update_ident(3)).unwrap();
        f.commit_allocate(w, t);
        assert!(!f.inquire(OsmId(2), RegForwardFile::value_ident(3)));
        f.mark_ready(3);
        assert!(f.inquire(OsmId(2), RegForwardFile::value_ident(3)));
    }

    #[test]
    fn own_writer_does_not_block_self() {
        let mut f = file(false);
        let w = OsmId(1);
        let t = f.prepare_allocate(w, RegForwardFile::update_ident(5)).unwrap();
        f.commit_allocate(w, t);
        assert!(f.inquire(w, RegForwardFile::value_ident(5)));
    }

    #[test]
    fn waw_blocked() {
        let mut f = file(true);
        let t = f.prepare_allocate(OsmId(1), RegForwardFile::update_ident(2)).unwrap();
        f.commit_allocate(OsmId(1), t);
        assert!(f.prepare_allocate(OsmId(2), RegForwardFile::update_ident(2)).is_none());
        assert_eq!(f.owner_of(RegForwardFile::update_ident(2)), Some(OsmId(1)));
    }

    #[test]
    fn discard_clears_writer_and_ready() {
        let mut f = file(true);
        let t = f.prepare_allocate(OsmId(1), RegForwardFile::update_ident(2)).unwrap();
        f.commit_allocate(OsmId(1), t);
        f.mark_ready(2);
        f.discard(OsmId(1), t);
        assert!(!f.is_busy(2));
        assert!(f.inquire(OsmId(9), RegForwardFile::value_ident(2)));
    }

    #[test]
    fn abort_release_preserves_ready_flag() {
        let mut f = file(true);
        let w = OsmId(1);
        let t = f.prepare_allocate(w, RegForwardFile::update_ident(0)).unwrap();
        f.commit_allocate(w, t);
        f.mark_ready(0);
        assert!(f.prepare_release(w, t));
        f.abort_release(w, t);
        assert!(f.inquire(OsmId(2), RegForwardFile::value_ident(0)));
    }

    #[test]
    fn update_tokens_cannot_be_inquired_and_values_not_allocated() {
        let mut f = file(true);
        assert!(!f.inquire(OsmId(1), RegForwardFile::update_ident(1)));
        assert!(f.prepare_allocate(OsmId(1), RegForwardFile::value_ident(1)).is_none());
    }

    #[test]
    fn damaged_raw_is_refused_not_panicking() {
        let mut f = file(true);
        // A corrupted raw decoding far past the register file.
        let bogus = Token::new(ManagerId(0), (1 << 63) | UPDATE_BIT | 999_999);
        assert!(!f.prepare_release(OsmId(1), bogus));
        f.discard(OsmId(1), bogus); // must be a no-op, not an OOB panic
        assert!(f.inquire(OsmId(1), RegForwardFile::value_ident(0)));
    }

    #[test]
    fn byte_codec_round_trips_every_writer_state() {
        let mut f = file(true);
        let t1 = f.prepare_allocate(OsmId(1), RegForwardFile::update_ident(1)).unwrap();
        f.commit_allocate(OsmId(1), t1);
        f.mark_ready(1);
        let t2 = f.prepare_allocate(OsmId(2), RegForwardFile::update_ident(2)).unwrap();
        f.commit_allocate(OsmId(2), t2);
        assert!(f.prepare_release(OsmId(2), t2)); // Releasing{ready: false}
        let _pending = f.prepare_allocate(OsmId(3), RegForwardFile::update_ident(3)).unwrap();

        let snap = f.snapshot_state().unwrap();
        let bytes = f.encode_snapshot(&snap).expect("codec supported");
        let decoded = f.decode_snapshot(&bytes).expect("decodes");
        let mut g = file(true);
        assert!(g.restore_state(&decoded));
        assert!(g.inquire(OsmId(9), RegForwardFile::value_ident(1))); // ready survived
        assert!(!g.inquire(OsmId(9), RegForwardFile::value_ident(2)));
        assert!(g.is_busy(3)); // pending writer survived

        // Damage is refused.
        assert!(f.decode_snapshot(&bytes[..bytes.len() - 1]).is_none());
        let mut wrong_kind = bytes.clone();
        wrong_kind[0] = b'X';
        assert!(f.decode_snapshot(&wrong_kind).is_none());
    }

    #[test]
    fn snapshot_roundtrip_restores_writer_states() {
        let mut f = file(true);
        let w = OsmId(1);
        let t = f.prepare_allocate(w, RegForwardFile::update_ident(3)).unwrap();
        f.commit_allocate(w, t);
        f.mark_ready(3);
        let snap = Snapshot::snapshot(&f);
        f.commit_release(w, t);
        assert!(!f.is_busy(3));
        assert!(Snapshot::restore(&mut f, &snap));
        assert!(f.is_busy(3));
        assert!(f.inquire(OsmId(2), RegForwardFile::value_ident(3))); // ready survived
        // Shape/config mismatches are refused.
        let mut other = RegForwardFile::new("rf2", 4, true);
        other.attach(ManagerId(1));
        assert!(!Snapshot::restore(&mut other, &snap));
        let mut noforward = RegForwardFile::new("rf3", 8, false);
        noforward.attach(ManagerId(2));
        assert!(!Snapshot::restore(&mut noforward, &snap));
    }
}
