//! An independent, hand-sequenced cycle-accurate reference simulator.
//!
//! This model implements the same 5-stage timing specification as the OSM
//! model but in the classic ad-hoc style of SimpleScalar: explicit pipeline
//! latches advanced oldest-stage-first each cycle, with all hazards resolved
//! by hand-written control code. It shares **no** scheduling code with the
//! OSM model (only the functional [`minirisc::execute`] and the `memsys`
//! timing models), so agreement between the two is meaningful validation —
//! it plays the role of the iPAQ hardware and of SimpleScalar-ARM in the
//! paper's Table 1 / §5.1 comparisons.
//!
//! When standing in for real hardware it can additionally model detail that
//! the micro-architecture models abstract away (a periodic DRAM-refresh
//! stall), producing the small systematic timing differences the paper
//! attributes to unavailable memory-subsystem documentation.

use crate::config::{SaConfig, SimResult};
use minirisc::{
    Memory,
    decode, effective_address, execute, CpuState, Instr, InstrClass, Outcome, Program, Reg,
    SparseMemory,
};
use memsys::MemSystem;

#[derive(Debug, Clone, Copy)]
struct RefOp {
    pc: u32,
    instr: Instr,
    mem_addr: Option<u32>,
    dest: Option<usize>,
    is_halting: bool,
}

impl RefOp {
    fn fetched(pc: u32) -> Self {
        RefOp {
            pc,
            instr: Instr::NOP,
            mem_addr: None,
            dest: None,
            is_halting: false,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct BusyBit {
    busy: bool,
    ready: bool,
}

/// The hand-sequenced reference simulator.
#[derive(Debug)]
pub struct RefSim {
    cfg: SaConfig,
    cpu: CpuState,
    mem: SparseMemory,
    memsys: MemSystem,
    next_fetch_pc: u32,
    stop_fetch: bool,
    halted: bool,
    exit_code: u32,
    output: Vec<u8>,
    /// First right-path anomaly, if any.
    pub error: Option<String>,
    f: Option<RefOp>,
    d: Option<RefOp>,
    e: Option<RefOp>,
    b: Option<RefOp>,
    w: Option<RefOp>,
    fetch_timer: u32,
    e_timer: u32,
    b_timer: u32,
    branch_stall: u32,
    taken_count: u32,
    busy: [BusyBit; 64],
    cycle: u64,
    retired: u64,
    squashed: u64,
}

impl RefSim {
    /// Builds the reference simulator and loads `program`.
    pub fn new(cfg: SaConfig, program: &Program) -> Self {
        let mut mem = SparseMemory::new();
        program.load_into(&mut mem);
        RefSim {
            cfg,
            cpu: CpuState::new(program.entry),
            mem,
            memsys: MemSystem::new(cfg.mem),
            next_fetch_pc: program.entry,
            stop_fetch: false,
            halted: false,
            exit_code: 0,
            output: Vec::new(),
            error: None,
            f: None,
            d: None,
            e: None,
            b: None,
            w: None,
            fetch_timer: 0,
            e_timer: 0,
            b_timer: 0,
            branch_stall: 0,
            taken_count: 0,
            busy: [BusyBit::default(); 64],
            cycle: 0,
            retired: 0,
            squashed: 0,
        }
    }

    /// True once the halting instruction has retired.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Current cycle count.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    fn squash_front(&mut self) {
        if self.f.take().is_some() {
            self.squashed += 1;
            self.fetch_timer = 0;
        }
        if let Some(op) = self.d.take() {
            self.squashed += 1;
            // Wrong-path operations in D have not allocated a destination.
            debug_assert!(op.dest.is_none() || !self.busy[op.dest.unwrap()].busy);
        }
    }

    fn sources_ready(&self, instr: &Instr) -> bool {
        instr.sources().iter().all(|r| {
            let bit = self.busy[r.flat_index()];
            !bit.busy || (self.cfg.forwarding && bit.ready)
        })
    }

    fn execute_op(&mut self, op: &mut RefOp) {
        op.mem_addr = effective_address(op.instr, &self.cpu);
        self.cpu.pc = op.pc;
        let outcome = execute(op.instr, &mut self.cpu, &mut self.mem);
        match outcome {
            Outcome::Next => {}
            Outcome::Taken(target) => {
                self.next_fetch_pc = target;
                self.squash_front();
                if self.cfg.hw_branch_stall_every > 0 {
                    self.taken_count += 1;
                    if self.taken_count.is_multiple_of(self.cfg.hw_branch_stall_every) {
                        self.branch_stall = 1;
                    }
                }
            }
            Outcome::Halt => {
                op.is_halting = true;
                self.stop_fetch = true;
                self.squash_front();
            }
            Outcome::Syscall => {
                let nr = self.cpu.gpr(Reg(10));
                let arg = self.cpu.gpr(Reg(11));
                match nr {
                    minirisc::syscalls::EXIT => {
                        op.is_halting = true;
                        self.exit_code = arg;
                        self.stop_fetch = true;
                        self.squash_front();
                    }
                    minirisc::syscalls::PUTCHAR => self.output.push(arg as u8),
                    minirisc::syscalls::PUTUINT => {
                        self.output.extend_from_slice(arg.to_string().as_bytes())
                    }
                    other => {
                        if self.error.is_none() {
                            self.error =
                                Some(format!("unknown syscall {other} at {:#010x}", op.pc));
                        }
                        op.is_halting = true;
                        self.stop_fetch = true;
                        self.squash_front();
                    }
                }
            }
        }
        self.e_timer = match op.instr.class() {
            InstrClass::IntMul => self.cfg.mul_extra,
            InstrClass::IntDiv => self.cfg.div_extra,
            _ => 0,
        };
        if op.instr.class() != InstrClass::Load {
            if let Some(d) = op.dest {
                self.busy[d].ready = true;
            }
        }
    }

    /// Advances one cycle, processing stages oldest-first so that a freed
    /// stage can be refilled within the same cycle (mirroring the OSM
    /// director's senior-first service order).
    pub fn step(&mut self) {
        self.cycle += 1;
        // The "hardware proxy" refresh stall: the whole core freezes.
        if self.cfg.refresh_interval > 0 && self.cycle.is_multiple_of(self.cfg.refresh_interval) {
            return;
        }

        // W: retire.
        if let Some(op) = self.w.take() {
            self.retired += 1;
            if let Some(d) = op.dest {
                self.busy[d] = BusyBit::default();
            }
            if op.is_halting {
                self.halted = true;
            }
        }

        // B -> W.
        if self.b.is_some() {
            if self.b_timer > 0 {
                self.b_timer -= 1;
            } else if self.w.is_none() {
                let op = self.b.take().expect("checked");
                // Load results become forwardable once the D-cache access
                // completes (1-cycle load-use penalty).
                if op.instr.class() == InstrClass::Load {
                    if let Some(d) = op.dest {
                        self.busy[d].ready = true;
                    }
                }
                self.w = Some(op);
            }
        }

        // E -> B.
        if self.e.is_some() {
            if self.e_timer > 0 {
                self.e_timer -= 1;
            } else if self.b.is_none() {
                let op = self.e.take().expect("checked");
                self.b_timer = match op.mem_addr {
                    Some(addr) => self.memsys.data_penalty(addr),
                    None => 0,
                };
                self.b = Some(op);
            }
        }

        // D -> E (issue): operand + destination checks, then execute.
        if let Some(op) = self.d {
            if self.e.is_none()
                && self.sources_ready(&op.instr)
                && op
                    .instr
                    .dest()
                    .is_none_or(|r| !self.busy[r.flat_index()].busy)
            {
                let mut op = self.d.take().expect("checked");
                op.dest = op.instr.dest().map(|r| r.flat_index());
                if let Some(d) = op.dest {
                    self.busy[d] = BusyBit {
                        busy: true,
                        ready: false,
                    };
                }
                self.execute_op(&mut op);
                self.e = Some(op);
            }
        }

        // F -> D (decode).
        if self.f.is_some() {
            if self.fetch_timer > 0 {
                self.fetch_timer -= 1;
            } else if self.d.is_none() {
                let mut op = self.f.take().expect("checked");
                let word = self.mem.read_u32(op.pc);
                op.instr = decode(word).unwrap_or(Instr::NOP);
                self.d = Some(op);
            }
        }

        // Fetch.
        if self.f.is_none() && !self.stop_fetch {
            let pc = self.next_fetch_pc;
            self.next_fetch_pc = pc.wrapping_add(4);
            self.fetch_timer =
                self.memsys.fetch_penalty(pc) + std::mem::take(&mut self.branch_stall);
            self.f = Some(RefOp::fetched(pc));
        }
    }

    /// Runs until halt or `max_cycles`.
    pub fn run_to_halt(&mut self, max_cycles: u64) -> SimResult {
        while !self.halted && self.cycle < max_cycles {
            self.step();
        }
        self.result()
    }

    /// Snapshot of the current result counters.
    pub fn result(&self) -> SimResult {
        SimResult {
            cycles: self.cycle,
            retired: self.retired,
            squashed: self.squashed,
            exit_code: self.exit_code,
            output: self.output.clone(),
            icache_misses: self.memsys.icache.stats.misses,
            dcache_misses: self.memsys.dcache.stats.misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minirisc::assemble;

    const SUM_LOOP: &str = "
        li r1, 10
        li r2, 0
    loop:
        add r2, r2, r1
        addi r1, r1, -1
        bne r1, r0, loop
        li r10, 0
        add r11, r2, r0
        syscall
    ";

    fn run(src: &str, cfg: SaConfig) -> SimResult {
        let p = assemble(src, 0x1000).expect("assembles");
        let mut sim = RefSim::new(cfg, &p);
        let r = sim.run_to_halt(1_000_000);
        assert!(sim.halted(), "did not halt");
        r
    }

    #[test]
    fn functional_result_matches_iss() {
        let r = run(SUM_LOOP, SaConfig::paper());
        assert_eq!(r.exit_code, 55);
        let p = assemble(SUM_LOOP, 0x1000).unwrap();
        let mut iss = minirisc::Iss::with_program(SparseMemory::new(), &p);
        iss.run(100_000).unwrap();
        assert_eq!(r.retired, iss.retired);
    }

    #[test]
    fn refresh_stall_slows_the_hardware_proxy() {
        let base = run(SUM_LOOP, SaConfig::paper());
        let hw = run(
            SUM_LOOP,
            SaConfig {
                refresh_interval: 50,
                ..SaConfig::paper()
            },
        );
        assert!(hw.cycles > base.cycles);
        assert_eq!(hw.exit_code, base.exit_code);
    }

    #[test]
    fn forwarding_ablation_slows_dependent_chain() {
        let chain = "
            li r1, 1
            add r2, r1, r1
            add r3, r2, r2
            add r4, r3, r3
            halt
        ";
        let fwd = run(chain, SaConfig::paper());
        let nofwd = run(
            chain,
            SaConfig {
                forwarding: false,
                ..SaConfig::paper()
            },
        );
        assert!(nofwd.cycles > fwd.cycles);
    }
}
