//! Static (formal) analysis of state machine specifications — paper §6:
//! "The OSM model is highly declarative... Thus it is possible to extract
//! model properties for formal verification purposes."
//!
//! [`verify_spec`] checks structural properties every well-formed operation
//! class should satisfy, without running a single cycle:
//!
//! * **Reachability** — every state is reachable from the initial state and
//!   can reach it back (operations must be able to complete or be killed).
//! * **Token balance** — along every simple operation path from `I` back to
//!   `I`, each `allocate` is matched by a later `release`/`discard` of the
//!   same manager (no token leaks — the director asserts an empty buffer at
//!   `I` dynamically; this proves it statically), and nothing is released
//!   that was never allocated.
//! * **Priority ambiguity** — outgoing edges of one state with equal
//!   priority are flagged (legal — declaration order breaks ties
//!   deterministically — but usually unintended for edges to different
//!   destinations).
//! * **Initial-state buffer emptiness** — edges entering the initial state
//!   must not allocate (the buffer must be empty in `I`, §3.1).

use crate::ids::{EdgeId, ManagerId, StateId};
use crate::spec::StateMachineSpec;
use crate::token::{IdentExpr, Primitive};
use std::fmt;

/// A finding from [`verify_spec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecIssue {
    /// `state` cannot be reached from the initial state.
    Unreachable {
        /// The orphaned state.
        state: StateId,
    },
    /// `state` cannot reach the initial state (operations get stuck).
    NoReturn {
        /// The dead-end state.
        state: StateId,
    },
    /// A path from `I` to `I` ends still holding a token of `manager`.
    TokenLeak {
        /// Edges of the leaking path.
        path: Vec<EdgeId>,
        /// The manager whose token is never returned.
        manager: ManagerId,
    },
    /// An edge releases/discards a specific manager's token on a path that
    /// never allocated one.
    ReleaseWithoutAllocate {
        /// The offending edge.
        edge: EdgeId,
        /// The manager involved.
        manager: ManagerId,
    },
    /// Two outgoing edges of `state` to different destinations share a
    /// priority (tie broken by declaration order).
    AmbiguousPriority {
        /// The state with the ambiguous edges.
        state: StateId,
        /// The tied edges.
        edges: Vec<EdgeId>,
        /// The shared priority value.
        priority: i32,
    },
    /// An edge entering the initial state allocates a token (the buffer
    /// must be empty in `I`).
    AllocateIntoInitial {
        /// The offending edge.
        edge: EdgeId,
    },
}

impl fmt::Display for SpecIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecIssue::Unreachable { state } => {
                write!(f, "state {state} is unreachable from the initial state")
            }
            SpecIssue::NoReturn { state } => {
                write!(f, "state {state} cannot reach the initial state")
            }
            SpecIssue::TokenLeak { path, manager } => {
                write!(f, "path [")?;
                for (k, e) in path.iter().enumerate() {
                    if k > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "] returns to the initial state holding a token of {manager}")
            }
            SpecIssue::ReleaseWithoutAllocate { edge, manager } => {
                write!(f, "edge {edge} returns a token of {manager} never allocated on its path")
            }
            SpecIssue::AmbiguousPriority {
                state,
                edges,
                priority,
            } => {
                write!(
                    f,
                    "state {state} has {} outgoing edges tied at priority {priority}",
                    edges.len()
                )
            }
            SpecIssue::AllocateIntoInitial { edge } => {
                write!(f, "edge {edge} allocates while entering the initial state")
            }
        }
    }
}

/// Runs every static check; an empty result means the spec is well formed.
pub fn verify_spec(spec: &StateMachineSpec) -> Vec<SpecIssue> {
    let mut issues = Vec::new();
    reachability(spec, &mut issues);
    priorities(spec, &mut issues);
    alloc_into_initial(spec, &mut issues);
    token_balance(spec, &mut issues);
    issues
}

fn reachability(spec: &StateMachineSpec, issues: &mut Vec<SpecIssue>) {
    let n = spec.state_count();
    let initial = spec.initial();

    // Forward reachability from I.
    let mut fwd = vec![false; n];
    let mut stack = vec![initial];
    while let Some(s) = stack.pop() {
        if std::mem::replace(&mut fwd[s.index()], true) {
            continue;
        }
        for &e in spec.out_edges(s) {
            stack.push(spec.edge(e).dst);
        }
    }
    // Backward reachability to I.
    let mut preds: Vec<Vec<StateId>> = vec![Vec::new(); n];
    for e in spec.edges() {
        preds[e.dst.index()].push(e.src);
    }
    let mut back = vec![false; n];
    let mut stack = vec![initial];
    while let Some(s) = stack.pop() {
        if std::mem::replace(&mut back[s.index()], true) {
            continue;
        }
        for &p in &preds[s.index()] {
            stack.push(p);
        }
    }
    for s in spec.states() {
        if !fwd[s.index()] {
            issues.push(SpecIssue::Unreachable { state: s });
        } else if !back[s.index()] {
            issues.push(SpecIssue::NoReturn { state: s });
        }
    }
}

fn priorities(spec: &StateMachineSpec, issues: &mut Vec<SpecIssue>) {
    for s in spec.states() {
        let out = spec.out_edges(s);
        let mut k = 0;
        while k < out.len() {
            let p = spec.edge(out[k]).priority;
            let mut group = vec![out[k]];
            let mut j = k + 1;
            while j < out.len() && spec.edge(out[j]).priority == p {
                group.push(out[j]);
                j += 1;
            }
            // Parallel edges between the same pair of states are the
            // documented encoding of disjunction — not ambiguous.
            let first_dst = spec.edge(group[0]).dst;
            if group.len() > 1 && group.iter().any(|&e| spec.edge(e).dst != first_dst) {
                issues.push(SpecIssue::AmbiguousPriority {
                    state: s,
                    edges: group,
                    priority: p,
                });
            }
            k = j;
        }
    }
}

fn alloc_into_initial(spec: &StateMachineSpec, issues: &mut Vec<SpecIssue>) {
    for e in spec.edges() {
        if e.dst != spec.initial() {
            continue;
        }
        // An allocation is fine if the same condition returns it (the
        // allocate-and-discard idiom for per-cycle bandwidth tokens).
        let returned = |m: ManagerId| {
            e.condition.iter().any(|p| match *p {
                Primitive::Release { manager, .. } => manager == m,
                Primitive::Discard { manager, .. } => manager.is_none_or(|x| x == m),
                _ => false,
            })
        };
        for p in &e.condition {
            if let Primitive::Allocate { manager, .. } = *p {
                if !returned(manager) {
                    issues.push(SpecIssue::AllocateIntoInitial { edge: e.id });
                    break;
                }
            }
        }
    }
}

/// Symbolically tracks held-manager multisets along every simple `I → I`
/// path (identifiers abstracted away; slot-resolved primitives may be
/// vacuous at runtime, so releases of never-allocated managers are only
/// flagged for constant identifiers).
fn token_balance(spec: &StateMachineSpec, issues: &mut Vec<SpecIssue>) {
    let initial = spec.initial();

    fn dfs(
        spec: &StateMachineSpec,
        state: StateId,
        held: &mut [ManagerId],
        path: &mut Vec<EdgeId>,
        visited: &mut Vec<StateId>,
        issues: &mut Vec<SpecIssue>,
    ) {
        for &eid in spec.out_edges(state) {
            let edge = spec.edge(eid);
            let mut now = held.to_vec();
            for prim in &edge.condition {
                match *prim {
                    Primitive::Allocate { manager, ident } => {
                        if !matches!(ident, IdentExpr::Slot(_)) {
                            now.push(manager);
                        } else {
                            now.push(manager); // may be vacuous; assume held
                        }
                    }
                    Primitive::Release { manager, ident } => {
                        if let Some(pos) = now.iter().position(|&m| m == manager) {
                            now.remove(pos);
                        } else if matches!(ident, IdentExpr::Const(_) | IdentExpr::AnyHeld) {
                            issues.push(SpecIssue::ReleaseWithoutAllocate {
                                edge: eid,
                                manager,
                            });
                        }
                    }
                    Primitive::Discard { manager, .. } => match manager {
                        Some(m) => {
                            if let Some(pos) = now.iter().position(|&x| x == m) {
                                now.remove(pos);
                            }
                        }
                        None => now.clear(),
                    },
                    Primitive::Inquire { .. } => {}
                }
            }
            path.push(eid);
            if edge.dst == spec.initial() {
                // A complete operation path: the buffer must be empty. Slot
                // allocations may have been vacuous, so only report leaks
                // whose allocation used a constant identifier.
                for &m in &now {
                    let const_alloc = path.iter().any(|&pe| {
                        spec.edge(pe).condition.iter().any(|p| {
                            matches!(
                                *p,
                                Primitive::Allocate {
                                    manager,
                                    ident: IdentExpr::Const(_)
                                } if manager == m
                            )
                        })
                    });
                    if const_alloc {
                        issues.push(SpecIssue::TokenLeak {
                            path: path.clone(),
                            manager: m,
                        });
                    }
                }
            } else if !visited.contains(&edge.dst) {
                visited.push(edge.dst);
                dfs(spec, edge.dst, &mut now, path, visited, issues);
                visited.pop();
            }
            path.pop();
        }
    }

    let mut held = Vec::new();
    let mut path = Vec::new();
    let mut visited = vec![initial];
    dfs(spec, initial, &mut held, &mut path, &mut visited, issues);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SpecBuilder;

    fn m(k: u32) -> ManagerId {
        ManagerId(k)
    }

    #[test]
    fn clean_pipeline_verifies() {
        let mut b = SpecBuilder::new("ok");
        let i = b.state("I");
        let a = b.state("A");
        let z = b.state("B");
        b.initial(i);
        b.edge(i, a).allocate(m(0), IdentExpr::Const(0));
        b.edge(a, z)
            .release(m(0), IdentExpr::AnyHeld)
            .allocate(m(1), IdentExpr::Const(0));
        b.edge(z, i).release(m(1), IdentExpr::AnyHeld);
        let spec = b.build().unwrap();
        assert!(verify_spec(&spec).is_empty());
    }

    #[test]
    fn unreachable_state_detected() {
        let mut b = SpecBuilder::new("x");
        let i = b.state("I");
        let a = b.state("A");
        let orphan = b.state("Orphan");
        b.initial(i);
        b.edge(i, a);
        b.edge(a, i);
        b.edge(orphan, i);
        let spec = b.build().unwrap();
        let issues = verify_spec(&spec);
        assert!(issues.contains(&SpecIssue::Unreachable { state: orphan }));
    }

    #[test]
    fn dead_end_state_detected() {
        let mut b = SpecBuilder::new("x");
        let i = b.state("I");
        let stuck = b.state("Stuck");
        b.initial(i);
        b.edge(i, stuck);
        let spec = b.build().unwrap();
        let issues = verify_spec(&spec);
        assert!(issues.contains(&SpecIssue::NoReturn { state: stuck }));
    }

    #[test]
    fn token_leak_detected() {
        let mut b = SpecBuilder::new("leaky");
        let i = b.state("I");
        let a = b.state("A");
        b.initial(i);
        b.edge(i, a).allocate(m(0), IdentExpr::Const(0));
        b.edge(a, i); // never releases
        let spec = b.build().unwrap();
        let issues = verify_spec(&spec);
        assert!(issues
            .iter()
            .any(|x| matches!(x, SpecIssue::TokenLeak { manager, .. } if *manager == m(0))));
    }

    #[test]
    fn discard_all_clears_leak() {
        let mut b = SpecBuilder::new("reset");
        let i = b.state("I");
        let a = b.state("A");
        b.initial(i);
        b.edge(i, a).allocate(m(0), IdentExpr::Const(0));
        b.edge(a, i).discard_all();
        let spec = b.build().unwrap();
        assert!(verify_spec(&spec).is_empty());
    }

    #[test]
    fn release_without_allocate_detected() {
        let mut b = SpecBuilder::new("bad");
        let i = b.state("I");
        let a = b.state("A");
        b.initial(i);
        b.edge(i, a).release(m(3), IdentExpr::AnyHeld);
        b.edge(a, i);
        let spec = b.build().unwrap();
        let issues = verify_spec(&spec);
        assert!(issues
            .iter()
            .any(|x| matches!(x, SpecIssue::ReleaseWithoutAllocate { manager, .. } if *manager == m(3))));
    }

    #[test]
    fn equal_priority_to_different_states_flagged() {
        let mut b = SpecBuilder::new("amb");
        let i = b.state("I");
        let a = b.state("A");
        let z = b.state("B");
        b.initial(i);
        b.edge(i, a).priority(5);
        b.edge(i, z).priority(5);
        b.edge(a, i);
        b.edge(z, i);
        let spec = b.build().unwrap();
        let issues = verify_spec(&spec);
        assert!(issues
            .iter()
            .any(|x| matches!(x, SpecIssue::AmbiguousPriority { priority: 5, .. })));
    }

    #[test]
    fn parallel_edges_same_destination_not_flagged() {
        // Disjunction encoding: parallel edges between the same states.
        let mut b = SpecBuilder::new("par");
        let i = b.state("I");
        let a = b.state("A");
        b.initial(i);
        b.edge(i, a).inquire(m(0), IdentExpr::Const(0));
        b.edge(i, a).inquire(m(1), IdentExpr::Const(0));
        b.edge(a, i);
        let spec = b.build().unwrap();
        assert!(verify_spec(&spec).is_empty());
    }

    #[test]
    fn allocate_into_initial_flagged() {
        let mut b = SpecBuilder::new("bad");
        let i = b.state("I");
        let a = b.state("A");
        b.initial(i);
        b.edge(i, a).allocate(m(0), IdentExpr::Const(0));
        b.edge(a, i)
            .release(m(0), IdentExpr::AnyHeld)
            .allocate(m(1), IdentExpr::Const(0));
        let spec = b.build().unwrap();
        let issues = verify_spec(&spec);
        assert!(issues
            .iter()
            .any(|x| matches!(x, SpecIssue::AllocateIntoInitial { .. })));
    }

    #[test]
    fn issues_display_readably() {
        let issue = SpecIssue::TokenLeak {
            path: vec![EdgeId(0), EdgeId(1)],
            manager: m(2),
        };
        let text = issue.to_string();
        assert!(text.contains("e0 e1"));
        assert!(text.contains("mgr2"));
    }
}
