//! Static extraction of model properties (paper §6).
//!
//! Because OSM specifications are declarative, operation properties can be
//! derived without simulation: *operation paths* (the possible flows from
//! the initial state back to it), *reservation tables* (which structure
//! resources are held at each step of a path) and *operand latencies* (the
//! step at which a resource's token is released). The paper lists these as
//! inputs for retargetable compilers and formal analysis.

use crate::ids::{EdgeId, ManagerId, StateId};
use crate::spec::StateMachineSpec;
use crate::token::Primitive;

/// One simple operation path from the initial state back to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperationPath {
    /// Edges taken, in order.
    pub edges: Vec<EdgeId>,
    /// States visited, starting and ending with the initial state.
    pub states: Vec<StateId>,
}

impl OperationPath {
    /// Number of steps (edges) on the path.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True for the degenerate empty path (never produced by enumeration).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// Enumerates simple paths from the initial state back to the initial state.
///
/// Intermediate states are not revisited (so cyclic stall self-loops are not
/// expanded), and enumeration stops after `max_paths` results — superscalar
/// specs with many bypass edges can otherwise explode combinatorially.
pub fn enumerate_paths(spec: &StateMachineSpec, max_paths: usize) -> Vec<OperationPath> {
    let initial = spec.initial();
    let mut out = Vec::new();
    let mut edge_stack: Vec<EdgeId> = Vec::new();
    let mut state_stack: Vec<StateId> = vec![initial];

    fn dfs(
        spec: &StateMachineSpec,
        initial: StateId,
        current: StateId,
        edge_stack: &mut Vec<EdgeId>,
        state_stack: &mut Vec<StateId>,
        out: &mut Vec<OperationPath>,
        max_paths: usize,
    ) {
        if out.len() >= max_paths {
            return;
        }
        for &eid in spec.out_edges(current) {
            let edge = spec.edge(eid);
            if edge.dst == initial {
                if !edge_stack.is_empty() || current != initial {
                    let mut edges = edge_stack.clone();
                    edges.push(eid);
                    let mut states = state_stack.clone();
                    states.push(initial);
                    out.push(OperationPath { edges, states });
                    if out.len() >= max_paths {
                        return;
                    }
                }
                continue;
            }
            if state_stack.contains(&edge.dst) {
                continue; // simple paths only
            }
            edge_stack.push(eid);
            state_stack.push(edge.dst);
            dfs(spec, initial, edge.dst, edge_stack, state_stack, out, max_paths);
            edge_stack.pop();
            state_stack.pop();
        }
    }

    dfs(
        spec,
        initial,
        initial,
        &mut edge_stack,
        &mut state_stack,
        &mut out,
        max_paths,
    );
    out
}

/// A reservation table: the structure resources (managers) whose tokens are
/// held during each step of an operation path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReservationTable {
    /// `steps[k]` = managers holding tokens during step `k` (sorted).
    pub steps: Vec<Vec<ManagerId>>,
}

impl ReservationTable {
    /// True if the resource `manager` is held at step `k`.
    pub fn holds(&self, k: usize, manager: ManagerId) -> bool {
        self.steps.get(k).is_some_and(|s| s.contains(&manager))
    }

    /// Path length in steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True if the table has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Computes the reservation table of `path` by symbolically executing its
/// allocate/release/discard primitives (identifiers are abstracted away:
/// holding *any* token of a manager counts as holding the resource).
pub fn reservation_table(spec: &StateMachineSpec, path: &OperationPath) -> ReservationTable {
    let mut held: Vec<ManagerId> = Vec::new();
    let mut steps = Vec::with_capacity(path.edges.len());
    for &eid in &path.edges {
        let edge = spec.edge(eid);
        for prim in &edge.condition {
            match *prim {
                Primitive::Allocate { manager, .. } => {
                    if !held.contains(&manager) {
                        held.push(manager);
                    }
                }
                Primitive::Release { manager, .. } => {
                    if let Some(pos) = held.iter().position(|&m| m == manager) {
                        held.remove(pos);
                    }
                }
                Primitive::Discard { manager, .. } => match manager {
                    Some(m) => {
                        if let Some(pos) = held.iter().position(|&x| x == m) {
                            held.remove(pos);
                        }
                    }
                    None => held.clear(),
                },
                Primitive::Inquire { .. } => {}
            }
        }
        let mut now = held.clone();
        now.sort_unstable();
        steps.push(now);
    }
    ReservationTable { steps }
}

/// The step index (1-based cycle count from operation start) at which the
/// operation first *releases* a token of `manager` along `path` — the
/// paper's "operand latency" when `manager` is the register file.
pub fn release_step(
    spec: &StateMachineSpec,
    path: &OperationPath,
    manager: ManagerId,
) -> Option<usize> {
    path.edges.iter().enumerate().find_map(|(k, &eid)| {
        spec.edge(eid).condition.iter().any(|p| {
            matches!(*p, Primitive::Release { manager: m, .. } if m == manager)
        })
        .then_some(k + 1)
    })
}

/// The step index at which the operation first *inquires* of `manager`
/// (e.g. the cycle source operands are read).
pub fn inquire_step(
    spec: &StateMachineSpec,
    path: &OperationPath,
    manager: ManagerId,
) -> Option<usize> {
    path.edges.iter().enumerate().find_map(|(k, &eid)| {
        spec.edge(eid).condition.iter().any(|p| {
            matches!(*p, Primitive::Inquire { manager: m, .. } if m == manager)
        })
        .then_some(k + 1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SpecBuilder;
    use crate::token::IdentExpr;

    /// I -> F -> D -> I with stage managers 0 and 1 and a reg file 2.
    fn spec3() -> std::sync::Arc<StateMachineSpec> {
        let mf = ManagerId(0);
        let md = ManagerId(1);
        let rf = ManagerId(2);
        let mut b = SpecBuilder::new("p");
        let i = b.state("I");
        let f = b.state("F");
        let d = b.state("D");
        b.initial(i);
        b.edge(i, f).allocate(mf, IdentExpr::Const(0));
        b.edge(f, d)
            .release(mf, IdentExpr::AnyHeld)
            .allocate(md, IdentExpr::Const(0))
            .inquire(rf, IdentExpr::Const(1));
        b.edge(d, i).release(md, IdentExpr::AnyHeld);
        b.build().unwrap()
    }

    #[test]
    fn enumerates_the_single_path() {
        let spec = spec3();
        let paths = enumerate_paths(&spec, 16);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 3);
        assert_eq!(paths[0].states.len(), 4);
        assert_eq!(paths[0].states[0], spec.initial());
        assert_eq!(*paths[0].states.last().unwrap(), spec.initial());
    }

    #[test]
    fn enumerates_parallel_paths() {
        // I -> A -> I plus I -> B -> I: two paths.
        let mut b = SpecBuilder::new("p");
        let i = b.state("I");
        let a = b.state("A");
        let z = b.state("B");
        b.initial(i);
        b.edge(i, a);
        b.edge(a, i);
        b.edge(i, z);
        b.edge(z, i);
        let spec = b.build().unwrap();
        let paths = enumerate_paths(&spec, 16);
        assert_eq!(paths.len(), 2);
    }

    #[test]
    fn max_paths_caps_enumeration() {
        let mut b = SpecBuilder::new("p");
        let i = b.state("I");
        b.initial(i);
        for k in 0..8 {
            let s = b.state(format!("S{k}"));
            b.edge(i, s);
            b.edge(s, i);
        }
        let spec = b.build().unwrap();
        assert_eq!(enumerate_paths(&spec, 3).len(), 3);
    }

    #[test]
    fn reservation_table_tracks_holds() {
        let spec = spec3();
        let path = &enumerate_paths(&spec, 16)[0];
        let table = reservation_table(&spec, path);
        assert_eq!(table.len(), 3);
        assert!(table.holds(0, ManagerId(0))); // F holds fetch
        assert!(!table.holds(1, ManagerId(0))); // released at D
        assert!(table.holds(1, ManagerId(1))); // D holds decode
        assert!(!table.holds(2, ManagerId(1))); // released on leave
        assert!(!table.is_empty());
    }

    #[test]
    fn latency_extraction() {
        let spec = spec3();
        let path = &enumerate_paths(&spec, 16)[0];
        assert_eq!(release_step(&spec, path, ManagerId(0)), Some(2));
        assert_eq!(release_step(&spec, path, ManagerId(1)), Some(3));
        assert_eq!(inquire_step(&spec, path, ManagerId(2)), Some(2));
        assert_eq!(release_step(&spec, path, ManagerId(9)), None);
        assert_eq!(inquire_step(&spec, path, ManagerId(9)), None);
    }
}
