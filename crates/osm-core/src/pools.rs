//! Reusable token-manager implementations.
//!
//! The paper observes that "TMIs of the same nature are very much alike and
//! code reuse can be exploited to a great extent" (§4). These pools cover the
//! recurring shapes:
//!
//! * [`ExclusivePool`] — N exclusively-owned tokens (pipeline-stage occupancy,
//!   function units, queue entries), with per-token release blocking for the
//!   variable-latency idiom.
//! * [`CountingPool`] — K interchangeable tokens, optionally refilled every
//!   cycle (issue/dispatch bandwidth, ports).
//! * [`RegScoreboard`] — a register file exposing *value tokens* (inquire-only
//!   reads) and *register-update tokens* (exclusive write permissions), the
//!   paper's data-hazard idiom.
//! * [`ResetManager`] — accepts inquiries only from OSMs armed for reset,
//!   the paper's control-hazard idiom.

use crate::ids::{ManagerId, OsmId};
use crate::manager::TokenManager;
use crate::persist::{ByteReader, ByteWriter};
use crate::snapshot::{ManagerSnapshot, Snapshot};
use crate::token::{Token, TokenIdent};
use std::any::Any;

// Leading kind byte of each pool's serialized snapshot, so a payload routed
// to the wrong manager kind is refused at decode instead of downcast time.
const KIND_EXCLUSIVE: u8 = b'X';
const KIND_COUNTING: u8 = b'C';
const KIND_SCOREBOARD: u8 = b'S';
const KIND_RESET: u8 = b'R';

fn put_slot(w: &mut ByteWriter, slot: &SlotState) {
    match slot {
        SlotState::Free => w.put_u8(0),
        SlotState::Pending(o) => {
            w.put_u8(1);
            w.put_u32(o.0);
        }
        SlotState::Owned(o) => {
            w.put_u8(2);
            w.put_u32(o.0);
        }
        SlotState::Releasing(o) => {
            w.put_u8(3);
            w.put_u32(o.0);
        }
    }
}

fn take_slot(r: &mut ByteReader<'_>) -> Option<SlotState> {
    Some(match r.take_u8()? {
        0 => SlotState::Free,
        1 => SlotState::Pending(OsmId(r.take_u32()?)),
        2 => SlotState::Owned(OsmId(r.take_u32()?)),
        3 => SlotState::Releasing(OsmId(r.take_u32()?)),
        _ => return None,
    })
}

fn put_slots(w: &mut ByteWriter, slots: &[SlotState]) {
    w.put_u32(slots.len() as u32);
    for s in slots {
        put_slot(w, s);
    }
}

fn take_slots(r: &mut ByteReader<'_>) -> Option<Vec<SlotState>> {
    let n = r.take_u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        out.push(take_slot(r)?);
    }
    Some(out)
}

/// Ownership state of one token in an [`ExclusivePool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Free,
    /// Tentatively granted during condition evaluation.
    Pending(OsmId),
    Owned(OsmId),
    /// Tentatively released during condition evaluation.
    Releasing(OsmId),
}

/// A pool of `n` exclusively-owned tokens.
///
/// Identifier `i` names token `i`; [`TokenIdent::ANY`] requests any free
/// token. Most structure resources of a microprocessor (stage occupancy,
/// function units, buffer entries) are exclusive and map onto this pool.
///
/// Variable latency (paper §4) is modeled by [`ExclusivePool::block_release`]:
/// while a token's release is blocked, its owner's release requests are
/// turned down and the owning operation stalls in place.
#[derive(Debug)]
pub struct ExclusivePool {
    name: String,
    id: ManagerId,
    slots: Vec<SlotState>,
    release_blocked: Vec<bool>,
}

impl ExclusivePool {
    /// Creates a pool named `name` with `capacity` tokens.
    pub fn new(name: impl Into<String>, capacity: usize) -> Self {
        ExclusivePool {
            name: name.into(),
            id: ManagerId(u32::MAX),
            slots: vec![SlotState::Free; capacity],
            release_blocked: vec![false; capacity],
        }
    }

    /// Total number of tokens.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of tokens currently free (not pending, owned or releasing).
    pub fn free_count(&self) -> usize {
        self.slots.iter().filter(|s| **s == SlotState::Free).count()
    }

    /// Current owner of token `index`, if owned.
    pub fn owner(&self, index: usize) -> Option<OsmId> {
        match self.slots.get(index) {
            Some(SlotState::Owned(o)) | Some(SlotState::Releasing(o)) => Some(*o),
            _ => None,
        }
    }

    /// Blocks or unblocks release of token `index` (variable latency).
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn block_release(&mut self, index: usize, blocked: bool) {
        self.release_blocked[index] = blocked;
    }

    /// True if release of token `index` is currently blocked.
    pub fn is_release_blocked(&self, index: usize) -> bool {
        self.release_blocked[index]
    }

    fn slot_index(&self, ident: TokenIdent) -> Option<usize> {
        if ident.is_any() {
            self.slots.iter().position(|s| *s == SlotState::Free)
        } else {
            let idx = ident.0 as usize;
            (idx < self.slots.len()).then_some(idx)
        }
    }
}

impl TokenManager for ExclusivePool {
    fn name(&self) -> &str {
        &self.name
    }

    fn attach(&mut self, id: ManagerId) {
        self.id = id;
    }

    fn prepare_allocate(&mut self, osm: OsmId, ident: TokenIdent) -> Option<Token> {
        let idx = self.slot_index(ident)?;
        if self.slots[idx] == SlotState::Free {
            self.slots[idx] = SlotState::Pending(osm);
            Some(Token::new(self.id, idx as u64))
        } else {
            None
        }
    }

    fn inquire(&self, _osm: OsmId, ident: TokenIdent) -> bool {
        if ident.is_any() {
            self.slots.contains(&SlotState::Free)
        } else {
            matches!(self.slots.get(ident.0 as usize), Some(SlotState::Free))
        }
    }

    fn prepare_release(&mut self, osm: OsmId, token: Token) -> bool {
        // Token raws arrive from OSM buffers and may be damaged (fault
        // injection): an out-of-range raw is an unreleasable token, never a
        // panic.
        let idx = token.raw as usize;
        if self.release_blocked.get(idx).copied().unwrap_or(false) {
            return false;
        }
        if self.slots.get(idx) == Some(&SlotState::Owned(osm)) {
            self.slots[idx] = SlotState::Releasing(osm);
            true
        } else {
            false
        }
    }

    fn commit_allocate(&mut self, osm: OsmId, token: Token) {
        // Commit/abort raws were validated by the matching prepare; an
        // out-of-range raw here is a protocol violation by a caller or a
        // buggy decorator — scream in debug builds, no-op in release.
        let Some(slot) = self.slots.get_mut(token.raw as usize) else {
            debug_assert!(false, "commit_allocate of foreign token {token}");
            return;
        };
        debug_assert_eq!(*slot, SlotState::Pending(osm));
        *slot = SlotState::Owned(osm);
    }

    fn abort_allocate(&mut self, osm: OsmId, token: Token) {
        let Some(slot) = self.slots.get_mut(token.raw as usize) else {
            debug_assert!(false, "abort_allocate of foreign token {token}");
            return;
        };
        debug_assert_eq!(*slot, SlotState::Pending(osm));
        *slot = SlotState::Free;
    }

    fn commit_release(&mut self, osm: OsmId, token: Token) {
        let Some(slot) = self.slots.get_mut(token.raw as usize) else {
            debug_assert!(false, "commit_release of foreign token {token}");
            return;
        };
        debug_assert_eq!(*slot, SlotState::Releasing(osm));
        *slot = SlotState::Free;
    }

    fn abort_release(&mut self, osm: OsmId, token: Token) {
        let Some(slot) = self.slots.get_mut(token.raw as usize) else {
            debug_assert!(false, "abort_release of foreign token {token}");
            return;
        };
        debug_assert_eq!(*slot, SlotState::Releasing(osm));
        *slot = SlotState::Owned(osm);
    }

    fn discard(&mut self, osm: OsmId, token: Token) {
        // Discards must always succeed (squash path) even for damaged
        // tokens; an unknown raw is silently ignored.
        let _ = osm;
        if let Some(slot) = self.slots.get_mut(token.raw as usize) {
            debug_assert!(matches!(
                *slot,
                SlotState::Owned(o) | SlotState::Releasing(o) if o == osm
            ));
            *slot = SlotState::Free;
        }
    }

    fn owner_of(&self, ident: TokenIdent) -> Option<OsmId> {
        if ident.is_any() || ident.is_none() {
            None
        } else {
            self.owner(ident.0 as usize)
        }
    }

    fn owned_tokens(&self) -> Option<Vec<(Token, OsmId)>> {
        Some(
            self.slots
                .iter()
                .enumerate()
                .filter_map(|(i, s)| match s {
                    SlotState::Owned(o) | SlotState::Releasing(o) => {
                        Some((Token::new(self.id, i as u64), *o))
                    }
                    _ => None,
                })
                .collect(),
        )
    }

    fn snapshot_state(&self) -> Option<ManagerSnapshot> {
        Some(Snapshot::snapshot(self))
    }

    fn restore_state(&mut self, snap: &ManagerSnapshot) -> bool {
        Snapshot::restore(self, snap)
    }

    fn encode_snapshot(&self, snap: &ManagerSnapshot) -> Option<Vec<u8>> {
        let state = snap.downcast::<ExclusivePoolState>()?;
        let mut w = ByteWriter::new();
        w.put_u8(KIND_EXCLUSIVE);
        put_slots(&mut w, &state.slots);
        w.put_u32(state.release_blocked.len() as u32);
        for &b in &state.release_blocked {
            w.put_bool(b);
        }
        Some(w.into_bytes())
    }

    fn decode_snapshot(&self, bytes: &[u8]) -> Option<ManagerSnapshot> {
        let mut r = ByteReader::new(bytes);
        if r.take_u8()? != KIND_EXCLUSIVE {
            return None;
        }
        let slots = take_slots(&mut r)?;
        let n = r.take_u32()? as usize;
        let mut release_blocked = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            release_blocked.push(r.take_bool()?);
        }
        r.is_done().then(|| {
            ManagerSnapshot::of(ExclusivePoolState {
                slots,
                release_blocked,
            })
        })
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Snapshot payload of an [`ExclusivePool`].
struct ExclusivePoolState {
    slots: Vec<SlotState>,
    release_blocked: Vec<bool>,
}

impl Snapshot for ExclusivePool {
    fn snapshot(&self) -> ManagerSnapshot {
        ManagerSnapshot::of(ExclusivePoolState {
            slots: self.slots.clone(),
            release_blocked: self.release_blocked.clone(),
        })
    }

    fn restore(&mut self, snap: &ManagerSnapshot) -> bool {
        let Some(state) = snap.downcast::<ExclusivePoolState>() else {
            return false;
        };
        if state.slots.len() != self.slots.len() {
            return false;
        }
        self.slots.clone_from(&state.slots);
        self.release_blocked.clone_from(&state.release_blocked);
        true
    }
}

/// A pool of `capacity` interchangeable tokens.
///
/// Unlike [`ExclusivePool`], tokens carry no identity: any allocation
/// succeeds while some remain. With `refill_each_cycle`, the pool restores
/// full capacity at every clock and *does not* regain capacity on release
/// or discard within the cycle — the natural model for per-cycle bandwidth
/// limits such as "dispatch at most 2 instructions per cycle" (used by the
/// PowerPC 750 model). The idiom for consuming one bandwidth token on an
/// edge is `allocate(pool, ANY)` plus `discard(pool, AnyHeld)` in the same
/// condition: the commit acquires then immediately drops the token, leaving
/// the buffer clean while still debiting this cycle's budget.
#[derive(Debug)]
pub struct CountingPool {
    name: String,
    id: ManagerId,
    capacity: u64,
    available: u64,
    refill_each_cycle: bool,
}

impl CountingPool {
    /// Creates a pool with `capacity` tokens that are returned explicitly.
    pub fn new(name: impl Into<String>, capacity: u64) -> Self {
        CountingPool {
            name: name.into(),
            id: ManagerId(u32::MAX),
            capacity,
            available: capacity,
            refill_each_cycle: false,
        }
    }

    /// Creates a per-cycle bandwidth pool: capacity restored at every clock.
    pub fn per_cycle(name: impl Into<String>, capacity: u64) -> Self {
        CountingPool {
            refill_each_cycle: true,
            ..CountingPool::new(name, capacity)
        }
    }

    /// Tokens currently available.
    pub fn available(&self) -> u64 {
        self.available
    }

    /// Total capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }
}

impl TokenManager for CountingPool {
    fn name(&self) -> &str {
        &self.name
    }

    fn attach(&mut self, id: ManagerId) {
        self.id = id;
    }

    fn prepare_allocate(&mut self, _osm: OsmId, _ident: TokenIdent) -> Option<Token> {
        if self.available > 0 {
            self.available -= 1;
            Some(Token::new(self.id, 0))
        } else {
            None
        }
    }

    fn inquire(&self, _osm: OsmId, _ident: TokenIdent) -> bool {
        self.available > 0
    }

    fn prepare_release(&mut self, _osm: OsmId, _token: Token) -> bool {
        true
    }

    fn commit_allocate(&mut self, _osm: OsmId, _token: Token) {}

    fn abort_allocate(&mut self, _osm: OsmId, _token: Token) {
        self.available = (self.available + 1).min(self.capacity);
    }

    fn commit_release(&mut self, _osm: OsmId, _token: Token) {
        if !self.refill_each_cycle {
            self.available = (self.available + 1).min(self.capacity);
        }
    }

    fn abort_release(&mut self, _osm: OsmId, _token: Token) {}

    fn discard(&mut self, _osm: OsmId, _token: Token) {
        if !self.refill_each_cycle {
            self.available = (self.available + 1).min(self.capacity);
        }
    }

    fn clock(&mut self, _cycle: u64) -> bool {
        if self.refill_each_cycle {
            // Report dirty even when already full: cheap, and conservatively
            // correct for the sensitivity scheduler.
            self.available = self.capacity;
            true
        } else {
            false
        }
    }

    fn snapshot_state(&self) -> Option<ManagerSnapshot> {
        Some(Snapshot::snapshot(self))
    }

    fn restore_state(&mut self, snap: &ManagerSnapshot) -> bool {
        Snapshot::restore(self, snap)
    }

    fn encode_snapshot(&self, snap: &ManagerSnapshot) -> Option<Vec<u8>> {
        let state = snap.downcast::<CountingPoolState>()?;
        let mut w = ByteWriter::new();
        w.put_u8(KIND_COUNTING);
        w.put_u64(state.capacity);
        w.put_u64(state.available);
        w.put_bool(state.refill_each_cycle);
        Some(w.into_bytes())
    }

    fn decode_snapshot(&self, bytes: &[u8]) -> Option<ManagerSnapshot> {
        let mut r = ByteReader::new(bytes);
        if r.take_u8()? != KIND_COUNTING {
            return None;
        }
        let capacity = r.take_u64()?;
        let available = r.take_u64()?;
        let refill_each_cycle = r.take_bool()?;
        r.is_done().then(|| {
            ManagerSnapshot::of(CountingPoolState {
                capacity,
                available,
                refill_each_cycle,
            })
        })
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Snapshot payload of a [`CountingPool`].
struct CountingPoolState {
    capacity: u64,
    available: u64,
    refill_each_cycle: bool,
}

impl Snapshot for CountingPool {
    fn snapshot(&self) -> ManagerSnapshot {
        ManagerSnapshot::of(CountingPoolState {
            capacity: self.capacity,
            available: self.available,
            refill_each_cycle: self.refill_each_cycle,
        })
    }

    fn restore(&mut self, snap: &ManagerSnapshot) -> bool {
        let Some(state) = snap.downcast::<CountingPoolState>() else {
            return false;
        };
        if state.capacity != self.capacity || state.refill_each_cycle != self.refill_each_cycle {
            return false;
        }
        self.available = state.available;
        true
    }
}

/// Identifier-space tag selecting the *register-update* token kind of a
/// [`RegScoreboard`] (the low bits select the register).
const UPDATE_KIND_BIT: u64 = 1 << 32;

/// A register file manager in the style of the paper's `m_r` (§4): it holds
/// the architectural register values, *value tokens* that readers inquire
/// about, and *register-update tokens* that writers allocate at issue and
/// release (with the computed result) at write-back.
///
/// While a register's update token is outstanding, inquiries about its value
/// token fail, stalling dependent operations — the data-hazard idiom. Actual
/// data movement happens in the hardware layer: behaviors call
/// [`RegScoreboard::read`]/[`RegScoreboard::write`] from their commit actions.
#[derive(Debug)]
pub struct RegScoreboard {
    name: String,
    id: ManagerId,
    values: Vec<u64>,
    writer: Vec<SlotState>,
}

impl RegScoreboard {
    /// Creates a scoreboard for `nregs` registers, all values zero.
    pub fn new(name: impl Into<String>, nregs: usize) -> Self {
        RegScoreboard {
            name: name.into(),
            id: ManagerId(u32::MAX),
            values: vec![0; nregs],
            writer: vec![SlotState::Free; nregs],
        }
    }

    /// Identifier of register `r`'s value token (inquire-only).
    pub fn value_ident(r: usize) -> TokenIdent {
        TokenIdent(r as u64)
    }

    /// Identifier of register `r`'s update token (allocate/release).
    pub fn update_ident(r: usize) -> TokenIdent {
        TokenIdent(r as u64 | UPDATE_KIND_BIT)
    }

    /// Number of registers.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the file has no registers.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Reads register `r` (hardware-layer access).
    pub fn read(&self, r: usize) -> u64 {
        self.values[r]
    }

    /// Writes register `r` (hardware-layer access, performed by the
    /// write-back commit action together with the update-token release).
    pub fn write(&mut self, r: usize, value: u64) {
        self.values[r] = value;
    }

    /// True if register `r` has an outstanding (committed) update token.
    pub fn is_busy(&self, r: usize) -> bool {
        !matches!(self.writer[r], SlotState::Free)
    }

    /// The OSM holding register `r`'s update token, if any.
    pub fn writer_of(&self, r: usize) -> Option<OsmId> {
        match self.writer[r] {
            SlotState::Owned(o) | SlotState::Releasing(o) | SlotState::Pending(o) => Some(o),
            SlotState::Free => None,
        }
    }

    fn split(ident: TokenIdent) -> Option<(bool, usize)> {
        if ident.is_none() || ident.is_any() {
            return None;
        }
        let update = ident.0 & UPDATE_KIND_BIT != 0;
        Some((update, (ident.0 & !UPDATE_KIND_BIT) as usize))
    }
}

impl TokenManager for RegScoreboard {
    fn name(&self) -> &str {
        &self.name
    }

    fn attach(&mut self, id: ManagerId) {
        self.id = id;
    }

    fn prepare_allocate(&mut self, osm: OsmId, ident: TokenIdent) -> Option<Token> {
        let (update, r) = Self::split(ident)?;
        if !update || r >= self.writer.len() {
            return None; // value tokens cannot be allocated, only inquired
        }
        if self.writer[r] == SlotState::Free {
            self.writer[r] = SlotState::Pending(osm);
            Some(Token::new(self.id, ident.0))
        } else {
            None
        }
    }

    fn inquire(&self, osm: OsmId, ident: TokenIdent) -> bool {
        let Some((update, r)) = Self::split(ident) else {
            return false;
        };
        if r >= self.writer.len() {
            return false;
        }
        match self.writer[r] {
            SlotState::Free => true,
            // An operation's own pending/held update token does not mask its
            // reads (it has not produced the value it will write yet, but it
            // also never reads its own destination as a source after rename).
            SlotState::Pending(o) | SlotState::Owned(o) | SlotState::Releasing(o) => {
                !update && o == osm
            }
        }
    }

    fn prepare_release(&mut self, osm: OsmId, token: Token) -> bool {
        // Raw may be damaged (fault injection): out-of-range registers are
        // simply unreleasable, never a panic.
        let Some((update, r)) = Self::split(TokenIdent(token.raw)) else {
            return false;
        };
        if update && self.writer.get(r) == Some(&SlotState::Owned(osm)) {
            self.writer[r] = SlotState::Releasing(osm);
            true
        } else {
            false
        }
    }

    fn commit_allocate(&mut self, osm: OsmId, token: Token) {
        if let Some((true, r)) = Self::split(TokenIdent(token.raw)) {
            // Raw validated by the matching prepare; out-of-range here is a
            // protocol violation — scream in debug, no-op in release.
            let Some(slot) = self.writer.get_mut(r) else {
                debug_assert!(false, "commit_allocate of foreign token {token}");
                return;
            };
            debug_assert_eq!(*slot, SlotState::Pending(osm));
            *slot = SlotState::Owned(osm);
        }
    }

    fn abort_allocate(&mut self, osm: OsmId, token: Token) {
        if let Some((true, r)) = Self::split(TokenIdent(token.raw)) {
            let Some(slot) = self.writer.get_mut(r) else {
                debug_assert!(false, "abort_allocate of foreign token {token}");
                return;
            };
            debug_assert_eq!(*slot, SlotState::Pending(osm));
            *slot = SlotState::Free;
        }
    }

    fn commit_release(&mut self, osm: OsmId, token: Token) {
        if let Some((true, r)) = Self::split(TokenIdent(token.raw)) {
            let Some(slot) = self.writer.get_mut(r) else {
                debug_assert!(false, "commit_release of foreign token {token}");
                return;
            };
            debug_assert_eq!(*slot, SlotState::Releasing(osm));
            *slot = SlotState::Free;
        }
    }

    fn abort_release(&mut self, osm: OsmId, token: Token) {
        if let Some((true, r)) = Self::split(TokenIdent(token.raw)) {
            let Some(slot) = self.writer.get_mut(r) else {
                debug_assert!(false, "abort_release of foreign token {token}");
                return;
            };
            debug_assert_eq!(*slot, SlotState::Releasing(osm));
            *slot = SlotState::Owned(osm);
        }
    }

    fn discard(&mut self, _osm: OsmId, token: Token) {
        // Discards always succeed, even for damaged raws (squash path).
        if let Some((true, r)) = Self::split(TokenIdent(token.raw)) {
            if let Some(slot) = self.writer.get_mut(r) {
                *slot = SlotState::Free;
            }
        }
    }

    fn owner_of(&self, ident: TokenIdent) -> Option<OsmId> {
        let (_, r) = Self::split(ident)?;
        if r < self.writer.len() {
            self.writer_of(r)
        } else {
            None
        }
    }

    fn snapshot_state(&self) -> Option<ManagerSnapshot> {
        Some(Snapshot::snapshot(self))
    }

    fn restore_state(&mut self, snap: &ManagerSnapshot) -> bool {
        Snapshot::restore(self, snap)
    }

    fn encode_snapshot(&self, snap: &ManagerSnapshot) -> Option<Vec<u8>> {
        let state = snap.downcast::<ScoreboardState>()?;
        let mut w = ByteWriter::new();
        w.put_u8(KIND_SCOREBOARD);
        w.put_u32(state.values.len() as u32);
        for &v in &state.values {
            w.put_u64(v);
        }
        put_slots(&mut w, &state.writer);
        Some(w.into_bytes())
    }

    fn decode_snapshot(&self, bytes: &[u8]) -> Option<ManagerSnapshot> {
        let mut r = ByteReader::new(bytes);
        if r.take_u8()? != KIND_SCOREBOARD {
            return None;
        }
        let n = r.take_u32()? as usize;
        let mut values = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            values.push(r.take_u64()?);
        }
        let writer = take_slots(&mut r)?;
        r.is_done()
            .then(|| ManagerSnapshot::of(ScoreboardState { values, writer }))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Snapshot payload of a [`RegScoreboard`].
struct ScoreboardState {
    values: Vec<u64>,
    writer: Vec<SlotState>,
}

impl Snapshot for RegScoreboard {
    fn snapshot(&self) -> ManagerSnapshot {
        ManagerSnapshot::of(ScoreboardState {
            values: self.values.clone(),
            writer: self.writer.clone(),
        })
    }

    fn restore(&mut self, snap: &ManagerSnapshot) -> bool {
        let Some(state) = snap.downcast::<ScoreboardState>() else {
            return false;
        };
        if state.values.len() != self.values.len() {
            return false;
        }
        self.values.clone_from(&state.values);
        self.writer.clone_from(&state.writer);
        true
    }
}

/// The control-hazard manager of paper §4 (`m_reset`).
///
/// Reset edges carry an inquiry to this manager plus discard primitives; the
/// manager rejects inquiries from normal OSMs, so reset edges stay disabled.
/// When a mis-predicted branch resolves, the execute logic *arms* the
/// speculative OSMs; at the next control step their (high-priority) reset
/// edges fire, the tokens are discarded and the operations are killed.
#[derive(Debug, Default)]
pub struct ResetManager {
    name: String,
    armed: Vec<OsmId>,
}

impl ResetManager {
    /// Creates a reset manager with no OSMs armed.
    pub fn new(name: impl Into<String>) -> Self {
        ResetManager {
            name: name.into(),
            armed: Vec::new(),
        }
    }

    /// Arms `osm` for reset: its inquiries now succeed.
    pub fn arm(&mut self, osm: OsmId) {
        if !self.armed.contains(&osm) {
            self.armed.push(osm);
        }
    }

    /// Disarms `osm` (typically called from the reset edge's commit action).
    pub fn disarm(&mut self, osm: OsmId) {
        self.armed.retain(|o| *o != osm);
    }

    /// Disarms every OSM.
    pub fn disarm_all(&mut self) {
        self.armed.clear();
    }

    /// True if `osm` is armed.
    pub fn is_armed(&self, osm: OsmId) -> bool {
        self.armed.contains(&osm)
    }

    /// Number of armed OSMs.
    pub fn armed_count(&self) -> usize {
        self.armed.len()
    }
}

impl TokenManager for ResetManager {
    fn name(&self) -> &str {
        &self.name
    }

    fn prepare_allocate(&mut self, _osm: OsmId, _ident: TokenIdent) -> Option<Token> {
        None
    }

    fn inquire(&self, osm: OsmId, _ident: TokenIdent) -> bool {
        self.is_armed(osm)
    }

    fn prepare_release(&mut self, _osm: OsmId, _token: Token) -> bool {
        false
    }

    fn commit_allocate(&mut self, _osm: OsmId, _token: Token) {}
    fn abort_allocate(&mut self, _osm: OsmId, _token: Token) {}
    fn commit_release(&mut self, _osm: OsmId, _token: Token) {}
    fn abort_release(&mut self, _osm: OsmId, _token: Token) {}
    fn discard(&mut self, _osm: OsmId, _token: Token) {}

    fn snapshot_state(&self) -> Option<ManagerSnapshot> {
        Some(Snapshot::snapshot(self))
    }

    fn restore_state(&mut self, snap: &ManagerSnapshot) -> bool {
        Snapshot::restore(self, snap)
    }

    fn encode_snapshot(&self, snap: &ManagerSnapshot) -> Option<Vec<u8>> {
        let state = snap.downcast::<ResetState>()?;
        let mut w = ByteWriter::new();
        w.put_u8(KIND_RESET);
        w.put_u32(state.armed.len() as u32);
        for o in &state.armed {
            w.put_u32(o.0);
        }
        Some(w.into_bytes())
    }

    fn decode_snapshot(&self, bytes: &[u8]) -> Option<ManagerSnapshot> {
        let mut r = ByteReader::new(bytes);
        if r.take_u8()? != KIND_RESET {
            return None;
        }
        let n = r.take_u32()? as usize;
        let mut armed = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            armed.push(OsmId(r.take_u32()?));
        }
        r.is_done().then(|| ManagerSnapshot::of(ResetState { armed }))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Snapshot payload of a [`ResetManager`].
struct ResetState {
    armed: Vec<OsmId>,
}

impl Snapshot for ResetManager {
    fn snapshot(&self) -> ManagerSnapshot {
        ManagerSnapshot::of(ResetState {
            armed: self.armed.clone(),
        })
    }

    fn restore(&mut self, snap: &ManagerSnapshot) -> bool {
        let Some(state) = snap.downcast::<ResetState>() else {
            return false;
        };
        self.armed.clone_from(&state.armed);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attach<M: TokenManager>(mut m: M, id: u32) -> M {
        m.attach(ManagerId(id));
        m
    }

    #[test]
    fn exclusive_allocate_commit_cycle() {
        let mut p = attach(ExclusivePool::new("stage", 1), 0);
        let osm = OsmId(1);
        let tok = p.prepare_allocate(osm, TokenIdent(0)).expect("free token");
        assert_eq!(tok.manager, ManagerId(0));
        // Pending: not available to others.
        assert!(p.prepare_allocate(OsmId(2), TokenIdent(0)).is_none());
        assert!(!p.inquire(OsmId(2), TokenIdent(0)));
        p.commit_allocate(osm, tok);
        assert_eq!(p.owner(0), Some(osm));
        // Release round-trip.
        assert!(p.prepare_release(osm, tok));
        p.abort_release(osm, tok);
        assert_eq!(p.owner(0), Some(osm));
        assert!(p.prepare_release(osm, tok));
        p.commit_release(osm, tok);
        assert_eq!(p.owner(0), None);
        assert_eq!(p.free_count(), 1);
    }

    #[test]
    fn exclusive_abort_allocate_restores_token() {
        let mut p = attach(ExclusivePool::new("stage", 1), 0);
        let tok = p.prepare_allocate(OsmId(1), TokenIdent(0)).unwrap();
        p.abort_allocate(OsmId(1), tok);
        assert!(p.inquire(OsmId(2), TokenIdent(0)));
        assert!(p.prepare_allocate(OsmId(2), TokenIdent(0)).is_some());
    }

    #[test]
    fn exclusive_any_picks_free_slot() {
        let mut p = attach(ExclusivePool::new("units", 2), 0);
        let t0 = p.prepare_allocate(OsmId(1), TokenIdent::ANY).unwrap();
        p.commit_allocate(OsmId(1), t0);
        let t1 = p.prepare_allocate(OsmId(2), TokenIdent::ANY).unwrap();
        p.commit_allocate(OsmId(2), t1);
        assert_ne!(t0.raw, t1.raw);
        assert!(p.prepare_allocate(OsmId(3), TokenIdent::ANY).is_none());
    }

    #[test]
    fn exclusive_release_denied_while_blocked() {
        let mut p = attach(ExclusivePool::new("fetch", 1), 0);
        let tok = p.prepare_allocate(OsmId(1), TokenIdent(0)).unwrap();
        p.commit_allocate(OsmId(1), tok);
        p.block_release(0, true);
        assert!(!p.prepare_release(OsmId(1), tok));
        p.block_release(0, false);
        assert!(p.prepare_release(OsmId(1), tok));
    }

    #[test]
    fn exclusive_release_by_non_owner_fails() {
        let mut p = attach(ExclusivePool::new("fetch", 1), 0);
        let tok = p.prepare_allocate(OsmId(1), TokenIdent(0)).unwrap();
        p.commit_allocate(OsmId(1), tok);
        assert!(!p.prepare_release(OsmId(9), tok));
    }

    #[test]
    fn exclusive_discard_frees_token() {
        let mut p = attach(ExclusivePool::new("fetch", 1), 0);
        let tok = p.prepare_allocate(OsmId(1), TokenIdent(0)).unwrap();
        p.commit_allocate(OsmId(1), tok);
        p.discard(OsmId(1), tok);
        assert_eq!(p.free_count(), 1);
    }

    #[test]
    fn exclusive_out_of_range_ident() {
        let mut p = attach(ExclusivePool::new("fetch", 1), 0);
        assert!(p.prepare_allocate(OsmId(1), TokenIdent(5)).is_none());
        assert!(!p.inquire(OsmId(1), TokenIdent(5)));
    }

    #[test]
    fn exclusive_owner_of_reports_committed_owner() {
        let mut p = attach(ExclusivePool::new("fetch", 1), 0);
        assert_eq!(p.owner_of(TokenIdent(0)), None);
        let tok = p.prepare_allocate(OsmId(4), TokenIdent(0)).unwrap();
        p.commit_allocate(OsmId(4), tok);
        assert_eq!(p.owner_of(TokenIdent(0)), Some(OsmId(4)));
    }

    #[test]
    fn counting_pool_exhausts_and_returns() {
        let mut p = attach(CountingPool::new("ports", 2), 0);
        let a = p.prepare_allocate(OsmId(1), TokenIdent::ANY).unwrap();
        let _b = p.prepare_allocate(OsmId(2), TokenIdent::ANY).unwrap();
        assert!(p.prepare_allocate(OsmId(3), TokenIdent::ANY).is_none());
        assert!(!p.inquire(OsmId(3), TokenIdent::ANY));
        p.abort_allocate(OsmId(1), a);
        assert_eq!(p.available(), 1);
        assert!(p.inquire(OsmId(3), TokenIdent::ANY));
    }

    #[test]
    fn counting_pool_per_cycle_refills() {
        let mut p = attach(CountingPool::per_cycle("dispatch", 2), 0);
        let a = p.prepare_allocate(OsmId(1), TokenIdent::ANY).unwrap();
        p.commit_allocate(OsmId(1), a);
        let b = p.prepare_allocate(OsmId(2), TokenIdent::ANY).unwrap();
        p.commit_allocate(OsmId(2), b);
        assert_eq!(p.available(), 0);
        p.clock(1);
        assert_eq!(p.available(), 2);
    }

    #[test]
    fn counting_pool_release_capped_at_capacity() {
        let mut p = attach(CountingPool::new("ports", 1), 0);
        let t = Token::new(ManagerId(0), 0);
        p.commit_release(OsmId(1), t);
        assert_eq!(p.available(), 1);
    }

    #[test]
    fn scoreboard_data_hazard_blocks_reader() {
        let mut rf = attach(RegScoreboard::new("regs", 4), 0);
        let writer = OsmId(1);
        let reader = OsmId(2);
        let upd = rf
            .prepare_allocate(writer, RegScoreboard::update_ident(2))
            .expect("update token free");
        rf.commit_allocate(writer, upd);
        // Dependent reader stalls on the value token.
        assert!(!rf.inquire(reader, RegScoreboard::value_ident(2)));
        // Independent register still readable.
        assert!(rf.inquire(reader, RegScoreboard::value_ident(3)));
        // Write-back: release + data write.
        rf.write(2, 42);
        assert!(rf.prepare_release(writer, upd));
        rf.commit_release(writer, upd);
        assert!(rf.inquire(reader, RegScoreboard::value_ident(2)));
        assert_eq!(rf.read(2), 42);
    }

    #[test]
    fn scoreboard_waw_stalls_second_writer() {
        let mut rf = attach(RegScoreboard::new("regs", 4), 0);
        let t = rf
            .prepare_allocate(OsmId(1), RegScoreboard::update_ident(1))
            .unwrap();
        rf.commit_allocate(OsmId(1), t);
        assert!(rf
            .prepare_allocate(OsmId(2), RegScoreboard::update_ident(1))
            .is_none());
    }

    #[test]
    fn scoreboard_value_tokens_cannot_be_allocated() {
        let mut rf = attach(RegScoreboard::new("regs", 4), 0);
        assert!(rf
            .prepare_allocate(OsmId(1), RegScoreboard::value_ident(1))
            .is_none());
    }

    #[test]
    fn scoreboard_own_update_does_not_mask_own_read() {
        let mut rf = attach(RegScoreboard::new("regs", 4), 0);
        let t = rf
            .prepare_allocate(OsmId(1), RegScoreboard::update_ident(3))
            .unwrap();
        rf.commit_allocate(OsmId(1), t);
        assert!(rf.inquire(OsmId(1), RegScoreboard::value_ident(3)));
        assert!(!rf.inquire(OsmId(2), RegScoreboard::value_ident(3)));
    }

    #[test]
    fn scoreboard_discard_clears_writer() {
        let mut rf = attach(RegScoreboard::new("regs", 4), 0);
        let t = rf
            .prepare_allocate(OsmId(1), RegScoreboard::update_ident(0))
            .unwrap();
        rf.commit_allocate(OsmId(1), t);
        rf.discard(OsmId(1), t);
        assert!(!rf.is_busy(0));
    }

    #[test]
    fn scoreboard_owner_of_reports_writer() {
        let mut rf = attach(RegScoreboard::new("regs", 4), 0);
        let t = rf
            .prepare_allocate(OsmId(7), RegScoreboard::update_ident(1))
            .unwrap();
        rf.commit_allocate(OsmId(7), t);
        assert_eq!(rf.owner_of(RegScoreboard::update_ident(1)), Some(OsmId(7)));
        assert_eq!(rf.owner_of(RegScoreboard::value_ident(1)), Some(OsmId(7)));
    }

    #[test]
    fn exclusive_release_of_damaged_raw_is_refused_not_panic() {
        let mut p = attach(ExclusivePool::new("fetch", 1), 0);
        let damaged = Token::new(ManagerId(0), (1 << 63) | 5);
        assert!(!p.prepare_release(OsmId(1), damaged));
        p.discard(OsmId(1), damaged); // squash of damaged token: no-op
        assert_eq!(p.free_count(), 1);
    }

    #[test]
    fn scoreboard_release_of_damaged_raw_is_refused_not_panic() {
        let mut rf = attach(RegScoreboard::new("regs", 4), 0);
        let damaged = Token::new(ManagerId(0), UPDATE_KIND_BIT | (1 << 40));
        assert!(!rf.prepare_release(OsmId(1), damaged));
        rf.discard(OsmId(1), damaged);
    }

    #[test]
    fn exclusive_snapshot_roundtrip() {
        let mut p = attach(ExclusivePool::new("stage", 2), 0);
        let t = p.prepare_allocate(OsmId(3), TokenIdent(1)).unwrap();
        p.commit_allocate(OsmId(3), t);
        p.block_release(1, true);
        let snap = p.snapshot_state().unwrap();
        p.block_release(1, false);
        assert!(p.prepare_release(OsmId(3), t));
        p.commit_release(OsmId(3), t);
        assert_eq!(p.owner(1), None);
        assert!(p.restore_state(&snap));
        assert_eq!(p.owner(1), Some(OsmId(3)));
        assert!(p.is_release_blocked(1));
        // Wrong-shape snapshot refused.
        let other = attach(ExclusivePool::new("stage", 5), 0).snapshot_state().unwrap();
        assert!(!p.restore_state(&other));
    }

    #[test]
    fn counting_snapshot_roundtrip() {
        let mut p = attach(CountingPool::new("ports", 3), 0);
        let t = p.prepare_allocate(OsmId(1), TokenIdent::ANY).unwrap();
        p.commit_allocate(OsmId(1), t);
        let snap = p.snapshot_state().unwrap();
        p.commit_release(OsmId(1), t);
        assert_eq!(p.available(), 3);
        assert!(p.restore_state(&snap));
        assert_eq!(p.available(), 2);
        // A per-cycle pool's snapshot does not fit an explicit-return pool.
        let other = attach(CountingPool::per_cycle("bw", 3), 0).snapshot_state().unwrap();
        assert!(!p.restore_state(&other));
    }

    #[test]
    fn scoreboard_snapshot_roundtrip() {
        let mut rf = attach(RegScoreboard::new("regs", 4), 0);
        let t = rf
            .prepare_allocate(OsmId(1), RegScoreboard::update_ident(2))
            .unwrap();
        rf.commit_allocate(OsmId(1), t);
        rf.write(2, 99);
        let snap = rf.snapshot_state().unwrap();
        rf.write(2, 7);
        rf.discard(OsmId(1), t);
        assert!(rf.restore_state(&snap));
        assert_eq!(rf.read(2), 99);
        assert_eq!(rf.writer_of(2), Some(OsmId(1)));
    }

    #[test]
    fn reset_snapshot_roundtrip() {
        let mut m = ResetManager::new("reset");
        m.arm(OsmId(2));
        let snap = m.snapshot_state().unwrap();
        m.disarm_all();
        assert!(m.restore_state(&snap));
        assert!(m.is_armed(OsmId(2)));
    }

    #[test]
    fn reset_manager_gates_inquiries() {
        let mut m = ResetManager::new("reset");
        assert!(!m.inquire(OsmId(1), TokenIdent::NONE));
        m.arm(OsmId(1));
        m.arm(OsmId(1)); // idempotent
        assert!(m.inquire(OsmId(1), TokenIdent::NONE));
        assert!(!m.inquire(OsmId(2), TokenIdent::NONE));
        assert_eq!(m.armed_count(), 1);
        m.disarm(OsmId(1));
        assert!(!m.inquire(OsmId(1), TokenIdent::NONE));
        m.arm(OsmId(3));
        m.disarm_all();
        assert_eq!(m.armed_count(), 0);
    }
}
