//! OSM instances and operation behaviors.
//!
//! An [`Osm`] is one live state machine: current state, token buffer, and
//! the *dynamic identifier slots* that the operation initializes while
//! decoding (paper §4: "α can then decode the instruction and initialize all
//! its allocation and inquiry identifiers"). The instruction semantics and
//! timing side effects are supplied by a [`Behavior`] implementation.

use crate::ids::{OsmId, SlotId, StateId};
use crate::manager::ManagerTable;
use crate::snapshot::BehaviorSnapshot;
use crate::spec::{Edge, StateMachineSpec};
use crate::token::{HeldToken, TokenIdent};
use std::sync::Arc;

/// Rank value of an OSM resting in its initial state: lowest priority.
pub const IDLE_AGE: u64 = u64::MAX;

/// Operation semantics attached to an OSM.
///
/// The generic parameter `S` is the machine's shared hardware-layer state
/// (memory system, program counter logic, statistic counters, ...).
pub trait Behavior<S>: Send + 'static {
    /// Veto hook evaluated *before* the edge's token condition: lets one
    /// spec serve several instruction kinds (e.g. only multiply operations
    /// attempt the multiplier-allocating edge). Defaults to enabled.
    fn edge_enabled(&self, edge: &Edge, view: &OsmView<'_>, shared: &S) -> bool {
        let _ = (edge, view, shared);
        true
    }

    /// Invoked after `edge` committed (all primitives succeeded and were
    /// committed, the state was updated). This is where operations decode,
    /// compute, write results into managers, arm the reset manager, etc.
    fn on_transition(&mut self, edge: &Edge, ctx: &mut TransitionCtx<'_, S>);

    /// Captures the behavior's mutable state for
    /// [`crate::Machine::checkpoint`]. The default declares the behavior
    /// stateless; behaviors carrying per-operation state (decoded
    /// instruction, computed address, ...) MUST override this and
    /// [`Behavior::restore`], or a restored run will silently diverge.
    fn snapshot(&self) -> BehaviorSnapshot {
        BehaviorSnapshot::Stateless
    }

    /// Restores state captured by [`Behavior::snapshot`]. Returns `false`
    /// if the snapshot is incompatible. The stateless default accepts only
    /// [`BehaviorSnapshot::Stateless`].
    fn restore(&mut self, snap: &BehaviorSnapshot) -> bool {
        matches!(snap, BehaviorSnapshot::Stateless)
    }

    /// Serializes a [`BehaviorSnapshot::State`] payload this behavior
    /// produced via [`Behavior::snapshot`] into a stable byte encoding for
    /// the on-disk checkpoint format. Only called for `State` snapshots —
    /// the machine-level codec handles the stateless case itself, so
    /// stateless behaviors need no override. The default `None` declares
    /// the state non-serializable.
    fn encode_snapshot(&self, snap: &BehaviorSnapshot) -> Option<Vec<u8>> {
        let _ = snap;
        None
    }

    /// Deserializes bytes produced by [`Behavior::encode_snapshot`] back
    /// into a snapshot this behavior can [`Behavior::restore`] from. Only
    /// called for sections encoded from `State` snapshots. `None` on
    /// malformed or foreign input; the default refuses everything.
    fn decode_snapshot(&self, bytes: &[u8]) -> Option<BehaviorSnapshot> {
        let _ = bytes;
        None
    }
}

/// A no-op behavior, useful for pure-structure models and tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct InertBehavior;

impl<S> Behavior<S> for InertBehavior {
    fn on_transition(&mut self, _edge: &Edge, _ctx: &mut TransitionCtx<'_, S>) {}
}

/// Read-only view of an OSM handed to veto hooks and rankers.
#[derive(Debug)]
pub struct OsmView<'a> {
    /// The OSM's id.
    pub id: OsmId,
    /// Current state.
    pub state: StateId,
    /// Age rank key ([`IDLE_AGE`] while in the initial state).
    pub age: u64,
    /// Thread tag (§6 multithreading extension; 0 for single-threaded models).
    pub tag: u64,
    /// Dynamic identifier slots.
    pub slots: &'a [TokenIdent],
    /// Token buffer.
    pub buffer: &'a [HeldToken],
}

/// Mutable context handed to [`Behavior::on_transition`].
pub struct TransitionCtx<'a, S> {
    /// The transitioning OSM.
    pub osm: OsmId,
    /// Source state of the committed edge.
    pub from: StateId,
    /// Destination state (the OSM is already in it).
    pub to: StateId,
    /// Current control step.
    pub cycle: u64,
    /// Thread tag of the OSM.
    pub tag: u64,
    /// The OSM's dynamic identifier slots (resize/assign freely).
    pub slots: &'a mut Vec<TokenIdent>,
    /// Tokens held *after* the transition.
    pub buffer: &'a [HeldToken],
    /// All token managers (downcast for hardware-layer data access).
    pub managers: &'a mut ManagerTable,
    /// Shared hardware-layer / processor state.
    pub shared: &'a mut S,
}

impl<S> std::fmt::Debug for TransitionCtx<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransitionCtx")
            .field("osm", &self.osm)
            .field("from", &self.from)
            .field("to", &self.to)
            .field("cycle", &self.cycle)
            .finish()
    }
}

impl<S> TransitionCtx<'_, S> {
    /// Assigns identifier slot `slot`, growing the slot vector as needed
    /// (new slots default to [`TokenIdent::NONE`]).
    pub fn set_slot(&mut self, slot: SlotId, ident: TokenIdent) {
        set_slot(self.slots, slot, ident);
    }

    /// Reads identifier slot `slot` ([`TokenIdent::NONE`] if never set).
    pub fn slot(&self, slot: SlotId) -> TokenIdent {
        self.slots
            .get(slot.index())
            .copied()
            .unwrap_or(TokenIdent::NONE)
    }
}

/// Assigns `slots[slot] = ident`, growing with [`TokenIdent::NONE`] padding.
pub fn set_slot(slots: &mut Vec<TokenIdent>, slot: SlotId, ident: TokenIdent) {
    if slots.len() <= slot.index() {
        slots.resize(slot.index() + 1, TokenIdent::NONE);
    }
    slots[slot.index()] = ident;
}

/// One live operation state machine.
pub struct Osm<S> {
    pub(crate) id: OsmId,
    pub(crate) spec: Arc<StateMachineSpec>,
    /// Index into the machine's spec table (director fast path).
    pub(crate) spec_idx: u32,
    pub(crate) state: StateId,
    pub(crate) buffer: Vec<HeldToken>,
    pub(crate) slots: Vec<TokenIdent>,
    pub(crate) age: u64,
    pub(crate) tag: u64,
    pub(crate) behavior: Box<dyn Behavior<S>>,
    /// Control step of this OSM's most recent committed transition
    /// (watchdog input; 0 until the first move).
    pub(crate) last_move_cycle: u64,
}

impl<S> Osm<S> {
    pub(crate) fn new(
        id: OsmId,
        spec: Arc<StateMachineSpec>,
        spec_idx: u32,
        tag: u64,
        behavior: Box<dyn Behavior<S>>,
    ) -> Self {
        let state = spec.initial();
        Osm {
            id,
            spec,
            spec_idx,
            state,
            buffer: Vec::new(),
            slots: Vec::new(),
            age: IDLE_AGE,
            tag,
            behavior,
            last_move_cycle: 0,
        }
    }

    /// The OSM's id.
    pub fn id(&self) -> OsmId {
        self.id
    }

    /// The spec this OSM instantiates.
    pub fn spec(&self) -> &Arc<StateMachineSpec> {
        &self.spec
    }

    /// Index of the spec in the machine's spec table (matches the `spec`
    /// field of observer events).
    pub fn spec_index(&self) -> u32 {
        self.spec_idx
    }

    /// Current state.
    pub fn state(&self) -> StateId {
        self.state
    }

    /// Name of the current state.
    pub fn state_name(&self) -> &str {
        self.spec.state_name(self.state)
    }

    /// True if resting in the initial state.
    pub fn is_idle(&self) -> bool {
        self.state == self.spec.initial()
    }

    /// Age rank key ([`IDLE_AGE`] while idle; otherwise the monotonic counter
    /// value assigned when the OSM last left the initial state).
    pub fn age(&self) -> u64 {
        self.age
    }

    /// Thread tag.
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// Control step of the most recent committed transition (0 if none yet).
    pub fn last_move_cycle(&self) -> u64 {
        self.last_move_cycle
    }

    /// Currently held tokens.
    pub fn buffer(&self) -> &[HeldToken] {
        &self.buffer
    }

    /// Dynamic identifier slots.
    pub fn slots(&self) -> &[TokenIdent] {
        &self.slots
    }

    /// Read-only view (for rankers and veto hooks).
    pub fn view(&self) -> OsmView<'_> {
        OsmView {
            id: self.id,
            state: self.state,
            age: self.age,
            tag: self.tag,
            slots: &self.slots,
            buffer: &self.buffer,
        }
    }

}

impl<S> std::fmt::Debug for Osm<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Osm")
            .field("id", &self.id)
            .field("spec", &self.spec.name())
            .field("state", &self.state_name())
            .field("age", &self.age)
            .field("tag", &self.tag)
            .field("buffer", &self.buffer)
            .field("slots", &self.slots)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SpecBuilder;

    fn spec() -> Arc<StateMachineSpec> {
        let mut b = SpecBuilder::new("t");
        let i = b.state("I");
        let f = b.state("F");
        b.initial(i);
        b.edge(i, f);
        b.build().unwrap()
    }

    #[test]
    fn new_osm_is_idle_with_empty_buffer() {
        let o: Osm<()> = Osm::new(OsmId(0), spec(), 0, 0, Box::new(InertBehavior));
        assert!(o.is_idle());
        assert_eq!(o.state_name(), "I");
        assert_eq!(o.age(), IDLE_AGE);
        assert!(o.buffer().is_empty());
        assert!(o.slots().is_empty());
        assert_eq!(o.view().id, OsmId(0));
    }

    #[test]
    fn set_slot_grows_with_none_padding() {
        let mut slots = Vec::new();
        set_slot(&mut slots, SlotId(2), TokenIdent(7));
        assert_eq!(
            slots,
            vec![TokenIdent::NONE, TokenIdent::NONE, TokenIdent(7)]
        );
        set_slot(&mut slots, SlotId(0), TokenIdent(1));
        assert_eq!(slots[0], TokenIdent(1));
    }

    #[test]
    fn debug_shows_state_name() {
        let o: Osm<()> = Osm::new(OsmId(3), spec(), 0, 0, Box::new(InertBehavior));
        let s = format!("{o:?}");
        assert!(s.contains("\"I\""));
        assert!(s.contains("OsmId(3)"));
    }
}
