//! Byte-level primitives for the on-disk checkpoint format.
//!
//! Everything a checkpoint file contains is encoded through [`ByteWriter`]
//! and decoded through [`ByteReader`]: little-endian fixed-width integers
//! and `u32`-length-prefixed byte sections. The framing matches the sweep
//! journal's conventions (length prefixes, FNV-1a seals) so one set of
//! tools can inspect both. Writers never fail; readers return `None` on any
//! truncation or overrun so corrupt files degrade into a typed refusal, not
//! a panic.

/// FNV-1a offset basis (the digest family used across the repo).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// FNV-1a digest of `bytes` — the seal used by checkpoint files (and, with
/// the same constants, the sweep journal and trace digests).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Append-only little-endian byte encoder.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing was written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a `u32` little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes with a `u32` length prefix.
    pub fn put_bytes(&mut self, v: &[u8]) {
        debug_assert!(v.len() <= u32::MAX as usize, "section too large");
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Appends a UTF-8 string with a `u32` length prefix.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Consumes the writer, returning the raw encoding.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Consumes the writer, appending an FNV-1a seal over everything
    /// written. Check with [`unseal`].
    pub fn into_sealed_bytes(mut self) -> Vec<u8> {
        let seal = fnv1a(&self.buf);
        self.buf.extend_from_slice(&seal.to_le_bytes());
        self.buf
    }
}

/// Validates a trailing FNV-1a seal, returning the payload it covers.
/// `None` if the input is too short or the seal does not match.
pub fn unseal(bytes: &[u8]) -> Option<&[u8]> {
    if bytes.len() < 8 {
        return None;
    }
    let (payload, seal) = bytes.split_at(bytes.len() - 8);
    let want = u64::from_le_bytes(seal.try_into().ok()?);
    (fnv1a(payload) == want).then_some(payload)
}

/// Cursor-based little-endian byte decoder; every accessor returns `None`
/// past the end instead of panicking.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps `bytes` with the cursor at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { buf: bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when the whole input has been consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.remaining() < n {
            return None;
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Some(out)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    /// Reads a bool byte; any value other than 0/1 is a decode error.
    pub fn take_bool(&mut self) -> Option<bool> {
        match self.take_u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Option<u32> {
        self.take(4).map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads a `u32`-length-prefixed byte section.
    pub fn take_bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.take_u32()? as usize;
        self.take(len)
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Option<&'a str> {
        std::str::from_utf8(self.take_bytes()?).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_primitives() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_bytes(&[1, 2, 3]);
        w.put_str("fetch-queue");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.take_u8(), Some(7));
        assert_eq!(r.take_bool(), Some(true));
        assert_eq!(r.take_u32(), Some(0xDEAD_BEEF));
        assert_eq!(r.take_u64(), Some(u64::MAX - 3));
        assert_eq!(r.take_bytes(), Some(&[1u8, 2, 3][..]));
        assert_eq!(r.take_str(), Some("fetch-queue"));
        assert!(r.is_done());
        assert_eq!(r.take_u8(), None);
    }

    #[test]
    fn truncated_reads_fail_without_panicking() {
        let mut w = ByteWriter::new();
        w.put_u64(9);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..5]);
        assert_eq!(r.take_u64(), None);
        // Length prefix larger than the remaining input.
        let mut w = ByteWriter::new();
        w.put_u32(100);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.take_bytes(), None);
    }

    #[test]
    fn bad_bool_is_a_decode_error() {
        let mut r = ByteReader::new(&[2]);
        assert_eq!(r.take_bool(), None);
    }

    #[test]
    fn seal_roundtrip_and_tamper_detection() {
        let mut w = ByteWriter::new();
        w.put_str("payload");
        let sealed = w.into_sealed_bytes();
        let payload = unseal(&sealed).expect("seal valid");
        let mut r = ByteReader::new(payload);
        assert_eq!(r.take_str(), Some("payload"));
        let mut tampered = sealed.clone();
        tampered[4] ^= 1;
        assert!(unseal(&tampered).is_none());
        assert!(unseal(&sealed[..4]).is_none());
    }
}
