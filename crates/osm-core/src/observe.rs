//! Observability: token-transaction tracing, stall-cause attribution and
//! derived metrics.
//!
//! The paper's central claim is that every pipeline phenomenon — structure,
//! data and control hazards, variable latency — reduces to token
//! transactions (the Λ primitives `allocate`/`inquire`/`release`/`discard`).
//! This module makes that causal story visible while a machine runs:
//!
//! * every primitive *attempt* made by the director during edge evaluation
//!   is reported as a [`TokenEvent`] with its grant/deny outcome (plus an
//!   [`TokenOutcome::Aborted`] event when a tentatively granted two-phase
//!   transaction is rolled back because a later primitive of the same
//!   condition failed);
//! * every committed transition is a [`TransitionEvent`] (the transition
//!   [`crate::Trace`] is now just one sink among several);
//! * every control step in which an in-flight OSM fails to leave its state
//!   charges the blocking `(manager, primitive)` pair of its
//!   highest-priority enabled edge as a [`StallEvent`], and the machine-owned
//!   [`StallTracker`] aggregates those charges into per-OSM and per-manager
//!   histograms — "why is IPC 0.7" becomes "34% of stall cycles waiting on
//!   the forward-file inquire".
//!
//! Sinks implement [`Observer`] and are installed with
//! [`crate::Machine::add_observer`] (or the typed helpers
//! `enable_trace`/`enable_event_log`/`enable_metrics`). With no observers
//! installed and stall attribution off, the director's hot loop performs
//! only an is-empty check per primitive — the disabled path is within noise
//! of the un-instrumented scheduler.

use crate::ids::{EdgeId, ManagerId, OsmId, StateId};
use crate::manager::ManagerTable;
use crate::token::{Primitive, Token, TokenIdent};
use crate::trace::{Trace, TraceEvent};
use std::any::Any;
use std::collections::BTreeMap;
use std::fmt;

/// Which Λ primitive a [`TokenEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TokenOpKind {
    /// `allocate`: request exclusive ownership.
    Allocate,
    /// `inquire`: read-only availability test.
    Inquire,
    /// `release`: offer to return a held token.
    Release,
    /// `discard`: unconditional drop (commit time only; never denied).
    Discard,
}

impl TokenOpKind {
    /// Index 0..4, for fixed-size accumulator arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// All four kinds, in declaration order.
    pub const ALL: [TokenOpKind; 4] = [
        TokenOpKind::Allocate,
        TokenOpKind::Inquire,
        TokenOpKind::Release,
        TokenOpKind::Discard,
    ];
}

impl fmt::Display for TokenOpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenOpKind::Allocate => write!(f, "alloc"),
            TokenOpKind::Inquire => write!(f, "inq"),
            TokenOpKind::Release => write!(f, "rel"),
            TokenOpKind::Discard => write!(f, "disc"),
        }
    }
}

impl Primitive {
    /// The transaction kind of this primitive.
    pub fn kind(&self) -> TokenOpKind {
        match self {
            Primitive::Allocate { .. } => TokenOpKind::Allocate,
            Primitive::Inquire { .. } => TokenOpKind::Inquire,
            Primitive::Release { .. } => TokenOpKind::Release,
            Primitive::Discard { .. } => TokenOpKind::Discard,
        }
    }
}

/// Outcome of one primitive attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenOutcome {
    /// The manager granted the transaction (tentatively, for two-phase ops).
    Granted,
    /// The manager denied the transaction; the edge condition failed here.
    ///
    /// Exactly one `Denied` event is emitted per failed edge evaluation (the
    /// first failing primitive), so across a run the number of `Denied`
    /// events equals [`crate::Stats::condition_failures`].
    Denied,
    /// A previously `Granted` two-phase transaction was rolled back because
    /// a later primitive of the same condition failed.
    Aborted,
}

impl fmt::Display for TokenOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenOutcome::Granted => write!(f, "granted"),
            TokenOutcome::Denied => write!(f, "denied"),
            TokenOutcome::Aborted => write!(f, "aborted"),
        }
    }
}

/// One observed token-transaction attempt (paper §3.3, made visible).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenEvent {
    /// Control step of the attempt.
    pub cycle: u64,
    /// The requesting OSM.
    pub osm: OsmId,
    /// The edge whose condition contained the primitive.
    pub edge: EdgeId,
    /// The manager addressed.
    pub manager: ManagerId,
    /// Which primitive.
    pub op: TokenOpKind,
    /// The resolved identifier presented to the manager.
    pub ident: TokenIdent,
    /// The token involved, when one exists (granted allocations, releases
    /// and discards; `None` for inquiries and identifier-level denials).
    pub token: Option<Token>,
    /// Grant, denial, or two-phase rollback.
    pub outcome: TokenOutcome,
}

/// One committed OSM transition (the observer-layer superset of
/// [`crate::TraceEvent`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransitionEvent {
    /// Control step at which the transition committed.
    pub cycle: u64,
    /// The transitioning OSM.
    pub osm: OsmId,
    /// Index of the OSM's spec in the machine's spec table.
    pub spec: u32,
    /// The committed edge.
    pub edge: EdgeId,
    /// Source state.
    pub from: StateId,
    /// Destination state.
    pub to: StateId,
    /// True if the transition left the initial state (an operation issued).
    pub started: bool,
    /// True if the transition returned to the initial state (an operation
    /// completed end to end).
    pub completed: bool,
}

/// One stall charge: an in-flight OSM failed to leave its state this control
/// step, blocked first by `op` on `manager`.
///
/// At most one stall event is emitted per `(osm, control step)`; the blamed
/// primitive is the first failing primitive of the OSM's highest-priority
/// enabled edge during its final scan of the step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallEvent {
    /// Control step of the charge.
    pub cycle: u64,
    /// The stalled OSM.
    pub osm: OsmId,
    /// Index of the OSM's spec in the machine's spec table.
    pub spec: u32,
    /// The state it could not leave.
    pub state: StateId,
    /// The blocking manager.
    pub manager: ManagerId,
    /// The blocking primitive kind.
    pub op: TokenOpKind,
    /// The identifier the blocking primitive presented.
    pub ident: TokenIdent,
}

/// A sink for scheduler events, installed with
/// [`crate::Machine::add_observer`].
///
/// All hooks default to no-ops so sinks implement only what they consume.
/// Observers must not assume they see a run from cycle 0 — they may be
/// installed mid-run — but every hook they do see is delivered in commit
/// order within a control step.
pub trait Observer: Any + Send {
    /// One token-transaction attempt (or rollback).
    fn on_token_op(&mut self, ev: &TokenEvent) {
        let _ = ev;
    }

    /// One committed transition.
    fn on_transition(&mut self, ev: &TransitionEvent) {
        let _ = ev;
    }

    /// One stall charge (an OSM that failed to move this step).
    fn on_stall(&mut self, ev: &StallEvent) {
        let _ = ev;
    }

    /// End of one control step. `restarts` is the number of Fig. 3
    /// outer-loop rescans the director performed this step (0 under
    /// [`crate::RestartPolicy::NoRestart`]); summed over a run it equals
    /// [`crate::Stats::restarts`].
    fn on_cycle_end(&mut self, cycle: u64, transitions: u32, completions: u32, restarts: u32) {
        let _ = (cycle, transitions, completions, restarts);
    }

    /// Upcast for typed retrieval via [`crate::Machine::observer`].
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast.
    fn as_any_mut(&mut self) -> &mut dyn Any;

    /// Consuming upcast, used by [`crate::Machine::take_observer`].
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// One entry of an [`EventLog`]: the union of all observed event kinds, in
/// commit order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObservedEvent {
    /// A token-transaction attempt.
    Token(TokenEvent),
    /// A committed transition.
    Transition(TransitionEvent),
    /// A stall charge.
    Stall(StallEvent),
}

impl ObservedEvent {
    /// The control step of the event.
    pub fn cycle(&self) -> u64 {
        match self {
            ObservedEvent::Token(e) => e.cycle,
            ObservedEvent::Transition(e) => e.cycle,
            ObservedEvent::Stall(e) => e.cycle,
        }
    }
}

/// An [`Observer`] that records the full event stream for the exporters in
/// [`crate::export`] (Chrome trace, pipeline diagram).
///
/// By default the log grows without bound; [`EventLog::with_capacity`]
/// switches it to a ring that keeps only the most recent events (long runs,
/// flight-recorder style). [`EventLog::dropped`] reports how many events
/// fell out of the window.
#[derive(Debug, Default, Clone)]
pub struct EventLog {
    events: Vec<ObservedEvent>,
    /// Ring capacity; `None` = unbounded.
    capacity: Option<usize>,
    /// Ring write index (oldest retained event when the ring has wrapped).
    next: usize,
    total: u64,
}

impl EventLog {
    /// Creates an unbounded log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a ring log retaining only the most recent `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventLog {
            capacity: Some(capacity.max(1)),
            ..Self::default()
        }
    }

    fn push(&mut self, ev: ObservedEvent) {
        self.total += 1;
        match self.capacity {
            Some(cap) if self.events.len() == cap => {
                self.events[self.next] = ev;
                self.next = (self.next + 1) % cap;
            }
            _ => self.events.push(ev),
        }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total number of events ever recorded (retained + dropped).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of events dropped out of the ring window.
    pub fn dropped(&self) -> u64 {
        self.total - self.events.len() as u64
    }

    /// Retained events in commit order (oldest first).
    pub fn iter(&self) -> impl Iterator<Item = &ObservedEvent> {
        let (tail, head) = self.events.split_at(self.next);
        head.iter().chain(tail.iter())
    }

    /// Retained token events in commit order.
    pub fn token_events(&self) -> impl Iterator<Item = &TokenEvent> {
        self.iter().filter_map(|e| match e {
            ObservedEvent::Token(t) => Some(t),
            _ => None,
        })
    }

    /// Retained transition events in commit order.
    pub fn transitions(&self) -> impl Iterator<Item = &TransitionEvent> {
        self.iter().filter_map(|e| match e {
            ObservedEvent::Transition(t) => Some(t),
            _ => None,
        })
    }

    /// Retained stall events in commit order.
    pub fn stalls(&self) -> impl Iterator<Item = &StallEvent> {
        self.iter().filter_map(|e| match e {
            ObservedEvent::Stall(s) => Some(s),
            _ => None,
        })
    }
}

impl Observer for EventLog {
    fn on_token_op(&mut self, ev: &TokenEvent) {
        self.push(ObservedEvent::Token(*ev));
    }
    fn on_transition(&mut self, ev: &TransitionEvent) {
        self.push(ObservedEvent::Transition(*ev));
    }
    fn on_stall(&mut self, ev: &StallEvent) {
        self.push(ObservedEvent::Stall(*ev));
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// The transition [`Trace`] as an observer sink (its historical recording
/// role, now expressed through the observability layer).
#[derive(Debug, Default)]
pub struct TraceSink {
    trace: Trace,
}

impl TraceSink {
    /// Wraps a (possibly ring- or digest-mode) trace.
    pub fn new(trace: Trace) -> Self {
        TraceSink { trace }
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Unwraps the recorded trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

impl Observer for TraceSink {
    fn on_transition(&mut self, ev: &TransitionEvent) {
        self.trace.push(TraceEvent {
            cycle: ev.cycle,
            osm: ev.osm,
            edge: ev.edge,
            from: ev.from,
            to: ev.to,
        });
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Per-(manager, outcome, kind) accumulators of a [`MetricsCollector`].
#[derive(Debug, Default, Clone, Copy)]
struct ManagerAccum {
    granted: [u64; 4],
    denied: [u64; 4],
    aborted: [u64; 4],
    /// Committed tokens currently out (grants minus rollbacks/returns).
    outstanding: i64,
    /// Σ outstanding over cycles (average-held numerator).
    held_area: u64,
}

/// Per-(spec, state) accumulators of a [`MetricsCollector`].
#[derive(Debug, Default, Clone, Copy)]
struct StateAccum {
    cycles: u64,
    entries: u64,
}

/// An [`Observer`] that folds the event stream into derived metrics:
/// per-state occupancy, per-manager grant/deny/utilization counters and
/// retired-operations throughput windows. Render with
/// [`crate::Machine::metrics_report`].
///
/// Install it before the first [`crate::Machine::step`]; occupancy of the
/// pre-installation prefix of a run cannot be reconstructed.
#[derive(Debug)]
pub struct MetricsCollector {
    window: u64,
    /// Per-OSM `(state, entered_cycle)`, learned lazily from transitions.
    cur: Vec<Option<(StateId, u64)>>,
    states: BTreeMap<(u32, StateId), StateAccum>,
    managers: BTreeMap<ManagerId, ManagerAccum>,
    windows: Vec<u64>,
    cycles: u64,
    transitions: u64,
    completions: u64,
    stall_charges: u64,
    restarts: u64,
}

/// Default [`MetricsCollector`] throughput-window length, in cycles.
pub const DEFAULT_WINDOW: u64 = 1024;

impl Default for MetricsCollector {
    fn default() -> Self {
        Self::new(DEFAULT_WINDOW)
    }
}

impl MetricsCollector {
    /// Creates a collector with the given throughput-window length.
    pub fn new(window: u64) -> Self {
        MetricsCollector {
            window: window.max(1),
            cur: Vec::new(),
            states: BTreeMap::new(),
            managers: BTreeMap::new(),
            windows: Vec::new(),
            cycles: 0,
            transitions: 0,
            completions: 0,
            stall_charges: 0,
            restarts: 0,
        }
    }

    /// Completed control steps observed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Token denials observed (equals
    /// [`crate::Stats::condition_failures`] when installed for a whole run).
    pub fn denials(&self) -> u64 {
        self.managers
            .values()
            .map(|a| a.denied.iter().sum::<u64>())
            .sum()
    }

    /// Token grants observed (including later-aborted two-phase grants).
    pub fn grants(&self) -> u64 {
        self.managers
            .values()
            .map(|a| a.granted.iter().sum::<u64>())
            .sum()
    }

    /// Committed transitions observed.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Operation completions observed.
    pub fn completions(&self) -> u64 {
        self.completions
    }

    /// Stall charges observed (one per stalled OSM per cycle).
    pub fn stall_charges(&self) -> u64 {
        self.stall_charges
    }

    /// Director outer-loop rescans observed (equals
    /// [`crate::Stats::restarts`] when installed for a whole run).
    pub fn restarts(&self) -> u64 {
        self.restarts
    }
}

impl Observer for MetricsCollector {
    fn on_token_op(&mut self, ev: &TokenEvent) {
        let a = self.managers.entry(ev.manager).or_default();
        let k = ev.op.index();
        match ev.outcome {
            TokenOutcome::Granted => {
                a.granted[k] += 1;
                match ev.op {
                    TokenOpKind::Allocate => a.outstanding += 1,
                    TokenOpKind::Release | TokenOpKind::Discard => a.outstanding -= 1,
                    TokenOpKind::Inquire => {}
                }
            }
            TokenOutcome::Denied => a.denied[k] += 1,
            TokenOutcome::Aborted => {
                a.aborted[k] += 1;
                match ev.op {
                    TokenOpKind::Allocate => a.outstanding -= 1,
                    TokenOpKind::Release => a.outstanding += 1,
                    TokenOpKind::Inquire | TokenOpKind::Discard => {}
                }
            }
        }
    }

    fn on_transition(&mut self, ev: &TransitionEvent) {
        if self.cur.len() <= ev.osm.index() {
            self.cur.resize(ev.osm.index() + 1, None);
        }
        let since = match self.cur[ev.osm.index()] {
            // A missed prior transition (mid-run install) would misattribute
            // the residency; transitions are delivered for every commit, so
            // `state` always matches `ev.from` once seen.
            Some((_, entered)) => entered,
            None => 0,
        };
        let acc = self.states.entry((ev.spec, ev.from)).or_default();
        acc.cycles += ev.cycle.saturating_sub(since);
        let dst = self.states.entry((ev.spec, ev.to)).or_default();
        dst.entries += 1;
        self.cur[ev.osm.index()] = Some((ev.to, ev.cycle));
        self.transitions += 1;
        if ev.completed {
            self.completions += 1;
            let w = (ev.cycle / self.window) as usize;
            if self.windows.len() <= w {
                self.windows.resize(w + 1, 0);
            }
            self.windows[w] += 1;
        }
    }

    fn on_stall(&mut self, _ev: &StallEvent) {
        self.stall_charges += 1;
    }

    fn on_cycle_end(&mut self, _cycle: u64, _transitions: u32, _completions: u32, restarts: u32) {
        self.cycles += 1;
        self.restarts += u64::from(restarts);
        for a in self.managers.values_mut() {
            held_area_add(a);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[inline]
fn held_area_add(a: &mut ManagerAccum) {
    if a.outstanding > 0 {
        a.held_area += a.outstanding as u64;
    }
}

/// Machine-owned stall-cause attribution (enable with
/// [`crate::Machine::enable_stall_attribution`]).
///
/// Every control step, each OSM that failed to leave its state charges one
/// cycle to the `(manager, primitive kind)` pair that first blocked its
/// highest-priority enabled edge. The per-OSM and per-manager histograms
/// answer "where do the stall cycles go" online, and the stall watchdog
/// embeds them in its [`crate::StallReport`] instead of re-probing.
#[derive(Debug, Default, Clone)]
pub struct StallTracker {
    per_osm: BTreeMap<(OsmId, ManagerId, TokenOpKind), u64>,
    per_manager: BTreeMap<(ManagerId, TokenOpKind), u64>,
    /// Control steps in which *no* OSM transitioned; equals
    /// [`crate::Stats::idle_steps`] when enabled for a whole run.
    pub global_stall_cycles: u64,
    /// Total charges (one per stalled OSM per cycle).
    pub charged: u64,
}

impl StallTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn charge(&mut self, osm: OsmId, manager: ManagerId, op: TokenOpKind) {
        *self.per_osm.entry((osm, manager, op)).or_insert(0) += 1;
        *self.per_manager.entry((manager, op)).or_insert(0) += 1;
        self.charged += 1;
    }

    /// Per-`(osm, manager, primitive)` charge counts.
    pub fn per_osm(&self) -> impl Iterator<Item = (OsmId, ManagerId, TokenOpKind, u64)> + '_ {
        self.per_osm.iter().map(|(&(o, m, k), &c)| (o, m, k, c))
    }

    /// Per-`(manager, primitive)` charge counts.
    pub fn per_manager(&self) -> impl Iterator<Item = (ManagerId, TokenOpKind, u64)> + '_ {
        self.per_manager.iter().map(|(&(m, k), &c)| (m, k, c))
    }

    /// Cycles charged to one OSM, total.
    pub fn osm_total(&self, osm: OsmId) -> u64 {
        self.per_osm
            .iter()
            .filter(|((o, _, _), _)| *o == osm)
            .map(|(_, &c)| c)
            .sum()
    }

    /// Renders the histogram with manager names resolved.
    pub fn histogram(&self, managers: &ManagerTable) -> StallHistogram {
        let name = |m: ManagerId| {
            managers
                .try_get(m)
                .map(|mm| mm.name().to_owned())
                .unwrap_or_else(|| format!("<unknown {m}>"))
        };
        StallHistogram {
            global_stall_cycles: self.global_stall_cycles,
            charged: self.charged,
            by_manager: self
                .per_manager
                .iter()
                .map(|(&(m, k), &c)| StallCause {
                    manager: m,
                    manager_name: name(m),
                    op: k,
                    cycles: c,
                })
                .collect(),
            by_osm: self
                .per_osm
                .iter()
                .map(|(&(o, m, k), &c)| OsmStallCause {
                    osm: o,
                    cause: StallCause {
                        manager: m,
                        manager_name: name(m),
                        op: k,
                        cycles: c,
                    },
                })
                .collect(),
        }
    }
}

/// One aggregated stall cause: cycles charged to a `(manager, primitive)` pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallCause {
    /// The blocking manager.
    pub manager: ManagerId,
    /// Its human-readable name.
    pub manager_name: String,
    /// The blocking primitive kind.
    pub op: TokenOpKind,
    /// Cycles charged.
    pub cycles: u64,
}

impl fmt::Display for StallCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}({}): {} cycles",
            self.op, self.manager_name, self.cycles
        )
    }
}

/// One per-OSM stall-cause entry of a [`StallHistogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OsmStallCause {
    /// The stalled OSM.
    pub osm: OsmId,
    /// The cause and charge count.
    pub cause: StallCause,
}

/// A rendered stall-cause histogram (manager names resolved), embedded in
/// [`crate::StallReport`] and [`MetricsReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallHistogram {
    /// Control steps with zero transitions machine-wide (equals
    /// [`crate::Stats::idle_steps`] when tracked for a whole run).
    pub global_stall_cycles: u64,
    /// Total `(osm, cycle)` charges.
    pub charged: u64,
    /// Charges aggregated per `(manager, primitive)`, heaviest first is NOT
    /// guaranteed — entries are in `(manager, op)` order.
    pub by_manager: Vec<StallCause>,
    /// Charges per `(osm, manager, primitive)`.
    pub by_osm: Vec<OsmStallCause>,
}

impl fmt::Display for StallHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "stall causes ({} charges, {} machine-wide idle steps):",
            self.charged, self.global_stall_cycles
        )?;
        let mut sorted: Vec<&StallCause> = self.by_manager.iter().collect();
        sorted.sort_by_key(|c| std::cmp::Reverse(c.cycles));
        for c in sorted {
            let pct = if self.charged == 0 {
                0.0
            } else {
                100.0 * c.cycles as f64 / self.charged as f64
            };
            writeln!(f, "  {:>5.1}% {c}", pct)?;
        }
        Ok(())
    }
}

/// Per-state occupancy entry of a [`MetricsReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct StateOccupancy {
    /// Spec (operation class) name.
    pub spec: String,
    /// State name.
    pub state: String,
    /// Total OSM-cycles spent in the state.
    pub occupancy_cycles: u64,
    /// Number of entries into the state.
    pub entries: u64,
    /// Mean residency per entry, in cycles.
    pub mean_residency: f64,
}

/// Per-manager utilization entry of a [`MetricsReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct ManagerUtilization {
    /// Manager name.
    pub name: String,
    /// Granted counts per primitive kind `[alloc, inq, rel, disc]`.
    pub granted: [u64; 4],
    /// Denied counts per primitive kind.
    pub denied: [u64; 4],
    /// Two-phase rollbacks per primitive kind.
    pub aborted: [u64; 4],
    /// Mean committed tokens held per cycle.
    pub avg_held: f64,
}

/// Structured metrics rendered from a [`MetricsCollector`] by
/// [`crate::Machine::metrics_report`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// Control steps covered.
    pub cycles: u64,
    /// Committed transitions.
    pub transitions: u64,
    /// Operation completions (returns to the initial state).
    pub completions: u64,
    /// Total token grants (including later-aborted two-phase grants).
    pub token_grants: u64,
    /// Total token denials; reconciles with
    /// [`crate::Stats::condition_failures`].
    pub token_denials: u64,
    /// Director outer-loop rescans (see [`crate::Stats::restarts`]).
    pub restarts: u64,
    /// Per-state occupancy, in `(spec, state)` order.
    pub states: Vec<StateOccupancy>,
    /// Per-manager utilization, in manager-id order.
    pub managers: Vec<ManagerUtilization>,
    /// Throughput-window length in cycles.
    pub window: u64,
    /// Completions per consecutive window.
    pub throughput: Vec<u64>,
    /// Stall-cause histogram, when stall attribution was enabled.
    pub stalls: Option<StallHistogram>,
}

impl MetricsReport {
    pub(crate) fn build<S: 'static>(
        collector: &MetricsCollector,
        machine: &crate::Machine<S>,
    ) -> MetricsReport {
        let specs = machine.specs();
        let states = collector
            .states
            .iter()
            .map(|(&(spec_idx, state), acc)| {
                let (spec, state_name) = match specs.get(spec_idx as usize) {
                    Some(s) => (s.name().to_owned(), s.state_name(state).to_owned()),
                    None => (format!("<spec{spec_idx}>"), format!("{state}")),
                };
                StateOccupancy {
                    spec,
                    state: state_name,
                    occupancy_cycles: acc.cycles,
                    entries: acc.entries,
                    mean_residency: if acc.entries == 0 {
                        0.0
                    } else {
                        acc.cycles as f64 / acc.entries as f64
                    },
                }
            })
            .collect();
        let managers = collector
            .managers
            .iter()
            .map(|(&id, acc)| ManagerUtilization {
                name: machine
                    .managers
                    .try_get(id)
                    .map(|m| m.name().to_owned())
                    .unwrap_or_else(|| format!("<unknown {id}>")),
                granted: acc.granted,
                denied: acc.denied,
                aborted: acc.aborted,
                avg_held: if collector.cycles == 0 {
                    0.0
                } else {
                    acc.held_area as f64 / collector.cycles as f64
                },
            })
            .collect();
        MetricsReport {
            cycles: collector.cycles,
            transitions: collector.transitions,
            completions: collector.completions,
            token_grants: collector.grants(),
            token_denials: collector.denials(),
            restarts: collector.restarts,
            states,
            managers,
            window: collector.window,
            throughput: collector.windows.clone(),
            stalls: machine
                .stall_attribution()
                .map(|t| t.histogram(&machine.managers)),
        }
    }
}

impl fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let per_cycle = if self.cycles == 0 {
            0.0
        } else {
            self.completions as f64 / self.cycles as f64
        };
        writeln!(
            f,
            "metrics over {} cycles: {} transitions, {} completions ({per_cycle:.3}/cycle), {} grants, {} denials",
            self.cycles, self.transitions, self.completions, self.token_grants, self.token_denials,
        )?;
        writeln!(f, "state occupancy:")?;
        for s in &self.states {
            writeln!(
                f,
                "  {:<12} {:<12} {:>10} osm-cycles, {:>8} entries, {:>7.2} mean residency",
                s.spec, s.state, s.occupancy_cycles, s.entries, s.mean_residency
            )?;
        }
        writeln!(f, "manager utilization:")?;
        for m in &self.managers {
            writeln!(
                f,
                "  {:<14} alloc {:>8}/{:<8} inq {:>8}/{:<8} rel {:>8}/{:<8} disc {:>6}  avg held {:.3}",
                m.name,
                m.granted[0],
                m.denied[0],
                m.granted[1],
                m.denied[1],
                m.granted[2],
                m.denied[2],
                m.granted[3],
                m.avg_held
            )?;
        }
        if let Some(st) = &self.stalls {
            write!(f, "{st}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tok(cycle: u64, op: TokenOpKind, outcome: TokenOutcome) -> TokenEvent {
        TokenEvent {
            cycle,
            osm: OsmId(0),
            edge: EdgeId(0),
            manager: ManagerId(0),
            op,
            ident: TokenIdent(0),
            token: None,
            outcome,
        }
    }

    #[test]
    fn event_log_ring_keeps_most_recent() {
        let mut log = EventLog::with_capacity(3);
        for c in 0..5 {
            log.on_token_op(&tok(c, TokenOpKind::Allocate, TokenOutcome::Granted));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.total(), 5);
        assert_eq!(log.dropped(), 2);
        let cycles: Vec<u64> = log.iter().map(|e| e.cycle()).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
    }

    #[test]
    fn event_log_unbounded_keeps_everything() {
        let mut log = EventLog::new();
        for c in 0..5 {
            log.on_token_op(&tok(c, TokenOpKind::Inquire, TokenOutcome::Denied));
        }
        assert_eq!(log.len(), 5);
        assert_eq!(log.dropped(), 0);
        assert_eq!(log.token_events().count(), 5);
        assert_eq!(log.transitions().count(), 0);
    }

    #[test]
    fn metrics_collector_counts_outcomes_and_outstanding() {
        let mut m = MetricsCollector::new(16);
        m.on_token_op(&tok(0, TokenOpKind::Allocate, TokenOutcome::Granted));
        m.on_token_op(&tok(0, TokenOpKind::Inquire, TokenOutcome::Denied));
        m.on_cycle_end(0, 0, 0, 0);
        assert_eq!(m.grants(), 1);
        assert_eq!(m.denials(), 1);
        let a = m.managers[&ManagerId(0)];
        assert_eq!(a.outstanding, 1);
        assert_eq!(a.held_area, 1);
        // A rollback returns the token.
        m.on_token_op(&tok(1, TokenOpKind::Allocate, TokenOutcome::Aborted));
        assert_eq!(m.managers[&ManagerId(0)].outstanding, 0);
    }

    #[test]
    fn stall_tracker_histograms_sum() {
        let mut t = StallTracker::new();
        t.charge(OsmId(0), ManagerId(1), TokenOpKind::Inquire);
        t.charge(OsmId(0), ManagerId(1), TokenOpKind::Inquire);
        t.charge(OsmId(2), ManagerId(0), TokenOpKind::Allocate);
        assert_eq!(t.charged, 3);
        assert_eq!(t.osm_total(OsmId(0)), 2);
        let per_mgr: Vec<_> = t.per_manager().collect();
        assert_eq!(
            per_mgr,
            vec![
                (ManagerId(0), TokenOpKind::Allocate, 1),
                (ManagerId(1), TokenOpKind::Inquire, 2),
            ]
        );
    }

    #[test]
    fn primitive_kind_mapping() {
        let p = Primitive::Discard {
            manager: None,
            ident: crate::token::IdentExpr::AnyHeld,
        };
        assert_eq!(p.kind(), TokenOpKind::Discard);
        assert_eq!(TokenOpKind::Allocate.to_string(), "alloc");
    }
}
