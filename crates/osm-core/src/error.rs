//! Error types for model construction and execution.

use crate::ids::{ManagerId, OsmId, StateId};
use crate::observe::StallHistogram;
use crate::token::Token;
use std::error::Error;
use std::fmt;

/// Errors detected while building a [`crate::StateMachineSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The spec declares no states.
    NoStates {
        /// Spec name.
        spec: String,
    },
    /// No initial state was declared.
    NoInitialState {
        /// Spec name.
        spec: String,
    },
    /// An edge or the initial declaration references a state that does not exist.
    UnknownState {
        /// Spec name.
        spec: String,
        /// The out-of-range state id.
        state: StateId,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::NoStates { spec } => write!(f, "spec `{spec}` declares no states"),
            SpecError::NoInitialState { spec } => {
                write!(f, "spec `{spec}` declares no initial state")
            }
            SpecError::UnknownState { spec, state } => {
                write!(f, "spec `{spec}` references unknown state {state}")
            }
        }
    }
}

impl Error for SpecError {}

/// How the stall watchdog classified a lack of forward progress
/// (see [`crate::Machine::set_stall_limit`]).
///
/// A true resource *deadlock* (a cycle in the wait-for graph) is reported
/// separately as [`ModelError::Deadlock`]; the watchdog catches the stalls
/// the wait-for graph cannot prove.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallKind {
    /// No OSM has transitioned for the stall bound, and no wait-for cycle
    /// exists — typically a resource that is denied without an owner (a
    /// blackholed or mis-configured manager).
    Wedged,
    /// Transitions keep occurring but no OSM has returned to its initial
    /// state (completed) within the bound.
    Livelock,
    /// At least one in-flight OSM has been pinned in the same state for the
    /// bound while other OSMs kept completing.
    Starvation,
}

impl fmt::Display for StallKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StallKind::Wedged => write!(f, "wedged"),
            StallKind::Livelock => write!(f, "livelock"),
            StallKind::Starvation => write!(f, "starvation"),
        }
    }
}

/// One reason an OSM cannot take an outgoing edge: the first failing
/// primitive of that edge's condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaitCause {
    /// The manager that denied the primitive.
    pub manager: ManagerId,
    /// The manager's human-readable name.
    pub manager_name: String,
    /// The denied primitive, rendered (e.g. `alloc(mgr3,#0)`).
    pub primitive: String,
    /// The OSM currently owning the contested token, if the manager tracks
    /// ownership (absent for ownerless denials such as blocked releases).
    pub owner: Option<OsmId>,
}

impl fmt::Display for WaitCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} denied by `{}`", self.primitive, self.manager_name)?;
        if let Some(owner) = self.owner {
            write!(f, " (held by {owner})")?;
        }
        Ok(())
    }
}

/// Diagnostic record of one blocked OSM inside a [`StallReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedOsm {
    /// The blocked OSM.
    pub osm: OsmId,
    /// Name of the spec it instantiates.
    pub spec: String,
    /// Name of the state it is pinned in.
    pub state: String,
    /// Tokens it currently holds.
    pub held: Vec<Token>,
    /// Why each of its enabled outgoing edges cannot fire (first failing
    /// primitive per edge; empty if an edge was momentarily satisfiable).
    pub waiting_on: Vec<WaitCause>,
}

impl fmt::Display for BlockedOsm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}) in `{}`", self.osm, self.spec, self.state)?;
        for cause in &self.waiting_on {
            write!(f, "; {cause}")?;
        }
        Ok(())
    }
}

/// Structured diagnostics attached to [`ModelError::Stalled`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallReport {
    /// The watchdog's classification.
    pub kind: StallKind,
    /// Control step at which the watchdog fired.
    pub cycle: u64,
    /// How many cycles the condition has persisted.
    pub stalled_for: u64,
    /// The armed stall bound (cycles without qualifying progress) that
    /// fired — the per-run step budget handed to
    /// [`crate::Machine::set_stall_limit`]. Lets supervisors distinguish
    /// "tripped a tight budget" from "tripped a generous one" without
    /// carrying the configuration separately.
    pub budget: u64,
    /// The blocked OSMs, with the primitives and managers they wait on.
    pub blocked: Vec<BlockedOsm>,
    /// The stall-cause histogram accumulated up to the stall, when
    /// [`crate::Machine::enable_stall_attribution`] was on.
    pub attribution: Option<StallHistogram>,
}

impl fmt::Display for StallReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} detected at control step {} ({} cycles without progress; budget {})",
            self.kind, self.cycle, self.stalled_for, self.budget
        )?;
        for b in &self.blocked {
            write!(f, "\n  {b}")?;
        }
        if let Some(attr) = &self.attribution {
            write!(f, "\n{attr}")?;
        }
        Ok(())
    }
}

/// Errors raised while executing a machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A cyclic resource dependency among OSMs was detected — the paper's
    /// pathological scheduling deadlock (§3.4); the director aborts.
    Deadlock {
        /// Control step at which the cycle was detected.
        cycle: u64,
        /// The OSMs forming the wait-for cycle.
        osms: Vec<OsmId>,
    },
    /// The stall watchdog detected a lack of forward progress that is not a
    /// provable wait-for cycle (enabled via
    /// [`crate::Machine::set_stall_limit`]).
    Stalled(Box<StallReport>),
    /// The end-of-run token audit found tokens whose manager-side and
    /// OSM-side ownership records disagree (debug builds only; see
    /// [`crate::Machine::audit_tokens`]).
    TokenLeak {
        /// Cycle at which the audit ran.
        cycle: u64,
        /// Human-readable description of every violation.
        problems: Vec<String>,
    },
    /// [`crate::Machine::checkpoint`] was asked to snapshot a manager that
    /// does not implement snapshot support.
    SnapshotUnsupported {
        /// Name (and id) of the offending manager.
        manager: String,
    },
    /// [`crate::Machine::restore`] was given a checkpoint that does not match
    /// the machine (wrong shape, or a component rejected its snapshot).
    SnapshotMismatch {
        /// What failed to match.
        what: String,
    },
    /// Registering another entity would exhaust its 32-bit id space
    /// (previously the id silently truncated past `u32::MAX`). Returned by
    /// the `try_add*` registration APIs; the infallible ones panic with this
    /// message instead.
    CapacityExceeded {
        /// The kind of entity being registered ("OSM", "token manager", ...).
        what: &'static str,
        /// The maximum number of instances the id space admits.
        limit: u64,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Deadlock { cycle, osms } => {
                write!(f, "scheduling deadlock at control step {cycle} involving ")?;
                for (i, o) in osms.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{o}")?;
                }
                Ok(())
            }
            ModelError::Stalled(report) => write!(f, "{report}"),
            ModelError::TokenLeak { cycle, problems } => {
                write!(f, "token leak detected at control step {cycle}:")?;
                for p in problems {
                    write!(f, "\n  {p}")?;
                }
                Ok(())
            }
            ModelError::SnapshotUnsupported { manager } => {
                write!(f, "manager {manager} does not support checkpointing")
            }
            ModelError::SnapshotMismatch { what } => {
                write!(f, "checkpoint does not match this machine: {what}")
            }
            ModelError::CapacityExceeded { what, limit } => {
                write!(
                    f,
                    "cannot register another {what}: the id space admits at most {limit}"
                )
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_error_display() {
        let e = SpecError::NoInitialState { spec: "p".into() };
        assert_eq!(e.to_string(), "spec `p` declares no initial state");
        let e = SpecError::UnknownState {
            spec: "p".into(),
            state: StateId(9),
        };
        assert!(e.to_string().contains("s9"));
    }

    #[test]
    fn model_error_display_lists_cycle() {
        let e = ModelError::Deadlock {
            cycle: 12,
            osms: vec![OsmId(0), OsmId(1)],
        };
        let s = e.to_string();
        assert!(s.contains("12"));
        assert!(s.contains("osm0 -> osm1"));
    }

    #[test]
    fn stall_report_display_names_manager_and_owner() {
        let report = StallReport {
            kind: StallKind::Starvation,
            cycle: 40,
            stalled_for: 25,
            budget: 25,
            blocked: vec![BlockedOsm {
                osm: OsmId(2),
                spec: "pipe".into(),
                state: "E".into(),
                held: vec![Token::new(ManagerId(1), 0)],
                waiting_on: vec![WaitCause {
                    manager: ManagerId(3),
                    manager_name: "buffer".into(),
                    primitive: "alloc(mgr3,#0)".into(),
                    owner: Some(OsmId(5)),
                }],
            }],
            attribution: None,
        };
        let e = ModelError::Stalled(Box::new(report));
        let s = e.to_string();
        assert!(s.contains("starvation"), "{s}");
        assert!(s.contains("buffer"), "{s}");
        assert!(s.contains("osm5"), "{s}");
        assert!(s.contains("`E`"), "{s}");
    }

    #[test]
    fn token_leak_display_lists_problems() {
        let e = ModelError::TokenLeak {
            cycle: 9,
            problems: vec!["osm1 holds mgr0·0 which its manager does not acknowledge".into()],
        };
        let s = e.to_string();
        assert!(s.contains("control step 9"));
        assert!(s.contains("mgr0·0"));
    }
}
