//! Error types for model construction and execution.

use crate::ids::{OsmId, StateId};
use std::error::Error;
use std::fmt;

/// Errors detected while building a [`crate::StateMachineSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The spec declares no states.
    NoStates {
        /// Spec name.
        spec: String,
    },
    /// No initial state was declared.
    NoInitialState {
        /// Spec name.
        spec: String,
    },
    /// An edge or the initial declaration references a state that does not exist.
    UnknownState {
        /// Spec name.
        spec: String,
        /// The out-of-range state id.
        state: StateId,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::NoStates { spec } => write!(f, "spec `{spec}` declares no states"),
            SpecError::NoInitialState { spec } => {
                write!(f, "spec `{spec}` declares no initial state")
            }
            SpecError::UnknownState { spec, state } => {
                write!(f, "spec `{spec}` references unknown state {state}")
            }
        }
    }
}

impl Error for SpecError {}

/// Errors raised while executing a machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A cyclic resource dependency among OSMs was detected — the paper's
    /// pathological scheduling deadlock (§3.4); the director aborts.
    Deadlock {
        /// Control step at which the cycle was detected.
        cycle: u64,
        /// The OSMs forming the wait-for cycle.
        osms: Vec<OsmId>,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Deadlock { cycle, osms } => {
                write!(f, "scheduling deadlock at control step {cycle} involving ")?;
                for (i, o) in osms.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{o}")?;
                }
                Ok(())
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_error_display() {
        let e = SpecError::NoInitialState { spec: "p".into() };
        assert_eq!(e.to_string(), "spec `p` declares no initial state");
        let e = SpecError::UnknownState {
            spec: "p".into(),
            state: StateId(9),
        };
        assert!(e.to_string().contains("s9"));
    }

    #[test]
    fn model_error_display_lists_cycle() {
        let e = ModelError::Deadlock {
            cycle: 12,
            osms: vec![OsmId(0), OsmId(1)],
        };
        let s = e.to_string();
        assert!(s.contains("12"));
        assert!(s.contains("osm0 -> osm1"));
    }
}
