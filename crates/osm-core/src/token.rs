//! Tokens, token identifiers and the Λ-language primitive templates.
//!
//! In the OSM model, structure and data resources of the hardware layer are
//! represented by *tokens*. Operations never touch hardware state directly;
//! they perform *token transactions* with [token managers](crate::TokenManager)
//! using the four primitives of the Λ language: `allocate`, `inquire`,
//! `release` and `discard` (paper §3.3).

use crate::ids::{ManagerId, SlotId};
use std::fmt;

/// An identifier presented to a token manager in a transaction request.
///
/// The manager interprets the identifier and maps it to a token: for a
/// pipeline-stage manager the identifier is ignored (there is one occupancy
/// token); for a register-file manager it selects the register; for a
/// reservation-station manager it may select an entry.
///
/// The value [`TokenIdent::ANY`] asks the manager to pick any token it is
/// willing to grant. The value [`TokenIdent::NONE`] marks a vacuous
/// primitive: a slot-resolved identifier that the current operation does not
/// use (e.g. an instruction without a second source register); such a
/// primitive succeeds trivially without contacting the manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TokenIdent(pub u64);

impl TokenIdent {
    /// "Pick any available token" wildcard.
    pub const ANY: TokenIdent = TokenIdent(u64::MAX - 1);
    /// "This primitive is unused by the current operation" sentinel.
    pub const NONE: TokenIdent = TokenIdent(u64::MAX);

    /// Returns true if this identifier is the vacuous [`NONE`](Self::NONE) sentinel.
    #[inline]
    pub fn is_none(self) -> bool {
        self == Self::NONE
    }

    /// Returns true if this identifier is the [`ANY`](Self::ANY) wildcard.
    #[inline]
    pub fn is_any(self) -> bool {
        self == Self::ANY
    }
}

impl fmt::Display for TokenIdent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            write!(f, "∅")
        } else if self.is_any() {
            write!(f, "*")
        } else {
            write!(f, "#{}", self.0)
        }
    }
}

impl From<u64> for TokenIdent {
    fn from(v: u64) -> Self {
        TokenIdent(v)
    }
}

/// A granted token: proof of ownership of a resource unit.
///
/// The `raw` value is chosen by the granting manager (usually the concrete
/// resource index the identifier was mapped to) and is meaningful only to
/// that manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token {
    /// The manager that granted (and will reclaim) this token.
    pub manager: ManagerId,
    /// Manager-private resource index.
    pub raw: u64,
}

impl Token {
    /// Creates a token; normally only token managers construct tokens.
    pub fn new(manager: ManagerId, raw: u64) -> Self {
        Token { manager, raw }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}·{}", self.manager, self.raw)
    }
}

/// A token held in an OSM's token buffer, remembering the identifier it was
/// requested under so later `release`/`discard` templates can find it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeldToken {
    /// Identifier the token was requested under.
    pub ident: TokenIdent,
    /// The granted token.
    pub token: Token,
}

/// How a primitive template obtains its token identifier at evaluation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdentExpr {
    /// A fixed identifier baked into the state machine specification.
    Const(u64),
    /// The identifier stored in the given dynamic slot of the OSM instance
    /// (operations initialize their slots while decoding; paper §4).
    Slot(SlotId),
    /// For `release`/`discard`: match any token held from the manager.
    AnyHeld,
}

impl IdentExpr {
    /// The constant [`TokenIdent::ANY`] wildcard ("any available token").
    pub const ANY: IdentExpr = IdentExpr::Const(TokenIdent::ANY.0);

    /// Convenience constructor for a constant identifier.
    pub fn konst(v: u64) -> Self {
        IdentExpr::Const(v)
    }
}

impl fmt::Display for IdentExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdentExpr::Const(v) => write!(f, "{v}"),
            IdentExpr::Slot(s) => write!(f, "[{s}]"),
            IdentExpr::AnyHeld => write!(f, "held"),
        }
    }
}

/// One primitive transaction of the Λ language, as it appears (in template
/// form) inside an edge condition of a state machine specification.
///
/// An edge condition is the *conjunction* of its primitives: it is satisfied
/// only if all primitives succeed simultaneously, and committing the edge
/// commits all of them atomically (paper §3.3). Disjunction is expressed by
/// parallel edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Primitive {
    /// Request exclusive ownership of a token (structure resources).
    Allocate {
        /// Manager to allocate from.
        manager: ManagerId,
        /// Identifier of the requested token.
        ident: IdentExpr,
    },
    /// Ask whether a resource is available without obtaining it
    /// (non-exclusive transactions, e.g. reading a register's state).
    Inquire {
        /// Manager to inquire of.
        manager: ManagerId,
        /// Identifier of the inquired token.
        ident: IdentExpr,
    },
    /// Offer to return a held token; the manager may refuse (this is how
    /// variable latency is modeled, paper §4).
    Release {
        /// Manager the held token belongs to.
        manager: ManagerId,
        /// Which held token to release.
        ident: IdentExpr,
    },
    /// Unconditionally drop held tokens; requires no permission and always
    /// succeeds (used on reset edges). `manager == None` discards *every*
    /// token in the buffer regardless of manager.
    Discard {
        /// Restrict to tokens of this manager, or `None` for all.
        manager: Option<ManagerId>,
        /// Which held token(s) to discard ([`IdentExpr::AnyHeld`] = all of
        /// the selected manager's tokens).
        ident: IdentExpr,
    },
}

impl Primitive {
    /// The manager this primitive addresses, if a specific one.
    pub fn manager(&self) -> Option<ManagerId> {
        match *self {
            Primitive::Allocate { manager, .. }
            | Primitive::Inquire { manager, .. }
            | Primitive::Release { manager, .. } => Some(manager),
            Primitive::Discard { manager, .. } => manager,
        }
    }

    /// True if this primitive can never block an edge (discards always succeed).
    pub fn always_succeeds(&self) -> bool {
        matches!(self, Primitive::Discard { .. })
    }
}

impl fmt::Display for Primitive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Primitive::Allocate { manager, ident } => write!(f, "alloc({manager},{ident})"),
            Primitive::Inquire { manager, ident } => write!(f, "inq({manager},{ident})"),
            Primitive::Release { manager, ident } => write!(f, "rel({manager},{ident})"),
            Primitive::Discard {
                manager: Some(m),
                ident,
            } => write!(f, "disc({m},{ident})"),
            Primitive::Discard {
                manager: None,
                ident,
            } => write!(f, "disc(*,{ident})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ident_sentinels_are_distinct() {
        assert_ne!(TokenIdent::ANY, TokenIdent::NONE);
        assert!(TokenIdent::NONE.is_none());
        assert!(TokenIdent::ANY.is_any());
        assert!(!TokenIdent(0).is_none());
        assert!(!TokenIdent(0).is_any());
    }

    #[test]
    fn display_formats() {
        assert_eq!(TokenIdent(4).to_string(), "#4");
        assert_eq!(TokenIdent::NONE.to_string(), "∅");
        assert_eq!(TokenIdent::ANY.to_string(), "*");
        assert_eq!(Token::new(ManagerId(1), 2).to_string(), "mgr1·2");
    }

    #[test]
    fn primitive_manager_extraction() {
        let p = Primitive::Allocate {
            manager: ManagerId(3),
            ident: IdentExpr::Const(0),
        };
        assert_eq!(p.manager(), Some(ManagerId(3)));
        let d = Primitive::Discard {
            manager: None,
            ident: IdentExpr::AnyHeld,
        };
        assert_eq!(d.manager(), None);
        assert!(d.always_succeeds());
        assert!(!p.always_succeeds());
    }

    #[test]
    fn primitive_display() {
        let p = Primitive::Release {
            manager: ManagerId(0),
            ident: IdentExpr::Slot(SlotId(1)),
        };
        assert_eq!(p.to_string(), "rel(mgr0,[slot1])");
        let d = Primitive::Discard {
            manager: None,
            ident: IdentExpr::AnyHeld,
        };
        assert_eq!(d.to_string(), "disc(*,held)");
    }
}
