//! The director: ranking and the sequential scheduling algorithm of Fig. 3.
//!
//! At each control step the director ranks every OSM, then serves them in
//! rank order. For each OSM it evaluates the outgoing edges of the current
//! state in descending static-priority order; the first edge whose condition
//! (a conjunction of Λ primitives) is satisfied commits atomically and the
//! OSM transitions — at most once per control step. After a transition the
//! director may restart its outer loop from the highest-ranked remaining OSM
//! so that operations blocked on just-freed resources are served within the
//! same control step ([`RestartPolicy::Restart`], the paper's Fig. 3
//! behaviour).

use crate::error::{BlockedOsm, ModelError, WaitCause};
use crate::ids::{EdgeId, ManagerId, OsmId};
use crate::manager::ManagerTable;
use crate::observe::{
    Observer, StallEvent, StallTracker, TokenEvent, TokenOpKind, TokenOutcome, TransitionEvent,
};
use crate::osm::{Osm, OsmView, TransitionCtx, IDLE_AGE};
use crate::spec::{Edge, StateMachineSpec};
use crate::stats::Stats;
use crate::token::{HeldToken, IdentExpr, Primitive, Token, TokenIdent};
use std::sync::Arc;

/// Whether the director restarts its outer loop after a transition (Fig. 3).
///
/// The paper's case studies note that with age ranking no senior operation
/// depends on a junior one, so the restart can be skipped without changing
/// behaviour ([`RestartPolicy::NoRestart`]); the ablation benchmark measures
/// the cost difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RestartPolicy {
    /// Restart from the highest-ranked remaining OSM after every transition.
    #[default]
    Restart,
    /// Continue scanning past the transitioned OSM.
    NoRestart,
}

/// Ranks OSMs at the beginning of each control step (paper §3.4).
///
/// Smaller rank = served earlier. Ties are broken by [`OsmId`] so the
/// schedule is always a total order (determinism).
pub trait Ranker<S>: 'static {
    /// Computes the rank of one OSM.
    fn rank(&self, view: &OsmView<'_>, shared: &S) -> u64;
}

/// The paper's case-study policy: rank by age, i.e. the order in which the
/// OSMs last left the initial state (seniors first); idle OSMs last.
#[derive(Debug, Clone, Copy, Default)]
pub struct AgeRanker;

impl<S> Ranker<S> for AgeRanker {
    fn rank(&self, view: &OsmView<'_>, _shared: &S) -> u64 {
        view.age
    }
}

/// The closure type boxed inside a [`FnRanker`].
pub type RankFn<S> = dyn Fn(&OsmView<'_>, &S) -> u64;

/// Rank by a closure (ablation experiments, multithreading policies).
pub struct FnRanker<S>(pub Box<RankFn<S>>);

impl<S> std::fmt::Debug for FnRanker<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FnRanker(..)")
    }
}

impl<S: 'static> Ranker<S> for FnRanker<S> {
    fn rank(&self, view: &OsmView<'_>, shared: &S) -> u64 {
        (self.0)(view, shared)
    }
}

/// Result of one control step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepOutcome {
    /// Number of OSM transitions committed this step.
    pub transitions: u32,
    /// Of those, how many returned an OSM to its initial state (operation
    /// completions — the stall watchdog's notion of end-to-end progress).
    pub completions: u32,
}

/// A prepared (but not yet committed) transaction of one edge condition.
#[derive(Debug, Clone, Copy)]
enum PreparedOp {
    Alloc {
        manager: ManagerId,
        ident: TokenIdent,
        token: Token,
    },
    Release {
        manager: ManagerId,
        buffer_index: usize,
        token: Token,
    },
}

/// A discard to apply if the edge commits.
#[derive(Debug, Clone, Copy)]
enum DiscardSpec {
    /// Discard every held token (optionally restricted to one manager).
    All(Option<ManagerId>),
    /// Discard the held token requested under `ident` from `manager`.
    One(ManagerId, TokenIdent),
}

/// Reusable per-step scratch buffers: the director's hot loop runs without
/// heap allocation in steady state (the paper's efficiency claim depends on
/// the control step being cheap).
#[derive(Debug, Default)]
pub(crate) struct Scratch {
    list: Vec<(u64, OsmId)>,
    ops: Vec<PreparedOp>,
    discards: Vec<DiscardSpec>,
    used: Vec<usize>,
    removed: Vec<usize>,
    wait_edges: Vec<(OsmId, OsmId)>,
    /// First failing primitive of the most recent failed `try_condition`,
    /// with its resolved identifier (stall diagnostics).
    fail: Option<(Primitive, TokenIdent)>,
    /// Per-OSM first failing primitive of the OSM's most recent edge scan
    /// this step (stall-cause attribution; maintained only when observers or
    /// a [`StallTracker`] are active).
    first_fail: Vec<Option<(Primitive, TokenIdent)>>,
}

/// Emits one token event to every observer.
#[inline]
fn emit_token(observers: &mut [Box<dyn Observer>], ev: TokenEvent) {
    for o in observers.iter_mut() {
        o.on_token_op(&ev);
    }
}

/// Resolution of an [`IdentExpr`] against an OSM's slots.
enum Resolved {
    Ident(TokenIdent),
    /// Slot holds [`TokenIdent::NONE`]: the primitive is vacuous.
    Vacuous,
    AnyHeld,
}

#[inline]
fn resolve(expr: IdentExpr, slots: &[TokenIdent]) -> Resolved {
    match expr {
        IdentExpr::Const(v) if TokenIdent(v).is_none() => Resolved::Vacuous,
        IdentExpr::Const(v) => Resolved::Ident(TokenIdent(v)),
        IdentExpr::Slot(s) => {
            let ident = slots.get(s.index()).copied().unwrap_or(TokenIdent::NONE);
            if ident.is_none() {
                Resolved::Vacuous
            } else {
                Resolved::Ident(ident)
            }
        }
        IdentExpr::AnyHeld => Resolved::AnyHeld,
    }
}

/// Evaluates `edge`'s condition for `osm`, tentatively applying
/// transactions into `scratch` (cleared on entry). Returns true when the
/// condition is satisfied; on failure every prepared transaction is aborted
/// and the blocking owners are appended to `scratch.wait_edges`.
///
/// Monomorphized over `OBS` so the no-observer instantiation carries zero
/// event-emission code in the per-primitive loop — the disabled path is
/// byte-for-byte the pre-observability hot loop. Callers must pass
/// `OBS = !observers.is_empty()` (an `OBS = false` call ignores `observers`).
fn try_condition<S, const OBS: bool>(
    osm: &Osm<S>,
    edge: &Edge,
    managers: &mut ManagerTable,
    scratch: &mut Scratch,
    collect_waits: bool,
    observers: &mut [Box<dyn Observer>],
    cycle: u64,
) -> bool {
    scratch.ops.clear();
    scratch.discards.clear();
    scratch.used.clear();
    scratch.fail = None;
    let mut failed = false;
    let observing = OBS;
    // One TokenEvent per manager contact; every failure path below emits
    // exactly one Denied event, so denied-event counts reconcile with
    // `Stats::condition_failures`.
    let token_ev = |op, ident, token, outcome| TokenEvent {
        cycle,
        osm: osm.id,
        edge: edge.id,
        manager: ManagerId(0), // overwritten by every caller
        op,
        ident,
        token,
        outcome,
    };

    'prims: for prim in &edge.condition {
        match *prim {
            Primitive::Allocate { manager, ident } => match resolve(ident, &osm.slots) {
                Resolved::Vacuous => {}
                Resolved::AnyHeld => {
                    debug_assert!(false, "allocate cannot use AnyHeld");
                    if observing {
                        emit_token(
                            observers,
                            TokenEvent {
                                manager,
                                ..token_ev(
                                    TokenOpKind::Allocate,
                                    TokenIdent::NONE,
                                    None,
                                    TokenOutcome::Denied,
                                )
                            },
                        );
                    }
                    scratch.fail = Some((*prim, TokenIdent::NONE));
                    failed = true;
                    break 'prims;
                }
                Resolved::Ident(id) => {
                    // A dangling manager id in the spec is a modeling error;
                    // it surfaces as a never-satisfied condition, not a panic.
                    let granted = managers
                        .try_get_mut(manager)
                        .and_then(|m| m.prepare_allocate(osm.id, id));
                    if observing {
                        let outcome = if granted.is_some() {
                            TokenOutcome::Granted
                        } else {
                            TokenOutcome::Denied
                        };
                        emit_token(
                            observers,
                            TokenEvent {
                                manager,
                                ..token_ev(TokenOpKind::Allocate, id, granted, outcome)
                            },
                        );
                    }
                    match granted {
                        Some(token) => scratch.ops.push(PreparedOp::Alloc {
                            manager,
                            ident: id,
                            token,
                        }),
                        None => {
                            if collect_waits {
                                let owner =
                                    managers.try_get(manager).and_then(|m| m.owner_of(id));
                                if let Some(owner) = owner {
                                    if owner != osm.id {
                                        scratch.wait_edges.push((osm.id, owner));
                                    }
                                }
                            }
                            scratch.fail = Some((*prim, id));
                            failed = true;
                            break 'prims;
                        }
                    }
                }
            },
            Primitive::Inquire { manager, ident } => match resolve(ident, &osm.slots) {
                Resolved::Vacuous => {}
                Resolved::AnyHeld => {
                    debug_assert!(false, "inquire cannot use AnyHeld");
                    if observing {
                        emit_token(
                            observers,
                            TokenEvent {
                                manager,
                                ..token_ev(
                                    TokenOpKind::Inquire,
                                    TokenIdent::NONE,
                                    None,
                                    TokenOutcome::Denied,
                                )
                            },
                        );
                    }
                    scratch.fail = Some((*prim, TokenIdent::NONE));
                    failed = true;
                    break 'prims;
                }
                Resolved::Ident(id) => {
                    let ok = managers
                        .try_get(manager)
                        .is_some_and(|m| m.inquire(osm.id, id));
                    if observing {
                        let outcome = if ok {
                            TokenOutcome::Granted
                        } else {
                            TokenOutcome::Denied
                        };
                        emit_token(
                            observers,
                            TokenEvent {
                                manager,
                                ..token_ev(TokenOpKind::Inquire, id, None, outcome)
                            },
                        );
                    }
                    if !ok {
                        if collect_waits {
                            let owner = managers.try_get(manager).and_then(|m| m.owner_of(id));
                            if let Some(owner) = owner {
                                if owner != osm.id {
                                    scratch.wait_edges.push((osm.id, owner));
                                }
                            }
                        }
                        scratch.fail = Some((*prim, id));
                        failed = true;
                        break 'prims;
                    }
                }
            },
            Primitive::Release { manager, ident } => {
                let target = match resolve(ident, &osm.slots) {
                    Resolved::Vacuous => continue,
                    Resolved::AnyHeld => None,
                    Resolved::Ident(id) => Some(id),
                };
                let found = osm.buffer.iter().enumerate().position(|(i, held)| {
                    !scratch.used.contains(&i)
                        && held.token.manager == manager
                        && target.is_none_or(|id| held.ident == id)
                });
                match found {
                    Some(i) => {
                        let token = osm.buffer[i].token;
                        let accepted = managers
                            .try_get_mut(manager)
                            .is_some_and(|m| m.prepare_release(osm.id, token));
                        if observing {
                            let outcome = if accepted {
                                TokenOutcome::Granted
                            } else {
                                TokenOutcome::Denied
                            };
                            emit_token(
                                observers,
                                TokenEvent {
                                    manager,
                                    ..token_ev(
                                        TokenOpKind::Release,
                                        osm.buffer[i].ident,
                                        Some(token),
                                        outcome,
                                    )
                                },
                            );
                        }
                        if accepted {
                            scratch.used.push(i);
                            scratch.ops.push(PreparedOp::Release {
                                manager,
                                buffer_index: i,
                                token,
                            });
                        } else {
                            scratch.fail = Some((*prim, osm.buffer[i].ident));
                            failed = true;
                            break 'prims;
                        }
                    }
                    None => {
                        // Releasing a token the OSM does not hold is a model
                        // inconsistency; treat as an unsatisfied condition.
                        let ident = target.unwrap_or(TokenIdent::NONE);
                        if observing {
                            emit_token(
                                observers,
                                TokenEvent {
                                    manager,
                                    ..token_ev(
                                        TokenOpKind::Release,
                                        ident,
                                        None,
                                        TokenOutcome::Denied,
                                    )
                                },
                            );
                        }
                        scratch.fail = Some((*prim, ident));
                        failed = true;
                        break 'prims;
                    }
                }
            }
            Primitive::Discard { manager, ident } => match resolve(ident, &osm.slots) {
                Resolved::Vacuous => {}
                Resolved::AnyHeld => scratch.discards.push(DiscardSpec::All(manager)),
                Resolved::Ident(id) => {
                    if let Some(m) = manager {
                        scratch.discards.push(DiscardSpec::One(m, id));
                    } else {
                        scratch.discards.push(DiscardSpec::All(None));
                    }
                }
            },
        }
    }

    if failed {
        // Manager ids here are in range: each op's prepare succeeded above.
        for op in scratch.ops.iter().rev() {
            match *op {
                PreparedOp::Alloc {
                    manager,
                    ident,
                    token,
                } => {
                    managers.get_mut(manager).abort_allocate(osm.id, token);
                    if observing {
                        emit_token(
                            observers,
                            TokenEvent {
                                manager,
                                ..token_ev(
                                    TokenOpKind::Allocate,
                                    ident,
                                    Some(token),
                                    TokenOutcome::Aborted,
                                )
                            },
                        );
                    }
                }
                PreparedOp::Release {
                    manager,
                    buffer_index,
                    token,
                } => {
                    managers.get_mut(manager).abort_release(osm.id, token);
                    if observing {
                        emit_token(
                            observers,
                            TokenEvent {
                                manager,
                                ..token_ev(
                                    TokenOpKind::Release,
                                    osm.buffer[buffer_index].ident,
                                    Some(token),
                                    TokenOutcome::Aborted,
                                )
                            },
                        );
                    }
                }
            }
        }
        false
    } else {
        true
    }
}

/// Commits the satisfied plan held in `scratch`: finalizes transactions and
/// updates the buffer.
fn commit_plan<S, const OBS: bool>(
    osm: &mut Osm<S>,
    scratch: &mut Scratch,
    managers: &mut ManagerTable,
    observers: &mut [Box<dyn Observer>],
    cycle: u64,
    edge: EdgeId,
) {
    let observing = OBS;
    scratch.removed.clear();
    for op in &scratch.ops {
        match *op {
            PreparedOp::Alloc {
                manager,
                ident,
                token,
            } => {
                managers.get_mut(manager).commit_allocate(osm.id, token);
                osm.buffer.push(HeldToken { ident, token });
            }
            PreparedOp::Release {
                manager,
                buffer_index,
                token,
            } => {
                managers.get_mut(manager).commit_release(osm.id, token);
                scratch.removed.push(buffer_index);
            }
        }
    }
    scratch.removed.sort_unstable_by(|a, b| b.cmp(a));
    for &i in &scratch.removed {
        osm.buffer.remove(i);
    }
    for spec in &scratch.discards {
        let mut i = 0;
        while i < osm.buffer.len() {
            let held = osm.buffer[i];
            let matches = match *spec {
                DiscardSpec::All(None) => true,
                DiscardSpec::All(Some(m)) => held.token.manager == m,
                DiscardSpec::One(m, id) => held.token.manager == m && held.ident == id,
            };
            if matches {
                managers
                    .get_mut(held.token.manager)
                    .discard(osm.id, held.token);
                if observing {
                    emit_token(
                        observers,
                        TokenEvent {
                            cycle,
                            osm: osm.id,
                            edge,
                            manager: held.token.manager,
                            op: TokenOpKind::Discard,
                            ident: held.ident,
                            token: Some(held.token),
                            outcome: TokenOutcome::Granted,
                        },
                    );
                }
                osm.buffer.remove(i);
            } else {
                i += 1;
            }
        }
    }
}

/// Runs one control step over all OSMs (the Fig. 3 algorithm).
///
/// Monomorphized over `TRACKING`: callers pass `TRACKING = true` exactly
/// when observers are registered or a [`StallTracker`] is attached, and
/// `TRACKING = false` otherwise. The false instantiation contains no
/// event-emission or attribution code at all, so an uninstrumented machine
/// runs the pre-observability hot loop (one branch per cycle picks the
/// instantiation).
///
/// # Errors
/// Returns [`ModelError::Deadlock`] if `deadlock_check` is on, no OSM
/// transitioned, and the blocked OSMs form a wait-for cycle.
#[allow(clippy::too_many_arguments)]
pub(crate) fn control_step<S: 'static, const TRACKING: bool>(
    osms: &mut [Osm<S>],
    specs: &[std::sync::Arc<crate::spec::StateMachineSpec>],
    managers: &mut ManagerTable,
    shared: &mut S,
    ranker: &dyn Ranker<S>,
    age_ranking: bool,
    policy: RestartPolicy,
    deadlock_check: bool,
    cycle: u64,
    age_counter: &mut u64,
    stats: &mut Stats,
    observers: &mut [Box<dyn Observer>],
    mut stalls: Option<&mut StallTracker>,
    scratch: &mut Scratch,
) -> Result<StepOutcome, ModelError> {
    // Rank all OSMs; stable order by (rank, id) guarantees determinism.
    // The paper's age policy is the common case and needs no view.
    scratch.list.clear();
    scratch.wait_edges.clear();
    // Stall attribution needs the first failing primitive of the
    // highest-priority enabled edge for every OSM still blocked at the end
    // of the step; `first_fail` collects it during the scan so no second
    // probe pass is needed.
    debug_assert_eq!(TRACKING, stalls.is_some() || !observers.is_empty());
    if TRACKING {
        scratch.first_fail.clear();
        scratch.first_fail.resize(osms.len(), None);
    }
    if age_ranking {
        for osm in osms.iter() {
            scratch.list.push((osm.age, osm.id));
        }
    } else {
        for osm in osms.iter() {
            scratch.list.push((ranker.rank(&osm.view(), shared), osm.id));
        }
    }
    scratch.list.sort_unstable_by_key(|&(rank, id)| (rank, id));
    let mut list = std::mem::take(&mut scratch.list);

    let mut transitions: u32 = 0;
    let mut completions: u32 = 0;

    let mut i = 0;
    while i < list.len() {
        let id = list[i].1;
        let osm = &mut osms[id.index()];
        let spec_idx = osm.spec_idx;
        let spec = &specs[spec_idx as usize];
        let mut moved = false;
        if TRACKING {
            scratch.first_fail[id.index()] = None;
        }

        for &eid in spec.out_edges(osm.state) {
            let edge = spec.edge(eid);
            if !osm.behavior.edge_enabled(edge, &osm.view(), shared) {
                stats.vetoed_edges += 1;
                continue;
            }
            let satisfied = if TRACKING && !observers.is_empty() {
                try_condition::<S, true>(osm, edge, managers, scratch, false, observers, cycle)
            } else {
                try_condition::<S, false>(osm, edge, managers, scratch, false, &mut [], cycle)
            };
            if satisfied {
                {
                    if TRACKING && !observers.is_empty() {
                        commit_plan::<S, true>(osm, scratch, managers, observers, cycle, eid);
                    } else {
                        commit_plan::<S, false>(osm, scratch, managers, &mut [], cycle, eid);
                    }
                    let from = osm.state;
                    osm.state = edge.dst;
                    let initial = spec.initial();
                    if from == initial && edge.dst != initial {
                        osm.age = *age_counter;
                        *age_counter += 1;
                    } else if edge.dst == initial {
                        osm.age = IDLE_AGE;
                        completions += 1;
                        debug_assert!(
                            osm.buffer.is_empty(),
                            "OSM {} returned to initial state still holding tokens: {:?}",
                            osm.id,
                            osm.buffer
                        );
                    }
                    osm.last_move_cycle = cycle;
                    let mut ctx = TransitionCtx {
                        osm: osm.id,
                        from,
                        to: edge.dst,
                        cycle,
                        tag: osm.tag,
                        slots: &mut osm.slots,
                        buffer: &osm.buffer,
                        managers,
                        shared,
                    };
                    osm.behavior.on_transition(edge, &mut ctx);
                    if TRACKING && !observers.is_empty() {
                        let ev = TransitionEvent {
                            cycle,
                            osm: id,
                            spec: spec_idx,
                            edge: eid,
                            from,
                            to: edge.dst,
                            started: from == initial && edge.dst != initial,
                            completed: edge.dst == initial,
                        };
                        for o in observers.iter_mut() {
                            o.on_transition(&ev);
                        }
                    }
                    stats.transitions += 1;
                    transitions += 1;
                    moved = true;
                    break;
                }
            } else {
                stats.condition_failures += 1;
                if TRACKING && scratch.first_fail[id.index()].is_none() {
                    scratch.first_fail[id.index()] = scratch.fail;
                }
            }
        }

        if moved {
            list.remove(i);
            match policy {
                RestartPolicy::Restart => {
                    if i != 0 {
                        stats.restarts += 1;
                    }
                    i = 0;
                }
                RestartPolicy::NoRestart => {
                    // The removed element's successor slid into position i.
                }
            }
        } else {
            i += 1;
        }
    }

    // Everything still in `list` failed to leave its state this step; charge
    // the first blocking (manager, primitive) pair recorded during the scan.
    if TRACKING {
        for &(_, id) in &list {
            let Some((prim, ident)) = scratch.first_fail[id.index()] else {
                continue;
            };
            let Some(manager) = prim.manager() else {
                continue;
            };
            let op = prim.kind();
            if let Some(t) = stalls.as_deref_mut() {
                t.charge(id, manager, op);
            }
            if !observers.is_empty() {
                let osm = &osms[id.index()];
                let ev = StallEvent {
                    cycle,
                    osm: id,
                    spec: osm.spec_idx,
                    state: osm.state,
                    manager,
                    op,
                    ident,
                };
                for o in observers.iter_mut() {
                    o.on_stall(&ev);
                }
            }
        }
    }

    if transitions == 0 {
        stats.idle_steps += 1;
        if TRACKING {
            if let Some(t) = stalls {
                t.global_stall_cycles += 1;
            }
        }
        if deadlock_check {
            // Lazy wait-for-graph construction: only on globally idle steps
            // is a second evaluation pass run, this time recording which
            // OSMs own the blocking tokens. Conditions all failed above and
            // nothing changed, so they fail again — the pass is side-effect
            // free.
            for osm in osms.iter_mut() {
                let spec = &specs[osm.spec_idx as usize];
                for &eid in spec.out_edges(osm.state) {
                    let edge = spec.edge(eid);
                    if !osm.behavior.edge_enabled(edge, &osm.view(), shared) {
                        continue;
                    }
                    // Pass no observers: this re-evaluation is a diagnostic
                    // pass, and emitting events here would break the
                    // one-Denied-per-condition-failure reconciliation.
                    let satisfied =
                        try_condition::<S, false>(osm, edge, managers, scratch, true, &mut [], cycle);
                    debug_assert!(!satisfied, "idle step re-evaluation succeeded");
                    if satisfied {
                        // Roll back defensively in release builds.
                        for op in scratch.ops.iter().rev() {
                            match *op {
                                PreparedOp::Alloc { manager, token, .. } => {
                                    managers.get_mut(manager).abort_allocate(osm.id, token)
                                }
                                PreparedOp::Release { manager, token, .. } => {
                                    managers.get_mut(manager).abort_release(osm.id, token)
                                }
                            }
                        }
                    }
                }
            }
            if let Some(cycle_osms) = find_wait_cycle(&scratch.wait_edges) {
                return Err(ModelError::Deadlock {
                    cycle,
                    osms: cycle_osms,
                });
            }
        }
    }

    if TRACKING {
        for o in observers.iter_mut() {
            o.on_cycle_end(cycle, transitions, completions);
        }
    }

    scratch.list = list;
    scratch.list.clear();
    Ok(StepOutcome {
        transitions,
        completions,
    })
}

/// Probes `edge` for `osm` and reports why it cannot fire right now, or
/// `None` if it is momentarily satisfiable. Every tentative transaction is
/// aborted before returning, so the probe is side-effect free on managers
/// honoring the two-phase protocol.
fn probe_edge<S>(
    osm: &Osm<S>,
    edge: &Edge,
    managers: &mut ManagerTable,
    scratch: &mut Scratch,
) -> Option<WaitCause> {
    if try_condition::<S, false>(osm, edge, managers, scratch, false, &mut [], 0) {
        // Satisfiable: roll the tentative transactions back (this is only a
        // probe, not a scheduling pass).
        for op in scratch.ops.iter().rev() {
            match *op {
                PreparedOp::Alloc { manager, token, .. } => {
                    managers.get_mut(manager).abort_allocate(osm.id, token);
                }
                PreparedOp::Release { manager, token, .. } => {
                    managers.get_mut(manager).abort_release(osm.id, token);
                }
            }
        }
        return None;
    }
    let (prim, ident) = scratch.fail.take()?;
    let manager = prim.manager()?;
    let manager_name = managers
        .try_get(manager)
        .map(|m| m.name().to_owned())
        .unwrap_or_else(|| format!("<unknown {manager}>"));
    let owner = managers
        .try_get(manager)
        .and_then(|m| m.owner_of(ident))
        .filter(|&o| o != osm.id);
    Some(WaitCause {
        manager,
        manager_name,
        primitive: prim.to_string(),
        owner,
    })
}

/// Builds the [`BlockedOsm`] diagnostics of a stall report: for every OSM
/// accepted by `include`, probes each enabled outgoing edge and records the
/// first failing primitive. Side-effect free (probing prepares then aborts).
pub(crate) fn diagnose_blocked<S: 'static>(
    osms: &[Osm<S>],
    specs: &[Arc<StateMachineSpec>],
    managers: &mut ManagerTable,
    shared: &S,
    scratch: &mut Scratch,
    include: &mut dyn FnMut(&Osm<S>) -> bool,
) -> Vec<BlockedOsm> {
    let mut blocked = Vec::new();
    for osm in osms {
        if !include(osm) {
            continue;
        }
        let spec = &specs[osm.spec_idx as usize];
        let mut waiting_on = Vec::new();
        for &eid in spec.out_edges(osm.state) {
            let edge = spec.edge(eid);
            if !osm.behavior.edge_enabled(edge, &osm.view(), shared) {
                continue;
            }
            if let Some(cause) = probe_edge(osm, edge, managers, scratch) {
                waiting_on.push(cause);
            }
        }
        blocked.push(BlockedOsm {
            osm: osm.id,
            spec: spec.name().to_owned(),
            state: spec.state_name(osm.state).to_owned(),
            held: osm.buffer.iter().map(|h| h.token).collect(),
            waiting_on,
        });
    }
    blocked
}

/// Finds a cycle in the wait-for graph, if any, returning its nodes.
fn find_wait_cycle(edges: &[(OsmId, OsmId)]) -> Option<Vec<OsmId>> {
    use std::collections::HashMap;
    let mut adj: HashMap<OsmId, Vec<OsmId>> = HashMap::new();
    for &(a, b) in edges {
        adj.entry(a).or_default().push(b);
    }

    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Gray,
        Black,
    }
    let mut marks: HashMap<OsmId, Mark> = adj.keys().map(|&k| (k, Mark::White)).collect();

    fn dfs(
        node: OsmId,
        adj: &HashMap<OsmId, Vec<OsmId>>,
        marks: &mut HashMap<OsmId, Mark>,
        stack: &mut Vec<OsmId>,
    ) -> Option<Vec<OsmId>> {
        marks.insert(node, Mark::Gray);
        stack.push(node);
        if let Some(next) = adj.get(&node) {
            for &n in next {
                match marks.get(&n).copied().unwrap_or(Mark::Black) {
                    Mark::Gray => {
                        let start = stack.iter().position(|&x| x == n).unwrap_or(0);
                        return Some(stack[start..].to_vec());
                    }
                    Mark::White => {
                        if let Some(c) = dfs(n, adj, marks, stack) {
                            return Some(c);
                        }
                    }
                    Mark::Black => {}
                }
            }
        }
        stack.pop();
        marks.insert(node, Mark::Black);
        None
    }

    let nodes: Vec<OsmId> = adj.keys().copied().collect();
    let mut stack = Vec::new();
    for n in nodes {
        if marks.get(&n) == Some(&Mark::White) {
            if let Some(c) = dfs(n, &adj, &mut marks, &mut stack) {
                return Some(c);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_cycle_detected() {
        let edges = vec![(OsmId(0), OsmId(1)), (OsmId(1), OsmId(0))];
        let cyc = find_wait_cycle(&edges).expect("cycle");
        assert_eq!(cyc.len(), 2);
    }

    #[test]
    fn no_cycle_in_chain() {
        let edges = vec![(OsmId(0), OsmId(1)), (OsmId(1), OsmId(2))];
        assert!(find_wait_cycle(&edges).is_none());
    }

    #[test]
    fn self_wait_is_a_cycle() {
        // An OSM blocked on a token it cannot obtain from itself would be a
        // modeling error; the detector reports it.
        let edges = vec![(OsmId(3), OsmId(3))];
        let cyc = find_wait_cycle(&edges).expect("self cycle");
        assert_eq!(cyc, vec![OsmId(3)]);
    }

    #[test]
    fn empty_graph_has_no_cycle() {
        assert!(find_wait_cycle(&[]).is_none());
    }
}
