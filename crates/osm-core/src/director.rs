//! The director: ranking and the sequential scheduling algorithm of Fig. 3.
//!
//! At each control step the director ranks every OSM, then serves them in
//! rank order. For each OSM it evaluates the outgoing edges of the current
//! state in descending static-priority order; the first edge whose condition
//! (a conjunction of Λ primitives) is satisfied commits atomically and the
//! OSM transitions — at most once per control step. After a transition the
//! director may restart its outer loop from the highest-ranked remaining OSM
//! so that operations blocked on just-freed resources are served within the
//! same control step ([`RestartPolicy::Restart`], the paper's Fig. 3
//! behaviour).

use crate::error::{BlockedOsm, ModelError, WaitCause};
use crate::ids::{EdgeId, ManagerId, OsmId};
use crate::manager::ManagerTable;
use crate::observe::{
    Observer, StallEvent, StallTracker, TokenEvent, TokenOpKind, TokenOutcome, TransitionEvent,
};
use crate::osm::{Osm, OsmView, TransitionCtx, IDLE_AGE};
use crate::spec::{Edge, StateMachineSpec};
use crate::stats::Stats;
use crate::token::{HeldToken, IdentExpr, Primitive, Token, TokenIdent};
use std::sync::Arc;

/// Whether the director restarts its outer loop after a transition (Fig. 3).
///
/// The paper's case studies note that with age ranking no senior operation
/// depends on a junior one, so the restart can be skipped without changing
/// behaviour ([`RestartPolicy::NoRestart`]); the ablation benchmark measures
/// the cost difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RestartPolicy {
    /// Restart from the highest-ranked remaining OSM after every transition.
    #[default]
    Restart,
    /// Continue scanning past the transitioned OSM.
    NoRestart,
}

/// Which scheduling implementation the director runs
/// ([`crate::Machine::set_scheduler_mode`]).
///
/// Both modes execute the same abstract algorithm (Fig. 3 under the
/// configured [`RestartPolicy`]) and commit identical transitions in
/// identical order — the transition trace digest is mode-invariant, which is
/// how the fast path is validated. They differ only in how much work they do
/// to discover the next transition, so effort counters
/// ([`crate::Stats::condition_failures`], [`crate::Stats::vetoed_edges`])
/// legitimately differ between modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerMode {
    /// Sensitivity-driven scheduling: OSMs blocked on managers whose dirty
    /// epoch has not moved are skipped without re-evaluating their edge
    /// conditions, and the per-step rank sort is replaced by an
    /// incrementally maintained ready list. Requires age ranking (the
    /// default policy); with a custom [`Ranker`] the director silently runs
    /// the reference scheduler.
    #[default]
    Fast,
    /// The literal Fig. 3 reference scheduler (full re-rank, sort and
    /// re-evaluation every step) — the oracle the fast path is checked
    /// against.
    Seed,
}

/// Ranks OSMs at the beginning of each control step (paper §3.4).
///
/// Smaller rank = served earlier. Ties are broken by [`OsmId`] so the
/// schedule is always a total order (determinism).
pub trait Ranker<S>: Send + 'static {
    /// Computes the rank of one OSM.
    fn rank(&self, view: &OsmView<'_>, shared: &S) -> u64;
}

/// The paper's case-study policy: rank by age, i.e. the order in which the
/// OSMs last left the initial state (seniors first); idle OSMs last.
#[derive(Debug, Clone, Copy, Default)]
pub struct AgeRanker;

impl<S> Ranker<S> for AgeRanker {
    fn rank(&self, view: &OsmView<'_>, _shared: &S) -> u64 {
        view.age
    }
}

/// The closure type boxed inside a [`FnRanker`].
pub type RankFn<S> = dyn Fn(&OsmView<'_>, &S) -> u64 + Send;

/// Rank by a closure (ablation experiments, multithreading policies).
pub struct FnRanker<S>(pub Box<RankFn<S>>);

impl<S> std::fmt::Debug for FnRanker<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FnRanker(..)")
    }
}

impl<S: 'static> Ranker<S> for FnRanker<S> {
    fn rank(&self, view: &OsmView<'_>, shared: &S) -> u64 {
        (self.0)(view, shared)
    }
}

/// Result of one control step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepOutcome {
    /// Number of OSM transitions committed this step.
    pub transitions: u32,
    /// Of those, how many returned an OSM to its initial state (operation
    /// completions — the stall watchdog's notion of end-to-end progress).
    pub completions: u32,
}

/// A prepared (but not yet committed) transaction of one edge condition.
#[derive(Debug, Clone, Copy)]
enum PreparedOp {
    Alloc {
        manager: ManagerId,
        ident: TokenIdent,
        token: Token,
    },
    Release {
        manager: ManagerId,
        buffer_index: usize,
        token: Token,
    },
}

/// A discard to apply if the edge commits.
#[derive(Debug, Clone, Copy)]
enum DiscardSpec {
    /// Discard every held token (optionally restricted to one manager).
    All(Option<ManagerId>),
    /// Discard the held token requested under `ident` from `manager`.
    One(ManagerId, TokenIdent),
}

/// Maximum number of distinct blocking managers a [`SensEntry`] can track;
/// an OSM blocked on more is simply re-evaluated every step.
const MAX_SENS: usize = 4;

/// Tombstone value in the fast scheduler's ready list (never a valid id:
/// registration caps ids below `u32::MAX`).
const TOMBSTONE: OsmId = OsmId(u32::MAX);

/// Persistent per-OSM sensitivity record of the fast scheduler: everything
/// needed to prove, without re-evaluating edge conditions, that a blocked
/// OSM still cannot move.
///
/// The record is sound to skip on because a failed edge evaluation is a pure
/// function of (a) the OSM's state, slots and buffer — which only change on
/// the OSM's own transitions, invalidating the record, (b) the behavior veto
/// mask — re-checked cheaply on every skip test, and (c) the internal state
/// of the managers contacted up to the first failing primitive of each
/// enabled edge — guarded by the recorded dirty epochs.
#[derive(Debug, Clone, Copy, Default)]
struct SensEntry {
    /// Record reflects a real evaluation of the current residence in
    /// `state`; cleared on every transition of the OSM.
    valid: bool,
    /// The OSM's previous evaluation also ended blocked in `state`.
    /// Recording is deferred until the second consecutive blocked
    /// evaluation: dense machines (whose blocked episodes last a cycle or
    /// two) then never pay the recording bookkeeping, while sparse ones
    /// amortize it over a long skip run anyway.
    armed: bool,
    /// False when the record cannot justify skipping (more than [`MAX_SENS`]
    /// blocking managers, a manager-less failing primitive, >64 out-edges).
    skippable: bool,
    /// The state the OSM was blocked in when the record was taken.
    state: crate::ids::StateId,
    /// Behavior veto bitmap over the state's out-edges (bit k = edge k
    /// enabled) at record time.
    veto_mask: u64,
    /// Number of live entries in `mgrs`/`epochs`.
    n: u8,
    /// Distinct managers whose denial blocked the enabled edges.
    mgrs: [ManagerId; MAX_SENS],
    /// Their dirty epochs at record time.
    epochs: [u64; MAX_SENS],
    /// First failing primitive of the highest-priority enabled edge at the
    /// most recent real evaluation (stall-cause attribution for steps where
    /// the OSM is skipped).
    fail: Option<(Primitive, TokenIdent)>,
}

/// Reusable per-step scratch buffers: the director's hot loop runs without
/// heap allocation in steady state (the paper's efficiency claim depends on
/// the control step being cheap).
#[derive(Debug, Default)]
pub(crate) struct Scratch {
    pub(crate) list: Vec<(u64, OsmId)>,
    ops: Vec<PreparedOp>,
    discards: Vec<DiscardSpec>,
    used: Vec<usize>,
    removed: Vec<usize>,
    wait_edges: Vec<(OsmId, OsmId)>,
    /// First failing primitive of the most recent failed `try_condition`,
    /// with its resolved identifier (stall diagnostics).
    fail: Option<(Primitive, TokenIdent)>,
    /// Per-OSM first failing primitive of the OSM's most recent edge scan
    /// this step (stall-cause attribution; maintained only when observers or
    /// a [`StallTracker`] are active).
    first_fail: Vec<Option<(Primitive, TokenIdent)>>,
    // --- persistent fast-scheduler state (SchedulerMode::Fast) ---
    /// Monotonic step counter ("this step" watermark for `moved`); not the
    /// machine cycle, which can rewind on checkpoint restore.
    step_seq: u64,
    /// True while `active` reflects the in-flight OSM population.
    sched_valid: bool,
    /// In-flight OSMs in age order (ages are assigned monotonically at
    /// dispatch, so insertion keeps the list sorted); completed entries are
    /// tombstoned and compacted lazily.
    active: Vec<OsmId>,
    /// Number of tombstones currently in `active`.
    active_dead: usize,
    /// Per-OSM `step_seq` of the OSM's most recent transition.
    moved: Vec<u64>,
    /// Per-OSM sensitivity records.
    sens: Vec<SensEntry>,
    /// `ManagerTable::generation()` at the last idle-step deadlock
    /// diagnostic scan; lets the fast path prove the scan would find the
    /// same (empty) wait-for graph again and skip it.
    last_diag_generation: u64,
    /// Skips granted by [`can_skip`] in the current adaptation window.
    adapt_skips: u64,
    /// Full OSM evaluations performed in the current adaptation window.
    adapt_evals: u64,
    /// Control steps elapsed in the current adaptation window.
    adapt_steps: u32,
    /// Steps left on the reference scheduler before the fast path is probed
    /// again (see [`ADAPT_WINDOW`]); 0 = fast path active.
    pub(crate) adapt_cooldown: u32,
}

/// Length (in control steps) of the fast path's self-observation window.
/// At the end of each window, if the skips granted did not outnumber the
/// full evaluations performed, the sensitivity machinery is not paying for
/// its bookkeeping — the machine is dense — and scheduling falls back to
/// the reference loop for [`ADAPT_COOLDOWN`] steps before probing again.
/// Both schedulers are cycle-exact, so adaptation never changes a trace.
const ADAPT_WINDOW: u32 = 128;
/// Steps spent on the reference scheduler after an unproductive window;
/// the fast path re-probes afterwards in case the workload turned sparse.
/// Dense machines thus pay the fast-path overhead on ~3% of their steps.
const ADAPT_COOLDOWN: u32 = 4096;

impl Scratch {
    /// Discards all persistent fast-scheduler state; the next fast control
    /// step rebuilds it from the machine. Called on any machine mutation
    /// that can invalidate it (checkpoint restore, ranker/mode changes).
    pub(crate) fn invalidate_schedule(&mut self) {
        self.sched_valid = false;
        self.sens.clear();
        self.moved.clear();
        self.active.clear();
        self.active_dead = 0;
        self.last_diag_generation = u64::MAX;
        self.adapt_skips = 0;
        self.adapt_evals = 0;
        self.adapt_steps = 0;
        self.adapt_cooldown = 0;
    }
}

/// Emits one token event to every observer.
#[inline]
fn emit_token(observers: &mut [Box<dyn Observer>], ev: TokenEvent) {
    for o in observers.iter_mut() {
        o.on_token_op(&ev);
    }
}

/// Resolution of an [`IdentExpr`] against an OSM's slots.
enum Resolved {
    Ident(TokenIdent),
    /// Slot holds [`TokenIdent::NONE`]: the primitive is vacuous.
    Vacuous,
    AnyHeld,
}

#[inline]
fn resolve(expr: IdentExpr, slots: &[TokenIdent]) -> Resolved {
    match expr {
        IdentExpr::Const(v) if TokenIdent(v).is_none() => Resolved::Vacuous,
        IdentExpr::Const(v) => Resolved::Ident(TokenIdent(v)),
        IdentExpr::Slot(s) => {
            let ident = slots.get(s.index()).copied().unwrap_or(TokenIdent::NONE);
            if ident.is_none() {
                Resolved::Vacuous
            } else {
                Resolved::Ident(ident)
            }
        }
        IdentExpr::AnyHeld => Resolved::AnyHeld,
    }
}

/// Evaluates `edge`'s condition for `osm`, tentatively applying
/// transactions into `scratch` (cleared on entry). Returns true when the
/// condition is satisfied; on failure every prepared transaction is aborted
/// and the blocking owners are appended to `scratch.wait_edges`.
///
/// Monomorphized over `OBS` so the no-observer instantiation carries zero
/// event-emission code in the per-primitive loop — the disabled path is
/// byte-for-byte the pre-observability hot loop. Callers must pass
/// `OBS = !observers.is_empty()` (an `OBS = false` call ignores `observers`).
fn try_condition<S, const OBS: bool>(
    osm: &Osm<S>,
    edge: &Edge,
    managers: &mut ManagerTable,
    scratch: &mut Scratch,
    collect_waits: bool,
    observers: &mut [Box<dyn Observer>],
    cycle: u64,
) -> bool {
    scratch.ops.clear();
    scratch.discards.clear();
    scratch.used.clear();
    scratch.fail = None;
    let mut failed = false;
    let observing = OBS;
    // One TokenEvent per manager contact; every failure path below emits
    // exactly one Denied event, so denied-event counts reconcile with
    // `Stats::condition_failures`.
    let token_ev = |op, ident, token, outcome| TokenEvent {
        cycle,
        osm: osm.id,
        edge: edge.id,
        manager: ManagerId(0), // overwritten by every caller
        op,
        ident,
        token,
        outcome,
    };

    'prims: for prim in &edge.condition {
        match *prim {
            Primitive::Allocate { manager, ident } => match resolve(ident, &osm.slots) {
                Resolved::Vacuous => {}
                Resolved::AnyHeld => {
                    debug_assert!(false, "allocate cannot use AnyHeld");
                    if observing {
                        emit_token(
                            observers,
                            TokenEvent {
                                manager,
                                ..token_ev(
                                    TokenOpKind::Allocate,
                                    TokenIdent::NONE,
                                    None,
                                    TokenOutcome::Denied,
                                )
                            },
                        );
                    }
                    scratch.fail = Some((*prim, TokenIdent::NONE));
                    failed = true;
                    break 'prims;
                }
                Resolved::Ident(id) => {
                    // A dangling manager id in the spec is a modeling error;
                    // it surfaces as a never-satisfied condition, not a panic.
                    let granted = managers
                        .try_probe_mut(manager)
                        .and_then(|m| m.prepare_allocate(osm.id, id));
                    if observing {
                        let outcome = if granted.is_some() {
                            TokenOutcome::Granted
                        } else {
                            TokenOutcome::Denied
                        };
                        emit_token(
                            observers,
                            TokenEvent {
                                manager,
                                ..token_ev(TokenOpKind::Allocate, id, granted, outcome)
                            },
                        );
                    }
                    match granted {
                        Some(token) => scratch.ops.push(PreparedOp::Alloc {
                            manager,
                            ident: id,
                            token,
                        }),
                        None => {
                            if collect_waits {
                                let owner =
                                    managers.try_get(manager).and_then(|m| m.owner_of(id));
                                if let Some(owner) = owner {
                                    if owner != osm.id {
                                        scratch.wait_edges.push((osm.id, owner));
                                    }
                                }
                            }
                            scratch.fail = Some((*prim, id));
                            failed = true;
                            break 'prims;
                        }
                    }
                }
            },
            Primitive::Inquire { manager, ident } => match resolve(ident, &osm.slots) {
                Resolved::Vacuous => {}
                Resolved::AnyHeld => {
                    debug_assert!(false, "inquire cannot use AnyHeld");
                    if observing {
                        emit_token(
                            observers,
                            TokenEvent {
                                manager,
                                ..token_ev(
                                    TokenOpKind::Inquire,
                                    TokenIdent::NONE,
                                    None,
                                    TokenOutcome::Denied,
                                )
                            },
                        );
                    }
                    scratch.fail = Some((*prim, TokenIdent::NONE));
                    failed = true;
                    break 'prims;
                }
                Resolved::Ident(id) => {
                    let ok = managers
                        .try_get(manager)
                        .is_some_and(|m| m.inquire(osm.id, id));
                    if observing {
                        let outcome = if ok {
                            TokenOutcome::Granted
                        } else {
                            TokenOutcome::Denied
                        };
                        emit_token(
                            observers,
                            TokenEvent {
                                manager,
                                ..token_ev(TokenOpKind::Inquire, id, None, outcome)
                            },
                        );
                    }
                    if !ok {
                        if collect_waits {
                            let owner = managers.try_get(manager).and_then(|m| m.owner_of(id));
                            if let Some(owner) = owner {
                                if owner != osm.id {
                                    scratch.wait_edges.push((osm.id, owner));
                                }
                            }
                        }
                        scratch.fail = Some((*prim, id));
                        failed = true;
                        break 'prims;
                    }
                }
            },
            Primitive::Release { manager, ident } => {
                let target = match resolve(ident, &osm.slots) {
                    Resolved::Vacuous => continue,
                    Resolved::AnyHeld => None,
                    Resolved::Ident(id) => Some(id),
                };
                let found = osm.buffer.iter().enumerate().position(|(i, held)| {
                    !scratch.used.contains(&i)
                        && held.token.manager == manager
                        && target.is_none_or(|id| held.ident == id)
                });
                match found {
                    Some(i) => {
                        let token = osm.buffer[i].token;
                        let accepted = managers
                            .try_probe_mut(manager)
                            .is_some_and(|m| m.prepare_release(osm.id, token));
                        if observing {
                            let outcome = if accepted {
                                TokenOutcome::Granted
                            } else {
                                TokenOutcome::Denied
                            };
                            emit_token(
                                observers,
                                TokenEvent {
                                    manager,
                                    ..token_ev(
                                        TokenOpKind::Release,
                                        osm.buffer[i].ident,
                                        Some(token),
                                        outcome,
                                    )
                                },
                            );
                        }
                        if accepted {
                            scratch.used.push(i);
                            scratch.ops.push(PreparedOp::Release {
                                manager,
                                buffer_index: i,
                                token,
                            });
                        } else {
                            scratch.fail = Some((*prim, osm.buffer[i].ident));
                            failed = true;
                            break 'prims;
                        }
                    }
                    None => {
                        // Releasing a token the OSM does not hold is a model
                        // inconsistency; treat as an unsatisfied condition.
                        let ident = target.unwrap_or(TokenIdent::NONE);
                        if observing {
                            emit_token(
                                observers,
                                TokenEvent {
                                    manager,
                                    ..token_ev(
                                        TokenOpKind::Release,
                                        ident,
                                        None,
                                        TokenOutcome::Denied,
                                    )
                                },
                            );
                        }
                        scratch.fail = Some((*prim, ident));
                        failed = true;
                        break 'prims;
                    }
                }
            }
            Primitive::Discard { manager, ident } => match resolve(ident, &osm.slots) {
                Resolved::Vacuous => {}
                Resolved::AnyHeld => scratch.discards.push(DiscardSpec::All(manager)),
                Resolved::Ident(id) => {
                    if let Some(m) = manager {
                        scratch.discards.push(DiscardSpec::One(m, id));
                    } else {
                        scratch.discards.push(DiscardSpec::All(None));
                    }
                }
            },
        }
    }

    if failed {
        // Manager ids here are in range: each op's prepare succeeded above.
        for op in scratch.ops.iter().rev() {
            match *op {
                PreparedOp::Alloc {
                    manager,
                    ident,
                    token,
                } => {
                    managers.probe_mut(manager).abort_allocate(osm.id, token);
                    if observing {
                        emit_token(
                            observers,
                            TokenEvent {
                                manager,
                                ..token_ev(
                                    TokenOpKind::Allocate,
                                    ident,
                                    Some(token),
                                    TokenOutcome::Aborted,
                                )
                            },
                        );
                    }
                }
                PreparedOp::Release {
                    manager,
                    buffer_index,
                    token,
                } => {
                    managers.probe_mut(manager).abort_release(osm.id, token);
                    if observing {
                        emit_token(
                            observers,
                            TokenEvent {
                                manager,
                                ..token_ev(
                                    TokenOpKind::Release,
                                    osm.buffer[buffer_index].ident,
                                    Some(token),
                                    TokenOutcome::Aborted,
                                )
                            },
                        );
                    }
                }
            }
        }
        false
    } else {
        true
    }
}

/// Commits the satisfied plan held in `scratch`: finalizes transactions and
/// updates the buffer.
fn commit_plan<S, const OBS: bool>(
    osm: &mut Osm<S>,
    scratch: &mut Scratch,
    managers: &mut ManagerTable,
    observers: &mut [Box<dyn Observer>],
    cycle: u64,
    edge: EdgeId,
) {
    let observing = OBS;
    scratch.removed.clear();
    for op in &scratch.ops {
        match *op {
            PreparedOp::Alloc {
                manager,
                ident,
                token,
            } => {
                managers.get_mut(manager).commit_allocate(osm.id, token);
                osm.buffer.push(HeldToken { ident, token });
            }
            PreparedOp::Release {
                manager,
                buffer_index,
                token,
            } => {
                managers.get_mut(manager).commit_release(osm.id, token);
                scratch.removed.push(buffer_index);
            }
        }
    }
    scratch.removed.sort_unstable_by(|a, b| b.cmp(a));
    for &i in &scratch.removed {
        osm.buffer.remove(i);
    }
    for spec in &scratch.discards {
        let mut i = 0;
        while i < osm.buffer.len() {
            let held = osm.buffer[i];
            let matches = match *spec {
                DiscardSpec::All(None) => true,
                DiscardSpec::All(Some(m)) => held.token.manager == m,
                DiscardSpec::One(m, id) => held.token.manager == m && held.ident == id,
            };
            if matches {
                managers
                    .get_mut(held.token.manager)
                    .discard(osm.id, held.token);
                if observing {
                    emit_token(
                        observers,
                        TokenEvent {
                            cycle,
                            osm: osm.id,
                            edge,
                            manager: held.token.manager,
                            op: TokenOpKind::Discard,
                            ident: held.ident,
                            token: Some(held.token),
                            outcome: TokenOutcome::Granted,
                        },
                    );
                }
                osm.buffer.remove(i);
            } else {
                i += 1;
            }
        }
    }
}

/// Runs one control step over all OSMs (the Fig. 3 algorithm).
///
/// Monomorphized over `TRACKING`: callers pass `TRACKING = true` exactly
/// when observers are registered or a [`StallTracker`] is attached, and
/// `TRACKING = false` otherwise. The false instantiation contains no
/// event-emission or attribution code at all, so an uninstrumented machine
/// runs the pre-observability hot loop (one branch per cycle picks the
/// instantiation).
///
/// # Errors
/// Returns [`ModelError::Deadlock`] if `deadlock_check` is on, no OSM
/// transitioned, and the blocked OSMs form a wait-for cycle.
#[allow(clippy::too_many_arguments)]
pub(crate) fn control_step<S: 'static, const TRACKING: bool>(
    osms: &mut [Osm<S>],
    specs: &[std::sync::Arc<crate::spec::StateMachineSpec>],
    managers: &mut ManagerTable,
    shared: &mut S,
    ranker: &dyn Ranker<S>,
    age_ranking: bool,
    policy: RestartPolicy,
    deadlock_check: bool,
    cycle: u64,
    age_counter: &mut u64,
    stats: &mut Stats,
    observers: &mut [Box<dyn Observer>],
    mut stalls: Option<&mut StallTracker>,
    scratch: &mut Scratch,
) -> Result<StepOutcome, ModelError> {
    // Rank all OSMs; stable order by (rank, id) guarantees determinism.
    // The paper's age policy is the common case and needs no view.
    scratch.list.clear();
    scratch.wait_edges.clear();
    // Stall attribution needs the first failing primitive of the
    // highest-priority enabled edge for every OSM still blocked at the end
    // of the step; `first_fail` collects it during the scan so no second
    // probe pass is needed.
    debug_assert_eq!(TRACKING, stalls.is_some() || !observers.is_empty());
    if TRACKING {
        scratch.first_fail.clear();
        scratch.first_fail.resize(osms.len(), None);
    }
    if age_ranking {
        for osm in osms.iter() {
            scratch.list.push((osm.age, osm.id));
        }
    } else {
        for osm in osms.iter() {
            scratch.list.push((ranker.rank(&osm.view(), shared), osm.id));
        }
    }
    scratch.list.sort_unstable_by_key(|&(rank, id)| (rank, id));
    let mut list = std::mem::take(&mut scratch.list);

    let mut transitions: u32 = 0;
    let mut completions: u32 = 0;
    let mut step_restarts: u32 = 0;

    let mut i = 0;
    while i < list.len() {
        let id = list[i].1;
        let osm = &mut osms[id.index()];
        let spec_idx = osm.spec_idx;
        let spec = &specs[spec_idx as usize];
        let mut moved = false;
        if TRACKING {
            scratch.first_fail[id.index()] = None;
        }

        for &eid in spec.out_edges(osm.state) {
            let edge = spec.edge(eid);
            if !osm.behavior.edge_enabled(edge, &osm.view(), shared) {
                stats.vetoed_edges += 1;
                continue;
            }
            let satisfied = if TRACKING && !observers.is_empty() {
                try_condition::<S, true>(osm, edge, managers, scratch, false, observers, cycle)
            } else {
                try_condition::<S, false>(osm, edge, managers, scratch, false, &mut [], cycle)
            };
            if satisfied {
                {
                    if TRACKING && !observers.is_empty() {
                        commit_plan::<S, true>(osm, scratch, managers, observers, cycle, eid);
                    } else {
                        commit_plan::<S, false>(osm, scratch, managers, &mut [], cycle, eid);
                    }
                    let from = osm.state;
                    osm.state = edge.dst;
                    let initial = spec.initial();
                    if from == initial && edge.dst != initial {
                        osm.age = *age_counter;
                        *age_counter += 1;
                    } else if edge.dst == initial {
                        osm.age = IDLE_AGE;
                        completions += 1;
                        debug_assert!(
                            osm.buffer.is_empty(),
                            "OSM {} returned to initial state still holding tokens: {:?}",
                            osm.id,
                            osm.buffer
                        );
                    }
                    osm.last_move_cycle = cycle;
                    let mut ctx = TransitionCtx {
                        osm: osm.id,
                        from,
                        to: edge.dst,
                        cycle,
                        tag: osm.tag,
                        slots: &mut osm.slots,
                        buffer: &osm.buffer,
                        managers,
                        shared,
                    };
                    osm.behavior.on_transition(edge, &mut ctx);
                    if TRACKING && !observers.is_empty() {
                        let ev = TransitionEvent {
                            cycle,
                            osm: id,
                            spec: spec_idx,
                            edge: eid,
                            from,
                            to: edge.dst,
                            started: from == initial && edge.dst != initial,
                            completed: edge.dst == initial,
                        };
                        for o in observers.iter_mut() {
                            o.on_transition(&ev);
                        }
                    }
                    stats.transitions += 1;
                    transitions += 1;
                    moved = true;
                    break;
                }
            } else {
                stats.condition_failures += 1;
                if TRACKING && scratch.first_fail[id.index()].is_none() {
                    scratch.first_fail[id.index()] = scratch.fail;
                }
            }
        }

        if moved {
            list.remove(i);
            match policy {
                RestartPolicy::Restart => {
                    // Every committed transition re-enters the Fig. 3 outer
                    // loop from the top; when OSMs remain unserved that
                    // rescan actually happens and is counted — including
                    // transitions at i == 0, which the counter previously
                    // missed (`Stats::restarts` = rescans performed).
                    if !list.is_empty() {
                        stats.restarts += 1;
                        step_restarts += 1;
                    }
                    i = 0;
                }
                RestartPolicy::NoRestart => {
                    // The removed element's successor slid into position i.
                }
            }
        } else {
            i += 1;
        }
    }

    // Everything still in `list` failed to leave its state this step; charge
    // the first blocking (manager, primitive) pair recorded during the scan.
    if TRACKING {
        for &(_, id) in &list {
            let Some((prim, ident)) = scratch.first_fail[id.index()] else {
                continue;
            };
            let Some(manager) = prim.manager() else {
                continue;
            };
            let op = prim.kind();
            if let Some(t) = stalls.as_deref_mut() {
                t.charge(id, manager, op);
            }
            if !observers.is_empty() {
                let osm = &osms[id.index()];
                let ev = StallEvent {
                    cycle,
                    osm: id,
                    spec: osm.spec_idx,
                    state: osm.state,
                    manager,
                    op,
                    ident,
                };
                for o in observers.iter_mut() {
                    o.on_stall(&ev);
                }
            }
        }
    }

    let mut deadlock: Option<ModelError> = None;
    if transitions == 0 {
        stats.idle_steps += 1;
        if TRACKING {
            if let Some(t) = stalls {
                t.global_stall_cycles += 1;
            }
        }
        if deadlock_check {
            if let Some(cycle_osms) =
                deadlock_diagnostic_scan(osms, specs, managers, shared, scratch, cycle)
            {
                deadlock = Some(ModelError::Deadlock {
                    cycle,
                    osms: cycle_osms,
                });
            }
        }
    }

    if TRACKING && deadlock.is_none() {
        for o in observers.iter_mut() {
            o.on_cycle_end(cycle, transitions, completions, step_restarts);
        }
    }

    // Restore the ranking buffer on *every* exit — previously the taken
    // `list` was dropped on the deadlock return, silently losing the
    // per-step allocation.
    scratch.list = list;
    scratch.list.clear();
    match deadlock {
        Some(err) => Err(err),
        None => Ok(StepOutcome {
            transitions,
            completions,
        }),
    }
}

/// Rebuilds the fast scheduler's persistent state from the machine: every
/// sensitivity record is dropped and the in-flight ready list is re-derived
/// from OSM ages. Runs after [`Scratch::invalidate_schedule`] or whenever the
/// OSM population changed size.
fn rebuild_schedule<S>(osms: &[Osm<S>], scratch: &mut Scratch) {
    let n = osms.len();
    scratch.moved.clear();
    scratch.moved.resize(n, 0);
    scratch.sens.clear();
    scratch.sens.resize(n, SensEntry::default());
    scratch.active.clear();
    scratch.active_dead = 0;
    scratch.last_diag_generation = u64::MAX;
    // Reuse the ranking buffer to sort the in-flight population by
    // (age, id); monotonic dispatch ages keep it sorted from here on.
    scratch.list.clear();
    for osm in osms {
        if osm.age != IDLE_AGE {
            scratch.list.push((osm.age, osm.id));
        }
    }
    scratch.list.sort_unstable();
    scratch.active.extend(scratch.list.iter().map(|&(_, id)| id));
    scratch.list.clear();
    scratch.sched_valid = true;
}

/// Decides whether a blocked OSM can be skipped without re-evaluating its
/// edge conditions: its sensitivity record must still describe the current
/// residence, the behavior veto mask must be unchanged (re-computed here —
/// vetoes may read time-dependent shared state), and every recorded blocking
/// manager must still be at its recorded dirty epoch.
#[inline]
fn can_skip<S: 'static>(
    osm: &Osm<S>,
    spec: &StateMachineSpec,
    managers: &ManagerTable,
    shared: &S,
    sens: &SensEntry,
) -> bool {
    if !sens.valid || !sens.skippable || sens.state != osm.state {
        return false;
    }
    // Epochs first: a handful of u64 compares. When the check fails it is
    // almost always here (a recorded manager got dirtied), so rejecting
    // before the veto-mask recompute saves its closure calls.
    for j in 0..sens.n as usize {
        if managers.epoch(sens.mgrs[j]) != sens.epochs[j] {
            return false;
        }
    }
    let out = spec.out_edges(osm.state);
    if out.len() > 64 {
        return false;
    }
    let mut mask: u64 = 0;
    for (k, &eid) in out.iter().enumerate() {
        let edge = spec.edge(eid);
        if !osm.behavior.edge_enabled(edge, &osm.view(), shared) {
            mask |= 1 << k;
        }
    }
    mask == sens.veto_mask
}

/// What [`serve_osm_fast`] did with one OSM.
struct Served {
    moved: bool,
    completed: bool,
    dispatched: bool,
}

/// Serves one OSM exactly as the reference scheduler's inner loop does —
/// same edge order, same transition bookkeeping, same counters — and, when
/// the OSM stays blocked, records its sensitivity entry so later steps can
/// skip it.
// Deliberately NOT inlined into the two fast-path call sites: the inlined
// body bloats the stepping loop enough to wreck the codegen of the
// (far hotter) skip checks — measured ~1.5x on the sparse benchmark. The
// call overhead only shows on dense machines, and those fall back to the
// reference scheduler via the adaptation window anyway.
#[inline(never)]
#[allow(clippy::too_many_arguments)]
fn serve_osm_fast<S: 'static, const TRACKING: bool>(
    osms: &mut [Osm<S>],
    id: OsmId,
    specs: &[Arc<StateMachineSpec>],
    managers: &mut ManagerTable,
    shared: &mut S,
    cycle: u64,
    age_counter: &mut u64,
    stats: &mut Stats,
    observers: &mut [Box<dyn Observer>],
    scratch: &mut Scratch,
) -> Served {
    let oi = id.index();
    let osm = &mut osms[oi];
    let spec_idx = osm.spec_idx;
    let spec = &specs[spec_idx as usize];
    if TRACKING {
        scratch.first_fail[oi] = None;
    }

    // Record only on the second consecutive blocked evaluation in the same
    // state (see [`SensEntry::armed`]); the first one just arms.
    let record = {
        let e = &scratch.sens[oi];
        (e.valid || e.armed) && e.state == osm.state
    };

    let out = spec.out_edges(osm.state);
    let mut veto_mask: u64 = 0;
    let mut skippable = out.len() <= 64;
    let mut mgrs = [ManagerId(0); MAX_SENS];
    let mut nm: usize = 0;
    let mut sens_fail: Option<(Primitive, TokenIdent)> = None;

    for (k, &eid) in out.iter().enumerate() {
        let edge = spec.edge(eid);
        if !osm.behavior.edge_enabled(edge, &osm.view(), shared) {
            stats.vetoed_edges += 1;
            if record && k < 64 {
                veto_mask |= 1 << k;
            }
            continue;
        }
        let satisfied = if TRACKING && !observers.is_empty() {
            try_condition::<S, true>(osm, edge, managers, scratch, false, observers, cycle)
        } else {
            try_condition::<S, false>(osm, edge, managers, scratch, false, &mut [], cycle)
        };
        if satisfied {
            if TRACKING && !observers.is_empty() {
                commit_plan::<S, true>(osm, scratch, managers, observers, cycle, eid);
            } else {
                commit_plan::<S, false>(osm, scratch, managers, &mut [], cycle, eid);
            }
            let from = osm.state;
            osm.state = edge.dst;
            let initial = spec.initial();
            let dispatched = from == initial && edge.dst != initial;
            let completed = edge.dst == initial;
            if dispatched {
                osm.age = *age_counter;
                *age_counter += 1;
            } else if completed {
                osm.age = IDLE_AGE;
                debug_assert!(
                    osm.buffer.is_empty(),
                    "OSM {} returned to initial state still holding tokens: {:?}",
                    osm.id,
                    osm.buffer
                );
            }
            osm.last_move_cycle = cycle;
            let mut ctx = TransitionCtx {
                osm: osm.id,
                from,
                to: edge.dst,
                cycle,
                tag: osm.tag,
                slots: &mut osm.slots,
                buffer: &osm.buffer,
                managers,
                shared,
            };
            osm.behavior.on_transition(edge, &mut ctx);
            if TRACKING && !observers.is_empty() {
                let ev = TransitionEvent {
                    cycle,
                    osm: id,
                    spec: spec_idx,
                    edge: eid,
                    from,
                    to: edge.dst,
                    started: dispatched,
                    completed,
                };
                for o in observers.iter_mut() {
                    o.on_transition(&ev);
                }
            }
            stats.transitions += 1;
            scratch.sens[oi].valid = false;
            scratch.sens[oi].armed = false;
            return Served {
                moved: true,
                completed,
                dispatched,
            };
        }
        stats.condition_failures += 1;
        if TRACKING && scratch.first_fail[oi].is_none() {
            scratch.first_fail[oi] = scratch.fail;
        }
        if record {
            if sens_fail.is_none() {
                sens_fail = scratch.fail;
            }
            match scratch.fail.and_then(|(p, _)| p.manager()) {
                Some(m) => {
                    if !mgrs[..nm].contains(&m) {
                        if nm < MAX_SENS {
                            mgrs[nm] = m;
                            nm += 1;
                        } else {
                            skippable = false;
                        }
                    }
                }
                None => skippable = false,
            }
        }
    }

    // Blocked. First time in this state: arm only — the record is taken on
    // the next blocked evaluation, so one-cycle stalls never pay for it.
    let entry = &mut scratch.sens[oi];
    if !record {
        entry.valid = false;
        entry.armed = true;
        entry.state = osm.state;
        return Served {
            moved: false,
            completed: false,
            dispatched: false,
        };
    }
    // Persist the sensitivity record. Epochs are read after the scan — the
    // scan itself only probes (prepare/abort), which never bumps an epoch,
    // so they reflect exactly the state just evaluated.
    entry.valid = true;
    entry.armed = true;
    entry.skippable = skippable;
    entry.state = osm.state;
    entry.veto_mask = veto_mask;
    entry.n = nm as u8;
    entry.mgrs = mgrs;
    for (j, &m) in mgrs.iter().enumerate().take(nm) {
        entry.epochs[j] = managers.epoch(m);
    }
    entry.fail = sens_fail;
    Served {
        moved: false,
        completed: false,
        dispatched: false,
    }
}

/// Charges one end-of-step blocked OSM to its first failing (manager,
/// primitive) pair — the fast path's equivalent of the reference scheduler's
/// residual-list attribution pass.
fn charge_blocked<S>(
    osms: &[Osm<S>],
    oi: usize,
    first_fail: &[Option<(Primitive, TokenIdent)>],
    stalls: &mut Option<&mut StallTracker>,
    observers: &mut [Box<dyn Observer>],
    cycle: u64,
) {
    let Some((prim, ident)) = first_fail[oi] else {
        return;
    };
    let Some(manager) = prim.manager() else {
        return;
    };
    let op = prim.kind();
    let osm = &osms[oi];
    if let Some(t) = stalls.as_deref_mut() {
        t.charge(osm.id, manager, op);
    }
    if !observers.is_empty() {
        let ev = StallEvent {
            cycle,
            osm: osm.id,
            spec: osm.spec_idx,
            state: osm.state,
            manager,
            op,
            ident,
        };
        for o in observers.iter_mut() {
            o.on_stall(&ev);
        }
    }
}

/// Runs one control step with the sensitivity-driven fast scheduler
/// ([`SchedulerMode::Fast`]); requires age ranking.
///
/// Serves OSMs in the same total order as [`control_step`] under age
/// ranking — in-flight OSMs seniors-first (the incrementally maintained
/// `active` list), then idle OSMs by id — but skips, without touching their
/// edge conditions, every blocked OSM whose sensitivity record still proves
/// it cannot move (see [`SensEntry`]). A skipped OSM contributes no token
/// events and no effort counters (`condition_failures`, `vetoed_edges`), so
/// the one-Denied-per-condition-failure reconciliation is preserved; its
/// stall attribution is charged from the persisted record instead.
///
/// # Errors
/// Returns [`ModelError::Deadlock`] exactly as the reference scheduler does;
/// the idle-step diagnostic scan is elided only when nothing was evaluated
/// this step and no manager epoch moved since the last scan — conditions
/// under which the scan would provably rebuild the same (acyclic) wait-for
/// graph.
#[allow(clippy::too_many_arguments)]
pub(crate) fn control_step_fast<S: 'static, const TRACKING: bool>(
    osms: &mut [Osm<S>],
    specs: &[std::sync::Arc<crate::spec::StateMachineSpec>],
    managers: &mut ManagerTable,
    shared: &mut S,
    policy: RestartPolicy,
    deadlock_check: bool,
    cycle: u64,
    age_counter: &mut u64,
    stats: &mut Stats,
    observers: &mut [Box<dyn Observer>],
    mut stalls: Option<&mut StallTracker>,
    scratch: &mut Scratch,
) -> Result<StepOutcome, ModelError> {
    let n = osms.len();
    scratch.wait_edges.clear();
    debug_assert_eq!(TRACKING, stalls.is_some() || !observers.is_empty());
    if TRACKING {
        scratch.first_fail.clear();
        scratch.first_fail.resize(n, None);
    }

    if !scratch.sched_valid || scratch.moved.len() != n {
        rebuild_schedule(osms, scratch);
    }
    scratch.step_seq += 1;
    let seq = scratch.step_seq;

    if scratch.active_dead * 2 > scratch.active.len() {
        scratch.active.retain(|&id| id != TOMBSTONE);
        scratch.active_dead = 0;
    }

    let mut transitions: u32 = 0;
    let mut completions: u32 = 0;
    let mut step_restarts: u32 = 0;
    let mut moved_count: usize = 0;
    let mut any_evaluated = false;
    let mut step_skips: u64 = 0;
    let mut step_evals: u64 = 0;

    let mut active = std::mem::take(&mut scratch.active);
    'outer: loop {
        // Phase 1: in-flight OSMs, seniors first (== the reference list's
        // age-ranked prefix).
        let mut ai = 0;
        while ai < active.len() {
            let id = active[ai];
            if id == TOMBSTONE {
                ai += 1;
                continue;
            }
            let oi = id.index();
            if scratch.moved[oi] == seq {
                ai += 1;
                continue;
            }
            let spec = &specs[osms[oi].spec_idx as usize];
            if can_skip(&osms[oi], spec, managers, shared, &scratch.sens[oi]) {
                if TRACKING {
                    scratch.first_fail[oi] = scratch.sens[oi].fail;
                }
                step_skips += 1;
                ai += 1;
                continue;
            }
            any_evaluated = true;
            step_evals += 1;
            let served = serve_osm_fast::<S, TRACKING>(
                osms,
                id,
                specs,
                managers,
                shared,
                cycle,
                age_counter,
                stats,
                observers,
                scratch,
            );
            if served.moved {
                scratch.moved[oi] = seq;
                moved_count += 1;
                transitions += 1;
                debug_assert!(!served.dispatched, "in-flight OSM cannot dispatch");
                if served.completed {
                    completions += 1;
                    active[ai] = TOMBSTONE;
                    scratch.active_dead += 1;
                }
                if policy == RestartPolicy::Restart {
                    if moved_count < n {
                        stats.restarts += 1;
                        step_restarts += 1;
                    }
                    continue 'outer;
                }
            }
            ai += 1;
        }
        // Phase 2: idle OSMs in id order (== the reference list's IDLE_AGE
        // tail, where ties break by id).
        let mut oi = 0;
        while oi < n {
            if osms[oi].age != IDLE_AGE || scratch.moved[oi] == seq {
                oi += 1;
                continue;
            }
            let id = osms[oi].id;
            let spec = &specs[osms[oi].spec_idx as usize];
            if can_skip(&osms[oi], spec, managers, shared, &scratch.sens[oi]) {
                if TRACKING {
                    scratch.first_fail[oi] = scratch.sens[oi].fail;
                }
                step_skips += 1;
                oi += 1;
                continue;
            }
            any_evaluated = true;
            step_evals += 1;
            let served = serve_osm_fast::<S, TRACKING>(
                osms,
                id,
                specs,
                managers,
                shared,
                cycle,
                age_counter,
                stats,
                observers,
                scratch,
            );
            if served.moved {
                scratch.moved[oi] = seq;
                moved_count += 1;
                transitions += 1;
                if served.dispatched {
                    // Freshly dispatched: joins the in-flight list. Its age
                    // is the largest assigned so far, so pushing keeps the
                    // list sorted.
                    active.push(id);
                } else if served.completed {
                    // Initial-state self-loop: completes without ever
                    // becoming in-flight.
                    completions += 1;
                }
                if policy == RestartPolicy::Restart {
                    if moved_count < n {
                        stats.restarts += 1;
                        step_restarts += 1;
                    }
                    continue 'outer;
                }
            }
            oi += 1;
        }
        break;
    }

    // Everything unmoved is blocked; charge its first blocking (manager,
    // primitive) pair — for skipped OSMs, from the persisted record — in the
    // same residual order the reference scheduler charges.
    if TRACKING {
        for &id in active.iter() {
            if id == TOMBSTONE {
                continue;
            }
            let oi = id.index();
            if scratch.moved[oi] == seq {
                continue;
            }
            charge_blocked(osms, oi, &scratch.first_fail, &mut stalls, observers, cycle);
        }
        for oi in 0..n {
            if osms[oi].age != IDLE_AGE || scratch.moved[oi] == seq {
                continue;
            }
            charge_blocked(osms, oi, &scratch.first_fail, &mut stalls, observers, cycle);
        }
    }

    let mut deadlock: Option<ModelError> = None;
    if transitions == 0 {
        stats.idle_steps += 1;
        if TRACKING {
            if let Some(t) = stalls {
                t.global_stall_cycles += 1;
            }
        }
        if deadlock_check {
            let generation = managers.generation();
            // When every OSM was skipped and no manager epoch has moved
            // since the last diagnostic scan, that scan would rebuild the
            // exact same wait-for graph it already proved acyclic — elide it.
            if any_evaluated || generation != scratch.last_diag_generation {
                if let Some(cycle_osms) =
                    deadlock_diagnostic_scan(osms, specs, managers, shared, scratch, cycle)
                {
                    deadlock = Some(ModelError::Deadlock {
                        cycle,
                        osms: cycle_osms,
                    });
                } else {
                    scratch.last_diag_generation = generation;
                }
            }
        }
    }

    if TRACKING && deadlock.is_none() {
        for o in observers.iter_mut() {
            o.on_cycle_end(cycle, transitions, completions, step_restarts);
        }
    }

    scratch.active = active;

    // Adaptation: if a whole window of steps produced fewer skips than full
    // evaluations, the sensitivity bookkeeping costs more than it saves —
    // fall back to the reference scheduler and re-probe later. Cycle
    // behavior is unaffected (both schedulers are exact); only effort
    // counters can differ.
    scratch.adapt_skips += step_skips;
    scratch.adapt_evals += step_evals;
    scratch.adapt_steps += 1;
    if scratch.adapt_steps >= ADAPT_WINDOW {
        let fall_back = scratch.adapt_skips < scratch.adapt_evals;
        scratch.adapt_skips = 0;
        scratch.adapt_evals = 0;
        scratch.adapt_steps = 0;
        if fall_back {
            scratch.invalidate_schedule();
            scratch.adapt_cooldown = ADAPT_COOLDOWN;
        }
    }

    match deadlock {
        Some(err) => Err(err),
        None => Ok(StepOutcome {
            transitions,
            completions,
        }),
    }
}

/// Second evaluation pass over every OSM on a globally idle step, this time
/// recording which OSMs own the blocking tokens (lazy wait-for-graph
/// construction); returns the OSMs of a wait-for cycle if one exists.
///
/// Conditions all failed in the scheduling pass and nothing has changed, so
/// they fail again — the pass is side-effect free (with a defensive rollback
/// for release builds). Runs with no observers: emitting events here would
/// break the one-Denied-per-condition-failure reconciliation.
fn deadlock_diagnostic_scan<S: 'static>(
    osms: &mut [Osm<S>],
    specs: &[Arc<StateMachineSpec>],
    managers: &mut ManagerTable,
    shared: &S,
    scratch: &mut Scratch,
    cycle: u64,
) -> Option<Vec<OsmId>> {
    for osm in osms.iter_mut() {
        let spec = &specs[osm.spec_idx as usize];
        for &eid in spec.out_edges(osm.state) {
            let edge = spec.edge(eid);
            if !osm.behavior.edge_enabled(edge, &osm.view(), shared) {
                continue;
            }
            let satisfied =
                try_condition::<S, false>(osm, edge, managers, scratch, true, &mut [], cycle);
            debug_assert!(!satisfied, "idle step re-evaluation succeeded");
            if satisfied {
                // Roll back defensively in release builds.
                for op in scratch.ops.iter().rev() {
                    match *op {
                        PreparedOp::Alloc { manager, token, .. } => {
                            managers.probe_mut(manager).abort_allocate(osm.id, token)
                        }
                        PreparedOp::Release { manager, token, .. } => {
                            managers.probe_mut(manager).abort_release(osm.id, token)
                        }
                    }
                }
            }
        }
    }
    find_wait_cycle(&scratch.wait_edges)
}

/// Probes `edge` for `osm` and reports why it cannot fire right now, or
/// `None` if it is momentarily satisfiable. Every tentative transaction is
/// aborted before returning, so the probe is side-effect free on managers
/// honoring the two-phase protocol.
fn probe_edge<S>(
    osm: &Osm<S>,
    edge: &Edge,
    managers: &mut ManagerTable,
    scratch: &mut Scratch,
) -> Option<WaitCause> {
    if try_condition::<S, false>(osm, edge, managers, scratch, false, &mut [], 0) {
        // Satisfiable: roll the tentative transactions back (this is only a
        // probe, not a scheduling pass).
        for op in scratch.ops.iter().rev() {
            match *op {
                PreparedOp::Alloc { manager, token, .. } => {
                    managers.probe_mut(manager).abort_allocate(osm.id, token);
                }
                PreparedOp::Release { manager, token, .. } => {
                    managers.probe_mut(manager).abort_release(osm.id, token);
                }
            }
        }
        return None;
    }
    let (prim, ident) = scratch.fail.take()?;
    let manager = prim.manager()?;
    let manager_name = managers
        .try_get(manager)
        .map(|m| m.name().to_owned())
        .unwrap_or_else(|| format!("<unknown {manager}>"));
    let owner = managers
        .try_get(manager)
        .and_then(|m| m.owner_of(ident))
        .filter(|&o| o != osm.id);
    Some(WaitCause {
        manager,
        manager_name,
        primitive: prim.to_string(),
        owner,
    })
}

/// Builds the [`BlockedOsm`] diagnostics of a stall report: for every OSM
/// accepted by `include`, probes each enabled outgoing edge and records the
/// first failing primitive. Side-effect free (probing prepares then aborts).
pub(crate) fn diagnose_blocked<S: 'static>(
    osms: &[Osm<S>],
    specs: &[Arc<StateMachineSpec>],
    managers: &mut ManagerTable,
    shared: &S,
    scratch: &mut Scratch,
    include: &mut dyn FnMut(&Osm<S>) -> bool,
) -> Vec<BlockedOsm> {
    let mut blocked = Vec::new();
    for osm in osms {
        if !include(osm) {
            continue;
        }
        let spec = &specs[osm.spec_idx as usize];
        let mut waiting_on = Vec::new();
        for &eid in spec.out_edges(osm.state) {
            let edge = spec.edge(eid);
            if !osm.behavior.edge_enabled(edge, &osm.view(), shared) {
                continue;
            }
            if let Some(cause) = probe_edge(osm, edge, managers, scratch) {
                waiting_on.push(cause);
            }
        }
        blocked.push(BlockedOsm {
            osm: osm.id,
            spec: spec.name().to_owned(),
            state: spec.state_name(osm.state).to_owned(),
            held: osm.buffer.iter().map(|h| h.token).collect(),
            waiting_on,
        });
    }
    blocked
}

/// Finds a cycle in the wait-for graph, if any, returning its nodes.
fn find_wait_cycle(edges: &[(OsmId, OsmId)]) -> Option<Vec<OsmId>> {
    use std::collections::HashMap;
    let mut adj: HashMap<OsmId, Vec<OsmId>> = HashMap::new();
    for &(a, b) in edges {
        adj.entry(a).or_default().push(b);
    }

    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Gray,
        Black,
    }
    let mut marks: HashMap<OsmId, Mark> = adj.keys().map(|&k| (k, Mark::White)).collect();

    fn dfs(
        node: OsmId,
        adj: &HashMap<OsmId, Vec<OsmId>>,
        marks: &mut HashMap<OsmId, Mark>,
        stack: &mut Vec<OsmId>,
    ) -> Option<Vec<OsmId>> {
        marks.insert(node, Mark::Gray);
        stack.push(node);
        if let Some(next) = adj.get(&node) {
            for &n in next {
                match marks.get(&n).copied().unwrap_or(Mark::Black) {
                    Mark::Gray => {
                        let start = stack.iter().position(|&x| x == n).unwrap_or(0);
                        return Some(stack[start..].to_vec());
                    }
                    Mark::White => {
                        if let Some(c) = dfs(n, adj, marks, stack) {
                            return Some(c);
                        }
                    }
                    Mark::Black => {}
                }
            }
        }
        stack.pop();
        marks.insert(node, Mark::Black);
        None
    }

    let nodes: Vec<OsmId> = adj.keys().copied().collect();
    let mut stack = Vec::new();
    for n in nodes {
        if marks.get(&n) == Some(&Mark::White) {
            if let Some(c) = dfs(n, &adj, &mut marks, &mut stack) {
                return Some(c);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_cycle_detected() {
        let edges = vec![(OsmId(0), OsmId(1)), (OsmId(1), OsmId(0))];
        let cyc = find_wait_cycle(&edges).expect("cycle");
        assert_eq!(cyc.len(), 2);
    }

    #[test]
    fn no_cycle_in_chain() {
        let edges = vec![(OsmId(0), OsmId(1)), (OsmId(1), OsmId(2))];
        assert!(find_wait_cycle(&edges).is_none());
    }

    #[test]
    fn self_wait_is_a_cycle() {
        // An OSM blocked on a token it cannot obtain from itself would be a
        // modeling error; the detector reports it.
        let edges = vec![(OsmId(3), OsmId(3))];
        let cyc = find_wait_cycle(&edges).expect("self cycle");
        assert_eq!(cyc, vec![OsmId(3)]);
    }

    #[test]
    fn empty_graph_has_no_cycle() {
        assert!(find_wait_cycle(&[]).is_none());
    }
}
