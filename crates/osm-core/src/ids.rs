//! Small newtype identifiers used throughout the OSM model.
//!
//! Every entity of the formalism — state machines, states, edges, token
//! managers — is referred to by a compact index newtype so that model
//! components can reference each other without borrowing issues and so that
//! accidental cross-use (e.g. passing a state id where an edge id is
//! expected) is a compile error ([C-NEWTYPE]).

use std::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index value.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }

        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                $name(v as u32)
            }
        }
    };
}

id_newtype!(
    /// Identifies one operation state machine instance within a [`crate::Machine`].
    OsmId,
    "osm"
);
id_newtype!(
    /// Identifies a token manager (TMI-carrying hardware module).
    ManagerId,
    "mgr"
);
id_newtype!(
    /// Identifies a state within a [`crate::StateMachineSpec`].
    StateId,
    "s"
);
id_newtype!(
    /// Identifies an edge within a [`crate::StateMachineSpec`].
    EdgeId,
    "e"
);
id_newtype!(
    /// Identifies a dynamic identifier slot of an OSM instance.
    SlotId,
    "slot"
);

/// Converts a registration count into the next 32-bit id value, reporting
/// id-space exhaustion as [`crate::ModelError::CapacityExceeded`] instead of
/// silently truncating (`len as u32`). The largest usable id is
/// `u32::MAX - 1`: the all-ones value is reserved as a sentinel (idle /
/// tombstone markers in the director).
pub(crate) fn checked_id(len: usize, what: &'static str) -> Result<u32, crate::ModelError> {
    if len >= u32::MAX as usize {
        Err(crate::ModelError::CapacityExceeded {
            what,
            limit: u32::MAX as u64,
        })
    } else {
        Ok(len as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checked_id_accepts_small_and_rejects_exhausted() {
        assert_eq!(checked_id(0, "OSM").unwrap(), 0);
        assert_eq!(checked_id(41, "OSM").unwrap(), 41);
        assert_eq!(checked_id(u32::MAX as usize - 1, "OSM").unwrap(), u32::MAX - 1);
        match checked_id(u32::MAX as usize, "OSM") {
            Err(crate::ModelError::CapacityExceeded { what, limit }) => {
                assert_eq!(what, "OSM");
                assert_eq!(limit, u32::MAX as u64);
            }
            other => panic!("expected CapacityExceeded, got {other:?}"),
        }
        assert!(checked_id(usize::MAX, "spec").is_err());
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(OsmId(3).to_string(), "osm3");
        assert_eq!(ManagerId(0).to_string(), "mgr0");
        assert_eq!(StateId(7).to_string(), "s7");
        assert_eq!(EdgeId(1).to_string(), "e1");
        assert_eq!(SlotId(2).to_string(), "slot2");
    }

    #[test]
    fn conversions_round_trip() {
        let id = OsmId::from(5usize);
        assert_eq!(id.index(), 5);
        let id2 = ManagerId::from(9u32);
        assert_eq!(id2.index(), 9);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(OsmId(1) < OsmId(2));
        assert!(EdgeId(0) < EdgeId(10));
    }
}
