//! Small newtype identifiers used throughout the OSM model.
//!
//! Every entity of the formalism — state machines, states, edges, token
//! managers — is referred to by a compact index newtype so that model
//! components can reference each other without borrowing issues and so that
//! accidental cross-use (e.g. passing a state id where an edge id is
//! expected) is a compile error ([C-NEWTYPE]).

use std::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index value.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }

        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                $name(v as u32)
            }
        }
    };
}

id_newtype!(
    /// Identifies one operation state machine instance within a [`crate::Machine`].
    OsmId,
    "osm"
);
id_newtype!(
    /// Identifies a token manager (TMI-carrying hardware module).
    ManagerId,
    "mgr"
);
id_newtype!(
    /// Identifies a state within a [`crate::StateMachineSpec`].
    StateId,
    "s"
);
id_newtype!(
    /// Identifies an edge within a [`crate::StateMachineSpec`].
    EdgeId,
    "e"
);
id_newtype!(
    /// Identifies a dynamic identifier slot of an OSM instance.
    SlotId,
    "slot"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(OsmId(3).to_string(), "osm3");
        assert_eq!(ManagerId(0).to_string(), "mgr0");
        assert_eq!(StateId(7).to_string(), "s7");
        assert_eq!(EdgeId(1).to_string(), "e1");
        assert_eq!(SlotId(2).to_string(), "slot2");
    }

    #[test]
    fn conversions_round_trip() {
        let id = OsmId::from(5usize);
        assert_eq!(id.index(), 5);
        let id2 = ManagerId::from(9u32);
        assert_eq!(id2.index(), 9);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(OsmId(1) < OsmId(2));
        assert!(EdgeId(0) < EdgeId(10));
    }
}
