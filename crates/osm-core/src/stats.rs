//! Execution statistics for machines and processor models.

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::fmt;

/// Counters collected while a [`crate::Machine`] runs.
///
/// Besides the fixed scheduler counters, models register named counters
/// (retired instructions, cache hits, ...) through [`Stats::incr`]. Counter
/// names are interned `Cow<'static, str>` keys: the common case — a
/// `&'static str` name incremented every cycle — never allocates, and a
/// dynamically built name ([`Stats::incr_dyn`]) allocates only on the first
/// increment.
#[derive(Debug, Default, Clone)]
pub struct Stats {
    /// Completed control steps.
    pub cycles: u64,
    /// Committed state transitions across all OSMs.
    pub transitions: u64,
    /// Edge evaluations whose condition was not satisfied.
    ///
    /// An *effort* counter: it measures scheduling work done, not machine
    /// behaviour, so it legitimately differs between
    /// [`crate::SchedulerMode`]s (the fast path skips provably blocked
    /// evaluations).
    pub condition_failures: u64,
    /// Edge evaluations skipped by a behavior veto (an effort counter, like
    /// [`Stats::condition_failures`]).
    pub vetoed_edges: u64,
    /// Control steps in which no OSM transitioned (global stall steps).
    pub idle_steps: u64,
    /// Director outer-loop rescans actually performed: under
    /// [`crate::RestartPolicy::Restart`], every committed transition after
    /// which unserved OSMs remain re-enters the Fig. 3 outer loop from the
    /// top, and exactly those re-entries are counted (a transition that
    /// empties the list performs no rescan and counts nothing). Always 0
    /// under [`crate::RestartPolicy::NoRestart`]. Mode-invariant across
    /// [`crate::SchedulerMode`]s.
    pub restarts: u64,
    named: BTreeMap<Cow<'static, str>, u64>,
}

impl Stats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `amount` to the named counter, creating it at zero if absent.
    /// Never allocates (the key is a `&'static str`).
    pub fn incr(&mut self, name: &'static str, amount: u64) {
        match self.named.get_mut(name) {
            Some(v) => *v += amount,
            None => {
                self.named.insert(Cow::Borrowed(name), amount);
            }
        }
    }

    /// Adds `amount` to a dynamically named counter. Allocates only on the
    /// counter's first increment; prefer [`Stats::incr`] on hot paths.
    pub fn incr_dyn(&mut self, name: &str, amount: u64) {
        match self.named.get_mut(name) {
            Some(v) => *v += amount,
            None => {
                self.named.insert(Cow::Owned(name.to_owned()), amount);
            }
        }
    }

    /// Reads a named counter (0 if never incremented).
    pub fn get(&self, name: &str) -> u64 {
        self.named.get(name).copied().unwrap_or(0)
    }

    /// Iterates over named counters in name order.
    pub fn named(&self) -> impl Iterator<Item = (&str, u64)> {
        self.named.iter().map(|(k, v)| (k.as_ref(), *v))
    }

    /// Transitions per cycle (0 if no cycles ran).
    pub fn transitions_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.transitions as f64 / self.cycles as f64
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        *self = Stats::default();
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cycles:             {}", self.cycles)?;
        writeln!(f, "transitions:        {}", self.transitions)?;
        writeln!(f, "condition failures: {}", self.condition_failures)?;
        writeln!(f, "vetoed edges:       {}", self.vetoed_edges)?;
        writeln!(f, "idle steps:         {}", self.idle_steps)?;
        writeln!(f, "restarts:           {}", self.restarts)?;
        for (k, v) in self.named() {
            writeln!(f, "{k}: {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_counters_accumulate() {
        let mut s = Stats::new();
        assert_eq!(s.get("retired"), 0);
        s.incr("retired", 2);
        s.incr("retired", 3);
        assert_eq!(s.get("retired"), 5);
        let all: Vec<_> = s.named().collect();
        assert_eq!(all, vec![("retired", 5)]);
    }

    #[test]
    fn dynamic_and_static_keys_share_one_namespace() {
        let mut s = Stats::new();
        s.incr("cache.l1.miss", 1);
        s.incr_dyn(&format!("cache.l{}.miss", 1), 2);
        assert_eq!(s.get("cache.l1.miss"), 3);
        assert_eq!(s.named().count(), 1);
    }

    #[test]
    fn transitions_per_cycle_handles_zero() {
        let mut s = Stats::new();
        assert_eq!(s.transitions_per_cycle(), 0.0);
        s.cycles = 4;
        s.transitions = 6;
        assert!((s.transitions_per_cycle() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn display_contains_counters() {
        let mut s = Stats::new();
        s.cycles = 7;
        s.incr("hits", 1);
        let text = s.to_string();
        assert!(text.contains("cycles:             7"));
        assert!(text.contains("hits: 1"));
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = Stats::new();
        s.cycles = 1;
        s.incr("x", 9);
        s.reset();
        assert_eq!(s.cycles, 0);
        assert_eq!(s.get("x"), 0);
    }
}
