//! The machine: managers + OSMs + director configuration + shared hardware state.

use crate::director::{self, AgeRanker, Ranker, RestartPolicy, SchedulerMode, Scratch, StepOutcome};
use crate::error::{ModelError, StallKind, StallReport};
use crate::ids::{ManagerId, OsmId};
use crate::manager::{ManagerTable, TokenManager};
use crate::observe::{
    EventLog, MetricsCollector, MetricsReport, Observer, StallTracker, TraceSink,
};
use crate::osm::{Behavior, Osm};
use crate::snapshot::{Checkpoint, OsmCheckpoint};
use crate::spec::StateMachineSpec;
use crate::stats::Stats;
use crate::trace::Trace;
use std::sync::Arc;

/// The hardware layer of a processor model (paper §4).
///
/// The shared state `S` of a [`Machine`] implements this trait; its
/// [`clock`](HardwareLayer::clock) hook runs once per cycle *before* the OSM
/// control step, modeling the interval between control steps in which
/// "hardware modules communicate with one another and exchange information
/// with their TMIs". Typical work: advance cache-miss timers, unblock stage
/// releases, update branch predictors.
pub trait HardwareLayer {
    /// Advances the hardware layer by one clock, with TMI access.
    fn clock(&mut self, cycle: u64, managers: &mut ManagerTable) {
        let _ = (cycle, managers);
    }
}

impl HardwareLayer for () {}

/// A complete OSM machine model.
///
/// `S` is the model's shared hardware-layer state. A machine owns the
/// [`ManagerTable`] (hardware layer interface), all [`Osm`] instances
/// (operation layer), and the director configuration.
///
/// ```
/// use osm_core::{Machine, SpecBuilder, ExclusivePool, IdentExpr, InertBehavior};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut m: Machine<()> = Machine::new(());
/// let stage = m.add_manager(ExclusivePool::new("stage", 1));
/// let mut b = SpecBuilder::new("op");
/// let i = b.state("I");
/// let s = b.state("S");
/// b.initial(i);
/// b.edge(i, s).allocate(stage, IdentExpr::Const(0));
/// b.edge(s, i).release(stage, IdentExpr::AnyHeld);
/// let spec = b.build()?;
/// let op = m.add_osm(&spec, InertBehavior);
/// m.step()?;
/// assert_eq!(m.osm(op).state_name(), "S");
/// # Ok(())
/// # }
/// ```
pub struct Machine<S> {
    /// The token managers (public for hardware-layer data access).
    pub managers: ManagerTable,
    osms: Vec<Osm<S>>,
    specs: Vec<Arc<StateMachineSpec>>,
    /// Shared hardware-layer state.
    pub shared: S,
    ranker: Box<dyn Ranker<S>>,
    age_ranking: bool,
    sched_mode: SchedulerMode,
    restart: RestartPolicy,
    deadlock_check: bool,
    cycle: u64,
    age_counter: u64,
    /// Stall watchdog bound (`None` = off); see [`Machine::set_stall_limit`].
    stall_limit: Option<u64>,
    last_transition_cycle: u64,
    last_completion_cycle: u64,
    leak_audit: bool,
    /// Scheduler statistics.
    pub stats: Stats,
    /// Installed observer sinks; empty = the zero-cost disabled path.
    observers: Vec<Box<dyn Observer>>,
    /// Machine-owned stall-cause attribution, when enabled.
    stall_tracker: Option<StallTracker>,
    scratch: Scratch,
}

impl<S: 'static> Machine<S> {
    /// Creates a machine around the given shared state, with the paper's
    /// defaults: age ranking, Fig. 3 restart semantics, deadlock detection on.
    pub fn new(shared: S) -> Self {
        Machine {
            managers: ManagerTable::new(),
            osms: Vec::new(),
            specs: Vec::new(),
            shared,
            ranker: Box::new(AgeRanker),
            age_ranking: true,
            sched_mode: SchedulerMode::default(),
            restart: RestartPolicy::Restart,
            deadlock_check: true,
            cycle: 0,
            age_counter: 0,
            stall_limit: None,
            last_transition_cycle: 0,
            last_completion_cycle: 0,
            leak_audit: true,
            stats: Stats::new(),
            observers: Vec::new(),
            stall_tracker: None,
            scratch: Scratch::default(),
        }
    }

    /// Installs a token manager.
    ///
    /// # Panics
    /// Panics if the 32-bit manager id space is exhausted; use
    /// [`Machine::try_add_manager`] to handle that as an error.
    pub fn add_manager<M: TokenManager>(&mut self, manager: M) -> ManagerId {
        match self.try_add_manager(manager) {
            Ok(id) => id,
            Err(e) => panic!("{e}"),
        }
    }

    /// Installs a token manager, reporting id-space exhaustion as
    /// [`ModelError::CapacityExceeded`] instead of silently truncating the
    /// id.
    ///
    /// # Errors
    /// [`ModelError::CapacityExceeded`] when no further manager id exists.
    pub fn try_add_manager<M: TokenManager>(&mut self, manager: M) -> Result<ManagerId, ModelError> {
        self.managers.try_add(manager)
    }

    /// Instantiates one OSM of class `spec` with the given behavior.
    ///
    /// # Panics
    /// Panics if the 32-bit OSM or spec id space is exhausted; use
    /// [`Machine::try_add_osm_tagged`] to handle that as an error.
    pub fn add_osm<B: Behavior<S>>(&mut self, spec: &Arc<StateMachineSpec>, behavior: B) -> OsmId {
        self.add_osm_tagged(spec, behavior, 0)
    }

    /// Instantiates one OSM with a thread tag (§6 multithreading extension).
    ///
    /// # Panics
    /// Panics if the 32-bit OSM or spec id space is exhausted; use
    /// [`Machine::try_add_osm_tagged`] to handle that as an error.
    pub fn add_osm_tagged<B: Behavior<S>>(
        &mut self,
        spec: &Arc<StateMachineSpec>,
        behavior: B,
        tag: u64,
    ) -> OsmId {
        match self.try_add_osm_tagged(spec, behavior, tag) {
            Ok(id) => id,
            Err(e) => panic!("{e}"),
        }
    }

    /// Instantiates one OSM with a thread tag, reporting id-space exhaustion
    /// as [`ModelError::CapacityExceeded`] instead of silently truncating
    /// the OSM or spec index (`len as u32` previously wrapped registrations
    /// past `u32::MAX` onto existing ids).
    ///
    /// # Errors
    /// [`ModelError::CapacityExceeded`] when no further OSM or spec id
    /// exists.
    pub fn try_add_osm_tagged<B: Behavior<S>>(
        &mut self,
        spec: &Arc<StateMachineSpec>,
        behavior: B,
        tag: u64,
    ) -> Result<OsmId, ModelError> {
        let id = OsmId(crate::ids::checked_id(self.osms.len(), "OSM")?);
        let spec_idx = match self.specs.iter().position(|s| Arc::ptr_eq(s, spec)) {
            Some(k) => k as u32,
            None => {
                let idx = crate::ids::checked_id(self.specs.len(), "state-machine spec")?;
                self.specs.push(spec.clone());
                idx
            }
        };
        self.osms
            .push(Osm::new(id, spec.clone(), spec_idx, tag, Box::new(behavior)));
        Ok(id)
    }

    /// Instantiates `count` OSMs of the same class, one behavior each.
    pub fn add_osm_pool<B, F>(
        &mut self,
        spec: &Arc<StateMachineSpec>,
        count: usize,
        mut factory: F,
    ) -> Vec<OsmId>
    where
        B: Behavior<S>,
        F: FnMut(usize) -> B,
    {
        (0..count).map(|k| self.add_osm(spec, factory(k))).collect()
    }

    /// Borrows an OSM.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn osm(&self, id: OsmId) -> &Osm<S> {
        &self.osms[id.index()]
    }

    /// Borrows an OSM, or `None` if `id` is out of range.
    pub fn try_osm(&self, id: OsmId) -> Option<&Osm<S>> {
        self.osms.get(id.index())
    }

    /// Number of OSM instances.
    pub fn osm_count(&self) -> usize {
        self.osms.len()
    }

    /// Iterates over all OSMs.
    pub fn osms(&self) -> impl Iterator<Item = &Osm<S>> {
        self.osms.iter()
    }

    /// Replaces the ranking policy.
    ///
    /// A non-[`AgeRanker`] policy makes the director fall back to the
    /// reference scheduler even under [`SchedulerMode::Fast`] — the fast
    /// path's incremental ready list is only sound for age ranking.
    pub fn set_ranker<R: Ranker<S>>(&mut self, ranker: R) {
        self.age_ranking = std::any::TypeId::of::<R>() == std::any::TypeId::of::<AgeRanker>();
        self.ranker = Box::new(ranker);
        self.scratch.invalidate_schedule();
    }

    /// Sets the director restart policy.
    pub fn set_restart_policy(&mut self, policy: RestartPolicy) {
        self.restart = policy;
    }

    /// The current restart policy.
    pub fn restart_policy(&self) -> RestartPolicy {
        self.restart
    }

    /// Selects the scheduling implementation (see [`SchedulerMode`]);
    /// [`SchedulerMode::Fast`] is the default.
    pub fn set_scheduler_mode(&mut self, mode: SchedulerMode) {
        if self.sched_mode != mode {
            self.sched_mode = mode;
            self.scratch.invalidate_schedule();
        }
    }

    /// The current scheduling implementation.
    pub fn scheduler_mode(&self) -> SchedulerMode {
        self.sched_mode
    }

    /// Enables or disables wait-for-cycle deadlock detection.
    pub fn set_deadlock_check(&mut self, on: bool) {
        self.deadlock_check = on;
        // The fast path's "diagnostic scan already proved this quiescent
        // state acyclic" watermark is only meaningful while the check stays
        // continuously enabled.
        self.scratch.invalidate_schedule();
    }

    /// Arms (or with `None` disarms) the stall watchdog: if no qualifying
    /// progress happens for `limit` consecutive cycles while at least one
    /// OSM is in flight, [`Machine::step`] returns
    /// [`ModelError::Stalled`] with a structured [`StallReport`] naming the
    /// blocked OSMs and the primitives/managers they wait on.
    ///
    /// The watchdog distinguishes three conditions, checked in this order:
    /// no transition at all for `limit` cycles ([`StallKind::Wedged`] — the
    /// stalls the wait-for-graph deadlock detector cannot prove); no OSM
    /// returning to its initial state for `limit` cycles
    /// ([`StallKind::Livelock`]); and an individual in-flight OSM pinned in
    /// one state for `limit` cycles while others keep moving
    /// ([`StallKind::Starvation`]).
    ///
    /// Pick `limit` comfortably above the worst-case natural latency of one
    /// operation (cache-miss chains included), or healthy long-latency runs
    /// will be reported as stalls.
    pub fn set_stall_limit(&mut self, limit: Option<u64>) {
        self.stall_limit = limit.filter(|&l| l > 0);
    }

    /// The armed stall bound, if any.
    pub fn stall_limit(&self) -> Option<u64> {
        self.stall_limit
    }

    /// Enables or disables the end-of-run token-leak audit (debug builds
    /// only; on by default). See [`Machine::run`].
    pub fn set_leak_audit(&mut self, on: bool) {
        self.leak_audit = on;
    }

    /// Installs an observer sink; events flow to it from the next control
    /// step on. Sinks are invoked in installation order.
    pub fn add_observer<O: Observer>(&mut self, observer: O) {
        self.observers.push(Box::new(observer));
    }

    /// Borrows the first installed observer of concrete type `O`.
    pub fn observer<O: Observer>(&self) -> Option<&O> {
        self.observers
            .iter()
            .find_map(|o| o.as_any().downcast_ref::<O>())
    }

    /// Mutably borrows the first installed observer of concrete type `O`.
    pub fn observer_mut<O: Observer>(&mut self) -> Option<&mut O> {
        self.observers
            .iter_mut()
            .find_map(|o| o.as_any_mut().downcast_mut::<O>())
    }

    /// Removes and returns the first installed observer of concrete type
    /// `O`, uninstalling it.
    pub fn take_observer<O: Observer>(&mut self) -> Option<O> {
        let idx = self
            .observers
            .iter()
            .position(|o| o.as_any().is::<O>())?;
        let boxed = self.observers.remove(idx);
        Some(*boxed.into_any().downcast::<O>().expect("type checked above"))
    }

    /// True if any observer sink is installed.
    pub fn has_observers(&self) -> bool {
        !self.observers.is_empty()
    }

    /// Starts recording a transition trace (a [`TraceSink`] observer).
    pub fn enable_trace(&mut self) {
        self.enable_trace_with(Trace::new());
    }

    /// Starts recording transitions into the given (possibly ring- or
    /// digest-mode) [`Trace`]. No-op if a trace sink is already installed.
    pub fn enable_trace_with(&mut self, trace: Trace) {
        if self.observer::<TraceSink>().is_none() {
            self.add_observer(TraceSink::new(trace));
        }
    }

    /// The trace recorded so far, if tracing is enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.observer::<TraceSink>().map(TraceSink::trace)
    }

    /// Takes the recorded trace, disabling tracing.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.take_observer::<TraceSink>().map(TraceSink::into_trace)
    }

    /// Starts recording the full event stream into an unbounded [`EventLog`]
    /// (feed for the [`crate::export`] exporters).
    pub fn enable_event_log(&mut self) {
        if self.observer::<EventLog>().is_none() {
            self.add_observer(EventLog::new());
        }
    }

    /// Starts recording the event stream into a ring [`EventLog`] retaining
    /// only the most recent `capacity` events.
    pub fn enable_event_log_ring(&mut self, capacity: usize) {
        if self.observer::<EventLog>().is_none() {
            self.add_observer(EventLog::with_capacity(capacity));
        }
    }

    /// The event log recorded so far, if enabled.
    pub fn event_log(&self) -> Option<&EventLog> {
        self.observer::<EventLog>()
    }

    /// Takes the recorded event log, disabling it.
    pub fn take_event_log(&mut self) -> Option<EventLog> {
        self.take_observer::<EventLog>()
    }

    /// Starts folding events into derived metrics (a [`MetricsCollector`]
    /// observer with the default throughput window).
    pub fn enable_metrics(&mut self) {
        if self.observer::<MetricsCollector>().is_none() {
            self.add_observer(MetricsCollector::default());
        }
    }

    /// Renders the structured [`MetricsReport`], if metrics are enabled.
    /// Includes the stall-cause histogram when attribution is also on.
    pub fn metrics_report(&self) -> Option<MetricsReport> {
        self.observer::<MetricsCollector>()
            .map(|c| MetricsReport::build(c, self))
    }

    /// Starts machine-owned stall-cause attribution: every cycle an
    /// in-flight OSM fails to leave its state, the blocking
    /// `(manager, primitive)` pair is charged into the [`StallTracker`]
    /// histograms and into the watchdog's [`StallReport`].
    pub fn enable_stall_attribution(&mut self) {
        if self.stall_tracker.is_none() {
            self.stall_tracker = Some(StallTracker::new());
        }
    }

    /// The stall-cause attribution collected so far, if enabled.
    pub fn stall_attribution(&self) -> Option<&StallTracker> {
        self.stall_tracker.as_ref()
    }

    /// Takes the collected stall attribution, disabling it.
    pub fn take_stall_attribution(&mut self) -> Option<StallTracker> {
        self.stall_tracker.take()
    }

    /// The machine's spec table, indexed by [`Osm::spec_index`] /
    /// the `spec` field of observer events.
    pub fn specs(&self) -> &[Arc<StateMachineSpec>] {
        &self.specs
    }

    /// The current cycle (number of completed [`Machine::step`]s).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The running digest of the installed trace, read **without**
    /// detaching the sink (unlike [`Machine::take_trace`]). A probe point
    /// for mid-run equivalence checks: a differential harness can compare
    /// two runs' digests at a checkpoint cut and keep both running.
    /// `None` when tracing is not enabled.
    pub fn trace_digest(&self) -> Option<u64> {
        self.trace().map(Trace::digest)
    }

    /// An FNV-1a fingerprint of the machine's operation-layer state: the
    /// cycle plus, per OSM in id order, its spec index, current state, age,
    /// tag, identifier slots and buffered tokens (identifier, owning
    /// manager, raw value). Two machines with equal fingerprints are in the
    /// same architectural operation state — the probe differential oracles
    /// use to compare a restored checkpoint against the uninterrupted run,
    /// or the `Seed` and `Fast` schedulers at a mid-run cut, without
    /// needing `S: Clone` or a full [`Machine::checkpoint`].
    ///
    /// Hardware-layer manager internals are deliberately excluded (they are
    /// not generically hashable); token conservation ties them to the
    /// buffers that *are* covered, and [`Machine::audit_tokens`] checks that
    /// tie dynamically.
    pub fn state_fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x100_0000_01b3;
        let mut hash = FNV_OFFSET;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(FNV_PRIME);
            }
        };
        mix(self.cycle);
        mix(self.osms.len() as u64);
        for osm in &self.osms {
            mix(u64::from(osm.spec_index()));
            mix(osm.state().index() as u64);
            mix(osm.age());
            mix(osm.tag());
            mix(osm.slots().len() as u64);
            for slot in osm.slots() {
                mix(slot.0);
            }
            mix(osm.buffer().len() as u64);
            for held in osm.buffer() {
                mix(held.ident.0);
                mix(u64::from(held.token.manager.0));
                mix(held.token.raw);
            }
        }
        hash
    }

    /// Token-conservation audit: every token a manager believes is owned
    /// must sit in exactly that owner's buffer, and every buffered token of
    /// an auditable manager must be acknowledged by it. This is the dynamic
    /// counterpart of the static checks in [`crate::verify_spec`]; tests run
    /// it between control steps.
    ///
    /// # Panics
    /// Never panics; violations are returned as human-readable strings.
    pub fn audit_tokens(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let mut audited: Vec<bool> = vec![false; self.managers.len()];
        for (id, manager) in self.managers.iter() {
            let Some(owned) = manager.owned_tokens() else {
                continue;
            };
            audited[id.index()] = true;
            for (token, owner) in owned {
                let held = self
                    .osms
                    .get(owner.index())
                    .map(|osm| osm.buffer().iter().any(|h| h.token == token))
                    .unwrap_or(false);
                if !held {
                    problems.push(format!(
                        "manager {} says {owner} owns {token}, but it is not in that OSM's buffer",
                        manager.name()
                    ));
                }
            }
        }
        for osm in self.osms() {
            for held in osm.buffer() {
                let id = held.token.manager;
                if !audited.get(id.index()).copied().unwrap_or(false) {
                    continue;
                }
                let acknowledged = self
                    .managers
                    .get(id)
                    .owned_tokens()
                    .map(|owned| owned.iter().any(|(t, o)| *t == held.token && *o == osm.id()))
                    .unwrap_or(true);
                if !acknowledged {
                    problems.push(format!(
                        "{} holds {} which its manager does not acknowledge",
                        osm.id(),
                        held.token
                    ));
                }
            }
        }
        problems
    }

    /// Runs the OSM layer only: one director control step (Fig. 3) at the
    /// current cycle, without advancing the hardware layer. The DE kernel
    /// uses this at clock edges; most users call [`Machine::step`].
    ///
    /// # Errors
    /// Returns [`ModelError::Deadlock`] on a detected wait-for cycle.
    pub fn control_step(&mut self) -> Result<StepOutcome, ModelError> {
        // One branch per cycle picks the monomorphized director: the
        // TRACKING=false instantiation carries no observability code at all.
        // The fast scheduler requires age ranking; under a custom ranker the
        // reference scheduler runs regardless of the configured mode.
        let tracking = !self.observers.is_empty() || self.stall_tracker.is_some();
        // Adaptive fallback: after an unproductive skip window the fast
        // path parks itself on the reference scheduler for a while (see
        // `ADAPT_COOLDOWN` in director.rs). Identical cycle behavior either
        // way — the cooldown only decides which exact scheduler runs.
        let cooling = self.scratch.adapt_cooldown > 0;
        if cooling {
            self.scratch.adapt_cooldown -= 1;
        }
        if self.sched_mode == SchedulerMode::Fast && self.age_ranking && !cooling {
            if tracking {
                director::control_step_fast::<S, true>(
                    &mut self.osms,
                    &self.specs,
                    &mut self.managers,
                    &mut self.shared,
                    self.restart,
                    self.deadlock_check,
                    self.cycle,
                    &mut self.age_counter,
                    &mut self.stats,
                    &mut self.observers,
                    self.stall_tracker.as_mut(),
                    &mut self.scratch,
                )
            } else {
                director::control_step_fast::<S, false>(
                    &mut self.osms,
                    &self.specs,
                    &mut self.managers,
                    &mut self.shared,
                    self.restart,
                    self.deadlock_check,
                    self.cycle,
                    &mut self.age_counter,
                    &mut self.stats,
                    &mut self.observers,
                    None,
                    &mut self.scratch,
                )
            }
        } else if tracking {
            director::control_step::<S, true>(
                &mut self.osms,
                &self.specs,
                &mut self.managers,
                &mut self.shared,
                self.ranker.as_ref(),
                self.age_ranking,
                self.restart,
                self.deadlock_check,
                self.cycle,
                &mut self.age_counter,
                &mut self.stats,
                &mut self.observers,
                self.stall_tracker.as_mut(),
                &mut self.scratch,
            )
        } else {
            director::control_step::<S, false>(
                &mut self.osms,
                &self.specs,
                &mut self.managers,
                &mut self.shared,
                self.ranker.as_ref(),
                self.age_ranking,
                self.restart,
                self.deadlock_check,
                self.cycle,
                &mut self.age_counter,
                &mut self.stats,
                &mut self.observers,
                None,
                &mut self.scratch,
            )
        }
    }

    /// Feeds one step's outcome into the watchdog trackers and, if armed,
    /// checks the stall bound. `now` is the cycle the step ran at.
    fn watchdog_check(&mut self, outcome: StepOutcome, now: u64) -> Result<(), ModelError> {
        if outcome.transitions > 0 {
            self.last_transition_cycle = now;
        }
        if outcome.completions > 0 {
            self.last_completion_cycle = now;
        }
        let Some(limit) = self.stall_limit else {
            return Ok(());
        };
        // With every OSM idle the machine is merely out of work, not stuck.
        if self.osms.iter().all(|o| o.is_idle()) {
            return Ok(());
        }
        let idle_for = now.saturating_sub(self.last_transition_cycle);
        let no_completion_for = now.saturating_sub(self.last_completion_cycle);
        let (kind, stalled_for) = if idle_for >= limit {
            (StallKind::Wedged, idle_for)
        } else if no_completion_for >= limit {
            (StallKind::Livelock, no_completion_for)
        } else {
            let worst_pin = self
                .osms
                .iter()
                .filter(|o| !o.is_idle())
                .map(|o| now.saturating_sub(o.last_move_cycle()))
                .max()
                .unwrap_or(0);
            if worst_pin < limit {
                return Ok(());
            }
            (StallKind::Starvation, worst_pin)
        };
        let blocked = director::diagnose_blocked(
            &self.osms,
            &self.specs,
            &mut self.managers,
            &self.shared,
            &mut self.scratch,
            &mut |o: &Osm<S>| match kind {
                // Starvation singles out the pinned OSMs; the other kinds
                // report every in-flight OSM.
                StallKind::Starvation => {
                    !o.is_idle() && now.saturating_sub(o.last_move_cycle()) >= limit
                }
                StallKind::Wedged | StallKind::Livelock => !o.is_idle(),
            },
        );
        Err(ModelError::Stalled(Box::new(StallReport {
            kind,
            cycle: now,
            stalled_for,
            budget: limit,
            blocked,
            // When attribution is on, embed the stall-cause histogram that
            // led up to the stall — no separate probe pass required.
            attribution: self
                .stall_tracker
                .as_ref()
                .map(|t| t.histogram(&self.managers)),
        })))
    }

    /// Debug-build token-conservation check run at the end of
    /// [`Machine::run`]/[`Machine::run_until`].
    fn leak_check(&self) -> Result<(), ModelError> {
        if cfg!(debug_assertions) && self.leak_audit {
            let problems = self.audit_tokens();
            if !problems.is_empty() {
                return Err(ModelError::TokenLeak {
                    cycle: self.cycle,
                    problems,
                });
            }
        }
        Ok(())
    }
}

impl<S: Clone + 'static> Machine<S> {
    /// Captures a cycle-accurate checkpoint of the whole machine: OSM
    /// states, ages, token buffers and identifier slots, behavior state,
    /// manager state, shared hardware-layer state, statistics and scheduler
    /// counters. The transition trace is not captured.
    ///
    /// # Errors
    /// [`ModelError::SnapshotUnsupported`] if any installed manager does not
    /// implement [`TokenManager::snapshot_state`].
    pub fn checkpoint(&self) -> Result<Checkpoint<S>, ModelError> {
        let mut managers = Vec::with_capacity(self.managers.len());
        for (id, m) in self.managers.iter() {
            match m.snapshot_state() {
                Some(snap) => managers.push(snap),
                None => {
                    return Err(ModelError::SnapshotUnsupported {
                        manager: format!("{} ({id})", m.name()),
                    })
                }
            }
        }
        let osms = self
            .osms
            .iter()
            .map(|o| OsmCheckpoint {
                state: o.state,
                age: o.age,
                tag: o.tag,
                buffer: o.buffer.clone(),
                slots: o.slots.clone(),
                behavior: o.behavior.snapshot(),
                last_move_cycle: o.last_move_cycle,
            })
            .collect();
        Ok(Checkpoint {
            cycle: self.cycle,
            age_counter: self.age_counter,
            last_transition_cycle: self.last_transition_cycle,
            last_completion_cycle: self.last_completion_cycle,
            stats: self.stats.clone(),
            shared: self.shared.clone(),
            osms,
            managers,
        })
    }

    /// Rewinds the machine to a [`Checkpoint`] previously taken from it.
    /// Re-running from the restored state reproduces the original
    /// continuation transition-for-transition. A checkpoint can be restored
    /// any number of times. The transition trace is not rewound.
    ///
    /// # Errors
    /// [`ModelError::SnapshotMismatch`] if the checkpoint's shape does not
    /// match the machine or a manager/behavior rejects its snapshot. The
    /// machine may then be partially restored; restoring a matching
    /// checkpoint recovers it.
    pub fn restore(&mut self, ckpt: &Checkpoint<S>) -> Result<(), ModelError> {
        if ckpt.osms.len() != self.osms.len() {
            return Err(ModelError::SnapshotMismatch {
                what: format!(
                    "checkpoint has {} OSMs, machine has {}",
                    ckpt.osms.len(),
                    self.osms.len()
                ),
            });
        }
        if ckpt.managers.len() != self.managers.len() {
            return Err(ModelError::SnapshotMismatch {
                what: format!(
                    "checkpoint has {} managers, machine has {}",
                    ckpt.managers.len(),
                    self.managers.len()
                ),
            });
        }
        for (i, snap) in ckpt.managers.iter().enumerate() {
            // In range: the count above matched the registration-checked
            // manager table.
            let id = ManagerId(
                crate::ids::checked_id(i, "token manager")
                    .expect("manager count was registration-checked"),
            );
            let manager = self.managers.get_mut(id);
            if !manager.restore_state(snap) {
                return Err(ModelError::SnapshotMismatch {
                    what: format!("manager {} ({id}) rejected its snapshot", manager.name()),
                });
            }
        }
        for (osm, snap) in self.osms.iter_mut().zip(&ckpt.osms) {
            if !osm.behavior.restore(&snap.behavior) {
                return Err(ModelError::SnapshotMismatch {
                    what: format!("behavior of {} rejected its snapshot", osm.id),
                });
            }
            osm.state = snap.state;
            osm.age = snap.age;
            osm.tag = snap.tag;
            osm.buffer.clone_from(&snap.buffer);
            osm.slots.clone_from(&snap.slots);
            osm.last_move_cycle = snap.last_move_cycle;
        }
        self.cycle = ckpt.cycle;
        self.age_counter = ckpt.age_counter;
        self.last_transition_cycle = ckpt.last_transition_cycle;
        self.last_completion_cycle = ckpt.last_completion_cycle;
        self.stats = ckpt.stats.clone();
        self.shared = ckpt.shared.clone();
        // Every OSM state and age just rewound; the fast scheduler's ready
        // list and sensitivity records no longer describe the machine.
        self.scratch.invalidate_schedule();
        Ok(())
    }

    /// Serializes a [`Checkpoint`] taken from this machine into the
    /// versioned on-disk format: magic, format version, length-prefixed
    /// sections, FNV-1a seal. The shared hardware-layer state is supplied
    /// pre-encoded (`shared_bytes`) because `S` is model-specific; each
    /// manager and stateful behavior serializes its own opaque payload
    /// through the [`TokenManager::encode_snapshot`] /
    /// [`Behavior::encode_snapshot`] hooks.
    ///
    /// # Errors
    /// [`ModelError::SnapshotUnsupported`] if a manager or behavior lacks an
    /// encoding hook; [`ModelError::SnapshotMismatch`] if the checkpoint's
    /// shape does not match this machine.
    pub fn encode_checkpoint(
        &self,
        ckpt: &Checkpoint<S>,
        shared_bytes: &[u8],
    ) -> Result<Vec<u8>, ModelError> {
        use crate::persist::ByteWriter;
        use crate::snapshot::BehaviorSnapshot;

        if ckpt.osms.len() != self.osms.len() || ckpt.managers.len() != self.managers.len() {
            return Err(ModelError::SnapshotMismatch {
                what: format!(
                    "checkpoint shape ({} OSMs, {} managers) does not match the machine \
                     ({} OSMs, {} managers)",
                    ckpt.osms.len(),
                    ckpt.managers.len(),
                    self.osms.len(),
                    self.managers.len()
                ),
            });
        }
        let mut w = ByteWriter::new();
        w.put_bytes(CHECKPOINT_MAGIC);
        w.put_u32(CHECKPOINT_VERSION);
        w.put_u64(ckpt.cycle);
        w.put_u64(ckpt.age_counter);
        w.put_u64(ckpt.last_transition_cycle);
        w.put_u64(ckpt.last_completion_cycle);
        w.put_u64(ckpt.stats.cycles);
        w.put_u64(ckpt.stats.transitions);
        w.put_u64(ckpt.stats.condition_failures);
        w.put_u64(ckpt.stats.vetoed_edges);
        w.put_u64(ckpt.stats.idle_steps);
        w.put_u64(ckpt.stats.restarts);
        let named: Vec<(&str, u64)> = ckpt.stats.named().collect();
        w.put_u32(named.len() as u32);
        for (name, value) in named {
            w.put_str(name);
            w.put_u64(value);
        }
        w.put_bytes(shared_bytes);
        w.put_u32(ckpt.osms.len() as u32);
        for (osm, snap) in self.osms.iter().zip(&ckpt.osms) {
            w.put_u32(snap.state.0);
            w.put_u64(snap.age);
            w.put_u64(snap.tag);
            w.put_u64(snap.last_move_cycle);
            w.put_u32(snap.buffer.len() as u32);
            for held in &snap.buffer {
                w.put_u64(held.ident.0);
                w.put_u32(held.token.manager.0);
                w.put_u64(held.token.raw);
            }
            w.put_u32(snap.slots.len() as u32);
            for slot in &snap.slots {
                w.put_u64(slot.0);
            }
            match &snap.behavior {
                BehaviorSnapshot::Stateless => w.put_u8(0),
                state @ BehaviorSnapshot::State(_) => {
                    let Some(bytes) = osm.behavior.encode_snapshot(state) else {
                        return Err(ModelError::SnapshotUnsupported {
                            manager: format!("behavior of {}", osm.id),
                        });
                    };
                    w.put_u8(1);
                    w.put_bytes(&bytes);
                }
            }
        }
        w.put_u32(ckpt.managers.len() as u32);
        for ((id, manager), snap) in self.managers.iter().zip(&ckpt.managers) {
            let Some(bytes) = manager.encode_snapshot(snap) else {
                return Err(ModelError::SnapshotUnsupported {
                    manager: format!("{} ({id})", manager.name()),
                });
            };
            w.put_bytes(&bytes);
        }
        Ok(w.into_sealed_bytes())
    }

    /// Deserializes bytes produced by [`Machine::encode_checkpoint`] on a
    /// machine of identical construction, producing a [`Checkpoint`] ready
    /// for [`Machine::restore`]. `decode_shared` reconstructs the
    /// model-specific shared state from its encoded section (typically
    /// using the freshly built machine's own shared state as the template
    /// for static configuration).
    ///
    /// # Errors
    /// [`ModelError::SnapshotMismatch`] on any malformed, truncated,
    /// tampered or shape-incompatible input;
    /// [`ModelError::SnapshotUnsupported`] if a manager or behavior lacks a
    /// decoding hook.
    pub fn decode_checkpoint(
        &self,
        bytes: &[u8],
        decode_shared: impl FnOnce(&[u8]) -> Option<S>,
    ) -> Result<Checkpoint<S>, ModelError> {
        use crate::ids::StateId;
        use crate::persist::{unseal, ByteReader};
        use crate::snapshot::BehaviorSnapshot;
        use crate::token::{HeldToken, Token, TokenIdent};

        fn bad(what: impl Into<String>) -> ModelError {
            ModelError::SnapshotMismatch { what: what.into() }
        }
        let truncated = || bad("checkpoint file truncated");

        let payload = unseal(bytes).ok_or_else(|| bad("checkpoint seal invalid or missing"))?;
        let mut r = ByteReader::new(payload);
        if r.take_bytes().ok_or_else(truncated)? != CHECKPOINT_MAGIC {
            return Err(bad("not a checkpoint file (bad magic)"));
        }
        let version = r.take_u32().ok_or_else(truncated)?;
        if version != CHECKPOINT_VERSION {
            return Err(bad(format!(
                "checkpoint format version {version} (this build reads {CHECKPOINT_VERSION})"
            )));
        }
        let cycle = r.take_u64().ok_or_else(truncated)?;
        let age_counter = r.take_u64().ok_or_else(truncated)?;
        let last_transition_cycle = r.take_u64().ok_or_else(truncated)?;
        let last_completion_cycle = r.take_u64().ok_or_else(truncated)?;
        let mut stats = Stats::new();
        stats.cycles = r.take_u64().ok_or_else(truncated)?;
        stats.transitions = r.take_u64().ok_or_else(truncated)?;
        stats.condition_failures = r.take_u64().ok_or_else(truncated)?;
        stats.vetoed_edges = r.take_u64().ok_or_else(truncated)?;
        stats.idle_steps = r.take_u64().ok_or_else(truncated)?;
        stats.restarts = r.take_u64().ok_or_else(truncated)?;
        let named_count = r.take_u32().ok_or_else(truncated)?;
        for _ in 0..named_count {
            let name = r.take_str().ok_or_else(truncated)?;
            let value = r.take_u64().ok_or_else(truncated)?;
            stats.incr_dyn(name, value);
        }
        let shared_bytes = r.take_bytes().ok_or_else(truncated)?;
        let shared = decode_shared(shared_bytes)
            .ok_or_else(|| bad("shared hardware-layer state rejected its encoding"))?;
        let osm_count = r.take_u32().ok_or_else(truncated)? as usize;
        if osm_count != self.osms.len() {
            return Err(bad(format!(
                "checkpoint has {osm_count} OSMs, machine has {}",
                self.osms.len()
            )));
        }
        let mut osms = Vec::with_capacity(osm_count);
        for osm in &self.osms {
            let state = StateId(r.take_u32().ok_or_else(truncated)?);
            let age = r.take_u64().ok_or_else(truncated)?;
            let tag = r.take_u64().ok_or_else(truncated)?;
            let last_move_cycle = r.take_u64().ok_or_else(truncated)?;
            let buffer_len = r.take_u32().ok_or_else(truncated)? as usize;
            let mut buffer = Vec::with_capacity(buffer_len.min(1 << 16));
            for _ in 0..buffer_len {
                let ident = TokenIdent(r.take_u64().ok_or_else(truncated)?);
                let manager = ManagerId(r.take_u32().ok_or_else(truncated)?);
                let raw = r.take_u64().ok_or_else(truncated)?;
                buffer.push(HeldToken {
                    ident,
                    token: Token::new(manager, raw),
                });
            }
            let slot_len = r.take_u32().ok_or_else(truncated)? as usize;
            let mut slots = Vec::with_capacity(slot_len.min(1 << 16));
            for _ in 0..slot_len {
                slots.push(TokenIdent(r.take_u64().ok_or_else(truncated)?));
            }
            let behavior = match r.take_u8().ok_or_else(truncated)? {
                0 => BehaviorSnapshot::Stateless,
                1 => {
                    let section = r.take_bytes().ok_or_else(truncated)?;
                    osm.behavior.decode_snapshot(section).ok_or_else(|| {
                        ModelError::SnapshotUnsupported {
                            manager: format!("behavior of {}", osm.id),
                        }
                    })?
                }
                tag => return Err(bad(format!("unknown behavior snapshot tag {tag}"))),
            };
            osms.push(OsmCheckpoint {
                state,
                age,
                tag,
                buffer,
                slots,
                behavior,
                last_move_cycle,
            });
        }
        let manager_count = r.take_u32().ok_or_else(truncated)? as usize;
        if manager_count != self.managers.len() {
            return Err(bad(format!(
                "checkpoint has {manager_count} managers, machine has {}",
                self.managers.len()
            )));
        }
        let mut managers = Vec::with_capacity(manager_count);
        for (id, manager) in self.managers.iter() {
            let section = r.take_bytes().ok_or_else(truncated)?;
            let snap = manager.decode_snapshot(section).ok_or_else(|| {
                ModelError::SnapshotUnsupported {
                    manager: format!("{} ({id})", manager.name()),
                }
            })?;
            managers.push(snap);
        }
        if !r.is_done() {
            return Err(bad("trailing bytes after the last checkpoint section"));
        }
        Ok(Checkpoint {
            cycle,
            age_counter,
            last_transition_cycle,
            last_completion_cycle,
            stats,
            shared,
            osms,
            managers,
        })
    }
}

/// Magic bytes opening every serialized checkpoint.
pub const CHECKPOINT_MAGIC: &[u8] = b"OSMCKPT1";
/// Current serialized-checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

impl<S: HardwareLayer + 'static> Machine<S> {
    /// Advances one full cycle: hardware layer clock, manager clock hooks,
    /// then the OSM control step (paper Fig. 4 embedding, cycle-driven form).
    ///
    /// # Errors
    /// Returns [`ModelError::Deadlock`] on a detected wait-for cycle.
    pub fn step(&mut self) -> Result<StepOutcome, ModelError> {
        self.shared.clock(self.cycle, &mut self.managers);
        self.managers.clock_all(self.cycle);
        let outcome = self.control_step()?;
        self.watchdog_check(outcome, self.cycle)?;
        self.cycle += 1;
        self.stats.cycles += 1;
        Ok(outcome)
    }

    /// Runs `n` cycles. In debug builds a token-conservation audit runs at
    /// the end and surfaces any inconsistency as [`ModelError::TokenLeak`]
    /// (disable with [`Machine::set_leak_audit`]).
    ///
    /// # Errors
    /// Propagates the first [`ModelError`].
    pub fn run(&mut self, n: u64) -> Result<(), ModelError> {
        for _ in 0..n {
            self.step()?;
        }
        self.leak_check()
    }

    /// Runs until `stop` returns true or `max_cycles` elapse; returns the
    /// number of cycles executed. Ends with the same debug-build leak audit
    /// as [`Machine::run`].
    ///
    /// # Errors
    /// Propagates the first [`ModelError`].
    pub fn run_until<F>(&mut self, max_cycles: u64, mut stop: F) -> Result<u64, ModelError>
    where
        F: FnMut(&Machine<S>) -> bool,
    {
        let start = self.cycle;
        while self.cycle - start < max_cycles {
            if stop(self) {
                break;
            }
            self.step()?;
        }
        self.leak_check()?;
        Ok(self.cycle - start)
    }
}

impl<S: std::fmt::Debug> std::fmt::Debug for Machine<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("cycle", &self.cycle)
            .field("managers", &self.managers)
            .field("osms", &self.osms.len())
            .field("shared", &self.shared)
            .finish()
    }
}

// Compile-time Send audit: a machine (and its checkpoints) whose shared
// hardware-layer state is `Send` must itself be `Send`, so whole simulation
// jobs can be sharded across worker threads. Every trait object a machine
// can own — managers, observers, behaviors, rankers, fault controls,
// manager snapshots — is constrained to uphold this; a regression in any of
// them fails here, not in a downstream crate.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn machine_is_send<S: Send + 'static>() {
        assert_send::<Machine<S>>();
        assert_send::<crate::Checkpoint<S>>();
    }
    machine_is_send::<()>();
    assert_send::<crate::FaultHandle>();
    assert_send::<crate::snapshot::ManagerSnapshot>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SlotId;
    use crate::osm::{InertBehavior, TransitionCtx};
    use crate::pools::{ExclusivePool, RegScoreboard};
    use crate::spec::{Edge, SpecBuilder};
    use crate::token::{IdentExpr, TokenIdent};

    /// Three-stage loop: I -> A -> B -> I over two exclusive stages.
    fn pipeline_spec(ma: ManagerId, mb: ManagerId) -> Arc<StateMachineSpec> {
        let mut b = SpecBuilder::new("pipe");
        let i = b.state("I");
        let a = b.state("A");
        let bb = b.state("B");
        b.initial(i);
        b.edge(i, a).named("enter").allocate(ma, IdentExpr::Const(0));
        b.edge(a, bb)
            .named("advance")
            .release(ma, IdentExpr::AnyHeld)
            .allocate(mb, IdentExpr::Const(0));
        b.edge(bb, i).named("leave").release(mb, IdentExpr::AnyHeld);
        b.build().unwrap()
    }

    #[test]
    fn single_osm_walks_pipeline() {
        let mut m: Machine<()> = Machine::new(());
        let ma = m.add_manager(ExclusivePool::new("A", 1));
        let mb = m.add_manager(ExclusivePool::new("B", 1));
        let spec = pipeline_spec(ma, mb);
        let op = m.add_osm(&spec, InertBehavior);
        assert_eq!(m.osm(op).state_name(), "I");
        m.step().unwrap();
        assert_eq!(m.osm(op).state_name(), "A");
        assert_eq!(m.osm(op).buffer().len(), 1);
        m.step().unwrap();
        assert_eq!(m.osm(op).state_name(), "B");
        m.step().unwrap();
        assert_eq!(m.osm(op).state_name(), "I");
        assert!(m.osm(op).buffer().is_empty());
        assert_eq!(m.stats.transitions, 3);
        assert_eq!(m.cycle(), 3);
    }

    #[test]
    fn two_osms_pipeline_in_order_and_structure_hazard_resolves() {
        let mut m: Machine<()> = Machine::new(());
        let ma = m.add_manager(ExclusivePool::new("A", 1));
        let mb = m.add_manager(ExclusivePool::new("B", 1));
        let spec = pipeline_spec(ma, mb);
        let o0 = m.add_osm(&spec, InertBehavior);
        let o1 = m.add_osm(&spec, InertBehavior);
        // Step 1: only one can enter A (one occupancy token).
        m.step().unwrap();
        let in_a = [o0, o1]
            .iter()
            .filter(|&&o| m.osm(o).state_name() == "A")
            .count();
        assert_eq!(in_a, 1);
        // Step 2: senior advances to B, junior takes A *in the same step*
        // (release visible within the step).
        m.step().unwrap();
        assert_eq!(m.osm(o0).state_name(), "B");
        assert_eq!(m.osm(o1).state_name(), "A");
    }

    #[test]
    fn age_ranking_keeps_seniors_first() {
        let mut m: Machine<()> = Machine::new(());
        let ma = m.add_manager(ExclusivePool::new("A", 1));
        let mb = m.add_manager(ExclusivePool::new("B", 1));
        let spec = pipeline_spec(ma, mb);
        // Insert in reverse id order relative to fetch: both idle, id ties
        // break toward o0; o0 becomes senior.
        let o0 = m.add_osm(&spec, InertBehavior);
        let o1 = m.add_osm(&spec, InertBehavior);
        m.run(2).unwrap();
        assert!(m.osm(o0).age() < m.osm(o1).age());
        assert_eq!(m.osm(o0).state_name(), "B");
    }

    #[test]
    fn deadlock_detected_on_cyclic_dependency() {
        // Two OSMs each hold one stage and want the other's: a wait cycle.
        let mut m: Machine<()> = Machine::new(());
        let ma = m.add_manager(ExclusivePool::new("A", 1));
        let mb = m.add_manager(ExclusivePool::new("B", 1));
        // Class 1: I -> A (take A), A -> Z (want B without releasing A).
        let spec_ab = {
            let mut b = SpecBuilder::new("ab");
            let i = b.state("I");
            let a = b.state("A");
            let z = b.state("Z");
            b.initial(i);
            b.edge(i, a).allocate(ma, IdentExpr::Const(0));
            b.edge(a, z).allocate(mb, IdentExpr::Const(0));
            b.build().unwrap()
        };
        let spec_ba = {
            let mut b = SpecBuilder::new("ba");
            let i = b.state("I");
            let a = b.state("B");
            let z = b.state("Z");
            b.initial(i);
            b.edge(i, a).allocate(mb, IdentExpr::Const(0));
            b.edge(a, z).allocate(ma, IdentExpr::Const(0));
            b.build().unwrap()
        };
        m.add_osm(&spec_ab, InertBehavior);
        m.add_osm(&spec_ba, InertBehavior);
        // Step 1: each takes its first stage.
        m.step().unwrap();
        // Step 2: both blocked on each other -> deadlock.
        let err = m.step().unwrap_err();
        match err {
            ModelError::Deadlock { osms, .. } => assert_eq!(osms.len(), 2),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn deadlock_check_can_be_disabled() {
        let mut m: Machine<()> = Machine::new(());
        let ma = m.add_manager(ExclusivePool::new("A", 1));
        let mb = m.add_manager(ExclusivePool::new("B", 1));
        let spec_ab = {
            let mut b = SpecBuilder::new("ab");
            let i = b.state("I");
            let a = b.state("A");
            let z = b.state("Z");
            b.initial(i);
            b.edge(i, a).allocate(ma, IdentExpr::Const(0));
            b.edge(a, z).allocate(mb, IdentExpr::Const(0));
            b.build().unwrap()
        };
        let spec_ba = {
            let mut b = SpecBuilder::new("ba");
            let i = b.state("I");
            let a = b.state("B");
            let z = b.state("Z");
            b.initial(i);
            b.edge(i, a).allocate(mb, IdentExpr::Const(0));
            b.edge(a, z).allocate(ma, IdentExpr::Const(0));
            b.build().unwrap()
        };
        m.add_osm(&spec_ab, InertBehavior);
        m.add_osm(&spec_ba, InertBehavior);
        m.set_deadlock_check(false);
        m.run(5).unwrap(); // stalls forever but never errors
        assert!(m.stats.idle_steps >= 4);
    }

    #[test]
    fn behavior_slots_drive_dynamic_identifiers() {
        // An OSM that allocates a register-update token whose register index
        // is decided by the behavior at the previous transition.
        struct Decode {
            dest: usize,
        }
        impl Behavior<()> for Decode {
            fn on_transition(&mut self, edge: &Edge, ctx: &mut TransitionCtx<'_, ()>) {
                if edge.name == "enter" {
                    ctx.set_slot(SlotId(0), RegScoreboard::update_ident(self.dest));
                }
            }
        }
        let mut m: Machine<()> = Machine::new(());
        let stage = m.add_manager(ExclusivePool::new("stage", 2));
        let rf = m.add_manager(RegScoreboard::new("regs", 8));
        let spec = {
            let mut b = SpecBuilder::new("op");
            let i = b.state("I");
            let d = b.state("D");
            let e = b.state("E");
            b.initial(i);
            b.edge(i, d).named("enter").allocate(stage, IdentExpr::ANY);
            b.edge(d, e)
                .named("issue")
                .allocate(rf, IdentExpr::Slot(SlotId(0)));
            b.build().unwrap()
        };
        let o0 = m.add_osm(&spec, Decode { dest: 3 });
        let o1 = m.add_osm(&spec, Decode { dest: 3 });
        m.run(2).unwrap();
        // Senior OSM got the reg-3 update token; junior stalls in D (WAW).
        assert_eq!(m.osm(o0).state_name(), "E");
        assert_eq!(m.osm(o1).state_name(), "D");
        let rfm: &RegScoreboard = m.managers.downcast(rf);
        assert_eq!(rfm.writer_of(3), Some(o0));
    }

    #[test]
    fn trace_records_transitions() {
        let mut m: Machine<()> = Machine::new(());
        let ma = m.add_manager(ExclusivePool::new("A", 1));
        let mb = m.add_manager(ExclusivePool::new("B", 1));
        let spec = pipeline_spec(ma, mb);
        m.add_osm(&spec, InertBehavior);
        m.enable_trace();
        m.run(3).unwrap();
        let trace = m.take_trace().unwrap();
        assert_eq!(trace.len(), 3);
        assert!(m.trace().is_none());
    }

    #[test]
    fn run_until_stops_on_predicate() {
        let mut m: Machine<()> = Machine::new(());
        let ma = m.add_manager(ExclusivePool::new("A", 1));
        let mb = m.add_manager(ExclusivePool::new("B", 1));
        let spec = pipeline_spec(ma, mb);
        let op = m.add_osm(&spec, InertBehavior);
        let ran = m
            .run_until(100, |m| m.osm(op).state_name() == "B")
            .unwrap();
        assert_eq!(ran, 2);
        assert_eq!(m.osm(op).state_name(), "B");
    }

    #[test]
    fn watchdog_reports_wedged_stall_with_diagnosis() {
        use crate::error::StallKind;
        let mut m: Machine<()> = Machine::new(());
        let ma = m.add_manager(ExclusivePool::new("A", 1));
        // Capacity-0 pool: allocation can never succeed and there is no
        // owner, so the wait-for-graph deadlock detector stays silent.
        let broken = m.add_manager(ExclusivePool::new("broken", 0));
        let spec = {
            let mut b = SpecBuilder::new("op");
            let i = b.state("I");
            let a = b.state("A");
            let z = b.state("Z");
            b.initial(i);
            b.edge(i, a).allocate(ma, IdentExpr::Const(0));
            b.edge(a, z).allocate(broken, IdentExpr::ANY);
            b.build().unwrap()
        };
        let op = m.add_osm(&spec, InertBehavior);
        m.set_stall_limit(Some(5));
        let err = m.run(100).unwrap_err();
        match err {
            ModelError::Stalled(report) => {
                assert_eq!(report.kind, StallKind::Wedged);
                assert!(report.stalled_for >= 5);
                assert_eq!(report.blocked.len(), 1);
                let b = &report.blocked[0];
                assert_eq!(b.osm, op);
                assert_eq!(b.state, "A");
                assert_eq!(b.held.len(), 1);
                assert_eq!(b.waiting_on.len(), 1);
                assert_eq!(b.waiting_on[0].manager_name, "broken");
                assert!(b.waiting_on[0].primitive.starts_with("alloc"));
            }
            other => panic!("expected stall, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_reports_livelock_when_nothing_completes() {
        use crate::error::StallKind;
        let mut m: Machine<()> = Machine::new(());
        // Condition-free A<->B bounce: transitions every cycle, but the OSM
        // never returns to its initial state.
        let spec = {
            let mut b = SpecBuilder::new("bounce");
            let i = b.state("I");
            let a = b.state("A");
            let bb = b.state("B");
            b.initial(i);
            b.edge(i, a);
            b.edge(a, bb);
            b.edge(bb, a);
            b.build().unwrap()
        };
        m.add_osm(&spec, InertBehavior);
        m.set_stall_limit(Some(6));
        let err = m.run(100).unwrap_err();
        match err {
            ModelError::Stalled(report) => {
                assert_eq!(report.kind, StallKind::Livelock);
                // The bouncing OSM is in flight, but each probed edge is
                // momentarily satisfiable, so it reports no wait causes.
                assert_eq!(report.blocked.len(), 1);
                assert!(report.blocked[0].waiting_on.is_empty());
            }
            other => panic!("expected livelock, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_reports_starvation_of_pinned_osm() {
        use crate::error::StallKind;
        let mut m: Machine<()> = Machine::new(());
        let ma = m.add_manager(ExclusivePool::new("A", 1));
        let mb = m.add_manager(ExclusivePool::new("B", 1));
        let hold_spec = {
            let mut b = SpecBuilder::new("hold");
            let i = b.state("I");
            let h = b.state("H");
            b.initial(i);
            b.edge(i, h).allocate(ma, IdentExpr::Const(0));
            b.edge(h, i).release(ma, IdentExpr::AnyHeld);
            b.build().unwrap()
        };
        let loop_spec = {
            let mut b = SpecBuilder::new("loop");
            let i = b.state("I");
            let l = b.state("L");
            b.initial(i);
            b.edge(i, l).allocate(mb, IdentExpr::Const(0));
            b.edge(l, i).release(mb, IdentExpr::AnyHeld);
            b.build().unwrap()
        };
        let pinned = m.add_osm(&hold_spec, InertBehavior);
        m.add_osm(&loop_spec, InertBehavior);
        m.set_stall_limit(Some(8));
        m.step().unwrap(); // both enter their stage
        // Pin the holder: its release is refused from now on (a completion
        // signal that never arrives), while the looper keeps retiring.
        m.managers
            .downcast_mut::<ExclusivePool>(ma)
            .block_release(0, true);
        let err = m.run(100).unwrap_err();
        match err {
            ModelError::Stalled(report) => {
                assert_eq!(report.kind, StallKind::Starvation);
                assert_eq!(report.blocked.len(), 1);
                let b = &report.blocked[0];
                assert_eq!(b.osm, pinned);
                assert_eq!(b.state, "H");
                assert_eq!(b.waiting_on.len(), 1);
                assert_eq!(b.waiting_on[0].manager_name, "A");
                assert!(b.waiting_on[0].primitive.starts_with("rel"));
                assert_eq!(b.waiting_on[0].owner, None); // own token, filtered
            }
            other => panic!("expected starvation, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_silent_on_healthy_and_idle_machines() {
        let mut m: Machine<()> = Machine::new(());
        let ma = m.add_manager(ExclusivePool::new("A", 1));
        let mb = m.add_manager(ExclusivePool::new("B", 1));
        let spec = pipeline_spec(ma, mb);
        m.add_osm(&spec, InertBehavior);
        m.set_stall_limit(Some(4));
        // The operation loops I->A->B->I forever: completions keep coming.
        m.run(50).unwrap();
        // An all-idle machine (no OSMs at all) never trips the watchdog.
        let mut empty: Machine<()> = Machine::new(());
        empty.set_stall_limit(Some(1));
        empty.run(10).unwrap();
    }

    #[test]
    fn checkpoint_restore_replays_identically() {
        let build = |m: &mut Machine<()>| {
            let ma = m.add_manager(ExclusivePool::new("A", 1));
            let mb = m.add_manager(ExclusivePool::new("B", 1));
            let spec = pipeline_spec(ma, mb);
            let o0 = m.add_osm(&spec, InertBehavior);
            let o1 = m.add_osm(&spec, InertBehavior);
            (o0, o1)
        };
        let mut m: Machine<()> = Machine::new(());
        let (o0, o1) = build(&mut m);
        m.run(2).unwrap();
        let ckpt = m.checkpoint().unwrap();
        assert_eq!(ckpt.cycle(), 2);
        assert_eq!(ckpt.osm_count(), 2);
        assert_eq!(ckpt.manager_count(), 2);
        let observe = |m: &mut Machine<()>| {
            let mut log = Vec::new();
            for _ in 0..4 {
                m.step().unwrap();
                log.push((
                    m.osm(o0).state_name().to_owned(),
                    m.osm(o1).state_name().to_owned(),
                    m.stats.transitions,
                ));
            }
            log
        };
        let first = observe(&mut m);
        m.restore(&ckpt).unwrap();
        assert_eq!(m.cycle(), 2);
        let second = observe(&mut m);
        assert_eq!(first, second);
        // A checkpoint survives multiple restores.
        m.restore(&ckpt).unwrap();
        assert_eq!(observe(&mut m), first);
    }

    #[test]
    fn restore_rejects_wrong_shape() {
        let mut a: Machine<()> = Machine::new(());
        let ma = a.add_manager(ExclusivePool::new("A", 1));
        let mb = a.add_manager(ExclusivePool::new("B", 1));
        let spec = pipeline_spec(ma, mb);
        a.add_osm(&spec, InertBehavior);
        let ckpt = a.checkpoint().unwrap();

        let mut b: Machine<()> = Machine::new(());
        let ba = b.add_manager(ExclusivePool::new("A", 1));
        let bb = b.add_manager(ExclusivePool::new("B", 1));
        let spec2 = pipeline_spec(ba, bb);
        b.add_osm(&spec2, InertBehavior);
        b.add_osm(&spec2, InertBehavior);
        match b.restore(&ckpt) {
            Err(ModelError::SnapshotMismatch { .. }) => {}
            other => panic!("expected mismatch, got {other:?}"),
        }
    }

    #[test]
    fn checkpoint_fails_on_unsnapshotable_manager() {
        struct Opaque;
        impl TokenManager for Opaque {
            fn name(&self) -> &str {
                "opaque"
            }
            fn prepare_allocate(&mut self, _: OsmId, _: TokenIdent) -> Option<crate::token::Token> {
                None
            }
            fn inquire(&self, _: OsmId, _: TokenIdent) -> bool {
                false
            }
            fn prepare_release(&mut self, _: OsmId, _: crate::token::Token) -> bool {
                false
            }
            fn commit_allocate(&mut self, _: OsmId, _: crate::token::Token) {}
            fn abort_allocate(&mut self, _: OsmId, _: crate::token::Token) {}
            fn commit_release(&mut self, _: OsmId, _: crate::token::Token) {}
            fn abort_release(&mut self, _: OsmId, _: crate::token::Token) {}
            fn discard(&mut self, _: OsmId, _: crate::token::Token) {}
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut m: Machine<()> = Machine::new(());
        m.add_manager(Opaque);
        match m.checkpoint() {
            Err(ModelError::SnapshotUnsupported { manager }) => {
                assert!(manager.contains("opaque"));
            }
            other => panic!("expected unsupported, got {other:?}"),
        }
    }

    /// Builds the two-OSM cyclic-dependency machine used by the deadlock
    /// tests above.
    fn deadlock_machine() -> Machine<()> {
        let mut m: Machine<()> = Machine::new(());
        let ma = m.add_manager(ExclusivePool::new("A", 1));
        let mb = m.add_manager(ExclusivePool::new("B", 1));
        let spec_ab = {
            let mut b = SpecBuilder::new("ab");
            let i = b.state("I");
            let a = b.state("A");
            let z = b.state("Z");
            b.initial(i);
            b.edge(i, a).allocate(ma, IdentExpr::Const(0));
            b.edge(a, z).allocate(mb, IdentExpr::Const(0));
            b.build().unwrap()
        };
        let spec_ba = {
            let mut b = SpecBuilder::new("ba");
            let i = b.state("I");
            let a = b.state("B");
            let z = b.state("Z");
            b.initial(i);
            b.edge(i, a).allocate(mb, IdentExpr::Const(0));
            b.edge(a, z).allocate(ma, IdentExpr::Const(0));
            b.build().unwrap()
        };
        m.add_osm(&spec_ab, InertBehavior);
        m.add_osm(&spec_ba, InertBehavior);
        m
    }

    #[test]
    fn scratch_list_survives_deadlock_return() {
        // Regression: the reference scheduler used to drop its taken ranking
        // buffer on the early deadlock return, so every later step
        // re-allocated it from scratch.
        let mut m = deadlock_machine();
        m.set_scheduler_mode(SchedulerMode::Seed);
        m.step().unwrap();
        assert!(matches!(m.step(), Err(ModelError::Deadlock { .. })));
        assert!(
            m.scratch.list.capacity() >= m.osm_count(),
            "ranking buffer was dropped on the deadlock return"
        );
        assert!(m.scratch.list.is_empty());
        // The machine stays usable: disabling the check lets it idle on.
        m.set_deadlock_check(false);
        m.run(3).unwrap();
    }

    /// Two-state loop with condition-free edges: every OSM transitions every
    /// control step.
    fn free_loop_spec() -> Arc<StateMachineSpec> {
        let mut b = SpecBuilder::new("free");
        let i = b.state("I");
        let a = b.state("A");
        b.initial(i);
        b.edge(i, a);
        b.edge(a, i);
        b.build().unwrap()
    }

    #[test]
    fn restarts_count_rescans_including_first_position() {
        // Two always-moving OSMs under Restart: each step, the transition of
        // the first-served OSM (position 0 — previously never counted)
        // leaves one OSM unserved and rescans, the second empties the list
        // and does not. Exactly one rescan per step, in both modes.
        for mode in [SchedulerMode::Fast, SchedulerMode::Seed] {
            let mut m: Machine<()> = Machine::new(());
            let spec = free_loop_spec();
            m.add_osm(&spec, InertBehavior);
            m.add_osm(&spec, InertBehavior);
            m.set_scheduler_mode(mode);
            m.enable_metrics();
            m.run(10).unwrap();
            assert_eq!(m.stats.restarts, 10, "{mode:?}");
            let report = m.metrics_report().unwrap();
            assert_eq!(report.restarts, 10, "{mode:?} observer disagrees");
        }
        // NoRestart performs no rescans at all.
        let mut m: Machine<()> = Machine::new(());
        let spec = free_loop_spec();
        m.add_osm(&spec, InertBehavior);
        m.add_osm(&spec, InertBehavior);
        m.set_restart_policy(RestartPolicy::NoRestart);
        m.run(10).unwrap();
        assert_eq!(m.stats.restarts, 0);
    }

    #[test]
    fn fast_and_seed_schedulers_are_cycle_exact() {
        let run = |mode: SchedulerMode| {
            let mut m: Machine<()> = Machine::new(());
            let ma = m.add_manager(ExclusivePool::new("A", 1));
            let mb = m.add_manager(ExclusivePool::new("B", 1));
            let spec = pipeline_spec(ma, mb);
            for _ in 0..4 {
                m.add_osm(&spec, InertBehavior);
            }
            m.set_scheduler_mode(mode);
            m.enable_trace();
            m.run(60).unwrap();
            let digest = m.take_trace().unwrap().digest();
            (
                digest,
                m.stats.transitions,
                m.stats.restarts,
                m.stats.idle_steps,
            )
        };
        assert_eq!(run(SchedulerMode::Fast), run(SchedulerMode::Seed));
    }

    #[test]
    fn scheduler_mode_can_switch_mid_run() {
        let reference = {
            let mut m: Machine<()> = Machine::new(());
            let ma = m.add_manager(ExclusivePool::new("A", 1));
            let mb = m.add_manager(ExclusivePool::new("B", 1));
            let spec = pipeline_spec(ma, mb);
            for _ in 0..3 {
                m.add_osm(&spec, InertBehavior);
            }
            m.set_scheduler_mode(SchedulerMode::Seed);
            m.enable_trace();
            m.run(30).unwrap();
            m.take_trace().unwrap().digest()
        };
        let mut m: Machine<()> = Machine::new(());
        let ma = m.add_manager(ExclusivePool::new("A", 1));
        let mb = m.add_manager(ExclusivePool::new("B", 1));
        let spec = pipeline_spec(ma, mb);
        for _ in 0..3 {
            m.add_osm(&spec, InertBehavior);
        }
        m.enable_trace();
        m.run(10).unwrap();
        m.set_scheduler_mode(SchedulerMode::Seed);
        m.run(10).unwrap();
        m.set_scheduler_mode(SchedulerMode::Fast);
        m.run(10).unwrap();
        assert_eq!(m.take_trace().unwrap().digest(), reference);
    }

    #[test]
    fn fast_scheduler_wakes_on_manager_clock_refill() {
        use crate::pools::CountingPool;
        // A per-cycle bandwidth pool wakes blocked OSMs purely through its
        // clock hook (the dirty-returning `TokenManager::clock` path): with
        // one unit per cycle, the junior OSM is denied at cycle 0 and must
        // be re-evaluated — not skipped — once the pool refills.
        let mut m: Machine<()> = Machine::new(());
        let bw = m.add_manager(CountingPool::per_cycle("bw", 1));
        let spec = {
            let mut b = SpecBuilder::new("op");
            let i = b.state("I");
            let a = b.state("A");
            b.initial(i);
            b.edge(i, a).allocate(bw, IdentExpr::Const(0));
            b.build().unwrap()
        };
        let o0 = m.add_osm(&spec, InertBehavior);
        let o1 = m.add_osm(&spec, InertBehavior);
        m.set_leak_audit(false); // terminal state holds its token by design
        m.step().unwrap();
        assert_eq!(m.osm(o0).state_name(), "A");
        assert_eq!(m.osm(o1).state_name(), "I");
        m.step().unwrap();
        assert_eq!(m.osm(o1).state_name(), "A", "refill did not wake the OSM");
    }

    #[test]
    fn fast_scheduler_wakes_on_external_manager_mutation() {
        // Mutating a manager from outside the control step (here through
        // `downcast_mut`) must invalidate the skip records of OSMs blocked
        // on it.
        let mut m: Machine<()> = Machine::new(());
        let ma = m.add_manager(ExclusivePool::new("A", 1));
        let spec = {
            let mut b = SpecBuilder::new("hold");
            let i = b.state("I");
            let h = b.state("H");
            b.initial(i);
            b.edge(i, h).allocate(ma, IdentExpr::Const(0));
            b.edge(h, i).release(ma, IdentExpr::AnyHeld);
            b.build().unwrap()
        };
        let op = m.add_osm(&spec, InertBehavior);
        m.step().unwrap();
        assert_eq!(m.osm(op).state_name(), "H");
        m.managers
            .downcast_mut::<ExclusivePool>(ma)
            .block_release(0, true);
        m.run(5).unwrap(); // blocked — and skipped after the first denial
        assert_eq!(m.osm(op).state_name(), "H");
        assert!(m.stats.idle_steps >= 5);
        m.managers
            .downcast_mut::<ExclusivePool>(ma)
            .block_release(0, false);
        m.step().unwrap();
        assert_eq!(m.osm(op).state_name(), "I", "unblock did not wake the OSM");
    }

    #[test]
    fn fallible_registration_reports_ok_ids() {
        let mut m: Machine<()> = Machine::new(());
        let ma = m.try_add_manager(ExclusivePool::new("A", 1)).unwrap();
        let mb = m.try_add_manager(ExclusivePool::new("B", 1)).unwrap();
        assert_eq!(ma, ManagerId(0));
        assert_eq!(mb, ManagerId(1));
        let spec = pipeline_spec(ma, mb);
        let o0 = m.try_add_osm_tagged(&spec, InertBehavior, 7).unwrap();
        assert_eq!(o0, OsmId(0));
        assert_eq!(m.osm(o0).tag(), 7);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn run_surfaces_token_leak_in_debug_builds() {
        use crate::token::Token;
        // A manager that claims an ownership no OSM's buffer backs up.
        struct Liar;
        impl TokenManager for Liar {
            fn name(&self) -> &str {
                "liar"
            }
            fn prepare_allocate(&mut self, _: OsmId, _: TokenIdent) -> Option<Token> {
                None
            }
            fn inquire(&self, _: OsmId, _: TokenIdent) -> bool {
                false
            }
            fn prepare_release(&mut self, _: OsmId, _: Token) -> bool {
                false
            }
            fn commit_allocate(&mut self, _: OsmId, _: Token) {}
            fn abort_allocate(&mut self, _: OsmId, _: Token) {}
            fn commit_release(&mut self, _: OsmId, _: Token) {}
            fn abort_release(&mut self, _: OsmId, _: Token) {}
            fn discard(&mut self, _: OsmId, _: Token) {}
            fn owned_tokens(&self) -> Option<Vec<(Token, OsmId)>> {
                Some(vec![(Token::new(ManagerId(0), 0), OsmId(0))])
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut m: Machine<()> = Machine::new(());
        m.add_manager(Liar);
        match m.run(1) {
            Err(ModelError::TokenLeak { problems, .. }) => {
                assert!(!problems.is_empty());
            }
            other => panic!("expected token leak, got {other:?}"),
        }
        // The audit can be turned off.
        m.set_leak_audit(false);
        m.run(1).unwrap();
    }

    #[test]
    fn trace_digest_probes_without_detaching() {
        let mut m: Machine<()> = Machine::new(());
        let ma = m.add_manager(ExclusivePool::new("A", 1));
        let mb = m.add_manager(ExclusivePool::new("B", 1));
        let spec = pipeline_spec(ma, mb);
        m.add_osm(&spec, InertBehavior);
        assert_eq!(m.trace_digest(), None, "no trace installed yet");
        m.enable_trace_with(Trace::digest_only());
        let empty = m.trace_digest().expect("trace installed");
        m.run(2).unwrap();
        let mid = m.trace_digest().expect("probe mid-run");
        assert_ne!(mid, empty, "digest advances with transitions");
        m.run(1).unwrap();
        // The probe never detached the sink: take_trace still returns it,
        // and its final digest continues from the probed prefix.
        let final_digest = m.trace_digest().unwrap();
        assert_eq!(m.take_trace().unwrap().digest(), final_digest);
    }

    #[test]
    fn state_fingerprint_tracks_operation_state_and_survives_restore() {
        let build = || {
            let mut m: Machine<()> = Machine::new(());
            let ma = m.add_manager(ExclusivePool::new("A", 1));
            let mb = m.add_manager(ExclusivePool::new("B", 1));
            let spec = pipeline_spec(ma, mb);
            m.add_osm(&spec, InertBehavior);
            m.add_osm(&spec, InertBehavior);
            m
        };
        let mut a = build();
        let mut b = build();
        assert_eq!(a.state_fingerprint(), b.state_fingerprint());
        a.run(3).unwrap();
        assert_ne!(
            a.state_fingerprint(),
            b.state_fingerprint(),
            "fingerprint must distinguish different operation states"
        );
        b.run(3).unwrap();
        assert_eq!(a.state_fingerprint(), b.state_fingerprint());
        // checkpoint → restore into a fresh machine reproduces the
        // fingerprint exactly (the probe a cut-point oracle compares).
        let ckpt = a.checkpoint().unwrap();
        let mut c = build();
        c.restore(&ckpt).unwrap();
        assert_eq!(c.state_fingerprint(), a.state_fingerprint());
        a.run(1).unwrap();
        c.run(1).unwrap();
        assert_eq!(c.state_fingerprint(), a.state_fingerprint());
    }
}
