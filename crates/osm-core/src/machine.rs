//! The machine: managers + OSMs + director configuration + shared hardware state.

use crate::director::{self, AgeRanker, Ranker, RestartPolicy, Scratch, StepOutcome};
use crate::error::ModelError;
use crate::ids::{ManagerId, OsmId};
use crate::manager::{ManagerTable, TokenManager};
use crate::osm::{Behavior, Osm};
use crate::spec::StateMachineSpec;
use crate::stats::Stats;
use crate::trace::Trace;
use std::sync::Arc;

/// The hardware layer of a processor model (paper §4).
///
/// The shared state `S` of a [`Machine`] implements this trait; its
/// [`clock`](HardwareLayer::clock) hook runs once per cycle *before* the OSM
/// control step, modeling the interval between control steps in which
/// "hardware modules communicate with one another and exchange information
/// with their TMIs". Typical work: advance cache-miss timers, unblock stage
/// releases, update branch predictors.
pub trait HardwareLayer {
    /// Advances the hardware layer by one clock, with TMI access.
    fn clock(&mut self, cycle: u64, managers: &mut ManagerTable) {
        let _ = (cycle, managers);
    }
}

impl HardwareLayer for () {}

/// A complete OSM machine model.
///
/// `S` is the model's shared hardware-layer state. A machine owns the
/// [`ManagerTable`] (hardware layer interface), all [`Osm`] instances
/// (operation layer), and the director configuration.
///
/// ```
/// use osm_core::{Machine, SpecBuilder, ExclusivePool, IdentExpr, InertBehavior};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut m: Machine<()> = Machine::new(());
/// let stage = m.add_manager(ExclusivePool::new("stage", 1));
/// let mut b = SpecBuilder::new("op");
/// let i = b.state("I");
/// let s = b.state("S");
/// b.initial(i);
/// b.edge(i, s).allocate(stage, IdentExpr::Const(0));
/// b.edge(s, i).release(stage, IdentExpr::AnyHeld);
/// let spec = b.build()?;
/// let op = m.add_osm(&spec, InertBehavior);
/// m.step()?;
/// assert_eq!(m.osm(op).state_name(), "S");
/// # Ok(())
/// # }
/// ```
pub struct Machine<S> {
    /// The token managers (public for hardware-layer data access).
    pub managers: ManagerTable,
    osms: Vec<Osm<S>>,
    specs: Vec<Arc<StateMachineSpec>>,
    /// Shared hardware-layer state.
    pub shared: S,
    ranker: Box<dyn Ranker<S>>,
    age_ranking: bool,
    restart: RestartPolicy,
    deadlock_check: bool,
    cycle: u64,
    age_counter: u64,
    /// Scheduler statistics.
    pub stats: Stats,
    trace: Option<Trace>,
    scratch: Scratch,
}

impl<S: 'static> Machine<S> {
    /// Creates a machine around the given shared state, with the paper's
    /// defaults: age ranking, Fig. 3 restart semantics, deadlock detection on.
    pub fn new(shared: S) -> Self {
        Machine {
            managers: ManagerTable::new(),
            osms: Vec::new(),
            specs: Vec::new(),
            shared,
            ranker: Box::new(AgeRanker),
            age_ranking: true,
            restart: RestartPolicy::Restart,
            deadlock_check: true,
            cycle: 0,
            age_counter: 0,
            stats: Stats::new(),
            trace: None,
            scratch: Scratch::default(),
        }
    }

    /// Installs a token manager.
    pub fn add_manager<M: TokenManager>(&mut self, manager: M) -> ManagerId {
        self.managers.add(manager)
    }

    /// Instantiates one OSM of class `spec` with the given behavior.
    pub fn add_osm<B: Behavior<S>>(&mut self, spec: &Arc<StateMachineSpec>, behavior: B) -> OsmId {
        self.add_osm_tagged(spec, behavior, 0)
    }

    /// Instantiates one OSM with a thread tag (§6 multithreading extension).
    pub fn add_osm_tagged<B: Behavior<S>>(
        &mut self,
        spec: &Arc<StateMachineSpec>,
        behavior: B,
        tag: u64,
    ) -> OsmId {
        let id = OsmId(self.osms.len() as u32);
        let spec_idx = match self.specs.iter().position(|s| Arc::ptr_eq(s, spec)) {
            Some(k) => k as u32,
            None => {
                self.specs.push(spec.clone());
                (self.specs.len() - 1) as u32
            }
        };
        self.osms
            .push(Osm::new(id, spec.clone(), spec_idx, tag, Box::new(behavior)));
        id
    }

    /// Instantiates `count` OSMs of the same class, one behavior each.
    pub fn add_osm_pool<B, F>(
        &mut self,
        spec: &Arc<StateMachineSpec>,
        count: usize,
        mut factory: F,
    ) -> Vec<OsmId>
    where
        B: Behavior<S>,
        F: FnMut(usize) -> B,
    {
        (0..count).map(|k| self.add_osm(spec, factory(k))).collect()
    }

    /// Borrows an OSM.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn osm(&self, id: OsmId) -> &Osm<S> {
        &self.osms[id.index()]
    }

    /// Number of OSM instances.
    pub fn osm_count(&self) -> usize {
        self.osms.len()
    }

    /// Iterates over all OSMs.
    pub fn osms(&self) -> impl Iterator<Item = &Osm<S>> {
        self.osms.iter()
    }

    /// Replaces the ranking policy.
    pub fn set_ranker<R: Ranker<S>>(&mut self, ranker: R) {
        self.age_ranking = std::any::TypeId::of::<R>() == std::any::TypeId::of::<AgeRanker>();
        self.ranker = Box::new(ranker);
    }

    /// Sets the director restart policy.
    pub fn set_restart_policy(&mut self, policy: RestartPolicy) {
        self.restart = policy;
    }

    /// The current restart policy.
    pub fn restart_policy(&self) -> RestartPolicy {
        self.restart
    }

    /// Enables or disables wait-for-cycle deadlock detection.
    pub fn set_deadlock_check(&mut self, on: bool) {
        self.deadlock_check = on;
    }

    /// Starts recording a transition trace.
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Trace::new());
        }
    }

    /// The trace recorded so far, if tracing is enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Takes the recorded trace, disabling tracing.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.take()
    }

    /// The current cycle (number of completed [`Machine::step`]s).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Token-conservation audit: every token a manager believes is owned
    /// must sit in exactly that owner's buffer, and every buffered token of
    /// an auditable manager must be acknowledged by it. This is the dynamic
    /// counterpart of the static checks in [`crate::verify_spec`]; tests run
    /// it between control steps.
    ///
    /// # Panics
    /// Never panics; violations are returned as human-readable strings.
    pub fn audit_tokens(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let mut audited: Vec<bool> = vec![false; self.managers.len()];
        for (id, manager) in self.managers.iter() {
            let Some(owned) = manager.owned_tokens() else {
                continue;
            };
            audited[id.index()] = true;
            for (token, owner) in owned {
                let held = self
                    .osms
                    .get(owner.index())
                    .map(|osm| osm.buffer().iter().any(|h| h.token == token))
                    .unwrap_or(false);
                if !held {
                    problems.push(format!(
                        "manager {} says {owner} owns {token}, but it is not in that OSM's buffer",
                        manager.name()
                    ));
                }
            }
        }
        for osm in self.osms() {
            for held in osm.buffer() {
                let id = held.token.manager;
                if !audited.get(id.index()).copied().unwrap_or(false) {
                    continue;
                }
                let acknowledged = self
                    .managers
                    .get(id)
                    .owned_tokens()
                    .map(|owned| owned.iter().any(|(t, o)| *t == held.token && *o == osm.id()))
                    .unwrap_or(true);
                if !acknowledged {
                    problems.push(format!(
                        "{} holds {} which its manager does not acknowledge",
                        osm.id(),
                        held.token
                    ));
                }
            }
        }
        problems
    }

    /// Runs the OSM layer only: one director control step (Fig. 3) at the
    /// current cycle, without advancing the hardware layer. The DE kernel
    /// uses this at clock edges; most users call [`Machine::step`].
    ///
    /// # Errors
    /// Returns [`ModelError::Deadlock`] on a detected wait-for cycle.
    pub fn control_step(&mut self) -> Result<StepOutcome, ModelError> {
        director::control_step(
            &mut self.osms,
            &self.specs,
            &mut self.managers,
            &mut self.shared,
            self.ranker.as_ref(),
            self.age_ranking,
            self.restart,
            self.deadlock_check,
            self.cycle,
            &mut self.age_counter,
            &mut self.stats,
            self.trace.as_mut(),
            &mut self.scratch,
        )
    }
}

impl<S: HardwareLayer + 'static> Machine<S> {
    /// Advances one full cycle: hardware layer clock, manager clock hooks,
    /// then the OSM control step (paper Fig. 4 embedding, cycle-driven form).
    ///
    /// # Errors
    /// Returns [`ModelError::Deadlock`] on a detected wait-for cycle.
    pub fn step(&mut self) -> Result<StepOutcome, ModelError> {
        self.shared.clock(self.cycle, &mut self.managers);
        self.managers.clock_all(self.cycle);
        let outcome = self.control_step()?;
        self.cycle += 1;
        self.stats.cycles += 1;
        Ok(outcome)
    }

    /// Runs `n` cycles.
    ///
    /// # Errors
    /// Propagates the first [`ModelError`].
    pub fn run(&mut self, n: u64) -> Result<(), ModelError> {
        for _ in 0..n {
            self.step()?;
        }
        Ok(())
    }

    /// Runs until `stop` returns true or `max_cycles` elapse; returns the
    /// number of cycles executed.
    ///
    /// # Errors
    /// Propagates the first [`ModelError`].
    pub fn run_until<F>(&mut self, max_cycles: u64, mut stop: F) -> Result<u64, ModelError>
    where
        F: FnMut(&Machine<S>) -> bool,
    {
        let start = self.cycle;
        while self.cycle - start < max_cycles {
            if stop(self) {
                break;
            }
            self.step()?;
        }
        Ok(self.cycle - start)
    }
}

impl<S: std::fmt::Debug> std::fmt::Debug for Machine<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("cycle", &self.cycle)
            .field("managers", &self.managers)
            .field("osms", &self.osms.len())
            .field("shared", &self.shared)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SlotId;
    use crate::osm::{InertBehavior, TransitionCtx};
    use crate::pools::{ExclusivePool, RegScoreboard};
    use crate::spec::{Edge, SpecBuilder};
    use crate::token::{IdentExpr, TokenIdent};

    /// Three-stage loop: I -> A -> B -> I over two exclusive stages.
    fn pipeline_spec(ma: ManagerId, mb: ManagerId) -> Arc<StateMachineSpec> {
        let mut b = SpecBuilder::new("pipe");
        let i = b.state("I");
        let a = b.state("A");
        let bb = b.state("B");
        b.initial(i);
        b.edge(i, a).named("enter").allocate(ma, IdentExpr::Const(0));
        b.edge(a, bb)
            .named("advance")
            .release(ma, IdentExpr::AnyHeld)
            .allocate(mb, IdentExpr::Const(0));
        b.edge(bb, i).named("leave").release(mb, IdentExpr::AnyHeld);
        b.build().unwrap()
    }

    #[test]
    fn single_osm_walks_pipeline() {
        let mut m: Machine<()> = Machine::new(());
        let ma = m.add_manager(ExclusivePool::new("A", 1));
        let mb = m.add_manager(ExclusivePool::new("B", 1));
        let spec = pipeline_spec(ma, mb);
        let op = m.add_osm(&spec, InertBehavior);
        assert_eq!(m.osm(op).state_name(), "I");
        m.step().unwrap();
        assert_eq!(m.osm(op).state_name(), "A");
        assert_eq!(m.osm(op).buffer().len(), 1);
        m.step().unwrap();
        assert_eq!(m.osm(op).state_name(), "B");
        m.step().unwrap();
        assert_eq!(m.osm(op).state_name(), "I");
        assert!(m.osm(op).buffer().is_empty());
        assert_eq!(m.stats.transitions, 3);
        assert_eq!(m.cycle(), 3);
    }

    #[test]
    fn two_osms_pipeline_in_order_and_structure_hazard_resolves() {
        let mut m: Machine<()> = Machine::new(());
        let ma = m.add_manager(ExclusivePool::new("A", 1));
        let mb = m.add_manager(ExclusivePool::new("B", 1));
        let spec = pipeline_spec(ma, mb);
        let o0 = m.add_osm(&spec, InertBehavior);
        let o1 = m.add_osm(&spec, InertBehavior);
        // Step 1: only one can enter A (one occupancy token).
        m.step().unwrap();
        let in_a = [o0, o1]
            .iter()
            .filter(|&&o| m.osm(o).state_name() == "A")
            .count();
        assert_eq!(in_a, 1);
        // Step 2: senior advances to B, junior takes A *in the same step*
        // (release visible within the step).
        m.step().unwrap();
        assert_eq!(m.osm(o0).state_name(), "B");
        assert_eq!(m.osm(o1).state_name(), "A");
    }

    #[test]
    fn age_ranking_keeps_seniors_first() {
        let mut m: Machine<()> = Machine::new(());
        let ma = m.add_manager(ExclusivePool::new("A", 1));
        let mb = m.add_manager(ExclusivePool::new("B", 1));
        let spec = pipeline_spec(ma, mb);
        // Insert in reverse id order relative to fetch: both idle, id ties
        // break toward o0; o0 becomes senior.
        let o0 = m.add_osm(&spec, InertBehavior);
        let o1 = m.add_osm(&spec, InertBehavior);
        m.run(2).unwrap();
        assert!(m.osm(o0).age() < m.osm(o1).age());
        assert_eq!(m.osm(o0).state_name(), "B");
    }

    #[test]
    fn deadlock_detected_on_cyclic_dependency() {
        // Two OSMs each hold one stage and want the other's: a wait cycle.
        let mut m: Machine<()> = Machine::new(());
        let ma = m.add_manager(ExclusivePool::new("A", 1));
        let mb = m.add_manager(ExclusivePool::new("B", 1));
        // Class 1: I -> A (take A), A -> Z (want B without releasing A).
        let spec_ab = {
            let mut b = SpecBuilder::new("ab");
            let i = b.state("I");
            let a = b.state("A");
            let z = b.state("Z");
            b.initial(i);
            b.edge(i, a).allocate(ma, IdentExpr::Const(0));
            b.edge(a, z).allocate(mb, IdentExpr::Const(0));
            b.build().unwrap()
        };
        let spec_ba = {
            let mut b = SpecBuilder::new("ba");
            let i = b.state("I");
            let a = b.state("B");
            let z = b.state("Z");
            b.initial(i);
            b.edge(i, a).allocate(mb, IdentExpr::Const(0));
            b.edge(a, z).allocate(ma, IdentExpr::Const(0));
            b.build().unwrap()
        };
        m.add_osm(&spec_ab, InertBehavior);
        m.add_osm(&spec_ba, InertBehavior);
        // Step 1: each takes its first stage.
        m.step().unwrap();
        // Step 2: both blocked on each other -> deadlock.
        let err = m.step().unwrap_err();
        match err {
            ModelError::Deadlock { osms, .. } => assert_eq!(osms.len(), 2),
        }
    }

    #[test]
    fn deadlock_check_can_be_disabled() {
        let mut m: Machine<()> = Machine::new(());
        let ma = m.add_manager(ExclusivePool::new("A", 1));
        let mb = m.add_manager(ExclusivePool::new("B", 1));
        let spec_ab = {
            let mut b = SpecBuilder::new("ab");
            let i = b.state("I");
            let a = b.state("A");
            let z = b.state("Z");
            b.initial(i);
            b.edge(i, a).allocate(ma, IdentExpr::Const(0));
            b.edge(a, z).allocate(mb, IdentExpr::Const(0));
            b.build().unwrap()
        };
        let spec_ba = {
            let mut b = SpecBuilder::new("ba");
            let i = b.state("I");
            let a = b.state("B");
            let z = b.state("Z");
            b.initial(i);
            b.edge(i, a).allocate(mb, IdentExpr::Const(0));
            b.edge(a, z).allocate(ma, IdentExpr::Const(0));
            b.build().unwrap()
        };
        m.add_osm(&spec_ab, InertBehavior);
        m.add_osm(&spec_ba, InertBehavior);
        m.set_deadlock_check(false);
        m.run(5).unwrap(); // stalls forever but never errors
        assert!(m.stats.idle_steps >= 4);
    }

    #[test]
    fn behavior_slots_drive_dynamic_identifiers() {
        // An OSM that allocates a register-update token whose register index
        // is decided by the behavior at the previous transition.
        struct Decode {
            dest: usize,
        }
        impl Behavior<()> for Decode {
            fn on_transition(&mut self, edge: &Edge, ctx: &mut TransitionCtx<'_, ()>) {
                if edge.name == "enter" {
                    ctx.set_slot(SlotId(0), RegScoreboard::update_ident(self.dest));
                }
            }
        }
        let mut m: Machine<()> = Machine::new(());
        let stage = m.add_manager(ExclusivePool::new("stage", 2));
        let rf = m.add_manager(RegScoreboard::new("regs", 8));
        let spec = {
            let mut b = SpecBuilder::new("op");
            let i = b.state("I");
            let d = b.state("D");
            let e = b.state("E");
            b.initial(i);
            b.edge(i, d).named("enter").allocate(stage, IdentExpr::ANY);
            b.edge(d, e)
                .named("issue")
                .allocate(rf, IdentExpr::Slot(SlotId(0)));
            b.build().unwrap()
        };
        let o0 = m.add_osm(&spec, Decode { dest: 3 });
        let o1 = m.add_osm(&spec, Decode { dest: 3 });
        m.run(2).unwrap();
        // Senior OSM got the reg-3 update token; junior stalls in D (WAW).
        assert_eq!(m.osm(o0).state_name(), "E");
        assert_eq!(m.osm(o1).state_name(), "D");
        let rfm: &RegScoreboard = m.managers.downcast(rf);
        assert_eq!(rfm.writer_of(3), Some(o0));
    }

    #[test]
    fn trace_records_transitions() {
        let mut m: Machine<()> = Machine::new(());
        let ma = m.add_manager(ExclusivePool::new("A", 1));
        let mb = m.add_manager(ExclusivePool::new("B", 1));
        let spec = pipeline_spec(ma, mb);
        m.add_osm(&spec, InertBehavior);
        m.enable_trace();
        m.run(3).unwrap();
        let trace = m.take_trace().unwrap();
        assert_eq!(trace.len(), 3);
        assert!(m.trace().is_none());
    }

    #[test]
    fn run_until_stops_on_predicate() {
        let mut m: Machine<()> = Machine::new(());
        let ma = m.add_manager(ExclusivePool::new("A", 1));
        let mb = m.add_manager(ExclusivePool::new("B", 1));
        let spec = pipeline_spec(ma, mb);
        let op = m.add_osm(&spec, InertBehavior);
        let ran = m
            .run_until(100, |m| m.osm(op).state_name() == "B")
            .unwrap();
        assert_eq!(ran, 2);
        assert_eq!(m.osm(op).state_name(), "B");
    }
}
