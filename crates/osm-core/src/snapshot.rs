//! Checkpoint/restore support: opaque state snapshots for token managers
//! and operation behaviors, and the machine-level [`Checkpoint`] container.
//!
//! A [`crate::Machine`] can be checkpointed mid-run and later restored to
//! that exact point ([`crate::Machine::checkpoint`] /
//! [`crate::Machine::restore`]), provided every installed manager supports
//! the [`Snapshot`] trait (wired into [`crate::TokenManager`] through the
//! `snapshot_state`/`restore_state` hooks) and every stateful behavior
//! overrides [`crate::Behavior::snapshot`]. Restoring is cycle-accurate:
//! re-running from a restored checkpoint reproduces the original
//! continuation transition-for-transition, because all scheduler inputs
//! (OSM states, ages, token buffers, manager state, statistics and the age
//! counter) are part of the snapshot.

use crate::ids::StateId;
use crate::stats::Stats;
use crate::token::{HeldToken, TokenIdent};
use std::any::Any;
use std::fmt;
use std::sync::Arc;

/// An opaque, shareable snapshot of one token manager's mutable state.
///
/// Managers create these with [`ManagerSnapshot::of`] and recover their
/// concrete state with [`ManagerSnapshot::downcast`]. The payload is
/// reference-counted so one [`Checkpoint`] can be restored any number of
/// times, and `Send + Sync` so checkpoints can cross thread boundaries
/// (simulation-farm workers restore on whichever thread runs the job).
#[derive(Clone)]
pub struct ManagerSnapshot(Arc<dyn Any + Send + Sync>);

impl ManagerSnapshot {
    /// Wraps a concrete state value.
    pub fn of<T: Send + Sync + 'static>(state: T) -> Self {
        ManagerSnapshot(Arc::new(state))
    }

    /// Borrows the concrete state back, if `T` is the stored type.
    pub fn downcast<T: 'static>(&self) -> Option<&T> {
        self.0.downcast_ref::<T>()
    }
}

impl fmt::Debug for ManagerSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ManagerSnapshot(..)")
    }
}

/// Checkpoint/restore capability of a token manager.
///
/// Implementors should also override the [`crate::TokenManager`] hooks so the
/// capability is reachable through the trait object:
///
/// ```ignore
/// fn snapshot_state(&self) -> Option<ManagerSnapshot> { Some(Snapshot::snapshot(self)) }
/// fn restore_state(&mut self, snap: &ManagerSnapshot) -> bool { Snapshot::restore(self, snap) }
/// ```
pub trait Snapshot {
    /// Captures the manager's mutable state.
    fn snapshot(&self) -> ManagerSnapshot;

    /// Restores state captured by [`Snapshot::snapshot`] on a compatible
    /// manager. Returns `false` (leaving the manager unchanged) if the
    /// snapshot is of the wrong type or shape.
    fn restore(&mut self, snap: &ManagerSnapshot) -> bool;
}

/// Snapshot of one [`crate::Behavior`]'s mutable state.
///
/// The default behavior hooks declare a behavior stateless; behaviors that
/// carry mutable per-operation state (decoded instruction, computed address,
/// ...) must override [`crate::Behavior::snapshot`] and
/// [`crate::Behavior::restore`], or restored runs will silently diverge.
#[derive(Debug, Clone)]
pub enum BehaviorSnapshot {
    /// The behavior carries no mutable state.
    Stateless,
    /// Opaque captured state (created via [`BehaviorSnapshot::of`]).
    State(ManagerSnapshot),
}

impl BehaviorSnapshot {
    /// Wraps a concrete behavior state value.
    pub fn of<T: Send + Sync + 'static>(state: T) -> Self {
        BehaviorSnapshot::State(ManagerSnapshot::of(state))
    }

    /// Borrows the concrete state back, if present and of type `T`.
    pub fn downcast<T: 'static>(&self) -> Option<&T> {
        match self {
            BehaviorSnapshot::Stateless => None,
            BehaviorSnapshot::State(s) => s.downcast::<T>(),
        }
    }
}

/// Per-OSM portion of a [`Checkpoint`].
#[derive(Debug, Clone)]
pub(crate) struct OsmCheckpoint {
    pub(crate) state: StateId,
    pub(crate) age: u64,
    pub(crate) tag: u64,
    pub(crate) buffer: Vec<HeldToken>,
    pub(crate) slots: Vec<TokenIdent>,
    pub(crate) behavior: BehaviorSnapshot,
    pub(crate) last_move_cycle: u64,
}

/// A full machine checkpoint: OSM states, token buffers, manager state,
/// shared hardware-layer state, statistics and scheduler counters.
///
/// Created by [`crate::Machine::checkpoint`]; consumed (any number of times)
/// by [`crate::Machine::restore`].
pub struct Checkpoint<S> {
    pub(crate) cycle: u64,
    pub(crate) age_counter: u64,
    pub(crate) last_transition_cycle: u64,
    pub(crate) last_completion_cycle: u64,
    pub(crate) stats: Stats,
    pub(crate) shared: S,
    pub(crate) osms: Vec<OsmCheckpoint>,
    pub(crate) managers: Vec<ManagerSnapshot>,
}

impl<S> Checkpoint<S> {
    /// The cycle at which this checkpoint was taken.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The captured shared hardware-layer state (borrowed; model crates
    /// encode it when serializing a checkpoint to bytes).
    pub fn shared(&self) -> &S {
        &self.shared
    }

    /// Number of OSMs captured.
    pub fn osm_count(&self) -> usize {
        self.osms.len()
    }

    /// Number of manager snapshots captured.
    pub fn manager_count(&self) -> usize {
        self.managers.len()
    }
}

// Manual impl: `S` need not be `Debug` and the payloads are opaque anyway.
impl<S> fmt::Debug for Checkpoint<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Checkpoint")
            .field("cycle", &self.cycle)
            .field("osms", &self.osms.len())
            .field("managers", &self.managers.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manager_snapshot_downcast_roundtrip() {
        let s = ManagerSnapshot::of(vec![1u64, 2, 3]);
        assert_eq!(s.downcast::<Vec<u64>>(), Some(&vec![1u64, 2, 3]));
        assert!(s.downcast::<String>().is_none());
        let clone = s.clone();
        assert_eq!(clone.downcast::<Vec<u64>>(), Some(&vec![1u64, 2, 3]));
    }

    #[test]
    fn behavior_snapshot_stateless_downcast_is_none() {
        assert!(BehaviorSnapshot::Stateless.downcast::<u32>().is_none());
        let s = BehaviorSnapshot::of(7u32);
        assert_eq!(s.downcast::<u32>(), Some(&7));
    }
}
