//! Deterministic fault injection for token managers.
//!
//! A [`FaultInjector`] wraps any installed [`TokenManager`] and perturbs the
//! Λ-primitive traffic flowing through it according to a seeded
//! [`FaultPlan`]: allocations and inquiries can be denied, releases deferred,
//! granted tokens dropped or corrupted, and whole cycle windows blackholed.
//!
//! Fault decisions are *stateless*: each one is a pure hash of the plan's
//! seed, the current cycle, the rule, the requesting OSM and the token
//! identifier. Two consequences the rest of the system leans on:
//!
//! * a faulty run is exactly reproducible from the seed (and stays so across
//!   checkpoint/restore — there is no stream position to lose);
//! * re-evaluating the same primitive within one cycle gives the same
//!   answer, which the director's idle-step wait-for-graph pass requires
//!   (it re-runs edge conditions assuming they are cycle-deterministic).
//!
//! The injector is *transparent* to concrete-type access: its
//! `as_any`/`as_any_mut` forward to the wrapped manager, so hardware-layer
//! code that downcasts (e.g. a clock hook poking an
//! [`crate::ExclusivePool`]) keeps working after wrapping. The flip side is
//! that the injector itself cannot be found by downcasting; keep the
//! [`FaultHandle`] returned at installation time to steer it.

use crate::ids::{ManagerId, OsmId};
use crate::manager::{ManagerTable, TokenManager};
use crate::snapshot::ManagerSnapshot;
use crate::token::{Token, TokenIdent};
use std::any::Any;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};

/// High bit marker distinguishing corrupted token raws from real ones.
///
/// Real raws are small resource indices, so a corrupted raw is guaranteed to
/// be out of range for every built-in manager — which is exactly the point:
/// a corrupted token is unusable until the run is restored from a
/// checkpoint.
const CORRUPT_MASK: u64 = 1 << 63;

/// The kinds of faults a [`FaultRule`] can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `prepare_allocate` returns `None` even if the manager would grant.
    DenyAllocate,
    /// `inquire` answers `false` even if the resource is available.
    DenyInquire,
    /// `prepare_release` refuses, keeping the token with its owner one or
    /// more extra cycles (models a stuck completion signal).
    DeferRelease,
    /// A granted token is silently aborted back into the manager and the
    /// requester sees a denial (models a lost grant message).
    DropToken,
    /// A granted token reaches the requester with a corrupted raw value; it
    /// can be squashed (discarded) but never cleanly released, so the owning
    /// OSM eventually wedges — the scenario checkpoint/restore recovers.
    CorruptToken,
    /// Deny every allocate and inquire, and defer every release, for the
    /// rule's window (models a module dropping off the interconnect).
    Blackhole,
}

/// One fault source: a kind, a firing probability and an optional
/// half-open cycle window `[start, end)` outside of which it is dormant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRule {
    /// What to inject.
    pub kind: FaultKind,
    /// Per-opportunity firing probability in `[0, 1]`; `1.0` fires on every
    /// opportunity inside the window.
    pub probability: f64,
    /// Active cycle window `[start, end)`, or `None` for always-active.
    pub window: Option<(u64, u64)>,
}

impl FaultRule {
    /// A rule active on every cycle.
    pub fn new(kind: FaultKind, probability: f64) -> Self {
        FaultRule {
            kind,
            probability,
            window: None,
        }
    }

    /// Restricts the rule to cycles `start..end`.
    pub fn between(mut self, start: u64, end: u64) -> Self {
        self.window = Some((start, end));
        self
    }

    fn active(&self, cycle: u64) -> bool {
        match self.window {
            None => true,
            Some((start, end)) => cycle >= start && cycle < end,
        }
    }
}

/// A seeded, reproducible collection of [`FaultRule`]s.
///
/// ```
/// use osm_core::FaultPlan;
/// let plan = FaultPlan::new(0xBAD5EED)
///     .deny_allocate(0.25)
///     .blackhole(100, 120);
/// assert_eq!(plan.rules().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan drawing randomness from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The plan's rules, in evaluation order.
    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }

    /// Adds an arbitrary rule.
    pub fn rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Denies allocations with probability `p`.
    pub fn deny_allocate(self, p: f64) -> Self {
        self.rule(FaultRule::new(FaultKind::DenyAllocate, p))
    }

    /// Denies inquiries with probability `p`.
    pub fn deny_inquire(self, p: f64) -> Self {
        self.rule(FaultRule::new(FaultKind::DenyInquire, p))
    }

    /// Defers releases with probability `p`.
    pub fn defer_release(self, p: f64) -> Self {
        self.rule(FaultRule::new(FaultKind::DeferRelease, p))
    }

    /// Drops granted tokens with probability `p`.
    pub fn drop_token(self, p: f64) -> Self {
        self.rule(FaultRule::new(FaultKind::DropToken, p))
    }

    /// Corrupts granted tokens with probability `p`.
    pub fn corrupt_token(self, p: f64) -> Self {
        self.rule(FaultRule::new(FaultKind::CorruptToken, p))
    }

    /// Blackholes the manager for cycles `start..end`.
    pub fn blackhole(self, start: u64, end: u64) -> Self {
        self.rule(FaultRule::new(FaultKind::Blackhole, 1.0).between(start, end))
    }
}

/// Counters of faults actually injected, readable through [`FaultHandle::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Allocations denied (including blackholed ones).
    pub denied_allocates: u64,
    /// Inquiries answered `false` by fiat (including blackholed ones).
    pub denied_inquires: u64,
    /// Releases refused (including blackholed ones).
    pub deferred_releases: u64,
    /// Granted tokens dropped.
    pub dropped_tokens: u64,
    /// Granted tokens corrupted.
    pub corrupted_tokens: u64,
}

impl FaultStats {
    /// Total number of injected faults.
    pub fn total(&self) -> u64 {
        self.denied_allocates
            + self.denied_inquires
            + self.deferred_releases
            + self.dropped_tokens
            + self.corrupted_tokens
    }
}

/// Shared operator-facing switchboard of one injector.
#[derive(Debug, Default)]
struct FaultControl {
    disabled: bool,
    stats: FaultStats,
}

/// Remote control for an installed [`FaultInjector`].
///
/// Obtain it with [`FaultInjector::handle`] *before* boxing the injector
/// into a [`ManagerTable`] (the injector's transparent downcasting makes it
/// unreachable afterwards). Cloning hands out another control to the same
/// injector. The handle is `Send`, so a machine with installed injectors can
/// move to a worker thread while its controls stay behind.
#[derive(Debug, Clone)]
pub struct FaultHandle {
    control: Arc<Mutex<FaultControl>>,
}

impl FaultHandle {
    /// Stops injecting faults (the wrapped manager becomes transparent).
    /// Models the operator repairing the faulty module before a restore.
    pub fn disable(&self) {
        self.control.lock().unwrap().disabled = true;
    }

    /// Resumes injecting faults.
    pub fn enable(&self) {
        self.control.lock().unwrap().disabled = false;
    }

    /// Whether the injector is currently active.
    pub fn is_enabled(&self) -> bool {
        !self.control.lock().unwrap().disabled
    }

    /// Snapshot of the injection counters.
    pub fn stats(&self) -> FaultStats {
        self.control.lock().unwrap().stats
    }
}

/// State captured by the injector's `snapshot_state` (alongside the wrapped
/// manager's own snapshot) so faulty runs stay reproducible across
/// checkpoint/restore.
struct InjectorState {
    cycle: u64,
    corrupt_map: Vec<(u64, u64)>,
    inner: ManagerSnapshot,
}

/// A [`TokenManager`] decorator injecting deterministic faults per a
/// [`FaultPlan`]. See the [module docs](self) for the full protocol.
pub struct FaultInjector {
    inner: Box<dyn TokenManager>,
    plan: FaultPlan,
    cycle: u64,
    control: Arc<Mutex<FaultControl>>,
    /// Corrupted-raw → real-raw translations for tokens currently in flight.
    corrupt_map: Vec<(u64, u64)>,
}

impl fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultInjector")
            .field("inner", &self.inner.name())
            .field("plan", &self.plan)
            .field("cycle", &self.cycle)
            .finish()
    }
}

impl FaultInjector {
    /// Wraps `inner`, deriving all fault decisions from `plan`'s seed.
    pub fn new(inner: Box<dyn TokenManager>, plan: FaultPlan) -> Self {
        FaultInjector {
            inner,
            plan,
            cycle: 0,
            control: Arc::new(Mutex::new(FaultControl::default())),
            corrupt_map: Vec::new(),
        }
    }

    /// The remote control for this injector. Call before installing the
    /// injector into a [`ManagerTable`].
    pub fn handle(&self) -> FaultHandle {
        FaultHandle {
            control: Arc::clone(&self.control),
        }
    }

    /// Convenience: wraps the manager registered under `id` in `managers`
    /// in-place and returns the new injector's handle.
    pub fn install(managers: &mut ManagerTable, id: ManagerId, plan: FaultPlan) -> FaultHandle {
        let mut handle = None;
        managers.wrap(id, |inner| {
            let injector = FaultInjector::new(inner, plan);
            handle = Some(injector.handle());
            Box::new(injector)
        });
        handle.expect("ManagerTable::wrap always invokes the wrapper")
    }

    /// Stateless per-decision hash (splitmix64 finalizer over the mixed
    /// inputs). Stable for a given (cycle, rule, osm, salt): re-asking the
    /// same question in the same cycle gets the same answer.
    fn decision_hash(&self, rule_idx: usize, osm: OsmId, salt: u64) -> u64 {
        let mut z = self
            .plan
            .seed
            .wrapping_add(self.cycle.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((rule_idx as u64).wrapping_mul(0xD1B5_4A32_D192_ED03))
            .wrapping_add((u64::from(osm.0)).wrapping_mul(0x8CB9_2BA7_2F3D_8DD7))
            .wrapping_add(salt.rotate_left(32));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Does any active rule of `kind` fire for this (osm, salt) opportunity
    /// this cycle? `salt` is the token identifier (or granted raw) so
    /// distinct resources fault independently.
    fn fires(&self, kind: FaultKind, osm: OsmId, salt: u64) -> bool {
        if self.control.lock().unwrap().disabled {
            return false;
        }
        self.plan.rules.iter().enumerate().any(|(idx, rule)| {
            rule.kind == kind
                && rule.active(self.cycle)
                && (rule.probability >= 1.0
                    || (rule.probability > 0.0
                        // 53 uniform bits → [0, 1).
                        && ((self.decision_hash(idx, osm, salt) >> 11) as f64)
                            * (1.0 / 9_007_199_254_740_992.0)
                            < rule.probability))
        })
    }

    fn blackholed(&self, osm: OsmId, salt: u64) -> bool {
        self.fires(FaultKind::Blackhole, osm, salt)
    }

    fn stats_mut(&self) -> MutexGuard<'_, FaultControl> {
        self.control.lock().unwrap()
    }

    /// Translates a possibly-corrupted raw back to the real one the inner
    /// manager minted. Returns the input unchanged when unknown.
    fn real_raw(&self, raw: u64) -> u64 {
        if raw & CORRUPT_MASK == 0 {
            return raw;
        }
        self.corrupt_map
            .iter()
            .find(|(c, _)| *c == raw)
            .map_or(raw, |&(_, r)| r)
    }

    fn forget_corrupt(&mut self, raw: u64) {
        if raw & CORRUPT_MASK != 0 {
            self.corrupt_map.retain(|(c, _)| *c != raw);
        }
    }
}

impl TokenManager for FaultInjector {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn attach(&mut self, id: ManagerId) {
        self.inner.attach(id);
    }

    fn prepare_allocate(&mut self, osm: OsmId, ident: TokenIdent) -> Option<Token> {
        if self.blackholed(osm, ident.0) || self.fires(FaultKind::DenyAllocate, osm, ident.0) {
            self.stats_mut().stats.denied_allocates += 1;
            return None;
        }
        let token = self.inner.prepare_allocate(osm, ident)?;
        if self.fires(FaultKind::DropToken, osm, token.raw) {
            // The grant is lost in transit: put it straight back and report
            // a denial. The inner manager sees a legal prepare/abort pair.
            self.inner.abort_allocate(osm, token);
            self.stats_mut().stats.dropped_tokens += 1;
            return None;
        }
        if self.fires(FaultKind::CorruptToken, osm, token.raw) {
            let corrupted = token.raw | CORRUPT_MASK;
            self.corrupt_map.push((corrupted, token.raw));
            self.stats_mut().stats.corrupted_tokens += 1;
            return Some(Token::new(token.manager, corrupted));
        }
        Some(token)
    }

    fn inquire(&self, osm: OsmId, ident: TokenIdent) -> bool {
        if self.blackholed(osm, ident.0) || self.fires(FaultKind::DenyInquire, osm, ident.0) {
            self.stats_mut().stats.denied_inquires += 1;
            return false;
        }
        self.inner.inquire(osm, ident)
    }

    fn prepare_release(&mut self, osm: OsmId, token: Token) -> bool {
        if self.blackholed(osm, token.raw) || self.fires(FaultKind::DeferRelease, osm, token.raw) {
            self.stats_mut().stats.deferred_releases += 1;
            return false;
        }
        // Deliberately NOT translated: a corrupted token cannot be cleanly
        // released — the inner manager rejects the out-of-range raw, the
        // owning OSM stalls, and the watchdog/audit surface the damage.
        self.inner.prepare_release(osm, token)
    }

    fn commit_allocate(&mut self, osm: OsmId, token: Token) {
        // Translated: the inner manager must record its own raw as owned so
        // it stays coherent (and squashes keep working) while the OSM holds
        // the corrupted alias.
        let raw = self.real_raw(token.raw);
        self.inner.commit_allocate(osm, Token::new(token.manager, raw));
    }

    fn abort_allocate(&mut self, osm: OsmId, token: Token) {
        let raw = self.real_raw(token.raw);
        self.inner.abort_allocate(osm, Token::new(token.manager, raw));
        self.forget_corrupt(token.raw);
    }

    fn commit_release(&mut self, osm: OsmId, token: Token) {
        self.inner.commit_release(osm, token);
    }

    fn abort_release(&mut self, osm: OsmId, token: Token) {
        self.inner.abort_release(osm, token);
    }

    fn discard(&mut self, osm: OsmId, token: Token) {
        let raw = self.real_raw(token.raw);
        self.inner.discard(osm, Token::new(token.manager, raw));
        self.forget_corrupt(token.raw);
    }

    fn owner_of(&self, ident: TokenIdent) -> Option<OsmId> {
        self.inner.owner_of(ident)
    }

    fn clock(&mut self, cycle: u64) -> bool {
        self.cycle = cycle;
        let _ = self.inner.clock(cycle);
        // Fault decisions are a function of the cycle, so the injector's
        // observable behavior can change on every clock edge regardless of
        // the wrapped manager: always dirty, or sensitivity scheduling would
        // let blocked OSMs sleep through an injected grant/deny flip.
        true
    }

    fn owned_tokens(&self) -> Option<Vec<(Token, OsmId)>> {
        self.inner.owned_tokens()
    }

    fn snapshot_state(&self) -> Option<ManagerSnapshot> {
        let inner = self.inner.snapshot_state()?;
        Some(ManagerSnapshot::of(InjectorState {
            cycle: self.cycle,
            corrupt_map: self.corrupt_map.clone(),
            inner,
        }))
    }

    fn restore_state(&mut self, snap: &ManagerSnapshot) -> bool {
        let Some(state) = snap.downcast::<InjectorState>() else {
            return false;
        };
        if !self.inner.restore_state(&state.inner) {
            return false;
        }
        self.cycle = state.cycle;
        self.corrupt_map = state.corrupt_map.clone();
        // Operator state (enabled flag, fault counters) is intentionally NOT
        // restored: disabling faults then restoring must not re-arm them.
        true
    }

    fn encode_snapshot(&self, snap: &ManagerSnapshot) -> Option<Vec<u8>> {
        let state = snap.downcast::<InjectorState>()?;
        let inner = self.inner.encode_snapshot(&state.inner)?;
        let mut w = crate::persist::ByteWriter::new();
        w.put_u8(b'F');
        w.put_u64(state.cycle);
        w.put_u32(state.corrupt_map.len() as u32);
        for &(corrupted, real) in &state.corrupt_map {
            w.put_u64(corrupted);
            w.put_u64(real);
        }
        w.put_bytes(&inner);
        Some(w.into_bytes())
    }

    fn decode_snapshot(&self, bytes: &[u8]) -> Option<ManagerSnapshot> {
        let mut r = crate::persist::ByteReader::new(bytes);
        if r.take_u8()? != b'F' {
            return None;
        }
        let cycle = r.take_u64()?;
        let n = r.take_u32()? as usize;
        let mut corrupt_map = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let corrupted = r.take_u64()?;
            let real = r.take_u64()?;
            corrupt_map.push((corrupted, real));
        }
        let inner = self.inner.decode_snapshot(r.take_bytes()?)?;
        r.is_done().then(|| {
            ManagerSnapshot::of(InjectorState {
                cycle,
                corrupt_map,
                inner,
            })
        })
    }

    // Transparent on purpose: hardware-layer clock hooks downcast managers
    // to concrete types; wrapping must not break them. The injector itself
    // is steered through its FaultHandle instead.
    fn as_any(&self) -> &dyn Any {
        self.inner.as_any()
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self.inner.as_any_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pools::ExclusivePool;

    fn wrapped_pool(plan: FaultPlan) -> (FaultInjector, FaultHandle) {
        let mut pool = ExclusivePool::new("pool", 2);
        pool.attach(ManagerId(0));
        let injector = FaultInjector::new(Box::new(pool), plan);
        let handle = injector.handle();
        (injector, handle)
    }

    #[test]
    fn passthrough_when_no_rules() {
        let (mut inj, handle) = wrapped_pool(FaultPlan::new(1));
        let t = inj.prepare_allocate(OsmId(0), TokenIdent::ANY).unwrap();
        inj.commit_allocate(OsmId(0), t);
        assert!(inj.prepare_release(OsmId(0), t));
        inj.commit_release(OsmId(0), t);
        assert_eq!(handle.stats().total(), 0);
    }

    #[test]
    fn deny_allocate_always_fires_at_p1() {
        let (mut inj, handle) = wrapped_pool(FaultPlan::new(2).deny_allocate(1.0));
        assert!(inj.prepare_allocate(OsmId(0), TokenIdent::ANY).is_none());
        assert_eq!(handle.stats().denied_allocates, 1);
        handle.disable();
        assert!(inj.prepare_allocate(OsmId(0), TokenIdent::ANY).is_some());
        assert_eq!(handle.stats().denied_allocates, 1);
    }

    #[test]
    fn blackhole_window_is_half_open() {
        let (mut inj, handle) = wrapped_pool(FaultPlan::new(3).blackhole(5, 7));
        inj.clock(4);
        assert!(inj.inquire(OsmId(0), TokenIdent::ANY));
        inj.clock(5);
        assert!(!inj.inquire(OsmId(0), TokenIdent::ANY));
        inj.clock(6);
        assert!(!inj.inquire(OsmId(0), TokenIdent::ANY));
        inj.clock(7);
        assert!(inj.inquire(OsmId(0), TokenIdent::ANY));
        assert_eq!(handle.stats().denied_inquires, 2);
    }

    #[test]
    fn corrupt_token_translates_on_discard_but_not_release() {
        let (mut inj, handle) = wrapped_pool(FaultPlan::new(4).corrupt_token(1.0));
        let t = inj.prepare_allocate(OsmId(0), TokenIdent::ANY).unwrap();
        assert_ne!(t.raw & CORRUPT_MASK, 0, "raw should carry corruption marker");
        inj.commit_allocate(OsmId(0), t);
        assert_eq!(handle.stats().corrupted_tokens, 1);
        // Inner pool recorded the REAL raw as owned.
        assert_eq!(
            inj.owned_tokens().unwrap(),
            vec![(Token::new(ManagerId(0), t.raw & !CORRUPT_MASK), OsmId(0))]
        );
        // A corrupted token cannot be released...
        assert!(!inj.prepare_release(OsmId(0), t));
        // ...but a squash-style discard frees the real slot.
        inj.discard(OsmId(0), t);
        assert_eq!(inj.owned_tokens().unwrap(), vec![]);
    }

    #[test]
    fn drop_token_leaves_inner_coherent() {
        let (mut inj, handle) = wrapped_pool(FaultPlan::new(5).drop_token(1.0));
        assert!(inj.prepare_allocate(OsmId(0), TokenIdent::ANY).is_none());
        assert_eq!(handle.stats().dropped_tokens, 1);
        handle.disable();
        // Both slots still available: the dropped grant was aborted back.
        let a = inj.prepare_allocate(OsmId(0), TokenIdent::ANY).unwrap();
        inj.commit_allocate(OsmId(0), a);
        let b = inj.prepare_allocate(OsmId(1), TokenIdent::ANY).unwrap();
        inj.commit_allocate(OsmId(1), b);
        assert_eq!(inj.owned_tokens().unwrap().len(), 2);
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let run = || {
            let (mut inj, _) = wrapped_pool(FaultPlan::new(42).deny_allocate(0.5));
            (0..64)
                .map(|i| {
                    inj.clock(i);
                    match inj.prepare_allocate(OsmId(0), TokenIdent::ANY) {
                        Some(t) => {
                            inj.abort_allocate(OsmId(0), t);
                            true
                        }
                        None => false,
                    }
                })
                .collect::<Vec<bool>>()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.iter().any(|g| *g) && a.iter().any(|g| !*g));
    }

    #[test]
    fn decisions_are_stable_within_a_cycle() {
        // The director's idle-step wait-for-graph pass re-evaluates edge
        // conditions within one cycle and requires identical answers.
        let (mut inj, _) = wrapped_pool(FaultPlan::new(11).deny_inquire(0.5));
        for cycle in 0..32 {
            inj.clock(cycle);
            let first = inj.inquire(OsmId(3), TokenIdent(1));
            for _ in 0..4 {
                assert_eq!(inj.inquire(OsmId(3), TokenIdent(1)), first);
            }
        }
    }

    #[test]
    fn snapshot_restore_replays_fault_stream() {
        let (mut inj, _) = wrapped_pool(FaultPlan::new(9).deny_allocate(0.5));
        for i in 0..10 {
            inj.clock(i);
            if let Some(t) = inj.prepare_allocate(OsmId(0), TokenIdent::ANY) {
                inj.abort_allocate(OsmId(0), t);
            }
        }
        let snap = inj.snapshot_state().unwrap();
        let tail = |inj: &mut FaultInjector| {
            (10..26)
                .map(|cycle| {
                    inj.clock(cycle);
                    match inj.prepare_allocate(OsmId(0), TokenIdent::ANY) {
                        Some(t) => {
                            inj.abort_allocate(OsmId(0), t);
                            true
                        }
                        None => false,
                    }
                })
                .collect::<Vec<bool>>()
        };
        let first = tail(&mut inj);
        assert!(inj.restore_state(&snap));
        assert_eq!(first, tail(&mut inj));
        assert!(first.iter().any(|g| *g) && first.iter().any(|g| !*g));
    }
}
