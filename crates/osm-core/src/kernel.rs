//! The discrete-event simulation kernel of paper Fig. 4.
//!
//! The OSM model of computation is embedded inside a DE scheduler: hardware
//! modules exchange events during the interval between control steps, and at
//! every clock edge the director's control step runs *in zero DE time* (it
//! introduces no events of its own). The case studies use the cycle-driven
//! specialization ([`crate::Machine::step`] in a loop); this kernel provides
//! the general event-queue form for hardware layers that need sub-cycle
//! event communication.

use crate::error::ModelError;
use crate::machine::{HardwareLayer, Machine};
use std::collections::BinaryHeap;

/// A user event: runs at its timestamp with access to the machine and the
/// scheduler (to post follow-up events).
pub type EventFn<S> = Box<dyn FnOnce(&mut Machine<S>, &mut EventScheduler<S>)>;

/// Handle through which a running event posts follow-up events.
pub struct EventScheduler<S> {
    now: u64,
    posted: Vec<(u64, EventFn<S>)>,
}

impl<S> EventScheduler<S> {
    /// Current simulation time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Posts `event` to run at absolute `time`.
    ///
    /// # Panics
    /// Panics if `time` is in the past.
    pub fn post(&mut self, time: u64, event: EventFn<S>) {
        assert!(time >= self.now, "cannot post event into the past");
        self.posted.push((time, event));
    }

    /// Posts `event` to run `delay` time units from now.
    pub fn post_in(&mut self, delay: u64, event: EventFn<S>) {
        let at = self.now + delay;
        self.posted.push((at, event));
    }
}

impl<S> std::fmt::Debug for EventScheduler<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventScheduler")
            .field("now", &self.now)
            .field("posted", &self.posted.len())
            .finish()
    }
}

enum EventKind<S> {
    /// A clock edge: run the hardware hooks + one OSM control step.
    Clock,
    User(EventFn<S>),
}

struct Entry<S> {
    time: u64,
    /// User events at a timestamp run before the clock edge at the same
    /// timestamp, so all hardware activity of the cycle is visible to the
    /// control step.
    order: u8,
    seq: u64,
    kind: EventKind<S>,
}

impl<S> Entry<S> {
    fn key(&self) -> (u64, u8, u64) {
        (self.time, self.order, self.seq)
    }
}

impl<S> PartialEq for Entry<S> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<S> Eq for Entry<S> {}
impl<S> PartialOrd for Entry<S> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<S> Ord for Entry<S> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first order.
        other.key().cmp(&self.key())
    }
}

/// The Fig. 4 kernel: an event queue with regular clock events driving OSM
/// control steps.
///
/// ```
/// use osm_core::{DeKernel, HardwareLayer, Machine};
///
/// #[derive(Debug, Default)]
/// struct Counter(u64);
/// impl HardwareLayer for Counter {}
///
/// # fn main() -> Result<(), osm_core::ModelError> {
/// let machine: Machine<Counter> = Machine::new(Counter::default());
/// let mut kernel = DeKernel::new(machine, 1);
/// kernel.post(0, Box::new(|m, _| m.shared.0 += 1));
/// kernel.run_cycles(3)?;
/// assert_eq!(kernel.machine().shared.0, 1);
/// assert_eq!(kernel.machine().cycle(), 3);
/// # Ok(())
/// # }
/// ```
pub struct DeKernel<S: HardwareLayer + 'static> {
    machine: Machine<S>,
    queue: BinaryHeap<Entry<S>>,
    interval: u64,
    now: u64,
    seq: u64,
}

impl<S: HardwareLayer + std::fmt::Debug + 'static> std::fmt::Debug for DeKernel<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeKernel")
            .field("now", &self.now)
            .field("interval", &self.interval)
            .field("queued", &self.queue.len())
            .finish()
    }
}

impl<S: HardwareLayer + 'static> DeKernel<S> {
    /// Wraps `machine`, with clock edges every `interval` time units.
    ///
    /// # Panics
    /// Panics if `interval` is zero.
    pub fn new(machine: Machine<S>, interval: u64) -> Self {
        assert!(interval > 0, "clock interval must be positive");
        DeKernel {
            machine,
            queue: BinaryHeap::new(),
            interval,
            now: 0,
            seq: 0,
        }
    }

    /// The wrapped machine.
    pub fn machine(&self) -> &Machine<S> {
        &self.machine
    }

    /// Mutable access to the wrapped machine.
    pub fn machine_mut(&mut self) -> &mut Machine<S> {
        &mut self.machine
    }

    /// Unwraps the kernel, returning the machine.
    pub fn into_machine(self) -> Machine<S> {
        self.machine
    }

    /// Current simulation time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Posts a user event at absolute `time`.
    ///
    /// # Panics
    /// Panics if `time` is in the past.
    pub fn post(&mut self, time: u64, event: EventFn<S>) {
        assert!(time >= self.now, "cannot post event into the past");
        self.seq += 1;
        self.queue.push(Entry {
            time,
            order: 0,
            seq: self.seq,
            kind: EventKind::User(event),
        });
    }

    fn post_clock(&mut self, time: u64) {
        self.seq += 1;
        self.queue.push(Entry {
            time,
            order: 1,
            seq: self.seq,
            kind: EventKind::Clock,
        });
    }

    /// Processes events until `cycles` clock edges have fired (Fig. 4 loop).
    ///
    /// # Errors
    /// Propagates [`ModelError`] from the control steps.
    pub fn run_cycles(&mut self, cycles: u64) -> Result<(), ModelError> {
        if cycles == 0 {
            return Ok(());
        }
        let mut fired = 0;
        // `nextedge = now; insert clock_event(nextedge)` — Fig. 4 prologue.
        self.post_clock(self.now);
        while let Some(entry) = self.queue.pop() {
            self.now = entry.time;
            match entry.kind {
                EventKind::Clock => {
                    // The control step finishes in zero DE time and posts no
                    // events of its own.
                    self.machine.step()?;
                    fired += 1;
                    if fired == cycles {
                        // Leave remaining (future) user events queued.
                        self.now += 1;
                        return Ok(());
                    }
                    self.post_clock(self.now + self.interval);
                }
                EventKind::User(f) => {
                    let mut sched = EventScheduler {
                        now: self.now,
                        posted: Vec::new(),
                    };
                    f(&mut self.machine, &mut sched);
                    for (time, ev) in sched.posted {
                        self.post(time, ev);
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Default)]
    struct Log(Vec<u64>);
    impl HardwareLayer for Log {}

    #[test]
    fn clock_edges_drive_machine_cycles() {
        let m: Machine<Log> = Machine::new(Log::default());
        let mut k = DeKernel::new(m, 10);
        k.run_cycles(5).unwrap();
        assert_eq!(k.machine().cycle(), 5);
        assert_eq!(k.now(), 41); // edges at 0,10,20,30,40 then +1
    }

    #[test]
    fn user_events_run_in_time_order_before_same_time_clock() {
        let m: Machine<Log> = Machine::new(Log::default());
        let mut k = DeKernel::new(m, 10);
        k.post(10, Box::new(|m, _| m.shared.0.push(10)));
        k.post(5, Box::new(|m, _| m.shared.0.push(5)));
        k.run_cycles(2).unwrap();
        // Order: clock@0, user@5, user@10 (before clock@10).
        assert_eq!(k.machine().shared.0, vec![5, 10]);
    }

    #[test]
    fn events_can_post_followups() {
        let m: Machine<Log> = Machine::new(Log::default());
        let mut k = DeKernel::new(m, 100);
        k.post(
            1,
            Box::new(|m, sched| {
                m.shared.0.push(1);
                sched.post_in(2, Box::new(|m, _| m.shared.0.push(3)));
            }),
        );
        k.run_cycles(2).unwrap();
        assert_eq!(k.machine().shared.0, vec![1, 3]);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn posting_into_the_past_panics() {
        let m: Machine<()> = Machine::new(());
        let mut k = DeKernel::new(m, 1);
        k.run_cycles(3).unwrap();
        k.post(0, Box::new(|_, _| {}));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        let m: Machine<()> = Machine::new(());
        let _ = DeKernel::new(m, 0);
    }

    #[test]
    fn zero_cycles_is_a_no_op() {
        let m: Machine<()> = Machine::new(());
        let mut k = DeKernel::new(m, 1);
        k.run_cycles(0).unwrap();
        assert_eq!(k.machine().cycle(), 0);
    }
}
