//! Transition tracing, used for model validation and determinism tests.

use crate::ids::{EdgeId, OsmId, StateId};
use std::fmt;

/// One committed state transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Control step at which the transition committed.
    pub cycle: u64,
    /// The transitioning OSM.
    pub osm: OsmId,
    /// The committed edge.
    pub edge: EdgeId,
    /// Source state.
    pub from: StateId,
    /// Destination state.
    pub to: StateId,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "@{} {} {}: {} -> {}",
            self.cycle, self.osm, self.edge, self.from, self.to
        )
    }
}

/// An ordered record of every committed transition of a machine run.
///
/// The order of events within one control step reflects the director's
/// (deterministic) scheduling order, so two traces with equal digests imply
/// behaviourally identical runs.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn push(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// All recorded events, in commit order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// FNV-1a digest over the full event stream; equal digests mean equal
    /// traces (up to hash collision), handy for determinism property tests.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x1000_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        for e in &self.events {
            mix(e.cycle);
            mix(e.osm.0 as u64);
            mix(e.edge.0 as u64);
            mix(e.from.0 as u64);
            mix(e.to.0 as u64);
        }
        h
    }

    /// Events of one control step.
    pub fn step(&self, cycle: u64) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.cycle == cycle)
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.events {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, osm: u32) -> TraceEvent {
        TraceEvent {
            cycle,
            osm: OsmId(osm),
            edge: EdgeId(0),
            from: StateId(0),
            to: StateId(1),
        }
    }

    #[test]
    fn digest_distinguishes_traces() {
        let mut a = Trace::new();
        a.push(ev(0, 0));
        let mut b = Trace::new();
        b.push(ev(0, 1));
        assert_ne!(a.digest(), b.digest());
        let mut c = Trace::new();
        c.push(ev(0, 0));
        assert_eq!(a.digest(), c.digest());
        assert_ne!(Trace::new().digest(), a.digest());
    }

    #[test]
    fn step_filters_by_cycle() {
        let mut t = Trace::new();
        t.push(ev(0, 0));
        t.push(ev(1, 1));
        t.push(ev(1, 2));
        assert_eq!(t.step(1).count(), 2);
        assert_eq!(t.step(0).count(), 1);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn display_one_line_per_event() {
        let mut t = Trace::new();
        t.push(ev(3, 7));
        assert_eq!(t.to_string(), "@3 osm7 e0: s0 -> s1\n");
    }
}
