//! Transition tracing, used for model validation and determinism tests.

use crate::ids::{EdgeId, OsmId, StateId};
use std::fmt;

/// One committed state transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Control step at which the transition committed.
    pub cycle: u64,
    /// The transitioning OSM.
    pub osm: OsmId,
    /// The committed edge.
    pub edge: EdgeId,
    /// Source state.
    pub from: StateId,
    /// Destination state.
    pub to: StateId,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "@{} {} {}: {} -> {}",
            self.cycle, self.osm, self.edge, self.from, self.to
        )
    }
}

/// What a [`Trace`] retains of the events pushed into it.
///
/// The digest covers *every* pushed event in all modes (it is maintained
/// incrementally), so determinism tests comparing [`Trace::digest`] work
/// identically whether the run kept all events, a recent window, or none.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// Keep every event (O(run-length) memory).
    #[default]
    Full,
    /// Keep only the most recent N events (flight-recorder ring).
    Ring(usize),
    /// Keep no events, only the running digest and count.
    DigestOnly,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// An ordered record of every committed transition of a machine run.
///
/// The order of events within one control step reflects the director's
/// (deterministic) scheduling order, so two traces with equal digests imply
/// behaviourally identical runs.
///
/// By default all events are retained; [`Trace::with_capacity`] keeps only
/// the most recent window and [`Trace::digest_only`] keeps none — both still
/// maintain the same running [`Trace::digest`] as a full trace of the same
/// run, so long-run determinism checks need O(1) memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
    mode: TraceMode,
    /// Ring write index (oldest retained event once the ring has wrapped).
    next: usize,
    /// Events ever pushed (retained + dropped).
    total: u64,
    /// Running FNV-1a over every pushed event.
    hash: u64,
}

impl Default for Trace {
    fn default() -> Self {
        Self::with_mode(TraceMode::Full)
    }
}

impl Trace {
    /// Creates an empty trace retaining every event.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty trace with the given retention mode.
    pub fn with_mode(mode: TraceMode) -> Self {
        Trace {
            events: Vec::new(),
            mode: match mode {
                TraceMode::Ring(cap) => TraceMode::Ring(cap.max(1)),
                other => other,
            },
            next: 0,
            total: 0,
            hash: FNV_OFFSET,
        }
    }

    /// Creates an empty ring trace retaining the most recent `capacity`
    /// events.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_mode(TraceMode::Ring(capacity))
    }

    /// Creates an empty digest-only trace (no events retained).
    pub fn digest_only() -> Self {
        Self::with_mode(TraceMode::DigestOnly)
    }

    /// Creates a digest-only trace that *continues* an earlier trace:
    /// `total` events have already been folded into running digest `hash`
    /// (both read off the earlier trace via [`Trace::digest`] and
    /// [`Trace::total`]). A run restored from an on-disk checkpoint seeds
    /// its trace this way so the continuation's final digest equals an
    /// uninterrupted run's.
    pub fn digest_only_resumed(hash: u64, total: u64) -> Self {
        Trace {
            events: Vec::new(),
            mode: TraceMode::DigestOnly,
            next: 0,
            total,
            hash,
        }
    }

    /// The retention mode.
    pub fn mode(&self) -> TraceMode {
        self.mode
    }

    /// Appends an event (folding it into the running digest).
    pub fn push(&mut self, ev: TraceEvent) {
        self.total += 1;
        let mut h = self.hash;
        for v in [
            ev.cycle,
            ev.osm.0 as u64,
            ev.edge.0 as u64,
            ev.from.0 as u64,
            ev.to.0 as u64,
        ] {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        }
        self.hash = h;
        match self.mode {
            TraceMode::Full => self.events.push(ev),
            TraceMode::Ring(cap) => {
                if self.events.len() == cap {
                    self.events[self.next] = ev;
                    self.next = (self.next + 1) % cap;
                } else {
                    self.events.push(ev);
                }
            }
            TraceMode::DigestOnly => {}
        }
    }

    /// Retained events in commit order (oldest first). In
    /// [`TraceMode::DigestOnly`] this is always empty; in ring mode it is
    /// the most recent window.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        let (tail, head) = self.events.split_at(self.next);
        head.iter().chain(tail.iter())
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total number of events ever recorded (retained + dropped).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of events dropped out of the retention window.
    pub fn dropped(&self) -> u64 {
        self.total - self.events.len() as u64
    }

    /// FNV-1a digest over the *full* pushed event stream (independent of the
    /// retention mode); equal digests mean equal traces (up to hash
    /// collision), handy for determinism property tests.
    pub fn digest(&self) -> u64 {
        self.hash
    }

    /// Retained events of one control step.
    pub fn step(&self, cycle: u64) -> impl Iterator<Item = &TraceEvent> {
        self.events().filter(move |e| e.cycle == cycle)
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in self.events() {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, osm: u32) -> TraceEvent {
        TraceEvent {
            cycle,
            osm: OsmId(osm),
            edge: EdgeId(0),
            from: StateId(0),
            to: StateId(1),
        }
    }

    #[test]
    fn digest_distinguishes_traces() {
        let mut a = Trace::new();
        a.push(ev(0, 0));
        let mut b = Trace::new();
        b.push(ev(0, 1));
        assert_ne!(a.digest(), b.digest());
        let mut c = Trace::new();
        c.push(ev(0, 0));
        assert_eq!(a.digest(), c.digest());
        assert_ne!(Trace::new().digest(), a.digest());
    }

    #[test]
    fn step_filters_by_cycle() {
        let mut t = Trace::new();
        t.push(ev(0, 0));
        t.push(ev(1, 1));
        t.push(ev(1, 2));
        assert_eq!(t.step(1).count(), 2);
        assert_eq!(t.step(0).count(), 1);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn display_one_line_per_event() {
        let mut t = Trace::new();
        t.push(ev(3, 7));
        assert_eq!(t.to_string(), "@3 osm7 e0: s0 -> s1\n");
    }

    #[test]
    fn ring_mode_keeps_recent_window_and_full_digest() {
        let mut full = Trace::new();
        let mut ring = Trace::with_capacity(3);
        for c in 0..7 {
            full.push(ev(c, c as u32));
            ring.push(ev(c, c as u32));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total(), 7);
        assert_eq!(ring.dropped(), 4);
        let cycles: Vec<u64> = ring.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![4, 5, 6]);
        // The digest is over the full stream, not the retained window.
        assert_eq!(ring.digest(), full.digest());
    }

    #[test]
    fn resumed_digest_continues_mid_stream() {
        let mut full = Trace::digest_only();
        for c in 0..6 {
            full.push(ev(c, 1));
        }
        let mut head = Trace::digest_only();
        for c in 0..3 {
            head.push(ev(c, 1));
        }
        let mut tail = Trace::digest_only_resumed(head.digest(), head.total());
        for c in 3..6 {
            tail.push(ev(c, 1));
        }
        assert_eq!(tail.digest(), full.digest());
        assert_eq!(tail.total(), full.total());
    }

    #[test]
    fn digest_only_mode_retains_nothing_but_digests_everything() {
        let mut full = Trace::new();
        let mut d = Trace::digest_only();
        for c in 0..5 {
            full.push(ev(c, 1));
            d.push(ev(c, 1));
        }
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert_eq!(d.total(), 5);
        assert_eq!(d.digest(), full.digest());
        assert_eq!(d.mode(), TraceMode::DigestOnly);
    }
}
