//! # osm-core — the Operation State Machine microprocessor modeling formalism
//!
//! A from-scratch implementation of the OSM computation model from
//! *"Flexible and Formal Modeling of Microprocessors with Application to
//! Retargetable Simulation"* (Qin & Malik, DATE 2003).
//!
//! The model separates a microprocessor into two interacting layers:
//!
//! * the **operation layer**, where every in-flight machine operation is a
//!   state machine (an *OSM*) whose states are execution steps and whose
//!   edges carry guard conditions — conjunctions of token-transaction
//!   primitives from the Λ language (`allocate`, `inquire`, `release`,
//!   `discard`);
//! * the **hardware layer**, where disciplined hardware units interact under
//!   a discrete-event model of computation, and units that interface with
//!   operations implement the *token manager interface* ([`TokenManager`]).
//!
//! A [`Machine`] owns both layers plus the *director*, which ranks the OSMs
//! at every control step and runs the paper's sequential scheduling
//! algorithm (Fig. 3). Control steps embed into discrete-event time at clock
//! edges through [`DeKernel`] (Fig. 4) or the cycle-driven [`Machine::step`].
//!
//! ## Modeling a pipeline in four idioms (paper §4)
//!
//! * **Structure hazard** — each stage is an [`ExclusivePool`] with one
//!   occupancy token; two operations cannot hold it at once.
//! * **Data hazard** — a [`RegScoreboard`] grants *register-update* tokens
//!   to writers; readers' `inquire`s on the value token fail until release.
//! * **Variable latency** — the stage pool *refuses the release* of its
//!   token ([`ExclusivePool::block_release`]) until e.g. a cache miss
//!   resolves.
//! * **Control hazard** — a [`ResetManager`] accepts inquiries only from
//!   OSMs armed for squash, enabling high-priority reset edges that discard
//!   all tokens.
//!
//! ## Example
//!
//! ```
//! use osm_core::{Machine, SpecBuilder, ExclusivePool, IdentExpr, InertBehavior};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut machine: Machine<()> = Machine::new(());
//! let fetch = machine.add_manager(ExclusivePool::new("fetch", 1));
//! let decode = machine.add_manager(ExclusivePool::new("decode", 1));
//!
//! let mut b = SpecBuilder::new("op");
//! let i = b.state("I");
//! let f = b.state("F");
//! let d = b.state("D");
//! b.initial(i);
//! b.edge(i, f).allocate(fetch, IdentExpr::Const(0));
//! b.edge(f, d)
//!     .release(fetch, IdentExpr::AnyHeld)
//!     .allocate(decode, IdentExpr::Const(0));
//! b.edge(d, i).release(decode, IdentExpr::AnyHeld);
//! let spec = b.build()?;
//!
//! // Two in-flight operations compete for the stages.
//! machine.add_osm(&spec, InertBehavior);
//! machine.add_osm(&spec, InertBehavior);
//! machine.run(4)?;
//! assert_eq!(machine.stats.transitions, 7);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod director;
mod error;
pub mod export;
mod extract;
mod fault;
mod ids;
mod kernel;
mod machine;
mod manager;
pub mod observe;
mod osm;
pub mod persist;
mod pools;
mod snapshot;
mod spec;
mod stats;
mod token;
mod trace;
mod verify;

pub use director::{AgeRanker, FnRanker, Ranker, RestartPolicy, SchedulerMode, StepOutcome};
pub use error::{BlockedOsm, ModelError, SpecError, StallKind, StallReport, WaitCause};
pub use fault::{FaultHandle, FaultInjector, FaultKind, FaultPlan, FaultRule, FaultStats};
pub use extract::{
    enumerate_paths, inquire_step, release_step, reservation_table, OperationPath,
    ReservationTable,
};
pub use ids::{EdgeId, ManagerId, OsmId, SlotId, StateId};
pub use kernel::{DeKernel, EventFn, EventScheduler};
pub use machine::{HardwareLayer, Machine, CHECKPOINT_MAGIC, CHECKPOINT_VERSION};
pub use persist::{ByteReader, ByteWriter};
pub use manager::{ManagerTable, TokenManager};
pub use observe::{
    EventLog, ManagerUtilization, MetricsCollector, MetricsReport, ObservedEvent, Observer,
    OsmStallCause, StallCause, StallEvent, StallHistogram, StallTracker, StateOccupancy,
    TokenEvent, TokenOpKind, TokenOutcome, TraceSink, TransitionEvent,
};
pub use osm::{set_slot, Behavior, InertBehavior, Osm, OsmView, TransitionCtx, IDLE_AGE};
pub use pools::{CountingPool, ExclusivePool, RegScoreboard, ResetManager};
pub use snapshot::{BehaviorSnapshot, Checkpoint, ManagerSnapshot, Snapshot};
pub use spec::{Edge, EdgeHandle, SpecBuilder, StateMachineSpec};
pub use stats::Stats;
pub use token::{HeldToken, IdentExpr, Primitive, Token, TokenIdent};
pub use trace::{Trace, TraceEvent, TraceMode};
pub use verify::{verify_spec, SpecIssue};
