//! The token manager interface (TMI) and the manager table.
//!
//! Each hardware module that interacts with operations implements
//! [`TokenManager`], the Rust rendering of the paper's TMI (§4). Because an
//! edge condition is a conjunction whose primitives must succeed and commit
//! *simultaneously*, the interface is two-phase: `prepare_*` tentatively
//! applies a transaction (so that later primitives of the same condition
//! observe it), and the director then either `commit_*`s or `abort_*`s every
//! prepared transaction of the condition atomically.

use crate::error::ModelError;
use crate::ids::{ManagerId, OsmId};
use crate::snapshot::ManagerSnapshot;
use crate::token::{Token, TokenIdent};
use std::any::Any;

/// The token manager interface (TMI).
///
/// A manager controls one or more closely related tokens and implements the
/// resource-management policy of its hardware module. Managers may check the
/// identity (`OsmId`) of the requesting OSM when making decisions.
///
/// # Two-phase protocol
///
/// For every `prepare_allocate` that returns `Some(token)` and every
/// `prepare_release` that returns `true`, the director guarantees exactly one
/// matching `commit_*` or `abort_*` call before the end of the current edge
/// evaluation. Managers must treat prepared transactions as tentatively
/// applied: a token with a prepared allocation is unavailable to other
/// requests until aborted.
///
/// `inquire` is read-only and needs no second phase. `discard` requires no
/// permission and always succeeds; it is only invoked when an edge actually
/// commits.
pub trait TokenManager: Any + Send {
    /// Human-readable module name (used in traces and error messages).
    fn name(&self) -> &str;

    /// Called once when the manager is installed into a [`ManagerTable`],
    /// telling it the id under which it will mint tokens.
    fn attach(&mut self, id: ManagerId) {
        let _ = id;
    }

    /// Λ `allocate`: tentatively grant a token for `ident` to `osm`.
    ///
    /// Returns `None` if the token is not available to this OSM.
    fn prepare_allocate(&mut self, osm: OsmId, ident: TokenIdent) -> Option<Token>;

    /// Λ `inquire`: is the resource unit denoted by `ident` available to
    /// `osm` right now (without obtaining it)?
    fn inquire(&self, osm: OsmId, ident: TokenIdent) -> bool;

    /// Λ `release`: tentatively accept the return of `token` from `osm`.
    ///
    /// Returns `false` to refuse (e.g. a cache miss still in flight; the
    /// paper's variable-latency idiom, §4).
    fn prepare_release(&mut self, osm: OsmId, token: Token) -> bool;

    /// Finalize a prepared allocation: `osm` now owns `token`.
    fn commit_allocate(&mut self, osm: OsmId, token: Token);

    /// Undo a prepared allocation; the token becomes available again.
    fn abort_allocate(&mut self, osm: OsmId, token: Token);

    /// Finalize a prepared release: the token returns to the manager and is
    /// immediately available to other OSMs *within the same control step*.
    fn commit_release(&mut self, osm: OsmId, token: Token);

    /// Undo a prepared release; `osm` keeps the token.
    fn abort_release(&mut self, osm: OsmId, token: Token);

    /// Λ `discard`: `osm` drops `token` without permission. Always succeeds.
    fn discard(&mut self, osm: OsmId, token: Token);

    /// Current owner of the token denoted by `ident`, if the manager tracks
    /// ownership. Used by the director's deadlock detector to build the
    /// wait-for graph; returning `None` merely disables detection through
    /// this manager.
    fn owner_of(&self, ident: TokenIdent) -> Option<OsmId> {
        let _ = ident;
        None
    }

    /// Hardware-layer clock hook, invoked once per control step *before* the
    /// OSM scheduling pass (managers are hardware modules; paper §4).
    ///
    /// Returns `true` when the clock edge changed (or may have changed) any
    /// state that influences the manager's primitive decisions — the
    /// sensitivity-scheduling dirty bit. The fast director
    /// ([`crate::SchedulerMode::Fast`]) skips re-evaluating OSMs blocked on
    /// managers that reported no change, so returning `false` after a
    /// decision-relevant mutation makes blocked OSMs oversleep. The default
    /// no-op returns `false`; when in doubt, return `true` (always correct,
    /// merely slower).
    fn clock(&mut self, cycle: u64) -> bool {
        let _ = cycle;
        false
    }

    /// Every `(token, owner)` pair the manager believes is committed-owned.
    /// Managers that do not track ownership return `None`, which merely
    /// exempts them from [`crate::Machine::audit_tokens`].
    fn owned_tokens(&self) -> Option<Vec<(Token, OsmId)>> {
        None
    }

    /// Captures the manager's mutable state for
    /// [`crate::Machine::checkpoint`]. The default `None` declares the
    /// manager non-checkpointable, making `checkpoint()` fail with
    /// [`crate::ModelError::SnapshotUnsupported`]. Implementors typically
    /// delegate to [`crate::Snapshot::snapshot`].
    fn snapshot_state(&self) -> Option<ManagerSnapshot> {
        None
    }

    /// Restores state previously captured by
    /// [`TokenManager::snapshot_state`]. Returns `false` (leaving the
    /// manager unchanged) if the snapshot is incompatible; the default
    /// refuses everything.
    fn restore_state(&mut self, snap: &ManagerSnapshot) -> bool {
        let _ = snap;
        false
    }

    /// Serializes a snapshot this manager produced via
    /// [`TokenManager::snapshot_state`] into a stable byte encoding for the
    /// on-disk checkpoint format ([`crate::Machine::encode_checkpoint`]).
    /// The manager is the codec for its own opaque payload. The default
    /// `None` declares the payload non-serializable (in-memory checkpoints
    /// keep working; on-disk encoding fails with
    /// [`crate::ModelError::SnapshotUnsupported`]).
    fn encode_snapshot(&self, snap: &ManagerSnapshot) -> Option<Vec<u8>> {
        let _ = snap;
        None
    }

    /// Deserializes bytes produced by [`TokenManager::encode_snapshot`]
    /// back into a snapshot this manager can [`TokenManager::restore_state`]
    /// from. `None` on any malformed or foreign input; the default refuses
    /// everything.
    fn decode_snapshot(&self, bytes: &[u8]) -> Option<ManagerSnapshot> {
        let _ = bytes;
        None
    }

    /// Upcast for concrete-type access from behaviors.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast for concrete-type access from behaviors.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Owning table of all token managers of a machine, indexed by [`ManagerId`].
///
/// # Dirty tracking
///
/// The table keeps one monotonic *epoch* per manager, the foundation of the
/// director's sensitivity-driven fast path ([`crate::SchedulerMode::Fast`]):
/// an OSM blocked on a manager need not be re-evaluated until that manager's
/// epoch moves. Epochs are bumped conservatively on every path that can
/// change decision-relevant state — every mutable borrow handed out by the
/// public accessors ([`ManagerTable::get_mut`], [`ManagerTable::try_get_mut`],
/// [`ManagerTable::downcast_mut`], [`ManagerTable::wrap`]), every clock hook
/// that reports a change ([`TokenManager::clock`]), and explicitly by the
/// director on every committed transaction. The two-phase `prepare`/`abort`
/// traffic of failed edge evaluations is net state-neutral and deliberately
/// does *not* bump (the director uses internal non-bumping accessors for it).
#[derive(Default)]
pub struct ManagerTable {
    managers: Vec<Box<dyn TokenManager>>,
    /// Per-manager dirty epoch; parallel to `managers`.
    epochs: Vec<u64>,
    /// Bumped on every epoch bump of any manager: a cheap "anything changed
    /// since ...?" watermark for whole-table consumers.
    generation: u64,
}

impl ManagerTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a manager, informs it of its id via [`TokenManager::attach`],
    /// and returns the id.
    ///
    /// # Panics
    /// Panics if the 32-bit manager id space is exhausted; use
    /// [`ManagerTable::try_add`] to handle that as a typed error.
    pub fn add<M: TokenManager>(&mut self, manager: M) -> ManagerId {
        match self.try_add(manager) {
            Ok(id) => id,
            Err(e) => panic!("{e}"),
        }
    }

    /// Installs a manager like [`ManagerTable::add`], but reports id-space
    /// exhaustion as [`ModelError::CapacityExceeded`] instead of panicking
    /// (previously the id silently wrapped past `u32::MAX`).
    pub fn try_add<M: TokenManager>(&mut self, manager: M) -> Result<ManagerId, ModelError> {
        let id = ManagerId(crate::ids::checked_id(self.managers.len(), "token manager")?);
        let mut boxed = Box::new(manager);
        boxed.attach(id);
        self.managers.push(boxed);
        self.epochs.push(1);
        self.generation += 1;
        Ok(id)
    }

    /// The dirty epoch of a manager: a counter that moves every time the
    /// manager's decision-relevant state may have changed. Out-of-range ids
    /// report a constant `0` (a dangling manager id never changes).
    #[inline]
    pub fn epoch(&self, id: ManagerId) -> u64 {
        self.epochs.get(id.index()).copied().unwrap_or(0)
    }

    /// The table-wide change watermark: bumped whenever *any* manager's
    /// epoch moves.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Marks a manager dirty: its state may have changed in a way that can
    /// affect primitive decisions. Custom hardware layers mutating a manager
    /// through interior mutability (rather than through the table's mutable
    /// accessors, which mark automatically) must call this.
    #[inline]
    pub fn mark_dirty(&mut self, id: ManagerId) {
        if let Some(e) = self.epochs.get_mut(id.index()) {
            *e += 1;
            self.generation += 1;
        }
    }

    /// Number of installed managers.
    pub fn len(&self) -> usize {
        self.managers.len()
    }

    /// True if no managers are installed.
    pub fn is_empty(&self) -> bool {
        self.managers.is_empty()
    }

    /// Borrows a manager as the trait object.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn get(&self, id: ManagerId) -> &dyn TokenManager {
        self.managers[id.index()].as_ref()
    }

    /// Mutably borrows a manager as the trait object, conservatively marking
    /// it dirty (the borrower may change decision-relevant state).
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn get_mut(&mut self, id: ManagerId) -> &mut dyn TokenManager {
        self.mark_dirty(id);
        self.managers[id.index()].as_mut()
    }

    /// Mutably borrows a manager *without* marking it dirty. Reserved for
    /// the director's two-phase `prepare`/`abort` traffic, which is net
    /// state-neutral on managers honoring the protocol.
    #[inline]
    pub(crate) fn probe_mut(&mut self, id: ManagerId) -> &mut dyn TokenManager {
        self.managers[id.index()].as_mut()
    }

    /// Non-panicking, non-dirtying counterpart of
    /// [`ManagerTable::probe_mut`].
    #[inline]
    pub(crate) fn try_probe_mut(&mut self, id: ManagerId) -> Option<&mut dyn TokenManager> {
        self.managers.get_mut(id.index()).map(|m| m.as_mut())
    }

    /// Borrows a manager, or `None` if `id` is out of range (for callers
    /// evaluating untrusted specs, where a dangling id must surface as a
    /// failed condition rather than a panic).
    #[inline]
    pub fn try_get(&self, id: ManagerId) -> Option<&dyn TokenManager> {
        self.managers.get(id.index()).map(|m| m.as_ref())
    }

    /// Mutably borrows a manager (marking it dirty, like
    /// [`ManagerTable::get_mut`]), or `None` if `id` is out of range.
    #[inline]
    pub fn try_get_mut(&mut self, id: ManagerId) -> Option<&mut dyn TokenManager> {
        self.mark_dirty(id);
        self.managers.get_mut(id.index()).map(|m| m.as_mut())
    }

    /// Replaces the manager registered under `id` with whatever `wrapper`
    /// builds around it — the installation point for decorators such as
    /// [`crate::FaultInjector`]. The wrapper receives the currently
    /// installed (already attached) manager and must return its replacement.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn wrap<F>(&mut self, id: ManagerId, wrapper: F)
    where
        F: FnOnce(Box<dyn TokenManager>) -> Box<dyn TokenManager>,
    {
        self.mark_dirty(id);
        let slot = &mut self.managers[id.index()];
        let inner = std::mem::replace(slot, Box::new(NullManager));
        *slot = wrapper(inner);
    }

    /// Borrows a manager downcast to its concrete type.
    ///
    /// # Panics
    /// Panics if `id` is out of range or the manager is not a `M`.
    pub fn downcast<M: TokenManager>(&self, id: ManagerId) -> &M {
        self.managers[id.index()]
            .as_ref()
            .as_any()
            .downcast_ref::<M>()
            .unwrap_or_else(|| panic!("manager {id} is not a {}", std::any::type_name::<M>()))
    }

    /// Mutably borrows a manager downcast to its concrete type, marking it
    /// dirty like [`ManagerTable::get_mut`].
    ///
    /// # Panics
    /// Panics if `id` is out of range or the manager is not a `M`.
    pub fn downcast_mut<M: TokenManager>(&mut self, id: ManagerId) -> &mut M {
        self.mark_dirty(id);
        self.managers[id.index()]
            .as_mut()
            .as_any_mut()
            .downcast_mut::<M>()
            .unwrap_or_else(|| panic!("manager {id} is not a {}", std::any::type_name::<M>()))
    }

    /// Invokes every manager's [`TokenManager::clock`] hook, marking dirty
    /// each manager whose hook reports a decision-relevant change.
    pub fn clock_all(&mut self, cycle: u64) {
        for (i, m) in self.managers.iter_mut().enumerate() {
            if m.clock(cycle) {
                self.epochs[i] += 1;
                self.generation += 1;
            }
        }
    }

    /// Iterates over `(id, manager)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ManagerId, &dyn TokenManager)> {
        self.managers
            .iter()
            .enumerate()
            .map(|(i, m)| (ManagerId(i as u32), m.as_ref()))
    }
}

/// Placeholder briefly occupying a [`ManagerTable`] slot while
/// [`ManagerTable::wrap`] hands the real manager to its wrapper. Never
/// observable by callers; denies everything just in case.
struct NullManager;

impl TokenManager for NullManager {
    fn name(&self) -> &str {
        "<null>"
    }
    fn prepare_allocate(&mut self, _: OsmId, _: TokenIdent) -> Option<Token> {
        None
    }
    fn inquire(&self, _: OsmId, _: TokenIdent) -> bool {
        false
    }
    fn prepare_release(&mut self, _: OsmId, _: Token) -> bool {
        false
    }
    fn commit_allocate(&mut self, _: OsmId, _: Token) {}
    fn abort_allocate(&mut self, _: OsmId, _: Token) {}
    fn commit_release(&mut self, _: OsmId, _: Token) {}
    fn abort_release(&mut self, _: OsmId, _: Token) {}
    fn discard(&mut self, _: OsmId, _: Token) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl std::fmt::Debug for ManagerTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list()
            .entries(self.managers.iter().map(|m| m.name()))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pools::ExclusivePool;

    #[test]
    fn table_add_and_lookup() {
        let mut table = ManagerTable::new();
        assert!(table.is_empty());
        let a = table.add(ExclusivePool::new("fetch", 1));
        let b = table.add(ExclusivePool::new("decode", 1));
        assert_eq!(table.len(), 2);
        assert_eq!(table.get(a).name(), "fetch");
        assert_eq!(table.get(b).name(), "decode");
        assert_eq!(a, ManagerId(0));
        assert_eq!(b, ManagerId(1));
    }

    #[test]
    fn downcast_roundtrip() {
        let mut table = ManagerTable::new();
        let a = table.add(ExclusivePool::new("fetch", 3));
        let pool: &ExclusivePool = table.downcast(a);
        assert_eq!(pool.capacity(), 3);
        let pool: &mut ExclusivePool = table.downcast_mut(a);
        assert_eq!(pool.capacity(), 3);
    }

    #[test]
    #[should_panic(expected = "is not a")]
    fn downcast_wrong_type_panics() {
        struct Other;
        impl TokenManager for Other {
            fn name(&self) -> &str {
                "other"
            }
            fn prepare_allocate(&mut self, _: OsmId, _: TokenIdent) -> Option<Token> {
                None
            }
            fn inquire(&self, _: OsmId, _: TokenIdent) -> bool {
                false
            }
            fn prepare_release(&mut self, _: OsmId, _: Token) -> bool {
                false
            }
            fn commit_allocate(&mut self, _: OsmId, _: Token) {}
            fn abort_allocate(&mut self, _: OsmId, _: Token) {}
            fn commit_release(&mut self, _: OsmId, _: Token) {}
            fn abort_release(&mut self, _: OsmId, _: Token) {}
            fn discard(&mut self, _: OsmId, _: Token) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut table = ManagerTable::new();
        let id = table.add(Other);
        let _: &ExclusivePool = table.downcast(id);
    }

    #[test]
    fn try_get_is_total() {
        let mut table = ManagerTable::new();
        let a = table.add(ExclusivePool::new("fetch", 1));
        assert!(table.try_get(a).is_some());
        assert!(table.try_get(ManagerId(7)).is_none());
        assert!(table.try_get_mut(ManagerId(7)).is_none());
    }

    #[test]
    fn wrap_replaces_in_place_and_preserves_downcast() {
        use crate::fault::{FaultInjector, FaultPlan};
        let mut table = ManagerTable::new();
        let a = table.add(ExclusivePool::new("fetch", 2));
        table.wrap(a, |inner| {
            Box::new(FaultInjector::new(inner, FaultPlan::new(1)))
        });
        // Transparent downcast still reaches the wrapped pool.
        assert_eq!(table.downcast::<ExclusivePool>(a).capacity(), 2);
        assert_eq!(table.get(a).name(), "fetch");
    }

    #[test]
    fn iter_yields_ids_in_order() {
        let mut table = ManagerTable::new();
        table.add(ExclusivePool::new("a", 1));
        table.add(ExclusivePool::new("b", 1));
        let names: Vec<_> = table.iter().map(|(id, m)| (id.0, m.name().to_owned())).collect();
        assert_eq!(names, vec![(0, "a".to_owned()), (1, "b".to_owned())]);
    }
}
