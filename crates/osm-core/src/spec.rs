//! State machine specifications: the declarative shape of an OSM class.
//!
//! A [`StateMachineSpec`] is the per-operation-class description from paper
//! §3.1: vertices are execution steps, edges carry guard conditions
//! (conjunctions of Λ [`Primitive`]s) and static priorities, and one state is
//! the *initial* state `I` in which the token buffer is empty. The spec is
//! shared (via [`std::sync::Arc`]) among all OSM instances of the class; it
//! is purely declarative, so the `osm-adl` crate can synthesize it from a
//! textual description.

use crate::error::SpecError;
use crate::ids::{EdgeId, ManagerId, StateId};
use crate::token::{IdentExpr, Primitive};
use std::sync::Arc;

/// One edge of a state machine specification.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Index of this edge in the spec.
    pub id: EdgeId,
    /// Display name (defaults to `e<id>`).
    pub name: String,
    /// Source state.
    pub src: StateId,
    /// Destination state.
    pub dst: StateId,
    /// Static priority; among simultaneously satisfied outgoing edges the
    /// one with the *largest* priority wins (reset edges use high values).
    pub priority: i32,
    /// Guard condition: conjunction of Λ primitives.
    pub condition: Vec<Primitive>,
}

/// An immutable, validated state machine specification.
///
/// Build one with [`SpecBuilder`]:
///
/// ```
/// use osm_core::{SpecBuilder, IdentExpr, ManagerId};
///
/// # fn main() -> Result<(), osm_core::SpecError> {
/// let mf = ManagerId(0);
/// let mut b = SpecBuilder::new("demo");
/// let i = b.state("I");
/// let f = b.state("F");
/// b.initial(i);
/// b.edge(i, f).allocate(mf, IdentExpr::Const(0));
/// b.edge(f, i).release(mf, IdentExpr::AnyHeld);
/// let spec = b.build()?;
/// assert_eq!(spec.state_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct StateMachineSpec {
    name: String,
    states: Vec<String>,
    initial: StateId,
    edges: Vec<Edge>,
    /// Outgoing edges per state, sorted by descending priority (stable).
    out_edges: Vec<Vec<EdgeId>>,
}

impl StateMachineSpec {
    /// The spec's (class) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The initial state `I` (token buffer empty).
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Name of state `s`.
    ///
    /// # Panics
    /// Panics if `s` is out of range.
    pub fn state_name(&self, s: StateId) -> &str {
        &self.states[s.index()]
    }

    /// Looks up a state by name.
    pub fn find_state(&self, name: &str) -> Option<StateId> {
        self.states.iter().position(|n| n == name).map(StateId::from)
    }

    /// The edge record for `e`.
    ///
    /// # Panics
    /// Panics if `e` is out of range.
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e.index()]
    }

    /// Looks up an edge by name.
    pub fn find_edge(&self, name: &str) -> Option<EdgeId> {
        self.edges.iter().position(|e| e.name == name).map(EdgeId::from)
    }

    /// Outgoing edges of `s`, sorted by descending static priority.
    pub fn out_edges(&self, s: StateId) -> &[EdgeId] {
        &self.out_edges[s.index()]
    }

    /// Iterates over all edges.
    pub fn edges(&self) -> impl Iterator<Item = &Edge> {
        self.edges.iter()
    }

    /// Iterates over all state ids.
    pub fn states(&self) -> impl Iterator<Item = StateId> {
        (0..self.states.len() as u32).map(StateId)
    }

    /// Every manager referenced by any primitive of any edge.
    pub fn referenced_managers(&self) -> Vec<ManagerId> {
        let mut out: Vec<ManagerId> = self
            .edges
            .iter()
            .flat_map(|e| e.condition.iter().filter_map(Primitive::manager))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Builder for [`StateMachineSpec`] ([C-BUILDER]).
#[derive(Debug)]
pub struct SpecBuilder {
    name: String,
    states: Vec<String>,
    initial: Option<StateId>,
    edges: Vec<Edge>,
}

impl SpecBuilder {
    /// Starts a spec named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        SpecBuilder {
            name: name.into(),
            states: Vec::new(),
            initial: None,
            edges: Vec::new(),
        }
    }

    /// Adds (or finds) a state named `name`.
    pub fn state(&mut self, name: impl Into<String>) -> StateId {
        let name = name.into();
        if let Some(pos) = self.states.iter().position(|s| *s == name) {
            return StateId::from(pos);
        }
        self.states.push(name);
        StateId::from(self.states.len() - 1)
    }

    /// Declares `s` the initial state.
    pub fn initial(&mut self, s: StateId) -> &mut Self {
        self.initial = Some(s);
        self
    }

    /// Adds an edge from `src` to `dst` (priority 0, empty condition) and
    /// returns a handle for configuring it.
    pub fn edge(&mut self, src: StateId, dst: StateId) -> EdgeHandle<'_> {
        let id = EdgeId::from(self.edges.len());
        self.edges.push(Edge {
            id,
            name: format!("e{}", id.0),
            src,
            dst,
            priority: 0,
            condition: Vec::new(),
        });
        EdgeHandle {
            builder: self,
            index: id.index(),
        }
    }

    /// Validates and freezes the spec.
    ///
    /// # Errors
    /// Returns [`SpecError`] if no state exists, the initial state was not
    /// declared, or an edge references an out-of-range state.
    pub fn build(self) -> Result<Arc<StateMachineSpec>, SpecError> {
        if self.states.is_empty() {
            return Err(SpecError::NoStates {
                spec: self.name.clone(),
            });
        }
        let initial = self.initial.ok_or_else(|| SpecError::NoInitialState {
            spec: self.name.clone(),
        })?;
        if initial.index() >= self.states.len() {
            return Err(SpecError::UnknownState {
                spec: self.name.clone(),
                state: initial,
            });
        }
        for e in &self.edges {
            for s in [e.src, e.dst] {
                if s.index() >= self.states.len() {
                    return Err(SpecError::UnknownState {
                        spec: self.name.clone(),
                        state: s,
                    });
                }
            }
        }
        let mut out_edges: Vec<Vec<EdgeId>> = vec![Vec::new(); self.states.len()];
        for e in &self.edges {
            out_edges[e.src.index()].push(e.id);
        }
        for list in &mut out_edges {
            // Stable: equal priorities keep declaration order.
            list.sort_by_key(|id| std::cmp::Reverse(self.edges[id.index()].priority));
        }
        Ok(Arc::new(StateMachineSpec {
            name: self.name,
            states: self.states,
            initial,
            edges: self.edges,
            out_edges,
        }))
    }
}

/// Configuration handle for one just-added edge; methods chain.
#[derive(Debug)]
pub struct EdgeHandle<'a> {
    builder: &'a mut SpecBuilder,
    index: usize,
}

impl EdgeHandle<'_> {
    fn edge_mut(&mut self) -> &mut Edge {
        &mut self.builder.edges[self.index]
    }

    /// The id the edge was assigned.
    pub fn id(&self) -> EdgeId {
        EdgeId::from(self.index)
    }

    /// Names the edge (for traces and the ADL round-trip).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.edge_mut().name = name.into();
        self
    }

    /// Sets the static priority (larger wins).
    pub fn priority(mut self, p: i32) -> Self {
        self.edge_mut().priority = p;
        self
    }

    /// Appends an arbitrary primitive to the condition.
    pub fn primitive(mut self, p: Primitive) -> Self {
        self.edge_mut().condition.push(p);
        self
    }

    /// Appends an `allocate` primitive.
    pub fn allocate(self, manager: ManagerId, ident: IdentExpr) -> Self {
        self.primitive(Primitive::Allocate { manager, ident })
    }

    /// Appends an `inquire` primitive.
    pub fn inquire(self, manager: ManagerId, ident: IdentExpr) -> Self {
        self.primitive(Primitive::Inquire { manager, ident })
    }

    /// Appends a `release` primitive.
    pub fn release(self, manager: ManagerId, ident: IdentExpr) -> Self {
        self.primitive(Primitive::Release { manager, ident })
    }

    /// Appends a `discard` primitive for one manager's held token(s).
    pub fn discard(self, manager: ManagerId, ident: IdentExpr) -> Self {
        self.primitive(Primitive::Discard {
            manager: Some(manager),
            ident,
        })
    }

    /// Appends a `discard` of *every* held token (reset edges).
    pub fn discard_all(self) -> Self {
        self.primitive(Primitive::Discard {
            manager: None,
            ident: IdentExpr::AnyHeld,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SlotId;

    fn two_managers() -> (ManagerId, ManagerId) {
        (ManagerId(0), ManagerId(1))
    }

    #[test]
    fn build_simple_spec() {
        let (mf, md) = two_managers();
        let mut b = SpecBuilder::new("pipe");
        let i = b.state("I");
        let f = b.state("F");
        let d = b.state("D");
        b.initial(i);
        b.edge(i, f).named("fetch").allocate(mf, IdentExpr::Const(0));
        b.edge(f, d)
            .named("decode")
            .release(mf, IdentExpr::AnyHeld)
            .allocate(md, IdentExpr::Const(0));
        b.edge(d, i).named("done").discard_all();
        let spec = b.build().unwrap();
        assert_eq!(spec.name(), "pipe");
        assert_eq!(spec.state_count(), 3);
        assert_eq!(spec.edge_count(), 3);
        assert_eq!(spec.initial(), i);
        assert_eq!(spec.state_name(i), "I");
        assert_eq!(spec.find_state("D"), Some(d));
        assert_eq!(spec.find_state("Z"), None);
        assert_eq!(spec.find_edge("decode"), Some(EdgeId(1)));
        assert_eq!(spec.out_edges(i), &[EdgeId(0)]);
        assert_eq!(spec.edge(EdgeId(1)).condition.len(), 2);
        assert_eq!(spec.referenced_managers(), vec![mf, md]);
    }

    #[test]
    fn state_is_deduplicated_by_name() {
        let mut b = SpecBuilder::new("x");
        let a = b.state("A");
        let a2 = b.state("A");
        assert_eq!(a, a2);
        assert_eq!(b.states.len(), 1);
    }

    #[test]
    fn out_edges_sorted_by_priority_then_declaration() {
        let mut b = SpecBuilder::new("x");
        let a = b.state("A");
        let z = b.state("Z");
        b.initial(a);
        let e0 = b.edge(a, z).priority(0).id();
        let e1 = b.edge(a, z).priority(10).id();
        let e2 = b.edge(a, z).priority(10).id();
        let spec = b.build().unwrap();
        assert_eq!(spec.out_edges(a), &[e1, e2, e0]);
    }

    #[test]
    fn build_requires_initial_state() {
        let mut b = SpecBuilder::new("x");
        b.state("A");
        assert!(matches!(b.build(), Err(SpecError::NoInitialState { .. })));
    }

    #[test]
    fn build_requires_some_state() {
        let b = SpecBuilder::new("x");
        assert!(matches!(b.build(), Err(SpecError::NoStates { .. })));
    }

    #[test]
    fn slot_idents_allowed_in_conditions() {
        let mut b = SpecBuilder::new("x");
        let a = b.state("A");
        let z = b.state("Z");
        b.initial(a);
        b.edge(a, z).inquire(ManagerId(0), IdentExpr::Slot(SlotId(2)));
        let spec = b.build().unwrap();
        assert!(matches!(
            spec.edge(EdgeId(0)).condition[0],
            Primitive::Inquire {
                ident: IdentExpr::Slot(SlotId(2)),
                ..
            }
        ));
    }

    #[test]
    fn default_edge_names_are_sequential() {
        let mut b = SpecBuilder::new("x");
        let a = b.state("A");
        b.initial(a);
        b.edge(a, a);
        b.edge(a, a);
        let spec = b.build().unwrap();
        assert_eq!(spec.edge(EdgeId(0)).name, "e0");
        assert_eq!(spec.edge(EdgeId(1)).name, "e1");
    }
}
