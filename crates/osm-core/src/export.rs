//! Exporters for the observability layer: Chrome tracing JSON, textual
//! pipeline diagrams, and machine-readable metrics JSON.
//!
//! All exporters are pure functions from recorded data ([`EventLog`],
//! [`MetricsReport`]) plus naming context (spec table, [`ManagerTable`]) to
//! `String`; callers decide where the bytes go. The Chrome exporter emits
//! the Trace Event Format understood by `chrome://tracing` and Perfetto:
//! one *process* per operation class (spec), one *thread* lane per OSM,
//! `"X"` complete events for state residencies and `"i"` instant events for
//! token transactions and stall charges.

use crate::ids::OsmId;
use crate::machine::Machine;
use crate::manager::ManagerTable;
use crate::observe::{EventLog, MetricsReport, ObservedEvent};
use crate::spec::StateMachineSpec;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    esc(s)
}

/// Escapes a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn manager_name(managers: &ManagerTable, id: crate::ids::ManagerId) -> String {
    managers
        .try_get(id)
        .map(|m| m.name().to_owned())
        .unwrap_or_else(|| format!("<unknown {id}>"))
}

/// Incremental writer for Chrome Trace Event Format documents (the
/// JSON-object form with a `traceEvents` array, understood by
/// `chrome://tracing` and Perfetto).
///
/// [`chrome_trace`] renders machine event logs through it, and the
/// `simfarm` crate's farm-schedule exporter reuses it for fleet-level
/// traces, so every trace this workspace emits shares one writer and one
/// envelope shape. Event `name`s are escaped by the builder; `args_json`
/// parameters are embedded verbatim and must already be a valid JSON
/// object literal (use [`json_escape`] for string members).
#[derive(Debug, Default)]
pub struct TraceJsonBuilder {
    events: Vec<String>,
}

impl TraceJsonBuilder {
    /// An empty builder.
    pub fn new() -> TraceJsonBuilder {
        TraceJsonBuilder::default()
    }

    /// Events queued so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no event has been queued yet.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// `"M"` metadata event naming a process track.
    pub fn process_name(&mut self, pid: u64, name: &str) {
        self.events.push(format!(
            r#"{{"name":"process_name","ph":"M","pid":{pid},"tid":0,"args":{{"name":"{}"}}}}"#,
            esc(name)
        ));
    }

    /// `"M"` metadata event naming a thread lane within a process track.
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        self.events.push(format!(
            r#"{{"name":"thread_name","ph":"M","pid":{pid},"tid":{tid},"args":{{"name":"{}"}}}}"#,
            esc(name)
        ));
    }

    /// `"X"` complete event: a slice of `dur` trace-time units at `ts`.
    pub fn complete(&mut self, name: &str, pid: u64, tid: u64, ts: u64, dur: u64, args_json: &str) {
        self.events.push(format!(
            r#"{{"name":"{}","ph":"X","pid":{pid},"tid":{tid},"ts":{ts},"dur":{dur},"args":{args_json}}}"#,
            esc(name)
        ));
    }

    /// `"i"` thread-scoped instant event at `ts`.
    pub fn instant(&mut self, name: &str, pid: u64, tid: u64, ts: u64, args_json: &str) {
        self.events.push(format!(
            r#"{{"name":"{}","ph":"i","pid":{pid},"tid":{tid},"ts":{ts},"s":"t","args":{args_json}}}"#,
            esc(name)
        ));
    }

    /// Closes the document: the `traceEvents` array plus an `otherData`
    /// object holding the given counters, in the given order.
    pub fn finish(self, other_data: &[(&str, u64)]) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        let n = self.events.len();
        for (i, e) in self.events.iter().enumerate() {
            out.push_str(e);
            if i + 1 < n {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("],\"displayTimeUnit\":\"ms\",\"otherData\":{");
        for (i, (key, value)) in other_data.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{value}", esc(key));
        }
        out.push_str("}}");
        out
    }
}

/// Renders an [`EventLog`] as Chrome Trace Event Format JSON
/// (`chrome://tracing` / Perfetto / `about:tracing`). One control step maps
/// to one microsecond of trace time.
///
/// Grouping: `pid` = spec index (named after the operation class), `tid` =
/// OSM id. State residencies become `"X"` complete events; token
/// transactions and stall charges become `"i"` instant events on the same
/// lane.
pub fn chrome_trace(
    log: &EventLog,
    specs: &[Arc<StateMachineSpec>],
    managers: &ManagerTable,
) -> String {
    // First pass: which spec does each OSM instantiate, and how far does the
    // log reach? (Token events do not carry the spec index.)
    let mut osm_spec: BTreeMap<OsmId, u32> = BTreeMap::new();
    let mut end_cycle: u64 = 0;
    for ev in log.iter() {
        end_cycle = end_cycle.max(ev.cycle());
        match ev {
            ObservedEvent::Transition(t) => {
                osm_spec.insert(t.osm, t.spec);
            }
            ObservedEvent::Stall(s) => {
                osm_spec.insert(s.osm, s.spec);
            }
            ObservedEvent::Token(_) => {}
        }
    }
    let spec_of = |osm: OsmId| osm_spec.get(&osm).copied().unwrap_or(0);
    let state_name = |spec: u32, state: crate::ids::StateId| -> String {
        match specs.get(spec as usize) {
            Some(s) => s.state_name(state).to_owned(),
            None => format!("{state}"),
        }
    };

    let mut trace = TraceJsonBuilder::new();
    // Metadata: one process per spec, one thread lane per OSM.
    for (idx, spec) in specs.iter().enumerate() {
        trace.process_name(idx as u64, spec.name());
    }
    for (&osm, &spec) in &osm_spec {
        trace.thread_name(u64::from(spec), u64::from(osm.0), &osm.to_string());
    }

    // Second pass: fold transitions into state residencies; emit instants.
    let mut cur: BTreeMap<OsmId, (crate::ids::StateId, u64)> = BTreeMap::new();
    for ev in log.iter() {
        match ev {
            ObservedEvent::Transition(t) => {
                if let Some((state, since)) = cur.remove(&t.osm) {
                    // Skip idle-state lanes: `started` marks a leave from the
                    // initial state, whose residency is not an execution step.
                    if !t.started && state == t.from {
                        trace.complete(
                            &state_name(t.spec, state),
                            u64::from(t.spec),
                            u64::from(t.osm.0),
                            since,
                            t.cycle - since,
                            &format!(r#"{{"edge":"{}"}}"#, t.edge),
                        );
                    }
                }
                if !t.completed {
                    cur.insert(t.osm, (t.to, t.cycle));
                }
            }
            ObservedEvent::Token(t) => {
                trace.instant(
                    &format!(
                        "{} {}({})",
                        t.outcome,
                        t.op,
                        manager_name(managers, t.manager)
                    ),
                    u64::from(spec_of(t.osm)),
                    u64::from(t.osm.0),
                    t.cycle,
                    &format!(r#"{{"ident":"{}","edge":"{}"}}"#, t.ident, t.edge),
                );
            }
            ObservedEvent::Stall(s) => {
                trace.instant(
                    &format!("stall {}({})", s.op, manager_name(managers, s.manager)),
                    u64::from(s.spec),
                    u64::from(s.osm.0),
                    s.cycle,
                    &format!(r#"{{"state":"{}"}}"#, esc(&state_name(s.spec, s.state))),
                );
            }
        }
    }
    // Close still-open residencies at the end of the covered window.
    for (osm, (state, since)) in cur {
        let spec = spec_of(osm);
        trace.complete(
            &state_name(spec, state),
            u64::from(spec),
            u64::from(osm.0),
            since,
            (end_cycle + 1).saturating_sub(since),
            "{}",
        );
    }

    trace.finish(&[
        ("events_recorded", log.total()),
        ("events_dropped", log.dropped()),
    ])
}

/// Convenience wrapper: exports the machine's own event log, if one is
/// installed (see [`Machine::enable_event_log`]).
pub fn chrome_trace_for<S: 'static>(machine: &Machine<S>) -> Option<String> {
    machine
        .event_log()
        .map(|log| chrome_trace(log, machine.specs(), &machine.managers))
}

/// Renders a gem5-pipeview-style textual pipeline diagram from an
/// [`EventLog`]: one lane per OSM, one character column per control step in
/// `[from, to)`. An uppercase letter marks the cycle a state was entered,
/// lowercase its continued occupancy, `.` the idle (initial) state and `?`
/// cycles before the OSM's first recorded transition. A legend maps letters
/// back to state names.
pub fn pipeline_diagram(
    log: &EventLog,
    specs: &[Arc<StateMachineSpec>],
    from: u64,
    to: u64,
) -> String {
    let width = to.saturating_sub(from) as usize;
    let letter = |spec: u32, state: crate::ids::StateId| -> char {
        specs
            .get(spec as usize)
            .map(|s| s.state_name(state).chars().next().unwrap_or('?'))
            .unwrap_or('?')
            .to_ascii_uppercase()
    };

    // Lane per OSM: start unknown ('?') until the first transition is seen.
    let mut lanes: BTreeMap<OsmId, Vec<char>> = BTreeMap::new();
    let mut cur: BTreeMap<OsmId, (u32, Option<crate::ids::StateId>, u64)> = BTreeMap::new();
    let mut legend: BTreeMap<char, String> = BTreeMap::new();
    let fill = |lane: &mut Vec<char>, spec: u32, state: Option<crate::ids::StateId>,
                    since: u64, until: u64| {
        let (a, b) = (since.max(from), until.min(to));
        for c in a..b {
            let i = (c - from) as usize;
            lane[i] = match state {
                None => '.',
                Some(s) => {
                    let ch = letter(spec, s);
                    if c == since {
                        ch
                    } else {
                        ch.to_ascii_lowercase()
                    }
                }
            };
        }
    };
    for t in log.transitions() {
        let lane = lanes.entry(t.osm).or_insert_with(|| vec!['?'; width]);
        if let Some((spec, state, since)) = cur.remove(&t.osm) {
            fill(lane, spec, state, since, t.cycle);
        }
        let next = if t.completed { None } else { Some(t.to) };
        if let Some(s) = next {
            legend
                .entry(letter(t.spec, s))
                .or_insert_with(|| match specs.get(t.spec as usize) {
                    Some(sp) => format!("{}.{}", sp.name(), sp.state_name(s)),
                    None => format!("{s}"),
                });
        }
        cur.insert(t.osm, (t.spec, next, t.cycle));
    }
    for (osm, (spec, state, since)) in cur {
        let lane = lanes.entry(osm).or_insert_with(|| vec!['?'; width]);
        fill(lane, spec, state, since, to);
    }

    let mut out = String::new();
    let _ = writeln!(out, "pipeline diagram, cycles {from}..{to}:");
    for (osm, lane) in &lanes {
        let _ = writeln!(out, "{:>6} |{}|", osm.to_string(), lane.iter().collect::<String>());
    }
    for (ch, name) in &legend {
        let _ = writeln!(out, "   {ch} = {name}");
    }
    out
}

/// Convenience wrapper: diagrams the machine's own event log, if installed.
pub fn pipeline_diagram_for<S: 'static>(machine: &Machine<S>, from: u64, to: u64) -> Option<String> {
    machine
        .event_log()
        .map(|log| pipeline_diagram(log, machine.specs(), from, to))
}

fn json_u64_array(vals: &[u64]) -> String {
    let mut s = String::from("[");
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{v}");
    }
    s.push(']');
    s
}

/// Renders a [`MetricsReport`] as machine-readable JSON (the format the
/// bench crate's smoke checker validates against `schemas/metrics.schema.json`).
pub fn metrics_json(report: &MetricsReport) -> String {
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"cycles\":{},\"transitions\":{},\"completions\":{},\"token_grants\":{},\"token_denials\":{},\"restarts\":{},",
        report.cycles, report.transitions, report.completions, report.token_grants,
        report.token_denials, report.restarts
    );
    out.push_str("\"states\":[");
    for (i, s) in report.states.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"spec\":\"{}\",\"state\":\"{}\",\"occupancy_cycles\":{},\"entries\":{},\"mean_residency\":{:.6}}}",
            esc(&s.spec), esc(&s.state), s.occupancy_cycles, s.entries, s.mean_residency
        );
    }
    out.push_str("],\"managers\":[");
    for (i, m) in report.managers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"granted\":{},\"denied\":{},\"aborted\":{},\"avg_held\":{:.6}}}",
            esc(&m.name),
            json_u64_array(&m.granted),
            json_u64_array(&m.denied),
            json_u64_array(&m.aborted),
            m.avg_held
        );
    }
    let _ = write!(
        out,
        "],\"window\":{},\"throughput\":{},",
        report.window,
        json_u64_array(&report.throughput)
    );
    match &report.stalls {
        None => out.push_str("\"stalls\":null}"),
        Some(st) => {
            let _ = write!(
                out,
                "\"stalls\":{{\"global_stall_cycles\":{},\"charged\":{},\"by_manager\":[",
                st.global_stall_cycles, st.charged
            );
            for (i, c) in st.by_manager.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"manager\":\"{}\",\"op\":\"{}\",\"cycles\":{}}}",
                    esc(&c.manager_name),
                    c.op,
                    c.cycles
                );
            }
            out.push_str("],\"by_osm\":[");
            for (i, c) in st.by_osm.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"osm\":{},\"manager\":\"{}\",\"op\":\"{}\",\"cycles\":{}}}",
                    c.osm.0,
                    esc(&c.cause.manager_name),
                    c.cause.op,
                    c.cause.cycles
                );
            }
            out.push_str("]}}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn esc_handles_specials() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_array_renders() {
        assert_eq!(json_u64_array(&[1, 2, 3]), "[1,2,3]");
        assert_eq!(json_u64_array(&[]), "[]");
    }
}
