//! Property-based tests over the reusable token managers: random transaction
//! sequences never violate the pool invariants (conservation, two-phase
//! restoration, exclusivity).

use osm_core::{ExclusivePool, ManagerId, OsmId, RegScoreboard, Token, TokenIdent, TokenManager};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    PrepareAllocate { osm: u32, ident: u64 },
    PrepareRelease { osm: u32 },
    Commit,
    Abort,
    Discard { osm: u32 },
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..4, 0u64..6).prop_map(|(osm, ident)| Op::PrepareAllocate { osm, ident }),
        (0u32..4).prop_map(|osm| Op::PrepareRelease { osm }),
        Just(Op::Commit),
        Just(Op::Abort),
        (0u32..4).prop_map(|osm| Op::Discard { osm }),
    ]
}

// Drives an `ExclusivePool` with a random transaction stream, modeling
// the director's discipline (each prepare is either committed or aborted
// before the next), and checks conservation after every step.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn exclusive_pool_conserves_tokens(ops in prop::collection::vec(op(), 1..120)) {
        let mut pool = ExclusivePool::new("p", 4);
        pool.attach(ManagerId(0));
        // Committed ownership we believe in: (osm, token).
        let mut owned: Vec<(OsmId, Token)> = Vec::new();
        // At most one outstanding prepared transaction (director discipline).
        let mut pending: Option<(OsmId, Token, bool)> = None; // (osm, token, is_release)

        for o in ops {
            match o {
                Op::PrepareAllocate { osm, ident } if pending.is_none() => {
                    let osm = OsmId(osm);
                    if let Some(token) = pool.prepare_allocate(osm, TokenIdent(ident % 6)) {
                        // Exclusivity: nobody owns it already.
                        prop_assert!(!owned.iter().any(|(_, t)| *t == token));
                        pending = Some((osm, token, false));
                    }
                }
                Op::PrepareRelease { osm } if pending.is_none() => {
                    let osm = OsmId(osm);
                    if let Some(&(_, token)) = owned.iter().find(|(o2, _)| *o2 == osm) {
                        if pool.prepare_release(osm, token) {
                            pending = Some((osm, token, true));
                        }
                    }
                }
                Op::Commit => {
                    if let Some((osm, token, is_release)) = pending.take() {
                        if is_release {
                            pool.commit_release(osm, token);
                            owned.retain(|(_, t)| *t != token);
                        } else {
                            pool.commit_allocate(osm, token);
                            owned.push((osm, token));
                        }
                    }
                }
                Op::Abort => {
                    if let Some((osm, token, is_release)) = pending.take() {
                        if is_release {
                            pool.abort_release(osm, token);
                        } else {
                            pool.abort_allocate(osm, token);
                        }
                    }
                }
                Op::Discard { osm } if pending.is_none() => {
                    let osm = OsmId(osm);
                    if let Some(&(_, token)) = owned.iter().find(|(o2, _)| *o2 == osm) {
                        pool.discard(osm, token);
                        owned.retain(|(_, t)| *t != token);
                    }
                }
                _ => {} // prepare while another is pending: skipped
            }
            // Conservation: free + owned + pending-allocate == capacity.
            // (A pending release is already counted in `owned`.)
            let in_flight =
                owned.len() + usize::from(matches!(pending, Some((_, _, false))));
            prop_assert_eq!(pool.free_count() + in_flight, pool.capacity());
            // The pool's ownership report matches ours exactly: a pending
            // allocate is not yet owned (and absent from both sides), while
            // a pending release is still owned (and present on both sides).
            let reported = pool.owned_tokens().expect("auditable");
            prop_assert_eq!(reported.len(), owned.len());
            for (token, osm) in reported {
                prop_assert!(owned.contains(&(osm, token)));
            }
        }
    }

    #[test]
    fn scoreboard_prepare_abort_is_identity(regs in prop::collection::vec(0usize..8, 1..40)) {
        let mut sb = RegScoreboard::new("sb", 8);
        sb.attach(ManagerId(0));
        // Commit a writer first.
        let w = OsmId(0);
        let t0 = sb.prepare_allocate(w, RegScoreboard::update_ident(0)).expect("free");
        sb.commit_allocate(w, t0);
        let before: Vec<bool> = (0..8).map(|r| sb.is_busy(r)).collect();
        // Any prepare/abort round-trip leaves the scoreboard unchanged.
        for r in regs {
            if let Some(t) = sb.prepare_allocate(OsmId(1), RegScoreboard::update_ident(r)) {
                sb.abort_allocate(OsmId(1), t);
            }
            if sb.prepare_release(w, t0) {
                sb.abort_release(w, t0);
            }
            let after: Vec<bool> = (0..8).map(|k| sb.is_busy(k)).collect();
            prop_assert_eq!(&after, &before);
        }
    }
}
