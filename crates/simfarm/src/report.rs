//! Deterministic result aggregation: the consolidated farm report.
//!
//! Results arrive from the farm already re-assembled in job-index order
//! ([`crate::run_parallel`]'s contract), and every merge below folds them in
//! that order, so the rendered report — text or JSON — is byte-identical
//! across runs and worker counts. 64-bit digests travel as hex strings in
//! the JSON form because JSON numbers are doubles.

use crate::job::{JobOutcome, JobResult};
use bench::json::Json;
use osm_core::Stats;
use std::collections::BTreeMap;
use std::fmt;

/// The consolidated product of one sweep.
#[derive(Debug, Clone)]
pub struct FarmReport {
    /// Per-job results, in job-index order.
    pub jobs: Vec<JobResult>,
    /// Scheduler statistics summed over the OSM jobs, in job-index order.
    pub total_stats: Stats,
    /// Simulated cycles summed over every job.
    pub total_cycles: u64,
    /// Retired instructions/operations summed over every job.
    pub total_retired: u64,
    /// Jobs that failed with a model error.
    pub failures: usize,
    /// Worker threads the sweep ran on (1 = serial).
    pub workers: usize,
    /// Wall-clock seconds for the whole sweep (0.0 when not measured).
    pub wall_seconds: f64,
}

impl FarmReport {
    /// Folds per-job results (already in job-index order) into the
    /// consolidated report.
    pub fn consolidate(jobs: Vec<JobResult>, workers: usize, wall_seconds: f64) -> FarmReport {
        let mut total_stats = Stats::new();
        let mut total_cycles = 0u64;
        let mut total_retired = 0u64;
        let mut failures = 0usize;
        for job in &jobs {
            total_cycles += job.cycles;
            total_retired += job.retired;
            if !job.is_ok() {
                failures += 1;
            }
            if let Some(stats) = &job.stats {
                total_stats.cycles += stats.cycles;
                total_stats.transitions += stats.transitions;
                total_stats.condition_failures += stats.condition_failures;
                total_stats.vetoed_edges += stats.vetoed_edges;
                total_stats.idle_steps += stats.idle_steps;
                total_stats.restarts += stats.restarts;
                for (name, value) in stats.named() {
                    total_stats.incr_dyn(name, value);
                }
            }
        }
        FarmReport {
            jobs,
            total_stats,
            total_cycles,
            total_retired,
            failures,
            workers,
            wall_seconds,
        }
    }

    /// Simulated cycles per wall-clock second (the farm's headline
    /// throughput number); 0 when wall time was not measured.
    pub fn cycles_per_second(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.total_cycles as f64 / self.wall_seconds
        }
    }

    /// The report as a JSON document (digests as 16-digit hex strings).
    pub fn to_json(&self) -> Json {
        let jobs = self
            .jobs
            .iter()
            .map(|job| {
                let mut obj = BTreeMap::new();
                obj.insert("name".into(), Json::Str(job.name.clone()));
                obj.insert("model".into(), Json::Str(job.model.name().into()));
                obj.insert("workload".into(), Json::Str(job.workload.clone()));
                obj.insert(
                    "outcome".into(),
                    Json::Str(match &job.outcome {
                        JobOutcome::Halted => "halted".into(),
                        JobOutcome::BudgetExhausted => "budget-exhausted".into(),
                        JobOutcome::Failed(msg) => format!("failed: {msg}"),
                    }),
                );
                obj.insert("cycles".into(), Json::Num(job.cycles as f64));
                obj.insert("retired".into(), Json::Num(job.retired as f64));
                obj.insert("exit_code".into(), Json::Num(f64::from(job.exit_code)));
                obj.insert("digest".into(), Json::Str(format!("{:016x}", job.digest)));
                if let Some(stats) = &job.stats {
                    obj.insert("transitions".into(), Json::Num(stats.transitions as f64));
                    obj.insert("idle_steps".into(), Json::Num(stats.idle_steps as f64));
                }
                if let Some(metrics) = &job.metrics {
                    let mut m = BTreeMap::new();
                    m.insert("completions".into(), Json::Num(metrics.completions as f64));
                    m.insert("token_grants".into(), Json::Num(metrics.token_grants as f64));
                    m.insert(
                        "token_denials".into(),
                        Json::Num(metrics.token_denials as f64),
                    );
                    obj.insert("metrics".into(), Json::Obj(m));
                }
                if let Some(faults) = &job.fault_stats {
                    obj.insert("faults_injected".into(), Json::Num(faults.total() as f64));
                }
                Json::Obj(obj)
            })
            .collect();
        let mut totals = BTreeMap::new();
        totals.insert("cycles".into(), Json::Num(self.total_cycles as f64));
        totals.insert("retired".into(), Json::Num(self.total_retired as f64));
        totals.insert(
            "transitions".into(),
            Json::Num(self.total_stats.transitions as f64),
        );
        totals.insert("failures".into(), Json::Num(self.failures as f64));
        let mut root = BTreeMap::new();
        root.insert("jobs".into(), Json::Arr(jobs));
        root.insert("totals".into(), Json::Obj(totals));
        root.insert("workers".into(), Json::Num(self.workers as f64));
        root.insert("wall_seconds".into(), Json::Num(self.wall_seconds));
        Json::Obj(root)
    }
}

impl fmt::Display for FarmReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "simfarm: {} jobs on {} worker(s), {:.2}s wall, {} failure(s)",
            self.jobs.len(),
            self.workers,
            self.wall_seconds,
            self.failures
        )?;
        writeln!(
            f,
            "{:<28} {:<10} {:>10} {:>10} {:>5}  digest",
            "job", "model", "cycles", "retired", "exit"
        )?;
        for job in &self.jobs {
            let marker = match &job.outcome {
                JobOutcome::Halted => "",
                JobOutcome::BudgetExhausted => " (budget)",
                JobOutcome::Failed(_) => " (FAILED)",
            };
            writeln!(
                f,
                "{:<28} {:<10} {:>10} {:>10} {:>5}  {:016x}{}",
                job.name, job.model, job.cycles, job.retired, job.exit_code, job.digest, marker
            )?;
            if let JobOutcome::Failed(msg) = &job.outcome {
                writeln!(f, "    error: {msg}")?;
            }
        }
        writeln!(
            f,
            "totals: {} cycles, {} retired, {} transitions",
            self.total_cycles, self.total_retired, self.total_stats.transitions
        )?;
        if self.wall_seconds > 0.0 {
            writeln!(f, "throughput: {:.0} simulated cycles/s", self.cycles_per_second())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{run_job, SimJob};
    use crate::queue::run_serial;

    #[test]
    fn report_renders_and_serializes_deterministically() {
        let jobs: Vec<SimJob> = (0..3)
            .map(|i| SimJob::minirisc_random(i, 32, 20_000))
            .collect();
        let a = FarmReport::consolidate(run_serial(&jobs), 1, 0.0);
        let b = FarmReport::consolidate(run_serial(&jobs), 1, 0.0);
        assert_eq!(a.to_json().to_string(), b.to_json().to_string());
        assert_eq!(a.to_string(), b.to_string());
        // The JSON round-trips through the bench parser.
        let parsed = bench::json::parse(&a.to_json().to_string()).unwrap();
        assert_eq!(
            parsed.get("jobs").unwrap().as_arr().unwrap().len(),
            3
        );
    }

    #[test]
    fn totals_sum_stats_across_osm_jobs() {
        let job = SimJob::new(
            crate::job::ModelKind::Vliw,
            crate::job::WorkloadSpec::Ilp { iters: 20, body: 4 },
            100_000,
        );
        let r1 = run_job(&job);
        let r2 = run_job(&job);
        let transitions = r1.stats.as_ref().unwrap().transitions;
        let report = FarmReport::consolidate(vec![r1, r2], 1, 0.0);
        assert_eq!(report.total_stats.transitions, 2 * transitions);
        assert_eq!(report.failures, 0);
    }
}
