//! Deterministic result aggregation: the consolidated farm report.
//!
//! Results arrive from the farm already re-assembled in job-index order
//! ([`crate::run_parallel`]'s contract), and every merge below folds them in
//! that order, so the rendered report — text or JSON — is byte-identical
//! across runs and worker counts. 64-bit digests travel as hex strings in
//! the JSON form because JSON numbers are doubles.
//!
//! Two renderings exist: the operator one ([`fmt::Display`] / `to_json`),
//! which includes the worker count and wall time, and the **canonical** one
//! ([`FarmReport::canonical_text`] / [`FarmReport::canonical_json`]), which
//! scrubs those two environment-dependent fields. The canonical renderings
//! are the byte-identity contract: equal for the same job list whether the
//! sweep ran on 1 worker or 8, uninterrupted or killed-and-resumed. (Jobs
//! with wall-clock deadlines are the documented exception — see
//! [`crate::SimJob::deadline_ms`].)

use crate::job::{JobOutcome, JobResult};
use crate::queue::SweepRun;
use bench::json::Json;
use osm_core::Stats;
use std::collections::BTreeMap;
use std::fmt;

/// The consolidated product of one sweep.
#[derive(Debug, Clone)]
pub struct FarmReport {
    /// Per-job results, in job-index order.
    pub jobs: Vec<JobResult>,
    /// Scheduler statistics summed over the OSM jobs, in job-index order.
    pub total_stats: Stats,
    /// Simulated cycles summed over every job.
    pub total_cycles: u64,
    /// Retired instructions/operations summed over every job.
    pub total_retired: u64,
    /// Jobs whose outcome is unhealthy (failed, panicked, stalled,
    /// deadline-exceeded or quarantined).
    pub failures: usize,
    /// Jobs the supervisor quarantined (a subset of `failures`).
    pub quarantined: usize,
    /// Jobs restored from a sweep journal instead of run in this process
    /// (0 for a fresh sweep).
    pub restored: usize,
    /// Jobs that never completed because the sweep was cancelled.
    pub pending: usize,
    /// Worker threads the sweep ran on (1 = serial).
    pub workers: usize,
    /// Wall-clock seconds for the whole sweep (0.0 when not measured).
    pub wall_seconds: f64,
}

impl FarmReport {
    /// Folds per-job results (already in job-index order) into the
    /// consolidated report.
    pub fn consolidate(jobs: Vec<JobResult>, workers: usize, wall_seconds: f64) -> FarmReport {
        let mut total_stats = Stats::new();
        let mut total_cycles = 0u64;
        let mut total_retired = 0u64;
        let mut failures = 0usize;
        let mut quarantined = 0usize;
        for job in &jobs {
            total_cycles += job.cycles;
            total_retired += job.retired;
            if !job.is_ok() {
                failures += 1;
            }
            if matches!(job.outcome, JobOutcome::Quarantined { .. }) {
                quarantined += 1;
            }
            if let Some(stats) = &job.stats {
                total_stats.cycles += stats.cycles;
                total_stats.transitions += stats.transitions;
                total_stats.condition_failures += stats.condition_failures;
                total_stats.vetoed_edges += stats.vetoed_edges;
                total_stats.idle_steps += stats.idle_steps;
                total_stats.restarts += stats.restarts;
                for (name, value) in stats.named() {
                    total_stats.incr_dyn(name, value);
                }
            }
        }
        FarmReport {
            jobs,
            total_stats,
            total_cycles,
            total_retired,
            failures,
            quarantined,
            restored: 0,
            pending: 0,
            workers,
            wall_seconds,
        }
    }

    /// Folds a (possibly partial) supervised sweep: completed results in
    /// job-index order, with the restored and pending counts carried over.
    /// Deterministic for the same set of completed jobs regardless of how
    /// the sweep was interrupted.
    pub fn consolidate_sweep(run: &SweepRun, workers: usize, wall_seconds: f64) -> FarmReport {
        let restored = run.restored;
        let pending = run.pending().len();
        let jobs: Vec<JobResult> = run.completed.values().cloned().collect();
        let mut report = FarmReport::consolidate(jobs, workers, wall_seconds);
        report.restored = restored;
        report.pending = pending;
        report
    }

    /// Simulated cycles per wall-clock second (the farm's headline
    /// throughput number); 0 when wall time was not measured.
    pub fn cycles_per_second(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.total_cycles as f64 / self.wall_seconds
        }
    }

    /// A copy with the environment-dependent fields (worker count, wall
    /// time, restored-from-journal count) scrubbed; the basis of the
    /// byte-identity gates.
    fn canonical(&self) -> FarmReport {
        let mut c = self.clone();
        c.workers = 0;
        c.wall_seconds = 0.0;
        c.restored = 0;
        c
    }

    /// The canonical text rendering: byte-identical across worker counts
    /// and across interrupted-then-resumed vs uninterrupted sweeps of the
    /// same job list.
    pub fn canonical_text(&self) -> String {
        self.canonical().to_string()
    }

    /// The canonical JSON rendering (same contract as
    /// [`FarmReport::canonical_text`]).
    pub fn canonical_json(&self) -> String {
        self.canonical().to_json().to_string()
    }

    /// The report as a JSON document (digests as 16-digit hex strings).
    pub fn to_json(&self) -> Json {
        let jobs = self
            .jobs
            .iter()
            .map(|job| {
                let mut obj = BTreeMap::new();
                obj.insert("name".into(), Json::Str(job.name.clone()));
                obj.insert("model".into(), Json::Str(job.model.name().into()));
                obj.insert("workload".into(), Json::Str(job.workload.clone()));
                obj.insert("outcome".into(), Json::Str(job.outcome.label()));
                obj.insert("attempts".into(), Json::Num(f64::from(job.attempts)));
                obj.insert("cycles".into(), Json::Num(job.cycles as f64));
                obj.insert("retired".into(), Json::Num(job.retired as f64));
                obj.insert("exit_code".into(), Json::Num(f64::from(job.exit_code)));
                obj.insert("digest".into(), Json::Str(format!("{:016x}", job.digest)));
                if let Some(stats) = &job.stats {
                    obj.insert("transitions".into(), Json::Num(stats.transitions as f64));
                    obj.insert("idle_steps".into(), Json::Num(stats.idle_steps as f64));
                }
                if let Some(metrics) = &job.metrics {
                    let mut m = BTreeMap::new();
                    m.insert("completions".into(), Json::Num(metrics.completions as f64));
                    m.insert("token_grants".into(), Json::Num(metrics.token_grants as f64));
                    m.insert(
                        "token_denials".into(),
                        Json::Num(metrics.token_denials as f64),
                    );
                    obj.insert("metrics".into(), Json::Obj(m));
                }
                if let Some(faults) = &job.fault_stats {
                    obj.insert("faults_injected".into(), Json::Num(faults.total() as f64));
                }
                Json::Obj(obj)
            })
            .collect();
        let mut totals = BTreeMap::new();
        totals.insert("cycles".into(), Json::Num(self.total_cycles as f64));
        totals.insert("retired".into(), Json::Num(self.total_retired as f64));
        totals.insert(
            "transitions".into(),
            Json::Num(self.total_stats.transitions as f64),
        );
        totals.insert("failures".into(), Json::Num(self.failures as f64));
        totals.insert("quarantined".into(), Json::Num(self.quarantined as f64));
        totals.insert("pending".into(), Json::Num(self.pending as f64));
        let mut root = BTreeMap::new();
        root.insert("jobs".into(), Json::Arr(jobs));
        root.insert("totals".into(), Json::Obj(totals));
        root.insert("workers".into(), Json::Num(self.workers as f64));
        root.insert("restored".into(), Json::Num(self.restored as f64));
        root.insert("wall_seconds".into(), Json::Num(self.wall_seconds));
        Json::Obj(root)
    }
}

/// One-word table marker for a job's outcome.
fn marker(outcome: &JobOutcome) -> &'static str {
    match outcome {
        JobOutcome::Halted => "",
        JobOutcome::BudgetExhausted => " (budget)",
        JobOutcome::Failed(_) => " (FAILED)",
        JobOutcome::Panicked { .. } => " (PANICKED)",
        JobOutcome::Stalled(_) => " (STALLED)",
        JobOutcome::DeadlineExceeded { .. } => " (DEADLINE)",
        JobOutcome::Quarantined { .. } => " (QUARANTINED)",
    }
}

impl fmt::Display for FarmReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "simfarm: {} jobs on {} worker(s), {:.2}s wall, {} failure(s)",
            self.jobs.len(),
            self.workers,
            self.wall_seconds,
            self.failures
        )?;
        if self.restored > 0 || self.pending > 0 {
            writeln!(
                f,
                "resume: {} restored from journal, {} pending",
                self.restored, self.pending
            )?;
        }
        writeln!(
            f,
            "{:<28} {:<10} {:>10} {:>10} {:>5}  digest",
            "job", "model", "cycles", "retired", "exit"
        )?;
        for job in &self.jobs {
            writeln!(
                f,
                "{:<28} {:<10} {:>10} {:>10} {:>5}  {:016x}{}",
                job.name,
                job.model,
                job.cycles,
                job.retired,
                job.exit_code,
                job.digest,
                marker(&job.outcome)
            )?;
            if !job.outcome.is_healthy() {
                writeln!(f, "    outcome: {}", job.outcome.label())?;
            }
        }
        if self.quarantined > 0 {
            writeln!(f, "quarantine: {} job(s)", self.quarantined)?;
            for job in &self.jobs {
                if matches!(job.outcome, JobOutcome::Quarantined { .. }) {
                    writeln!(f, "    {} — {}", job.name, job.outcome.label())?;
                }
            }
        }
        writeln!(
            f,
            "totals: {} cycles, {} retired, {} transitions",
            self.total_cycles, self.total_retired, self.total_stats.transitions
        )?;
        if self.wall_seconds > 0.0 {
            writeln!(f, "throughput: {:.0} simulated cycles/s", self.cycles_per_second())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{run_job, SimJob};
    use crate::queue::{run_farm, run_serial, FarmOptions};

    #[test]
    fn report_renders_and_serializes_deterministically() {
        let jobs: Vec<SimJob> = (0..3)
            .map(|i| SimJob::minirisc_random(i, 32, 20_000))
            .collect();
        let a = FarmReport::consolidate(run_serial(&jobs), 1, 0.0);
        let b = FarmReport::consolidate(run_serial(&jobs), 1, 0.0);
        assert_eq!(a.to_json().to_string(), b.to_json().to_string());
        assert_eq!(a.to_string(), b.to_string());
        // The JSON round-trips through the bench parser.
        let parsed = bench::json::parse(&a.to_json().to_string()).unwrap();
        assert_eq!(
            parsed.get("jobs").unwrap().as_arr().unwrap().len(),
            3
        );
    }

    #[test]
    fn totals_sum_stats_across_osm_jobs() {
        let job = SimJob::new(
            crate::job::ModelKind::Vliw,
            crate::job::WorkloadSpec::Ilp { iters: 20, body: 4 },
            100_000,
        );
        let r1 = run_job(&job);
        let r2 = run_job(&job);
        let transitions = r1.stats.as_ref().unwrap().transitions;
        let report = FarmReport::consolidate(vec![r1, r2], 1, 0.0);
        assert_eq!(report.total_stats.transitions, 2 * transitions);
        assert_eq!(report.failures, 0);
        assert_eq!(report.quarantined, 0);
    }

    #[test]
    fn canonical_renderings_scrub_environment_fields() {
        let jobs: Vec<SimJob> = (0..2)
            .map(|i| SimJob::minirisc_random(i, 32, 20_000))
            .collect();
        let fast = FarmReport::consolidate(run_serial(&jobs), 1, 0.123);
        let wide = FarmReport::consolidate(run_serial(&jobs), 8, 9.876);
        assert_ne!(fast.to_string(), wide.to_string());
        assert_eq!(fast.canonical_text(), wide.canonical_text());
        assert_eq!(fast.canonical_json(), wide.canonical_json());
    }

    #[test]
    fn quarantined_jobs_get_their_own_section() {
        let mut chaos = SimJob::chaos_panic("boom");
        chaos.retries = 0;
        let jobs = vec![SimJob::minirisc_random(0, 32, 20_000), chaos];
        let report = FarmReport::consolidate(run_serial(&jobs), 1, 0.0);
        assert_eq!(report.failures, 1);
        assert_eq!(report.quarantined, 1);
        let text = report.to_string();
        assert!(text.contains("quarantine: 1 job(s)"), "{text}");
        assert!(text.contains("panicked"), "{text}");
        let json = report.to_json().to_string();
        assert!(json.contains("\"quarantined\":1"), "{json}");
    }

    #[test]
    fn partial_sweep_consolidates_with_pending_count() {
        let jobs: Vec<SimJob> = (0..4)
            .map(|i| SimJob::minirisc_random(i, 32, 20_000))
            .collect();
        let oracle = run_serial(&jobs);
        let completed: BTreeMap<usize, JobResult> =
            oracle.iter().take(2).cloned().enumerate().collect();
        let cancel = crate::supervise::CancelToken::new();
        cancel.cancel();
        let run = run_farm(
            &jobs,
            2,
            FarmOptions {
                cancel,
                completed,
                ..FarmOptions::default()
            },
        )
        .unwrap();
        let report = FarmReport::consolidate_sweep(&run, 2, 0.0);
        assert_eq!(report.jobs.len(), 2);
        assert_eq!(report.pending, 2);
        assert_eq!(report.restored, 2);
        assert!(report.to_string().contains("2 restored from journal, 2 pending"));
    }
}
