//! Deterministic result aggregation: the consolidated farm report.
//!
//! Results arrive from the farm already re-assembled in job-index order
//! ([`crate::run_parallel`]'s contract), and every merge below folds them in
//! that order, so the rendered report — text or JSON — is byte-identical
//! across runs and worker counts. 64-bit digests travel as hex strings in
//! the JSON form because JSON numbers are doubles.
//!
//! Two renderings exist: the operator one ([`fmt::Display`] / `to_json`),
//! which includes the worker count and wall time, and the **canonical** one
//! ([`FarmReport::canonical_text`] / [`FarmReport::canonical_json`]), which
//! scrubs those two environment-dependent fields. The canonical renderings
//! are the byte-identity contract: equal for the same job list whether the
//! sweep ran on 1 worker or 8, uninterrupted or killed-and-resumed. (Jobs
//! with wall-clock deadlines are the documented exception — see
//! [`crate::SimJob::deadline_ms`].)

use crate::job::{JobOutcome, JobResult};
use crate::observe::FarmSchedule;
use crate::queue::SweepRun;
use bench::json::Json;
use osm_core::Stats;
use std::collections::BTreeMap;
use std::fmt;

/// One fleet-wide stall cause: cycles charged to a `(manager, primitive)`
/// pair, summed across every job that carried a [`osm_core::MetricsReport`]
/// with stall attribution. A pure fold of per-job results in job-index
/// order, so it is deterministic and **canonical-safe** (unlike the
/// wall-clock material in [`FarmReport::timing_json`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetStallCause {
    /// Manager name as the model registered it.
    pub manager: String,
    /// The denied Λ-primitive (`alloc`/`inq`/`rel`/`disc`).
    pub op: String,
    /// Stall cycles charged across the whole sweep.
    pub cycles: u64,
}

/// The consolidated product of one sweep.
#[derive(Debug, Clone)]
pub struct FarmReport {
    /// Per-job results, in job-index order.
    pub jobs: Vec<JobResult>,
    /// Scheduler statistics summed over the OSM jobs, in job-index order.
    pub total_stats: Stats,
    /// Simulated cycles summed over every job.
    pub total_cycles: u64,
    /// Retired instructions/operations summed over every job.
    pub total_retired: u64,
    /// Jobs whose outcome is unhealthy (failed, panicked, stalled,
    /// deadline-exceeded or quarantined).
    pub failures: usize,
    /// Jobs the supervisor quarantined (a subset of `failures`).
    pub quarantined: usize,
    /// Jobs whose final outcome was a hard kill under process isolation
    /// ([`JobOutcome::Killed`], directly or as the last quarantined
    /// attempt). A subset of `failures`; a pure fold of outcomes, so
    /// canonical like the other counts.
    pub killed: usize,
    /// Jobs that restored from a durable mid-job checkpoint
    /// ([`JobResult::restored_from`]). Operational provenance — how the
    /// sweep got here, not what it computed — so the canonical renderings
    /// scrub it, exactly like `restored`.
    pub checkpoint_restores: usize,
    /// Jobs restored from a sweep journal instead of run in this process
    /// (0 for a fresh sweep).
    pub restored: usize,
    /// Jobs that never completed because the sweep was cancelled.
    pub pending: usize,
    /// Worker threads the sweep ran on (1 = serial).
    pub workers: usize,
    /// Wall-clock seconds for the whole sweep (0.0 when not measured).
    pub wall_seconds: f64,
    /// Fleet stall-cause roll-up: stall cycles by `(manager, primitive)`,
    /// folded from per-job metrics in job-index order, sorted by name.
    /// Empty when no job ran with observability. Deterministic.
    pub stall_causes: Vec<FleetStallCause>,
    /// The farm observer's schedule, when the sweep ran with one attached.
    /// Wall-clock derived and nondeterministic: rendered only by the
    /// operator [`fmt::Display`] and [`FarmReport::timing_json`], never by
    /// the canonical renderings.
    pub schedule: Option<FarmSchedule>,
}

impl FarmReport {
    /// Folds per-job results (already in job-index order) into the
    /// consolidated report.
    pub fn consolidate(jobs: Vec<JobResult>, workers: usize, wall_seconds: f64) -> FarmReport {
        let mut total_stats = Stats::new();
        let mut total_cycles = 0u64;
        let mut total_retired = 0u64;
        let mut failures = 0usize;
        let mut quarantined = 0usize;
        let mut killed = 0usize;
        let mut checkpoint_restores = 0usize;
        let mut causes: BTreeMap<(String, String), u64> = BTreeMap::new();
        for job in &jobs {
            total_cycles += job.cycles;
            total_retired += job.retired;
            if !job.is_ok() {
                failures += 1;
            }
            if matches!(job.outcome, JobOutcome::Quarantined { .. }) {
                quarantined += 1;
            }
            let was_killed = match &job.outcome {
                JobOutcome::Killed { .. } => true,
                JobOutcome::Quarantined { last, .. } => {
                    matches!(last.as_ref(), JobOutcome::Killed { .. })
                }
                _ => false,
            };
            if was_killed {
                killed += 1;
            }
            if job.restored_from.is_some() {
                checkpoint_restores += 1;
            }
            if let Some(stats) = &job.stats {
                total_stats.cycles += stats.cycles;
                total_stats.transitions += stats.transitions;
                total_stats.condition_failures += stats.condition_failures;
                total_stats.vetoed_edges += stats.vetoed_edges;
                total_stats.idle_steps += stats.idle_steps;
                total_stats.restarts += stats.restarts;
                for (name, value) in stats.named() {
                    total_stats.incr_dyn(name, value);
                }
            }
            if let Some(stalls) = job.metrics.as_ref().and_then(|m| m.stalls.as_ref()) {
                for cause in &stalls.by_manager {
                    *causes
                        .entry((cause.manager_name.clone(), cause.op.to_string()))
                        .or_insert(0) += cause.cycles;
                }
            }
        }
        let stall_causes = causes
            .into_iter()
            .map(|((manager, op), cycles)| FleetStallCause { manager, op, cycles })
            .collect();
        FarmReport {
            jobs,
            total_stats,
            total_cycles,
            total_retired,
            failures,
            quarantined,
            killed,
            checkpoint_restores,
            restored: 0,
            pending: 0,
            workers,
            wall_seconds,
            stall_causes,
            schedule: None,
        }
    }

    /// Folds a (possibly partial) supervised sweep: completed results in
    /// job-index order, with the restored and pending counts carried over.
    /// Deterministic for the same set of completed jobs regardless of how
    /// the sweep was interrupted.
    pub fn consolidate_sweep(run: &SweepRun, workers: usize, wall_seconds: f64) -> FarmReport {
        let restored = run.restored;
        let pending = run.pending().len();
        let jobs: Vec<JobResult> = run.completed.values().cloned().collect();
        let mut report = FarmReport::consolidate(jobs, workers, wall_seconds);
        report.restored = restored;
        report.pending = pending;
        report.schedule = run.schedule.clone();
        report
    }

    /// Simulated cycles per wall-clock second (the farm's headline
    /// throughput number); 0 when wall time was not measured.
    pub fn cycles_per_second(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.total_cycles as f64 / self.wall_seconds
        }
    }

    /// A copy with the environment-dependent fields (worker count, wall
    /// time, restored-from-journal count, observer schedule) scrubbed; the
    /// basis of the byte-identity gates. The deterministic roll-ups
    /// (`stall_causes`) survive — they are pure folds of job results.
    ///
    /// Also scrubbed: per-job attempt counts and checkpoint-restore
    /// provenance. A job killed mid-run (worker crash, `kill -9`) and then
    /// retried or resumed reaches the *same* final result as an
    /// uninterrupted run, but via more attempts and a mid-job restore —
    /// operational history, not computation, so it must not move a
    /// canonical byte.
    fn canonical(&self) -> FarmReport {
        let mut c = self.clone();
        c.workers = 0;
        c.wall_seconds = 0.0;
        c.restored = 0;
        c.checkpoint_restores = 0;
        c.schedule = None;
        for job in &mut c.jobs {
            job.attempts = 0;
            job.restored_from = None;
        }
        c
    }

    /// The canonical text rendering: byte-identical across worker counts
    /// and across interrupted-then-resumed vs uninterrupted sweeps of the
    /// same job list.
    pub fn canonical_text(&self) -> String {
        self.canonical().to_string()
    }

    /// The canonical JSON rendering (same contract as
    /// [`FarmReport::canonical_text`]).
    pub fn canonical_json(&self) -> String {
        self.canonical().to_json().to_string()
    }

    /// The report as a JSON document (digests as 16-digit hex strings).
    pub fn to_json(&self) -> Json {
        let jobs = self
            .jobs
            .iter()
            .map(|job| {
                let mut obj = BTreeMap::new();
                obj.insert("name".into(), Json::Str(job.name.clone()));
                obj.insert("model".into(), Json::Str(job.model.name().into()));
                obj.insert("workload".into(), Json::Str(job.workload.clone()));
                obj.insert("outcome".into(), Json::Str(job.outcome.label()));
                obj.insert("attempts".into(), Json::Num(f64::from(job.attempts)));
                obj.insert("cycles".into(), Json::lossless_u64(job.cycles));
                obj.insert("retired".into(), Json::lossless_u64(job.retired));
                obj.insert("exit_code".into(), Json::Num(f64::from(job.exit_code)));
                obj.insert("digest".into(), Json::Str(format!("{:016x}", job.digest)));
                if let Some(cycle) = job.restored_from {
                    obj.insert("restored_from".into(), Json::lossless_u64(cycle));
                }
                if let Some(stats) = &job.stats {
                    obj.insert("transitions".into(), Json::lossless_u64(stats.transitions));
                    obj.insert("idle_steps".into(), Json::lossless_u64(stats.idle_steps));
                }
                if let Some(metrics) = &job.metrics {
                    let mut m = BTreeMap::new();
                    m.insert("completions".into(), Json::lossless_u64(metrics.completions));
                    m.insert("token_grants".into(), Json::lossless_u64(metrics.token_grants));
                    m.insert(
                        "token_denials".into(),
                        Json::lossless_u64(metrics.token_denials),
                    );
                    obj.insert("metrics".into(), Json::Obj(m));
                }
                if let Some(faults) = &job.fault_stats {
                    obj.insert("faults_injected".into(), Json::lossless_u64(faults.total()));
                }
                Json::Obj(obj)
            })
            .collect();
        let mut totals = BTreeMap::new();
        totals.insert("cycles".into(), Json::lossless_u64(self.total_cycles));
        totals.insert("retired".into(), Json::lossless_u64(self.total_retired));
        totals.insert(
            "transitions".into(),
            Json::lossless_u64(self.total_stats.transitions),
        );
        totals.insert("failures".into(), Json::Num(self.failures as f64));
        totals.insert("quarantined".into(), Json::Num(self.quarantined as f64));
        totals.insert("killed".into(), Json::Num(self.killed as f64));
        totals.insert("pending".into(), Json::Num(self.pending as f64));
        let mut root = BTreeMap::new();
        root.insert("jobs".into(), Json::Arr(jobs));
        root.insert("totals".into(), Json::Obj(totals));
        root.insert("workers".into(), Json::Num(self.workers as f64));
        root.insert("restored".into(), Json::Num(self.restored as f64));
        root.insert(
            "checkpoint_restores".into(),
            Json::Num(self.checkpoint_restores as f64),
        );
        root.insert("wall_seconds".into(), Json::Num(self.wall_seconds));
        // Omitted (not 0) when wall time was never measured: a sweep
        // consolidated with `wall_seconds: 0.0` has no throughput to claim.
        if self.wall_seconds > 0.0 {
            root.insert(
                "cycles_per_second".into(),
                Json::Num(self.cycles_per_second()),
            );
        }
        if !self.stall_causes.is_empty() {
            root.insert("stall_causes".into(), self.stall_causes_json());
        }
        Json::Obj(root)
    }

    fn stall_causes_json(&self) -> Json {
        Json::Arr(
            self.stall_causes
                .iter()
                .map(|c| {
                    let mut obj = BTreeMap::new();
                    obj.insert("manager".into(), Json::Str(c.manager.clone()));
                    obj.insert("op".into(), Json::Str(c.op.clone()));
                    obj.insert("cycles".into(), Json::lossless_u64(c.cycles));
                    Json::Obj(obj)
                })
                .collect(),
        )
    }

    /// The fleet timing rendering: per-worker utilization, per-job wall
    /// time with setup/sim/teardown breakdown, and wall-time / cycles-per-
    /// second histograms across jobs. **Explicitly non-canonical** — every
    /// number here is wall-clock derived and varies run to run; the
    /// rendering exists for operators and dashboards, never for the
    /// byte-identity gates. `None` when the sweep ran without a
    /// [`crate::FarmObserver`]. Validated against
    /// `schemas/farm_metrics.schema.json` in CI.
    pub fn timing_json(&self) -> Option<Json> {
        let schedule = self.schedule.as_ref()?;
        let workers = schedule
            .workers
            .iter()
            .map(|w| {
                let mut obj = BTreeMap::new();
                obj.insert("worker".into(), Json::Num(w.worker as f64));
                obj.insert("busy_ms".into(), Json::Num(w.busy_ns as f64 / 1e6));
                obj.insert("idle_ms".into(), Json::Num(w.idle_ns as f64 / 1e6));
                obj.insert("own_pops".into(), Json::Num(w.own_pops as f64));
                obj.insert("steals".into(), Json::Num(w.steals as f64));
                obj.insert(
                    "jobs_completed".into(),
                    Json::Num(w.jobs_completed as f64),
                );
                obj.insert("utilization".into(), Json::Num(w.utilization()));
                Json::Obj(obj)
            })
            .collect();
        let mut wall_ms = Vec::new();
        let mut rates = Vec::new();
        let jobs = schedule
            .spans
            .iter()
            .map(|span| {
                let ms = span.wall_ns() as f64 / 1e6;
                wall_ms.push(ms);
                let mut obj = BTreeMap::new();
                obj.insert("index".into(), Json::Num(span.index as f64));
                obj.insert("name".into(), Json::Str(span.name.clone()));
                obj.insert("worker".into(), Json::Num(span.worker as f64));
                obj.insert("stolen".into(), Json::Bool(span.stolen));
                obj.insert("outcome".into(), Json::Str(span.outcome.clone()));
                obj.insert("wall_ms".into(), Json::Num(ms));
                obj.insert(
                    "attempts".into(),
                    Json::Num(span.attempts.len().max(1) as f64),
                );
                let timing = span
                    .attempts
                    .iter()
                    .map(|a| a.timing)
                    .fold(crate::observe::JobTiming::default(), |mut acc, t| {
                        acc.setup_ns += t.setup_ns;
                        acc.sim_ns += t.sim_ns;
                        acc.teardown_ns += t.teardown_ns;
                        acc
                    });
                obj.insert("setup_ms".into(), Json::Num(timing.setup_ns as f64 / 1e6));
                obj.insert("sim_ms".into(), Json::Num(timing.sim_ns as f64 / 1e6));
                obj.insert(
                    "teardown_ms".into(),
                    Json::Num(timing.teardown_ns as f64 / 1e6),
                );
                obj.insert("cycles".into(), Json::lossless_u64(span.cycles));
                if span.wall_ns() > 0 {
                    let rate = span.cycles as f64 / (span.wall_ns() as f64 / 1e9);
                    rates.push(rate);
                    obj.insert("cycles_per_sec".into(), Json::Num(rate));
                }
                Json::Obj(obj)
            })
            .collect();
        let mut histograms = BTreeMap::new();
        histograms.insert(
            "job_wall_ms".into(),
            histogram_json(&wall_ms, &[0.1, 1.0, 10.0, 100.0, 1_000.0, 10_000.0, 60_000.0]),
        );
        histograms.insert(
            "job_cycles_per_sec".into(),
            histogram_json(&rates, &[1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9]),
        );
        let mut root = BTreeMap::new();
        root.insert("nondeterministic".into(), Json::Bool(true));
        root.insert(
            "wall_seconds".into(),
            Json::Num(schedule.wall_ns as f64 / 1e9),
        );
        root.insert("jobs_total".into(), Json::Num(schedule.jobs_total as f64));
        root.insert("workers".into(), Json::Arr(workers));
        root.insert("jobs".into(), Json::Arr(jobs));
        root.insert("histograms".into(), Json::Obj(histograms));
        root.insert("stall_causes".into(), self.stall_causes_json());
        Some(Json::Obj(root))
    }

    /// The concise human summary the CLI prints by default: headline,
    /// quarantine list, totals, throughput, top fleet stall causes, and
    /// (when the sweep was observed) the per-worker utilization table. The
    /// full per-job table stays on [`fmt::Display`] (`--json` for the
    /// machine form).
    pub fn summary_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "simfarm: {} jobs on {} worker(s), {:.2}s wall, {} failure(s)",
            self.jobs.len(),
            self.workers,
            self.wall_seconds,
            self.failures
        );
        if self.restored > 0 || self.pending > 0 {
            let _ = writeln!(
                out,
                "resume: {} restored from journal, {} pending",
                self.restored, self.pending
            );
        }
        if self.checkpoint_restores > 0 {
            let _ = writeln!(
                out,
                "checkpoints: {} job(s) resumed mid-job from durable checkpoints",
                self.checkpoint_restores
            );
        }
        if self.quarantined > 0 {
            let _ = writeln!(out, "quarantine: {} job(s)", self.quarantined);
            for job in &self.jobs {
                if matches!(job.outcome, JobOutcome::Quarantined { .. }) {
                    let _ = writeln!(out, "    {} — {}", job.name, job.outcome.label());
                }
            }
        }
        if self.killed > 0 {
            let _ = writeln!(out, "killed: {} job(s) died under process isolation", self.killed);
        }
        let _ = writeln!(
            out,
            "totals: {} cycles, {} retired, {} transitions",
            self.total_cycles, self.total_retired, self.total_stats.transitions
        );
        if self.wall_seconds > 0.0 {
            let _ = writeln!(
                out,
                "throughput: {:.0} simulated cycles/s",
                self.cycles_per_second()
            );
        }
        if !self.stall_causes.is_empty() {
            let mut ranked: Vec<&FleetStallCause> = self.stall_causes.iter().collect();
            ranked.sort_by(|a, b| {
                b.cycles
                    .cmp(&a.cycles)
                    .then_with(|| (&a.manager, &a.op).cmp(&(&b.manager, &b.op)))
            });
            let _ = writeln!(out, "stall causes (fleet, top {}):", ranked.len().min(3));
            for cause in ranked.iter().take(3) {
                let _ = writeln!(
                    out,
                    "    {}({}): {} cycles",
                    cause.op, cause.manager, cause.cycles
                );
            }
        }
        if let Some(schedule) = &self.schedule {
            let _ = writeln!(out, "workers (timing, non-canonical):");
            for w in &schedule.workers {
                let _ = writeln!(
                    out,
                    "    worker {}: {:>5.1}% busy, {} job(s) ({} own, {} stolen)",
                    w.worker,
                    w.utilization() * 100.0,
                    w.jobs_completed,
                    w.own_pops,
                    w.steals
                );
            }
        }
        out
    }
}

/// Bucket counts for `values` against ascending upper bounds `le`, plus an
/// overflow bucket (`counts.len() == le.len() + 1`).
fn histogram_json(values: &[f64], le: &[f64]) -> Json {
    let mut counts = vec![0u64; le.len() + 1];
    for &v in values {
        let slot = le.iter().position(|&bound| v <= bound).unwrap_or(le.len());
        counts[slot] += 1;
    }
    let mut obj = BTreeMap::new();
    obj.insert(
        "le".into(),
        Json::Arr(le.iter().map(|&b| Json::Num(b)).collect()),
    );
    obj.insert(
        "counts".into(),
        Json::Arr(counts.into_iter().map(|c| Json::Num(c as f64)).collect()),
    );
    Json::Obj(obj)
}

/// One-word table marker for a job's outcome.
fn marker(outcome: &JobOutcome) -> &'static str {
    match outcome {
        JobOutcome::Halted => "",
        JobOutcome::BudgetExhausted => " (budget)",
        JobOutcome::Failed(_) => " (FAILED)",
        JobOutcome::Panicked { .. } => " (PANICKED)",
        JobOutcome::Killed { .. } => " (KILLED)",
        JobOutcome::Stalled(_) => " (STALLED)",
        JobOutcome::DeadlineExceeded { .. } => " (DEADLINE)",
        JobOutcome::Quarantined { .. } => " (QUARANTINED)",
    }
}

impl fmt::Display for FarmReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "simfarm: {} jobs on {} worker(s), {:.2}s wall, {} failure(s)",
            self.jobs.len(),
            self.workers,
            self.wall_seconds,
            self.failures
        )?;
        if self.restored > 0 || self.pending > 0 {
            writeln!(
                f,
                "resume: {} restored from journal, {} pending",
                self.restored, self.pending
            )?;
        }
        if self.checkpoint_restores > 0 {
            writeln!(
                f,
                "checkpoints: {} job(s) resumed mid-job from durable checkpoints",
                self.checkpoint_restores
            )?;
        }
        writeln!(
            f,
            "{:<28} {:<10} {:>10} {:>10} {:>5}  digest",
            "job", "model", "cycles", "retired", "exit"
        )?;
        for job in &self.jobs {
            writeln!(
                f,
                "{:<28} {:<10} {:>10} {:>10} {:>5}  {:016x}{}",
                job.name,
                job.model,
                job.cycles,
                job.retired,
                job.exit_code,
                job.digest,
                marker(&job.outcome)
            )?;
            if !job.outcome.is_healthy() {
                writeln!(f, "    outcome: {}", job.outcome.label())?;
            }
        }
        if self.quarantined > 0 {
            writeln!(f, "quarantine: {} job(s)", self.quarantined)?;
            for job in &self.jobs {
                if matches!(job.outcome, JobOutcome::Quarantined { .. }) {
                    writeln!(f, "    {} — {}", job.name, job.outcome.label())?;
                }
            }
        }
        if self.killed > 0 {
            writeln!(f, "killed: {} job(s) died under process isolation", self.killed)?;
        }
        writeln!(
            f,
            "totals: {} cycles, {} retired, {} transitions",
            self.total_cycles, self.total_retired, self.total_stats.transitions
        )?;
        if self.wall_seconds > 0.0 {
            writeln!(f, "throughput: {:.0} simulated cycles/s", self.cycles_per_second())?;
        }
        if !self.stall_causes.is_empty() {
            writeln!(f, "stall causes (fleet):")?;
            for cause in &self.stall_causes {
                writeln!(
                    f,
                    "    {}({}): {} cycles",
                    cause.op, cause.manager, cause.cycles
                )?;
            }
        }
        if let Some(schedule) = &self.schedule {
            writeln!(f, "workers (timing, non-canonical):")?;
            for w in &schedule.workers {
                writeln!(
                    f,
                    "    worker {}: {:>5.1}% busy, {} job(s) ({} own, {} stolen)",
                    w.worker,
                    w.utilization() * 100.0,
                    w.jobs_completed,
                    w.own_pops,
                    w.steals
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{run_job, SimJob};
    use crate::queue::{run_farm, run_serial, FarmOptions};

    #[test]
    fn report_renders_and_serializes_deterministically() {
        let jobs: Vec<SimJob> = (0..3)
            .map(|i| SimJob::minirisc_random(i, 32, 20_000))
            .collect();
        let a = FarmReport::consolidate(run_serial(&jobs), 1, 0.0);
        let b = FarmReport::consolidate(run_serial(&jobs), 1, 0.0);
        assert_eq!(a.to_json().to_string(), b.to_json().to_string());
        assert_eq!(a.to_string(), b.to_string());
        // The JSON round-trips through the bench parser.
        let parsed = bench::json::parse(&a.to_json().to_string()).unwrap();
        assert_eq!(
            parsed.get("jobs").unwrap().as_arr().unwrap().len(),
            3
        );
    }

    #[test]
    fn totals_sum_stats_across_osm_jobs() {
        let job = SimJob::new(
            crate::job::ModelKind::Vliw,
            crate::job::WorkloadSpec::Ilp { iters: 20, body: 4 },
            100_000,
        );
        let r1 = run_job(&job);
        let r2 = run_job(&job);
        let transitions = r1.stats.as_ref().unwrap().transitions;
        let report = FarmReport::consolidate(vec![r1, r2], 1, 0.0);
        assert_eq!(report.total_stats.transitions, 2 * transitions);
        assert_eq!(report.failures, 0);
        assert_eq!(report.quarantined, 0);
    }

    #[test]
    fn canonical_renderings_scrub_environment_fields() {
        let jobs: Vec<SimJob> = (0..2)
            .map(|i| SimJob::minirisc_random(i, 32, 20_000))
            .collect();
        let fast = FarmReport::consolidate(run_serial(&jobs), 1, 0.123);
        let wide = FarmReport::consolidate(run_serial(&jobs), 8, 9.876);
        assert_ne!(fast.to_string(), wide.to_string());
        assert_eq!(fast.canonical_text(), wide.canonical_text());
        assert_eq!(fast.canonical_json(), wide.canonical_json());
    }

    #[test]
    fn quarantined_jobs_get_their_own_section() {
        let mut chaos = SimJob::chaos_panic("boom");
        chaos.retries = 0;
        let jobs = vec![SimJob::minirisc_random(0, 32, 20_000), chaos];
        let report = FarmReport::consolidate(run_serial(&jobs), 1, 0.0);
        assert_eq!(report.failures, 1);
        assert_eq!(report.quarantined, 1);
        let text = report.to_string();
        assert!(text.contains("quarantine: 1 job(s)"), "{text}");
        assert!(text.contains("panicked"), "{text}");
        let json = report.to_json().to_string();
        assert!(json.contains("\"quarantined\":1"), "{json}");
    }

    #[test]
    fn json_omits_cycles_per_second_when_wall_unmeasured() {
        let jobs = vec![SimJob::minirisc_random(0, 32, 20_000)];
        let results = run_serial(&jobs);
        let unmeasured = FarmReport::consolidate(results.clone(), 1, 0.0);
        let json = unmeasured.to_json().to_string();
        assert!(
            !json.contains("cycles_per_second"),
            "unmeasured wall must omit the field, not claim 0: {json}"
        );
        let measured = FarmReport::consolidate(results, 1, 2.0);
        let parsed = bench::json::parse(&measured.to_json().to_string()).unwrap();
        let rate = parsed.get("cycles_per_second").unwrap().as_num().unwrap();
        assert!((rate - measured.total_cycles as f64 / 2.0).abs() < 1e-9);
    }

    /// Regression: the text renderings (`Display`, `summary_text`) must
    /// mirror the JSON side's guard and omit the throughput line entirely
    /// when wall time was never measured — `total_cycles / 0.0` would
    /// otherwise print `inf` cycles/s.
    #[test]
    fn text_paths_omit_throughput_when_wall_unmeasured() {
        let jobs = vec![SimJob::minirisc_random(0, 32, 20_000)];
        let results = run_serial(&jobs);
        let unmeasured = FarmReport::consolidate(results.clone(), 1, 0.0);
        assert_eq!(unmeasured.cycles_per_second(), 0.0);
        for text in [unmeasured.to_string(), unmeasured.summary_text()] {
            assert!(!text.contains("throughput"), "{text}");
            assert!(!text.contains("inf"), "{text}");
        }
        let measured = FarmReport::consolidate(results, 1, 2.0);
        assert!(measured.to_string().contains("throughput:"));
        assert!(measured.summary_text().contains("throughput:"));
    }

    /// Regression: u64 counters above 2^53 must survive the JSON rendering
    /// losslessly (hex-string fallback) instead of silently rounding
    /// through `f64`.
    #[test]
    fn json_counters_above_2_pow_53_stay_lossless() {
        let big = (1u64 << 53) + 1; // odd: rounds to 2^53 under `as f64`
        let mut result = run_job(&SimJob::minirisc_random(0, 32, 20_000));
        result.cycles = big;
        let mut report = FarmReport::consolidate(vec![result], 1, 0.0);
        report.total_cycles = big;
        report.stall_causes = vec![FleetStallCause {
            manager: "mf".into(),
            op: "alloc".into(),
            cycles: big,
        }];
        let parsed = bench::json::parse(&report.to_json().to_string()).unwrap();
        let job = &parsed.get("jobs").unwrap().as_arr().unwrap()[0];
        assert_eq!(job.get("cycles").unwrap().lossless_as_u64(), Some(big));
        assert_eq!(
            parsed.get("totals").unwrap().get("cycles").unwrap().lossless_as_u64(),
            Some(big)
        );
        let cause = &parsed.get("stall_causes").unwrap().as_arr().unwrap()[0];
        assert_eq!(cause.get("cycles").unwrap().lossless_as_u64(), Some(big));
        // Small counters keep the plain-number spelling (schema back-compat).
        assert!(matches!(
            parsed.get("totals").unwrap().get("retired").unwrap(),
            Json::Num(_)
        ));
    }

    #[test]
    fn stall_causes_fold_across_jobs_and_stay_canonical() {
        let mut job = SimJob::new(
            crate::job::ModelKind::Sa1100,
            crate::job::WorkloadSpec::Named("specint".into()),
            20_000,
        );
        job.observability = true;
        let r = run_job(&job);
        assert!(r.metrics.as_ref().and_then(|m| m.stalls.as_ref()).is_some());
        let single = FarmReport::consolidate(vec![r.clone()], 1, 0.0);
        let double = FarmReport::consolidate(vec![r.clone(), r], 1, 0.0);
        assert!(!single.stall_causes.is_empty(), "specint on SA-1100 stalls");
        assert_eq!(single.stall_causes.len(), double.stall_causes.len());
        for (s, d) in single.stall_causes.iter().zip(&double.stall_causes) {
            assert_eq!(s.manager, d.manager);
            assert_eq!(s.op, d.op);
            assert_eq!(2 * s.cycles, d.cycles, "{}({})", s.op, s.manager);
        }
        // The roll-up is deterministic, so it lives in the canonical text.
        assert!(single.canonical_text().contains("stall causes (fleet):"));
        assert!(single.canonical_json().contains("\"stall_causes\""));
    }

    #[test]
    fn timing_json_exists_only_with_a_schedule_and_stays_out_of_canonical() {
        let jobs: Vec<SimJob> = (0..3)
            .map(|i| SimJob::minirisc_random(i, 32, 20_000))
            .collect();
        let plain = FarmReport::consolidate(run_serial(&jobs), 1, 0.0);
        assert!(plain.timing_json().is_none());

        let run = run_farm(
            &jobs,
            2,
            FarmOptions {
                observer: Some(crate::observe::FarmObserver::new()),
                ..FarmOptions::default()
            },
        )
        .unwrap();
        let observed = FarmReport::consolidate_sweep(&run, 2, 0.5);
        let timing = observed.timing_json().expect("schedule attached");
        let parsed = bench::json::parse(&timing.to_string()).unwrap();
        assert_eq!(parsed.get("nondeterministic").unwrap().as_bool(), Some(true));
        assert_eq!(parsed.get("jobs").unwrap().as_arr().unwrap().len(), 3);
        let hist = parsed.get("histograms").unwrap().get("job_wall_ms").unwrap();
        let le = hist.get("le").unwrap().as_arr().unwrap().len();
        let counts = hist.get("counts").unwrap().as_arr().unwrap();
        assert_eq!(counts.len(), le + 1, "overflow bucket");
        let total: f64 = counts.iter().map(|c| c.as_num().unwrap()).sum();
        assert_eq!(total as usize, 3, "every job lands in one bucket");
        // The operator rendering shows the utilization table; the canonical
        // one must not (timing is nondeterministic).
        assert!(observed.to_string().contains("workers (timing, non-canonical):"));
        assert!(!observed.canonical_text().contains("non-canonical"));
        assert_eq!(observed.canonical_text(), plain.canonical_text());
        assert_eq!(observed.canonical_json(), plain.canonical_json());
    }

    #[test]
    fn summary_text_is_concise_and_covers_quarantine() {
        let mut chaos = SimJob::chaos_panic("boom");
        chaos.retries = 0;
        let jobs = vec![SimJob::minirisc_random(0, 32, 20_000), chaos];
        let report = FarmReport::consolidate(run_serial(&jobs), 2, 1.5);
        let summary = report.summary_text();
        assert!(summary.starts_with("simfarm: 2 jobs on 2 worker(s)"), "{summary}");
        assert!(summary.contains("quarantine: 1 job(s)"), "{summary}");
        assert!(summary.contains("throughput:"), "{summary}");
        // Unlike Display, no per-job digest table.
        assert!(!summary.contains("digest"), "{summary}");
    }

    #[test]
    fn partial_sweep_consolidates_with_pending_count() {
        let jobs: Vec<SimJob> = (0..4)
            .map(|i| SimJob::minirisc_random(i, 32, 20_000))
            .collect();
        let oracle = run_serial(&jobs);
        let completed: BTreeMap<usize, JobResult> =
            oracle.iter().take(2).cloned().enumerate().collect();
        let cancel = crate::supervise::CancelToken::new();
        cancel.cancel();
        let run = run_farm(
            &jobs,
            2,
            FarmOptions {
                cancel,
                completed,
                ..FarmOptions::default()
            },
        )
        .unwrap();
        let report = FarmReport::consolidate_sweep(&run, 2, 0.0);
        assert_eq!(report.jobs.len(), 2);
        assert_eq!(report.pending, 2);
        assert_eq!(report.restored, 2);
        assert!(report.to_string().contains("2 restored from journal, 2 pending"));
    }
}
