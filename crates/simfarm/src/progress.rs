//! Live sweep progress: a throttled terminal status line, periodic
//! heartbeat snapshots, and a channel for operator-facing notices (wall
//! budget expiry, cancellation) that carries elapsed-time and
//! jobs-completed context.
//!
//! All output goes to **stderr** — stdout stays reserved for the report
//! renderings (`--json`, the default summary), so piping `simfarm` output
//! composes with progress display. The meter is shared (`Arc` inside) and
//! thread-safe: the coordinator thread records completions from the
//! `on_result` hook, a heartbeat thread snapshots it on an interval, and
//! timer threads route notices through it.

use crate::job::JobResult;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Minimum milliseconds between live-line redraws, so a sweep of thousands
/// of sub-millisecond jobs does not turn the terminal into the bottleneck.
const REDRAW_EVERY_MS: u64 = 100;

/// Renders a cycle rate compactly (`873`, `12.3k`, `4.56M`, `1.20G`).
fn human_rate(cycles_per_sec: f64) -> String {
    if cycles_per_sec >= 1e9 {
        format!("{:.2}G", cycles_per_sec / 1e9)
    } else if cycles_per_sec >= 1e6 {
        format!("{:.2}M", cycles_per_sec / 1e6)
    } else if cycles_per_sec >= 1e3 {
        format!("{:.1}k", cycles_per_sec / 1e3)
    } else {
        format!("{cycles_per_sec:.0}")
    }
}

/// The status-line text for a given meter state. Pure so the format is
/// testable without a terminal: `done`/`total`/`quarantined` are job
/// counts, `cycles` the simulated cycles completed so far, `elapsed_s`
/// wall seconds since the sweep started.
fn render_line(done: u64, total: u64, quarantined: u64, cycles: u64, elapsed_s: f64) -> String {
    let mut line = format!("simfarm: {done}/{total} jobs");
    if quarantined > 0 {
        line.push_str(&format!(" ({quarantined} quarantined)"));
    }
    if elapsed_s > 0.0 {
        line.push_str(&format!(" | {} cycles/s", human_rate(cycles as f64 / elapsed_s)));
        if done > 0 && done < total {
            let eta = elapsed_s / done as f64 * (total - done) as f64;
            line.push_str(&format!(" | ETA {eta:.1}s"));
        }
    }
    line.push_str(&format!(" | {elapsed_s:.1}s elapsed"));
    line
}

/// Shared progress state for one sweep. Cloning shares the counters.
#[derive(Debug, Clone)]
pub struct ProgressMeter {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    start: Instant,
    total: u64,
    done: AtomicU64,
    quarantined: AtomicU64,
    cycles: AtomicU64,
    /// Draw the throttled `\r` status line on each completion.
    live: bool,
    /// ms-since-start of the last live redraw (throttle state).
    last_redraw_ms: AtomicU64,
    /// True while the live line occupies the cursor row (a note or
    /// heartbeat must terminate it with a newline before printing).
    line_open: AtomicBool,
    /// Serializes stderr writes across coordinator/heartbeat/timer threads.
    write: Mutex<()>,
}

impl ProgressMeter {
    /// A meter for a sweep of `total` jobs (restored jobs count as done —
    /// pass them via [`ProgressMeter::record_restored`]). `live` enables
    /// the redrawn `\r` status line; notes and heartbeats work either way.
    pub fn new(total: usize, live: bool) -> ProgressMeter {
        ProgressMeter {
            inner: Arc::new(Inner {
                start: Instant::now(),
                total: total as u64,
                done: AtomicU64::new(0),
                quarantined: AtomicU64::new(0),
                cycles: AtomicU64::new(0),
                live,
                last_redraw_ms: AtomicU64::new(0),
                line_open: AtomicBool::new(false),
                write: Mutex::new(()),
            }),
        }
    }

    /// Seconds since the meter was created.
    pub fn elapsed_seconds(&self) -> f64 {
        self.inner.start.elapsed().as_secs_f64()
    }

    /// Jobs recorded so far (restored + completed).
    pub fn done(&self) -> u64 {
        self.inner.done.load(Ordering::Relaxed)
    }

    /// Counts jobs restored from a journal without redrawing.
    pub fn record_restored(&self, count: usize) {
        self.inner.done.fetch_add(count as u64, Ordering::Relaxed);
    }

    /// Records one completed job and, in live mode, redraws the status
    /// line (throttled). Called from the farm's `on_result` hook.
    pub fn record(&self, result: &JobResult) {
        self.inner.done.fetch_add(1, Ordering::Relaxed);
        self.inner.cycles.fetch_add(result.cycles, Ordering::Relaxed);
        if matches!(result.outcome, crate::job::JobOutcome::Quarantined { .. }) {
            self.inner.quarantined.fetch_add(1, Ordering::Relaxed);
        }
        if self.inner.live {
            self.redraw(false);
        }
    }

    /// The current status-line text (also the heartbeat snapshot body).
    pub fn status_line(&self) -> String {
        render_line(
            self.done(),
            self.inner.total,
            self.inner.quarantined.load(Ordering::Relaxed),
            self.inner.cycles.load(Ordering::Relaxed),
            self.elapsed_seconds(),
        )
    }

    fn redraw(&self, force: bool) {
        let now_ms = u64::try_from(self.inner.start.elapsed().as_millis()).unwrap_or(u64::MAX);
        let last = self.inner.last_redraw_ms.load(Ordering::Relaxed);
        let due = force
            || now_ms.saturating_sub(last) >= REDRAW_EVERY_MS
            || self.done() >= self.inner.total;
        if !due
            || self
                .inner
                .last_redraw_ms
                .compare_exchange(last, now_ms, Ordering::Relaxed, Ordering::Relaxed)
                .is_err()
        {
            return;
        }
        let line = self.status_line();
        let _guard = self.inner.write.lock().unwrap_or_else(|p| p.into_inner());
        self.inner.line_open.store(true, Ordering::Relaxed);
        eprint!("\r{line}\x1b[K");
    }

    /// Prints one heartbeat snapshot as its own stderr line. Driven by the
    /// CLI's heartbeat thread on a fixed interval.
    pub fn heartbeat(&self) {
        let line = self.status_line();
        let _guard = self.inner.write.lock().unwrap_or_else(|p| p.into_inner());
        if self.inner.line_open.swap(false, Ordering::Relaxed) {
            eprintln!();
        }
        eprintln!("{line}");
    }

    /// Routes an operator notice (wall-budget expiry, cancellation, ...)
    /// through the progress channel: the message is printed on its own
    /// line, prefixed with elapsed time and jobs-completed context, without
    /// corrupting a live status line.
    pub fn note(&self, msg: &str) {
        let context = format!(
            "simfarm: [{:.1}s, {}/{} jobs] {msg}",
            self.elapsed_seconds(),
            self.done(),
            self.inner.total
        );
        let _guard = self.inner.write.lock().unwrap_or_else(|p| p.into_inner());
        if self.inner.line_open.swap(false, Ordering::Relaxed) {
            eprintln!();
        }
        eprintln!("{context}");
    }

    /// Ends live display: draws the final counts and closes the line.
    pub fn finish(&self) {
        if !self.inner.live {
            return;
        }
        self.redraw(true);
        let _guard = self.inner.write.lock().unwrap_or_else(|p| p.into_inner());
        if self.inner.line_open.swap(false, Ordering::Relaxed) {
            eprintln!();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobOutcome, JobResult, SimJob};

    fn result(outcome: JobOutcome, cycles: u64) -> JobResult {
        let mut r = JobResult::aborted(&SimJob::chaos_panic("x"), outcome);
        r.cycles = cycles;
        r
    }

    #[test]
    fn render_line_covers_the_advertised_fields() {
        let line = render_line(37, 100, 2, 12_600_000, 10.0);
        assert_eq!(
            line,
            "simfarm: 37/100 jobs (2 quarantined) | 1.26M cycles/s | ETA 17.0s | 10.0s elapsed"
        );
        // No rate or ETA before the clock moves; no quarantine note when clean.
        assert_eq!(render_line(0, 8, 0, 0, 0.0), "simfarm: 0/8 jobs | 0.0s elapsed");
        // A finished sweep drops the ETA but keeps the rate.
        let done = render_line(8, 8, 0, 8_000, 2.0);
        assert!(done.contains("8/8 jobs | 4.0k cycles/s | 2.0s elapsed"), "{done}");
    }

    /// Regression: a first-tick render (`elapsed_s == 0.0`) or a snapshot
    /// with no completions (`done == 0`) must never print `inf`/`NaN`
    /// cycles/s or ETA — the rate needs `elapsed_s > 0`, the ETA divides
    /// by `done`. Both divisions are guarded; pin the rendered lines.
    #[test]
    fn render_line_never_prints_inf_or_nan() {
        // First tick: zero elapsed, zero done — no rate, no ETA.
        let first_tick = render_line(0, 8, 0, 0, 0.0);
        assert_eq!(first_tick, "simfarm: 0/8 jobs | 0.0s elapsed");
        // Clock moved but nothing finished: rate is fine (0/elapsed), but
        // the ETA (elapsed/done) must stay suppressed.
        let no_done = render_line(0, 8, 0, 0, 1.5);
        assert_eq!(no_done, "simfarm: 0/8 jobs | 0 cycles/s | 1.5s elapsed");
        // Cycles recorded while elapsed is still zero (sub-resolution
        // first completion): rate division must stay suppressed.
        let fast_first = render_line(1, 8, 0, 1_000, 0.0);
        assert_eq!(fast_first, "simfarm: 1/8 jobs | 0.0s elapsed");
        for line in [first_tick, no_done, fast_first] {
            assert!(!line.contains("inf") && !line.contains("NaN"), "{line}");
        }
    }

    /// Regression companion: a freshly-created meter's own status line (the
    /// heartbeat body) goes through the same guards end to end.
    #[test]
    fn fresh_meter_status_line_is_finite() {
        let meter = ProgressMeter::new(4, false);
        let line = meter.status_line();
        assert!(line.starts_with("simfarm: 0/4 jobs"), "{line}");
        assert!(!line.contains("inf") && !line.contains("NaN"), "{line}");
        assert!(!line.contains("ETA"), "{line}");
    }

    #[test]
    fn human_rate_scales() {
        assert_eq!(human_rate(950.0), "950");
        assert_eq!(human_rate(12_300.0), "12.3k");
        assert_eq!(human_rate(4_560_000.0), "4.56M");
        assert_eq!(human_rate(1.2e9), "1.20G");
    }

    #[test]
    fn meter_counts_completions_and_quarantines() {
        let meter = ProgressMeter::new(3, false);
        assert_eq!(meter.done(), 0);
        meter.record(&result(JobOutcome::Halted, 100));
        meter.record(&result(
            JobOutcome::Quarantined {
                attempts: 2,
                last: Box::new(JobOutcome::Panicked {
                    payload: "p".into(),
                    backtrace: None,
                }),
            },
            0,
        ));
        meter.record_restored(1);
        assert_eq!(meter.done(), 3);
        let line = meter.status_line();
        assert!(line.starts_with("simfarm: 3/3 jobs (1 quarantined)"), "{line}");
    }
}
