//! # simfarm — a sharded parallel simulation farm over the OSM models
//!
//! Every OSM machine instance is fully independent: a simulation *job*
//! (model × workload × config × seed × observability flags) owns its whole
//! [`osm_core::Machine`], so a sweep of jobs shards perfectly across
//! threads. This crate provides:
//!
//! * [`SimJob`] — one self-contained simulation over any of the four machine
//!   models (SA-1100 OSM, PPC-750 OSM, MiniRISC ISS, VLIW OSM);
//! * [`run_parallel`] — a work-stealing `std::thread` farm executing a job
//!   list across worker threads;
//! * [`run_serial`] — the single-thread oracle the farm is checked against;
//! * [`FarmReport`] — deterministic aggregation: per-job FNV trace digests,
//!   [`osm_core::Stats`] and [`osm_core::MetricsReport`]s merged in
//!   **job-index order**, regardless of completion order.
//!
//! ## The determinism argument
//!
//! Sharding is at *job* granularity: a job's machine is constructed, run and
//! torn down entirely on one worker thread, and no two jobs share any
//! mutable state. Token transactions therefore never interleave across
//! threads — each director runs its sequential Fig. 3 schedule exactly as it
//! would alone — so every per-job trace digest is bit-identical to the same
//! job's serial-run digest, and the aggregated report (written in job-index
//! order) is byte-identical however the jobs were scheduled. The
//! `simfarm_smoke` binary enforces this equivalence in CI.
//!
//! ## Quickstart
//!
//! ```
//! use simfarm::{run_parallel, run_serial, FarmReport, SimJob};
//!
//! let jobs: Vec<SimJob> = (0..4)
//!     .map(|i| SimJob::minirisc_random(i, 64, 20_000))
//!     .collect();
//! let serial = run_serial(&jobs);
//! let parallel = run_parallel(&jobs, 4);
//! for (s, p) in serial.iter().zip(&parallel) {
//!     assert_eq!(s.digest, p.digest);
//! }
//! let report = FarmReport::consolidate(parallel, 4, 0.0);
//! assert_eq!(report.jobs.len(), 4);
//! ```

#![warn(missing_docs)]

mod job;
mod manifest;
mod queue;
mod report;

pub use job::{run_job, JobOutcome, JobResult, ModelKind, SimJob, WorkloadSpec};
pub use manifest::{parse_manifest, Manifest, ManifestError};
pub use queue::{run_parallel, run_serial};
pub use report::FarmReport;
