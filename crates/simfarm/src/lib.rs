//! # simfarm — a supervised, sharded parallel simulation farm over the OSM models
//!
//! Every OSM machine instance is fully independent: a simulation *job*
//! (model × workload × config × seed × observability flags) owns its whole
//! [`osm_core::Machine`], so a sweep of jobs shards perfectly across
//! threads. This crate provides:
//!
//! * [`SimJob`] — one self-contained simulation over any of the four machine
//!   models (SA-1100 OSM, PPC-750 OSM, MiniRISC ISS, VLIW OSM), carrying its
//!   own supervision bounds (stall budget, wall deadline, retry count);
//! * [`run_parallel`] / [`run_farm`] — a work-stealing `std::thread` farm
//!   executing a job list across worker threads under full supervision:
//!   panics are caught and typed ([`JobOutcome::Panicked`]), wedged jobs are
//!   diagnosed by the stall watchdog ([`JobOutcome::Stalled`]), overruns hit
//!   wall deadlines ([`JobOutcome::DeadlineExceeded`]), and persistently
//!   unhealthy jobs are retried then quarantined
//!   ([`JobOutcome::Quarantined`]) — one poison job never takes down a
//!   sweep;
//! * [`run_serial`] — the single-thread oracle the farm is checked against;
//! * [`JournalWriter`] / [`read_journal`] — an append-only, digest-checked
//!   sweep journal: each completed job is recorded atomically, so a killed
//!   sweep resumes (`simfarm --resume`) skipping everything already done,
//!   tolerating torn trailing writes and rejecting corrupt records;
//! * [`CancelToken`] — cooperative cancellation: workers finish in-flight
//!   jobs, the journal is flushed, and the sweep exits resumable;
//! * [`CheckpointCtl`] — durable mid-job checkpoints: jobs with
//!   [`SimJob::checkpoint_every`] set seal a versioned, digest-checked
//!   snapshot every N cycles (temp file + fsync + atomic rename), journal
//!   partial progress, and restore after a crash to finish with a digest
//!   identical to an uninterrupted run's;
//! * [`ProcessIsolation`] — opt-in hard-crash isolation: every job attempt
//!   runs in a re-exec'd `simfarm --run-one` child under optional `ulimit`
//!   memory/CPU budgets, so SIGKILL/OOM/aborts surface as the typed
//!   [`JobOutcome::Killed`] and feed the ordinary retry/quarantine ladder
//!   instead of taking the coordinator down;
//! * [`FarmReport`] — deterministic aggregation: per-job FNV trace digests,
//!   [`osm_core::Stats`] and [`osm_core::MetricsReport`]s merged in
//!   **job-index order**, regardless of completion order, plus a fleet
//!   stall-cause roll-up folded from the per-job metrics;
//! * [`FarmObserver`] / [`FarmSchedule`] — opt-in farm-scope observability:
//!   per-job lifecycle spans (worker, steal, attempts, setup/simulate/
//!   teardown split) and per-worker telemetry, exportable as a
//!   Chrome/Perfetto trace ([`FarmSchedule::trace_json`]) and fleet timing
//!   JSON ([`FarmReport::timing_json`]) — all explicitly **non-canonical**,
//!   so canonical renderings stay byte-identical with it on or off;
//! * [`ProgressMeter`] — throttled live progress line, heartbeat snapshots
//!   and contextual farm notices, all on stderr.
//!
//! ## The determinism argument
//!
//! Sharding is at *job* granularity: a job's machine is constructed, run and
//! torn down entirely on one worker thread, and no two jobs share any
//! mutable state. Token transactions therefore never interleave across
//! threads — each director runs its sequential Fig. 3 schedule exactly as it
//! would alone — so every per-job trace digest is bit-identical to the same
//! job's serial-run digest, and the canonical report rendering
//! ([`FarmReport::canonical_text`]) is byte-identical however the jobs were
//! scheduled — across worker counts, and across killed-and-resumed vs
//! uninterrupted sweeps. Supervision preserves this: retries re-run the
//! same deterministic job, quarantine decisions depend only on outcomes,
//! and the journal stores results losslessly. The single documented
//! exception is the wall-clock deadline ([`SimJob::deadline_ms`]), which is
//! host-speed dependent by nature. The `simfarm_smoke`, `chaos_smoke` and
//! `crash_smoke` binaries enforce these equivalences in CI — the last one
//! under SIGKILL of a worker child mid-job and of the coordinator
//! mid-sweep.
//!
//! ## Quickstart
//!
//! ```
//! use simfarm::{run_parallel, run_serial, FarmReport, SimJob};
//!
//! let jobs: Vec<SimJob> = (0..4)
//!     .map(|i| SimJob::minirisc_random(i, 64, 20_000))
//!     .collect();
//! let serial = run_serial(&jobs);
//! let parallel = run_parallel(&jobs, 4).unwrap();
//! for (s, p) in serial.iter().zip(&parallel) {
//!     assert_eq!(s.digest, p.digest);
//! }
//! let report = FarmReport::consolidate(parallel, 4, 0.0);
//! assert_eq!(report.jobs.len(), 4);
//! ```

#![warn(missing_docs)]

pub mod checkpoint;
mod error;
pub mod exec;
mod job;
pub mod journal;
mod manifest;
pub mod observe;
mod progress;
mod queue;
mod report;
mod supervise;

pub use checkpoint::{CheckpointCtl, JobCheckpoint};
pub use error::{FarmError, JournalError};
pub use exec::{IsolationMode, ProcessIsolation};
pub use job::{
    run_job, run_job_checkpointed, run_job_checkpointed_timed, run_job_timed, JobOutcome,
    JobResult, ModelKind, SimJob, StallSummary, WorkloadSpec, DEFAULT_RETRIES,
    DEFAULT_STALL_BUDGET,
};
pub use journal::{read_journal, JournalReplay, JournalWriter};
pub use manifest::{parse_manifest, Manifest, ManifestError};
pub use observe::{
    AttemptSpan, FarmObserver, FarmSchedule, JobSpan, JobTiming, WorkerTelemetry,
};
pub use progress::ProgressMeter;
pub use queue::{run_farm, run_parallel, run_serial, FarmOptions, SweepRun};
pub use report::{FarmReport, FleetStallCause};
pub use supervise::{run_job_supervised, CancelToken};
