//! Supervision: crash isolation, deterministic retries, quarantine, and
//! cooperative cancellation.
//!
//! [`run_job_supervised`] is the only way the farm executes a job. It wraps
//! the raw [`run_job`] in [`std::panic::catch_unwind`] so a panicking job
//! becomes a typed [`JobOutcome::Panicked`] instead of unwinding through
//! `std::thread::scope` and killing the whole sweep, re-runs unhealthy jobs
//! up to the job's retry bound, and quarantines jobs that stay unhealthy.
//! Because jobs are deterministic, the whole attempt sequence — and
//! therefore the final [`JobResult`] — is a pure function of the
//! [`SimJob`], independent of worker count and scheduling.

use crate::job::{run_job, run_job_timed, JobOutcome, JobResult, SimJob};
use crate::observe::{AttemptSpan, JobTiming};
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cooperative cancellation token shared between the farm and its
/// operator (CLI signal timers, tests, embedding services). Cancelling does
/// **not** abort in-flight jobs — workers finish what they started, the
/// journal is flushed, and the sweep exits in a resumable state; workers
/// simply stop taking new jobs.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests graceful shutdown. Idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// True once [`CancelToken::cancel`] has been called (on any clone).
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Renders a panic payload: the common `&str`/`String` payloads verbatim,
/// anything else as a fixed placeholder (payloads need not be printable).
fn payload_string(payload: Box<dyn Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(s) => (*s).to_owned(),
            Err(_) => "<non-string panic payload>".to_owned(),
        },
    }
}

/// One isolated attempt: a panic anywhere inside [`run_job`] is caught and
/// reported as [`JobOutcome::Panicked`].
fn run_attempt(job: &SimJob) -> JobResult {
    match catch_unwind(AssertUnwindSafe(|| run_job(job))) {
        Ok(result) => result,
        Err(payload) => JobResult::aborted(
            job,
            JobOutcome::Panicked {
                payload: payload_string(payload),
            },
        ),
    }
}

/// One isolated, *timed* attempt: like [`run_attempt`] but with the
/// setup/sim/teardown breakdown. A panicking attempt loses its breakdown
/// (the timing lived on the unwound stack) and reports zeros.
fn run_attempt_timed(job: &SimJob) -> (JobResult, JobTiming) {
    match catch_unwind(AssertUnwindSafe(|| run_job_timed(job))) {
        Ok(pair) => pair,
        Err(payload) => (
            JobResult::aborted(
                job,
                JobOutcome::Panicked {
                    payload: payload_string(payload),
                },
            ),
            JobTiming::default(),
        ),
    }
}

/// The retry/quarantine loop shared by the plain and observed supervised
/// runners: up to `1 + job.retries` attempts, quarantine once every attempt
/// came back unhealthy. `attempt_fn` receives the 1-based attempt number
/// and must already be crash-isolated.
fn supervise(job: &SimJob, mut attempt_fn: impl FnMut(u32) -> JobResult) -> JobResult {
    let attempts_allowed = job.retries.saturating_add(1);
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let mut result = attempt_fn(attempt);
        result.attempts = attempt;
        if result.outcome.is_healthy() {
            return result;
        }
        if attempt >= attempts_allowed {
            result.outcome = JobOutcome::Quarantined {
                attempts: attempt,
                last: Box::new(result.outcome),
            };
            return result;
        }
    }
}

/// Runs one job under full supervision: crash isolation, up to
/// `1 + job.retries` deterministic attempts, and quarantine once every
/// attempt came back unhealthy. The returned result carries the attempt
/// count; a quarantined result keeps the last attempt's machine output
/// (cycles, digest, stats) with its outcome wrapped in
/// [`JobOutcome::Quarantined`].
pub fn run_job_supervised(job: &SimJob) -> JobResult {
    supervise(job, |_| run_attempt(job))
}

/// [`run_job_supervised`] with farm observability: returns the same
/// deterministic [`JobResult`] plus one [`AttemptSpan`] per attempt, with
/// timestamps taken from `now_ns` (the farm observer's clock). Only called
/// by the farm when a [`crate::FarmObserver`] is attached.
pub(crate) fn run_job_supervised_observed(
    job: &SimJob,
    now_ns: impl Fn() -> u64,
) -> (JobResult, Vec<AttemptSpan>) {
    let mut spans = Vec::new();
    let result = supervise(job, |attempt| {
        let start_ns = now_ns();
        let (result, timing) = run_attempt_timed(job);
        spans.push(AttemptSpan {
            attempt,
            start_ns,
            end_ns: now_ns(),
            timing,
            healthy: result.outcome.is_healthy(),
        });
        result
    });
    (result, spans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{ModelKind, WorkloadSpec};

    #[test]
    fn cancel_token_propagates_across_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
        a.cancel(); // idempotent
        assert!(a.is_cancelled());
    }

    #[test]
    fn panicking_job_is_caught_and_quarantined() {
        let mut job = SimJob::chaos_panic("boom");
        job.retries = 2;
        let r = run_job_supervised(&job);
        match &r.outcome {
            JobOutcome::Quarantined { attempts, last } => {
                assert_eq!(*attempts, 3);
                match last.as_ref() {
                    JobOutcome::Panicked { payload } => {
                        assert!(payload.contains("chaos:panic"), "{payload}")
                    }
                    other => panic!("expected Panicked, got {other:?}"),
                }
            }
            other => panic!("expected Quarantined, got {other:?}"),
        }
        assert_eq!(r.attempts, 3);
        assert!(!r.is_ok());
    }

    #[test]
    fn healthy_job_takes_one_attempt() {
        let job = SimJob::minirisc_random(1, 32, 10_000);
        let r = run_job_supervised(&job);
        assert_eq!(r.attempts, 1);
        assert!(r.is_ok());
    }

    #[test]
    fn failed_job_is_retried_then_quarantined_deterministically() {
        let mut job = SimJob::new(
            ModelKind::Sa1100,
            WorkloadSpec::Named("no-such-workload".into()),
            1000,
        );
        job.retries = 1;
        let a = run_job_supervised(&job);
        let b = run_job_supervised(&job);
        assert_eq!(a.outcome, b.outcome);
        assert!(matches!(
            &a.outcome,
            JobOutcome::Quarantined { attempts: 2, last } if matches!(last.as_ref(), JobOutcome::Failed(_))
        ));
    }
}
