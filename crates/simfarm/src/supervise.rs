//! Supervision: crash isolation, deterministic retries, quarantine, and
//! cooperative cancellation.
//!
//! [`run_job_supervised`] is the only way the farm executes a job. It wraps
//! the raw [`run_job`] in [`std::panic::catch_unwind`] so a panicking job
//! becomes a typed [`JobOutcome::Panicked`] instead of unwinding through
//! `std::thread::scope` and killing the whole sweep, re-runs unhealthy jobs
//! up to the job's retry bound, and quarantines jobs that stay unhealthy.
//! Because jobs are deterministic, the whole attempt sequence — and
//! therefore the final [`JobResult`] — is a pure function of the
//! [`SimJob`], independent of worker count and scheduling.

use crate::checkpoint::CheckpointCtl;
use crate::job::{
    run_job_checkpointed, run_job_checkpointed_timed, JobOutcome, JobResult, SimJob,
};
use crate::observe::{AttemptSpan, JobTiming};
use std::any::Any;
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Once};

/// A cooperative cancellation token shared between the farm and its
/// operator (CLI signal timers, tests, embedding services). Cancelling does
/// **not** abort in-flight jobs — workers finish what they started, the
/// journal is flushed, and the sweep exits in a resumable state; workers
/// simply stop taking new jobs.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests graceful shutdown. Idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// True once [`CancelToken::cancel`] has been called (on any clone).
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Renders a panic payload: the common `&str`/`String` payloads verbatim,
/// anything else as a fixed placeholder (payloads need not be printable).
fn payload_string(payload: Box<dyn Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(s) => (*s).to_owned(),
            Err(_) => "<non-string panic payload>".to_owned(),
        },
    }
}

thread_local! {
    /// Armed while this thread runs a supervised attempt: the quiet panic
    /// hook stores the captured backtrace here instead of printing.
    static PANIC_CAPTURE: RefCell<Option<Option<String>>> = const { RefCell::new(None) };
}

/// Installs the farm's process-global quiet panic hook (once, idempotent).
///
/// The default hook prints `thread '...' panicked at ...` plus a backtrace
/// to stderr — with a fleet of workers deliberately absorbing chaos-job
/// panics that interleaves into operator-facing noise for events the farm
/// fully contains. The quiet hook checks a thread-local arm flag: for a
/// supervised attempt it captures the backtrace (honoring `RUST_BACKTRACE`)
/// into the flag for [`JobOutcome::Panicked`] and prints nothing; panics on
/// any *unarmed* thread (real bugs in the farm itself) still reach the
/// previously-installed hook untouched.
fn install_quiet_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let armed = PANIC_CAPTURE.with(|slot| {
                let mut slot = slot.borrow_mut();
                match slot.as_mut() {
                    Some(capture) => {
                        use std::backtrace::{Backtrace, BacktraceStatus};
                        let bt = Backtrace::capture();
                        *capture = (bt.status() == BacktraceStatus::Captured)
                            .then(|| bt.to_string());
                        true
                    }
                    None => false,
                }
            });
            if !armed {
                previous(info);
            }
        }));
    });
}

/// Runs `f` with the quiet panic hook armed for this thread, returning its
/// value or the rendered panic payload plus the backtrace captured at the
/// panic site.
fn quiet_catch<T>(f: impl FnOnce() -> T) -> Result<T, (String, Option<String>)> {
    install_quiet_panic_hook();
    PANIC_CAPTURE.with(|slot| *slot.borrow_mut() = Some(None));
    let result = catch_unwind(AssertUnwindSafe(f));
    let captured = PANIC_CAPTURE.with(|slot| slot.borrow_mut().take()).flatten();
    result.map_err(|payload| (payload_string(payload), captured))
}

/// One isolated attempt: a panic anywhere inside the job runner is caught
/// (silently — see [`install_quiet_panic_hook`]) and reported as
/// [`JobOutcome::Panicked`] with the payload and captured backtrace.
pub(crate) fn run_attempt(job: &SimJob, ctl: Option<&mut CheckpointCtl<'_>>) -> JobResult {
    match quiet_catch(AssertUnwindSafe(|| run_job_checkpointed(job, ctl))) {
        Ok(result) => result,
        Err((payload, backtrace)) => {
            JobResult::aborted(job, JobOutcome::Panicked { payload, backtrace })
        }
    }
}

/// One isolated, *timed* attempt: like [`run_attempt`] but with the
/// setup/sim/teardown breakdown. A panicking attempt loses its breakdown
/// (the timing lived on the unwound stack) and reports zeros.
fn run_attempt_timed(
    job: &SimJob,
    ctl: Option<&mut CheckpointCtl<'_>>,
) -> (JobResult, JobTiming) {
    match quiet_catch(AssertUnwindSafe(|| run_job_checkpointed_timed(job, ctl))) {
        Ok(pair) => pair,
        Err((payload, backtrace)) => (
            JobResult::aborted(job, JobOutcome::Panicked { payload, backtrace }),
            JobTiming::default(),
        ),
    }
}

/// The retry/quarantine loop shared by the plain and observed supervised
/// runners: up to `1 + job.retries` attempts, quarantine once every attempt
/// came back unhealthy. `attempt_fn` receives the 1-based attempt number
/// and must already be crash-isolated.
pub(crate) fn supervise(job: &SimJob, mut attempt_fn: impl FnMut(u32) -> JobResult) -> JobResult {
    let attempts_allowed = job.retries.saturating_add(1);
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let mut result = attempt_fn(attempt);
        result.attempts = attempt;
        if result.outcome.is_healthy() {
            return result;
        }
        if attempt >= attempts_allowed {
            result.outcome = JobOutcome::Quarantined {
                attempts: attempt,
                last: Box::new(result.outcome),
            };
            return result;
        }
    }
}

/// Runs one job under full supervision: crash isolation, up to
/// `1 + job.retries` deterministic attempts, and quarantine once every
/// attempt came back unhealthy. The returned result carries the attempt
/// count; a quarantined result keeps the last attempt's machine output
/// (cycles, digest, stats) with its outcome wrapped in
/// [`JobOutcome::Quarantined`].
pub fn run_job_supervised(job: &SimJob) -> JobResult {
    supervise(job, |_| run_attempt(job, None))
}

/// [`run_job_supervised`] under an optional durable checkpoint controller:
/// every attempt restores from the job's last valid checkpoint (so a retry
/// after a mid-job crash continues from where the machine durably stood,
/// not from cycle 0) and keeps sealing new checkpoints as it advances.
pub(crate) fn run_job_supervised_ckpt(
    job: &SimJob,
    mut ctl: Option<&mut CheckpointCtl<'_>>,
) -> JobResult {
    supervise(job, |_| run_attempt(job, ctl.as_deref_mut()))
}

/// [`run_job_supervised`] with farm observability: returns the same
/// deterministic [`JobResult`] plus one [`AttemptSpan`] per attempt, with
/// timestamps taken from `now_ns` (the farm observer's clock). Only called
/// by the farm when a [`crate::FarmObserver`] is attached.
pub(crate) fn run_job_supervised_observed(
    job: &SimJob,
    mut ctl: Option<&mut CheckpointCtl<'_>>,
    now_ns: impl Fn() -> u64,
) -> (JobResult, Vec<AttemptSpan>) {
    let mut spans = Vec::new();
    let result = supervise(job, |attempt| {
        let start_ns = now_ns();
        let (result, timing) = run_attempt_timed(job, ctl.as_deref_mut());
        spans.push(AttemptSpan {
            attempt,
            start_ns,
            end_ns: now_ns(),
            timing,
            healthy: result.outcome.is_healthy(),
        });
        result
    });
    (result, spans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{ModelKind, WorkloadSpec};

    #[test]
    fn cancel_token_propagates_across_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
        a.cancel(); // idempotent
        assert!(a.is_cancelled());
    }

    #[test]
    fn panicking_job_is_caught_and_quarantined() {
        let mut job = SimJob::chaos_panic("boom");
        job.retries = 2;
        let r = run_job_supervised(&job);
        match &r.outcome {
            JobOutcome::Quarantined { attempts, last } => {
                assert_eq!(*attempts, 3);
                match last.as_ref() {
                    JobOutcome::Panicked { payload, .. } => {
                        assert!(payload.contains("chaos:panic"), "{payload}")
                    }
                    other => panic!("expected Panicked, got {other:?}"),
                }
            }
            other => panic!("expected Quarantined, got {other:?}"),
        }
        assert_eq!(r.attempts, 3);
        assert!(!r.is_ok());
    }

    #[test]
    fn healthy_job_takes_one_attempt() {
        let job = SimJob::minirisc_random(1, 32, 10_000);
        let r = run_job_supervised(&job);
        assert_eq!(r.attempts, 1);
        assert!(r.is_ok());
    }

    #[test]
    fn panic_equality_ignores_the_captured_backtrace() {
        let with = JobOutcome::Panicked {
            payload: "boom".into(),
            backtrace: Some("0: frame_at_0x1234".into()),
        };
        let without = JobOutcome::Panicked {
            payload: "boom".into(),
            backtrace: None,
        };
        assert_eq!(with, without, "backtraces are ASLR-dependent diagnostics");
        assert_eq!(with.label(), "panicked: boom", "label excludes the backtrace");
    }

    #[test]
    fn quiet_catch_passes_values_and_payloads_through() {
        assert_eq!(quiet_catch(|| 41 + 1).unwrap(), 42);
        let (payload, _backtrace) =
            quiet_catch(|| -> u32 { panic!("expected-test-panic") }).unwrap_err();
        assert_eq!(payload, "expected-test-panic");
        // The arm flag is disarmed again: a later catch starts clean.
        let (payload, _) = quiet_catch(|| -> u32 { panic!("second") }).unwrap_err();
        assert_eq!(payload, "second");
    }

    #[test]
    fn failed_job_is_retried_then_quarantined_deterministically() {
        let mut job = SimJob::new(
            ModelKind::Sa1100,
            WorkloadSpec::Named("no-such-workload".into()),
            1000,
        );
        job.retries = 1;
        let a = run_job_supervised(&job);
        let b = run_job_supervised(&job);
        assert_eq!(a.outcome, b.outcome);
        assert!(matches!(
            &a.outcome,
            JobOutcome::Quarantined { attempts: 2, last } if matches!(last.as_ref(), JobOutcome::Failed(_))
        ));
    }
}
