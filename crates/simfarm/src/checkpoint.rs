//! Durable mid-job checkpoints: the farm-level container that lets an
//! interrupted job restart from its last saved cycle instead of cycle 0.
//!
//! ## File format
//!
//! ```text
//! checkpoint := magic "OSMFCKP1" (8 bytes)
//!             | version     u32 LE (currently 1)
//!             | job_digest  u64 LE  (FNV-1a of the job's canonical encoding)
//!             | cycle       u64 LE  (control step the machine was cut at)
//!             | trace_hash  u64 LE  (running transition-trace digest)
//!             | trace_total u64 LE  (transitions recorded so far)
//!             | machine_len u32 LE | machine bytes (model's sealed snapshot)
//!             | seal        u64 LE  (FNV-1a over everything above)
//! ```
//!
//! The `job_digest` binds a checkpoint to the exact job that wrote it (same
//! canonical encoding as the sweep journal header, so a job edit invalidates
//! stale checkpoints the same way it invalidates a journal). The
//! `trace_hash`/`trace_total` pair re-seeds the model's digest-only trace on
//! restore ([`osm_core::Trace::digest_only_resumed`]), which is what makes a
//! resumed run's final digest equal an uninterrupted run's.
//!
//! ## Crash consistency
//!
//! [`store`] never exposes a torn checkpoint: bytes are written to a
//! temporary sibling, fsynced, atomically renamed over the target, and the
//! containing directory is fsynced so the rename itself is durable. A crash
//! at any point leaves either the previous complete checkpoint or the new
//! complete checkpoint — [`load`] treats anything else (missing file, short
//! file, bad seal, foreign job) as "no checkpoint" and the job simply runs
//! from cycle 0 again. Checkpointing is strictly best-effort: an unwritable
//! checkpoint directory slows recovery but never changes a job's result.

use crate::job::SimJob;
use crate::journal::jobs_digest;
use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"OSMFCKP1";
const VERSION: u32 = 1;
/// Fixed-size prefix: magic + version + job_digest + cycle + trace_hash +
/// trace_total + machine_len.
const PREFIX_LEN: usize = 8 + 4 + 8 + 8 + 8 + 8 + 4;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fnv(bytes: &[u8]) -> u64 {
    let mut digest = FNV_OFFSET;
    for &b in bytes {
        digest ^= u64::from(b);
        digest = digest.wrapping_mul(FNV_PRIME);
    }
    digest
}

/// One decoded mid-job checkpoint: where the machine was cut, the running
/// trace digest state, and the model's own sealed snapshot bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobCheckpoint {
    /// Control step (ISS: retired instructions) the machine was cut at.
    pub cycle: u64,
    /// Running FNV trace digest at the cut (ISS: the `(pc, taken)` digest
    /// accumulator).
    pub trace_hash: u64,
    /// Transitions recorded so far (ISS: steps executed).
    pub trace_total: u64,
    /// The model's sealed machine snapshot (each model's own checkpoint
    /// codec; opaque at this layer).
    pub machine: Vec<u8>,
}

/// Encodes a checkpoint for the job identified by `job_digest`
/// (see [`job_checkpoint_digest`]).
pub fn encode(job_digest: u64, ckpt: &JobCheckpoint) -> Vec<u8> {
    let mut out = Vec::with_capacity(PREFIX_LEN + ckpt.machine.len() + 8);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&job_digest.to_le_bytes());
    out.extend_from_slice(&ckpt.cycle.to_le_bytes());
    out.extend_from_slice(&ckpt.trace_hash.to_le_bytes());
    out.extend_from_slice(&ckpt.trace_total.to_le_bytes());
    out.extend_from_slice(&(ckpt.machine.len() as u32).to_le_bytes());
    out.extend_from_slice(&ckpt.machine);
    let seal = fnv(&out);
    out.extend_from_slice(&seal.to_le_bytes());
    out
}

/// Decodes checkpoint bytes, accepting them only if complete, sealed, and
/// written for the job identified by `job_digest`. Any damage or mismatch
/// yields `None` — a stale or torn checkpoint means "start from scratch",
/// never a wrong result.
pub fn decode(bytes: &[u8], job_digest: u64) -> Option<JobCheckpoint> {
    if bytes.len() < PREFIX_LEN + 8 || &bytes[..8] != MAGIC {
        return None;
    }
    let u32_at = |off: usize| u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
    let u64_at = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
    if u32_at(8) != VERSION || u64_at(12) != job_digest {
        return None;
    }
    let machine_len = u32_at(PREFIX_LEN - 4) as usize;
    if bytes.len() != PREFIX_LEN + machine_len + 8 {
        return None;
    }
    let sealed = &bytes[..PREFIX_LEN + machine_len];
    if fnv(sealed) != u64_at(PREFIX_LEN + machine_len) {
        return None;
    }
    Some(JobCheckpoint {
        cycle: u64_at(20),
        trace_hash: u64_at(28),
        trace_total: u64_at(36),
        machine: bytes[PREFIX_LEN..PREFIX_LEN + machine_len].to_vec(),
    })
}

/// The digest binding a checkpoint to one job: the sweep journal's
/// canonical job encoding ([`jobs_digest`]) over just this job.
pub fn job_checkpoint_digest(job: &SimJob) -> u64 {
    jobs_digest(std::slice::from_ref(job))
}

/// The on-disk location for job `index`'s checkpoint inside `dir`.
pub fn checkpoint_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("job-{index}.ckpt"))
}

/// Fsyncs a directory so renames/creations inside it are durable.
/// Best-effort by design: not every platform or filesystem supports opening
/// a directory for fsync, and durability of *metadata* must never turn into
/// a hard failure of the sweep itself.
pub(crate) fn fsync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Atomically replaces `path` with `bytes`: temp sibling + fsync + rename +
/// directory fsync. A crash mid-store leaves the previous checkpoint (or
/// none) intact, never a torn file under the final name.
pub fn store(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("ckpt.tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        fsync_dir(parent);
    }
    Ok(())
}

/// Loads and validates the checkpoint at `path` for the job identified by
/// `job_digest`. Missing, torn, corrupt or foreign checkpoints all read as
/// `None`.
pub fn load(path: &Path, job_digest: u64) -> Option<JobCheckpoint> {
    let mut bytes = Vec::new();
    File::open(path).ok()?.read_to_end(&mut bytes).ok()?;
    decode(&bytes, job_digest)
}

/// Per-job checkpoint controller handed to the runners: owns the cadence
/// (`checkpoint_every` cycles), the on-disk path, the job-identity digest,
/// and an optional notification hook the farm uses to journal partial
/// progress. Constructed only for jobs that opted in; runners treat `None`
/// as "no checkpointing" and stay byte-identical to the pre-checkpoint
/// code path.
pub struct CheckpointCtl<'a> {
    every: u64,
    path: PathBuf,
    job_digest: u64,
    last: u64,
    notify: Option<Box<dyn FnMut(u64) + Send + 'a>>,
}

impl std::fmt::Debug for CheckpointCtl<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointCtl")
            .field("every", &self.every)
            .field("path", &self.path)
            .field("job_digest", &self.job_digest)
            .field("last", &self.last)
            .field("notify", &self.notify.is_some())
            .finish()
    }
}

impl<'a> CheckpointCtl<'a> {
    /// A controller for job `index` writing under `dir`, or `None` when the
    /// job did not opt in (`checkpoint_every == 0`) or asked for
    /// observability (the event log and metrics are not part of a machine
    /// checkpoint, so a restored observability job would report different
    /// metrics than an uninterrupted one — checkpointing such jobs is
    /// refused rather than silently wrong).
    pub fn new(job: &SimJob, index: usize, dir: &Path) -> Option<CheckpointCtl<'static>> {
        if job.checkpoint_every == 0 || job.observability {
            return None;
        }
        Some(CheckpointCtl {
            every: job.checkpoint_every,
            path: checkpoint_path(dir, index),
            job_digest: job_checkpoint_digest(job),
            last: 0,
            notify: None,
        })
    }

    /// Attaches a hook called with the checkpoint cycle after every durable
    /// save (the farm journals a partial-progress record from it).
    pub fn with_notify(mut self, notify: impl FnMut(u64) + Send + 'a) -> CheckpointCtl<'a> {
        self.notify = Some(Box::new(notify));
        self
    }

    /// The controller's on-disk checkpoint path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Loads this job's checkpoint, if a valid one exists.
    pub fn load(&self) -> Option<JobCheckpoint> {
        load(&self.path, self.job_digest)
    }

    /// The configured checkpoint cadence in cycles (always nonzero).
    pub fn cadence(&self) -> u64 {
        self.every
    }

    /// True once the machine has advanced `checkpoint_every` cycles past
    /// the last save (or past the restore point).
    pub fn due(&self, cycle: u64) -> bool {
        cycle >= self.last.saturating_add(self.every)
    }

    /// Records that the job restored at `cycle`, so the next save lands a
    /// full interval later.
    pub fn mark_restored(&mut self, cycle: u64) {
        self.last = cycle;
    }

    /// Durably saves a checkpoint (best-effort: an I/O failure skips the
    /// save and the notification but never perturbs the job), then fires
    /// the notification hook.
    pub fn save(&mut self, cycle: u64, trace_hash: u64, trace_total: u64, machine: &[u8]) {
        let bytes = encode(
            self.job_digest,
            &JobCheckpoint {
                cycle,
                trace_hash,
                trace_total,
                machine: machine.to_vec(),
            },
        );
        if store(&self.path, &bytes).is_ok() {
            self.last = cycle;
            if let Some(notify) = self.notify.as_mut() {
                notify(cycle);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JobCheckpoint {
        JobCheckpoint {
            cycle: 12_345,
            trace_hash: 0xdead_beef_cafe_f00d,
            trace_total: 67_890,
            machine: (0..=255u8).collect(),
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let ckpt = sample();
        let bytes = encode(42, &ckpt);
        assert_eq!(decode(&bytes, 42), Some(ckpt));
    }

    #[test]
    fn damage_and_mismatch_read_as_no_checkpoint() {
        let ckpt = sample();
        let bytes = encode(42, &ckpt);
        // Foreign job.
        assert_eq!(decode(&bytes, 43), None);
        // Truncation at every boundary class.
        for cut in [0, 7, PREFIX_LEN - 1, PREFIX_LEN + 4, bytes.len() - 1] {
            assert_eq!(decode(&bytes[..cut], 42), None, "cut at {cut}");
        }
        // Single bit flips anywhere break the seal (or the prefix checks).
        for pos in [0, 9, 15, 25, PREFIX_LEN + 3, bytes.len() - 2] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x01;
            assert_eq!(decode(&bad, 42), None, "flip at {pos}");
        }
    }

    #[test]
    fn store_is_atomic_and_load_validates() {
        let dir = std::env::temp_dir().join(format!("simfarm-ckpt-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = checkpoint_path(&dir, 7);
        assert_eq!(load(&path, 1), None, "missing file reads as none");

        let ckpt = sample();
        store(&path, &encode(1, &ckpt)).unwrap();
        assert_eq!(load(&path, 1), Some(ckpt.clone()));
        assert_eq!(load(&path, 2), None, "foreign job digest rejected");

        // Overwrite with a newer checkpoint; the temp sibling must be gone.
        let newer = JobCheckpoint { cycle: 99_999, ..ckpt };
        store(&path, &encode(1, &newer)).unwrap();
        assert_eq!(load(&path, 1), Some(newer));
        assert!(!path.with_extension("ckpt.tmp").exists());

        // A torn file under the final name reads as none.
        fs::write(&path, &encode(1, &sample())[..PREFIX_LEN + 3]).unwrap();
        assert_eq!(load(&path, 1), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn ctl_cadence_and_identity() {
        let dir = std::env::temp_dir().join(format!("simfarm-ctl-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let mut job = SimJob::minirisc_random(3, 32, 50_000);
        assert!(CheckpointCtl::new(&job, 0, &dir).is_none(), "opt-in only");
        job.checkpoint_every = 1_000;
        let mut obs_job = job.clone();
        obs_job.observability = true;
        assert!(
            CheckpointCtl::new(&obs_job, 0, &dir).is_none(),
            "observability jobs never checkpoint"
        );

        let mut notified = Vec::new();
        let mut ctl = CheckpointCtl::new(&job, 0, &dir)
            .unwrap()
            .with_notify(|cycle| notified.push(cycle));
        assert!(!ctl.due(999));
        assert!(ctl.due(1_000));
        ctl.save(1_000, 0xAB, 17, b"machine-bytes");
        assert!(!ctl.due(1_999));
        assert!(ctl.due(2_000));
        drop(ctl);
        assert_eq!(notified, vec![1_000]);

        // The saved checkpoint binds to the job; a behavioral edit orphans it.
        let ctl = CheckpointCtl::new(&job, 0, &dir).unwrap();
        assert_eq!(ctl.load().map(|c| c.cycle), Some(1_000));
        let mut edited = job.clone();
        edited.seed += 1;
        let ctl = CheckpointCtl::new(&edited, 0, &dir).unwrap();
        assert_eq!(ctl.load(), None);
        // But a cadence-only edit does not (checkpoint_every is operational,
        // not behavioral — same rule as the sweep journal header).
        let mut recadenced = job.clone();
        recadenced.checkpoint_every = 5_000;
        let ctl = CheckpointCtl::new(&recadenced, 0, &dir).unwrap();
        assert_eq!(ctl.load().map(|c| c.cycle), Some(1_000));
        let _ = fs::remove_dir_all(&dir);
    }
}
