//! The durable sweep journal: append-only, length-prefixed, FNV-digested.
//!
//! ## File format
//!
//! ```text
//! header  := magic "OSMFARMJ" (8 bytes)
//!          | version  u32 LE (currently 1)
//!          | job_count u32 LE
//!          | jobs_digest u64 LE   (FNV-1a over the canonical job list)
//! record  := payload_len u32 LE
//!          | payload  (UTF-8 JSON, one completed JobResult + its index)
//!          | payload_digest u64 LE (FNV-1a over payload)
//! journal := header record*
//! ```
//!
//! Each record is appended with a **single write** and flushed as soon as
//! its job completes, so a crashed or killed sweep loses at most the
//! in-flight jobs. On replay:
//!
//! * a **torn trailing write** (file ends mid-record) is tolerated — the
//!   valid prefix is kept, the tail is dropped and overwritten on resume;
//! * a **corrupt record** (fully present but failing its integrity digest,
//!   or undecodable) is rejected with [`JournalError::CorruptRecord`] —
//!   corruption is never silently accepted as a completed job;
//! * a journal whose header names a **different job list** is rejected
//!   with [`JournalError::ManifestMismatch`].
//!
//! The payload preserves every field the farm report renders or folds
//! (outcome taxonomy in full, scheduler [`Stats`] including named counters,
//! the rendered metrics fields, fault totals), which is what makes a
//! resumed sweep's consolidated report byte-identical to an uninterrupted
//! run's.
//!
//! ## Record kinds
//!
//! Two payload shapes share the record framing, discriminated by the JSON
//! `record` field:
//!
//! * **result** (no `record` field, the original shape) — one completed
//!   [`JobResult`] plus its index;
//! * **partial** (`"record": "partial"`) — durable mid-job progress: job
//!   `index` sealed a checkpoint at `cycle`
//!   ([`crate::SimJob::checkpoint_every`]). On replay a partial never marks
//!   a job done — it reports where an interrupted job can restart from; a
//!   result record for the same index supersedes it.
//!
//! Journals are durable, not just ordered: the header is fsynced (and the
//! containing directory fsynced, so the journal's own direntry survives a
//! host crash) at create, and every record append is fsynced before the
//! farm moves on.

use crate::error::JournalError;
use crate::job::{JobOutcome, JobResult, ModelKind, SimJob, StallSummary};
use bench::json::{parse, Json};
use osm_core::{FaultStats, MetricsReport, StallKind, Stats};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"OSMFARMJ";
const VERSION: u32 = 1;
const HEADER_LEN: usize = 8 + 4 + 4 + 8;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fnv(bytes: &[u8]) -> u64 {
    let mut digest = FNV_OFFSET;
    for &b in bytes {
        digest ^= u64::from(b);
        digest = digest.wrapping_mul(FNV_PRIME);
    }
    digest
}

/// FNV-1a digest of the canonical job-list encoding: every field that
/// affects a job's behavior, in job order. Two job lists with equal digests
/// produce interchangeable journals; the header check rejects everything
/// else. Deliberately excluded: [`SimJob::checkpoint_every`] — the
/// checkpoint cadence is operational (like the worker count), so tuning it
/// between runs neither orphans a journal nor a durable checkpoint.
pub fn jobs_digest(jobs: &[SimJob]) -> u64 {
    let mut canon = String::new();
    for job in jobs {
        canon.push_str(&format!(
            "{}\x1f{}\x1f{}\x1f{}\x1f{}\x1f{:?}\x1f{}\x1f{:?}\x1f{:?}\x1f{}\x1f{:?}\x1e",
            job.name,
            job.model.name(),
            job.workload.spelling(),
            job.seed,
            job.max_cycles,
            job.scheduler,
            job.observability,
            job.stall_budget,
            job.deadline_ms,
            job.retries,
            job.faults,
        ));
    }
    fnv(canon.as_bytes())
}

/// Checked length narrowing for the format's `u32` size fields. A plain
/// `as u32` here would silently wrap an oversized sweep or record into a
/// journal whose header/length prefix lies about its contents and
/// round-trips wrong; refuse with a typed error instead.
fn len_u32(what: &'static str, len: usize) -> Result<u32, JournalError> {
    u32::try_from(len).map_err(|_| JournalError::TooLarge {
        what,
        len: len as u64,
    })
}

/// The journal header bytes for a job list.
///
/// # Errors
/// [`JournalError::TooLarge`] if the job count does not fit the header's
/// `u32` field.
pub fn header_bytes(jobs: &[SimJob]) -> Result<Vec<u8>, JournalError> {
    let job_count = len_u32("job count", jobs.len())?;
    let mut out = Vec::with_capacity(HEADER_LEN);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&job_count.to_le_bytes());
    out.extend_from_slice(&jobs_digest(jobs).to_le_bytes());
    Ok(out)
}

/// One completed job, encoded as a self-contained record
/// (`len | payload | digest`).
///
/// # Errors
/// [`JournalError::TooLarge`] if the encoded payload does not fit the
/// record's `u32` length prefix.
pub fn record_bytes(index: usize, result: &JobResult) -> Result<Vec<u8>, JournalError> {
    let payload = result_to_json(index, result).to_string().into_bytes();
    let payload_len = len_u32("record payload", payload.len())?;
    let mut out = Vec::with_capacity(4 + payload.len() + 8);
    out.extend_from_slice(&payload_len.to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&fnv(&payload).to_le_bytes());
    Ok(out)
}

/// One durable mid-job progress record (`"record": "partial"`): job `index`
/// sealed a checkpoint at `cycle`.
///
/// # Errors
/// [`JournalError::TooLarge`] if the encoded payload does not fit the
/// record's `u32` length prefix.
pub fn partial_record_bytes(index: usize, cycle: u64) -> Result<Vec<u8>, JournalError> {
    let mut obj = BTreeMap::new();
    obj.insert("record".into(), Json::Str("partial".into()));
    obj.insert("index".into(), num(index as u64));
    obj.insert("cycle".into(), num(cycle));
    let payload = Json::Obj(obj).to_string().into_bytes();
    let payload_len = len_u32("record payload", payload.len())?;
    let mut out = Vec::with_capacity(4 + payload.len() + 8);
    out.extend_from_slice(&payload_len.to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&fnv(&payload).to_le_bytes());
    Ok(out)
}

/// The full replay of a journal: completed results, the latest durable
/// mid-job progress for jobs that did *not* complete, and the valid byte
/// prefix length.
#[derive(Debug, Clone)]
pub struct JournalReplay {
    /// Completed results by job index (last record wins on duplicates).
    pub completed: BTreeMap<usize, JobResult>,
    /// Latest checkpointed cycle by job index, for jobs with durable
    /// partial progress but no completed result. Their machine state lives
    /// in the checkpoint directory; this is the journal's account of it.
    pub partials: BTreeMap<usize, u64>,
    /// Byte length of the valid prefix (resume truncates to this).
    pub valid_len: u64,
}

/// Replays journal bytes against the job list they claim to cover.
///
/// Returns the completed results by job index plus the byte length of the
/// valid prefix (a resume truncates the file to that length before
/// appending, so a torn tail is physically discarded). Duplicate indices
/// keep the last record — a job finished in a torn run and re-run after
/// resume writes the identical result twice. Partial-progress records are
/// dropped by this compatibility wrapper; use [`parse_bytes_full`] to see
/// them.
pub fn parse_bytes(
    bytes: &[u8],
    jobs: &[SimJob],
) -> Result<(BTreeMap<usize, JobResult>, u64), JournalError> {
    let replay = parse_bytes_full(bytes, jobs)?;
    Ok((replay.completed, replay.valid_len))
}

/// Replays journal bytes in full: completed results *and* mid-job partial
/// progress (see the module docs for the record taxonomy and tolerance
/// rules — torn tails kept as valid prefix, corrupt records rejected).
pub fn parse_bytes_full(bytes: &[u8], jobs: &[SimJob]) -> Result<JournalReplay, JournalError> {
    if bytes.len() < HEADER_LEN {
        return Err(JournalError::BadHeader {
            why: format!("{} bytes is shorter than the {HEADER_LEN}-byte header", bytes.len()),
        });
    }
    if &bytes[..8] != MAGIC {
        return Err(JournalError::BadHeader {
            why: "magic bytes are not OSMFARMJ".into(),
        });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(JournalError::BadHeader {
            why: format!("unsupported journal version {version}"),
        });
    }
    let job_count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    let digest = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    let expected = jobs_digest(jobs);
    if digest != expected || job_count != jobs.len() {
        return Err(JournalError::ManifestMismatch {
            journal: digest,
            manifest: expected,
        });
    }

    let mut completed = BTreeMap::new();
    let mut partials = BTreeMap::new();
    let valid_len = parse_frames(bytes, HEADER_LEN, jobs, |record| match record {
        StreamRecord::Partial { index, cycle } => {
            partials.insert(index, cycle);
        }
        StreamRecord::Result(index, result) => {
            completed.insert(index, *result);
        }
    })?;
    // A completed result supersedes any partial progress for the same job.
    partials.retain(|index, _| !completed.contains_key(index));
    Ok(JournalReplay {
        completed,
        partials,
        valid_len,
    })
}

/// One parsed record frame: the two payload shapes of the module docs.
#[derive(Debug)]
pub(crate) enum StreamRecord {
    /// Durable mid-job progress: job `index` sealed a checkpoint at `cycle`.
    Partial {
        /// Job index the progress belongs to.
        index: usize,
        /// Checkpointed control step.
        cycle: u64,
    },
    /// One completed job result.
    Result(usize, Box<JobResult>),
}

/// The shared frame loop: walks `len | payload | digest` records from
/// `start`, feeding each decoded record to `sink`, and returns the byte
/// length of the valid prefix. Torn tails (stream ends mid-frame) end the
/// walk; complete-but-corrupt frames are rejected.
fn parse_frames(
    bytes: &[u8],
    start: usize,
    jobs: &[SimJob],
    mut sink: impl FnMut(StreamRecord),
) -> Result<u64, JournalError> {
    let mut off = start;
    while off < bytes.len() {
        let remaining = bytes.len() - off;
        if remaining < 4 {
            break; // torn length prefix
        }
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        if remaining - 4 < len + 8 {
            break; // torn payload or digest
        }
        let payload = &bytes[off + 4..off + 4 + len];
        let stored = u64::from_le_bytes(bytes[off + 4 + len..off + 12 + len].try_into().unwrap());
        if fnv(payload) != stored {
            return Err(JournalError::CorruptRecord {
                offset: off as u64,
                why: "integrity digest mismatch".into(),
            });
        }
        let corrupt = |why: String| JournalError::CorruptRecord {
            offset: off as u64,
            why,
        };
        let text = std::str::from_utf8(payload).map_err(|e| corrupt(e.to_string()))?;
        let json = parse(text).map_err(|e| corrupt(e.to_string()))?;
        if json.get("record").and_then(Json::as_str) == Some("partial") {
            let index = get_u64(&json, "index").map_err(&corrupt)? as usize;
            if index >= jobs.len() {
                return Err(corrupt(format!(
                    "partial index {index} out of range ({} jobs)",
                    jobs.len()
                )));
            }
            let cycle = get_u64(&json, "cycle").map_err(&corrupt)?;
            sink(StreamRecord::Partial { index, cycle });
        } else {
            let (index, result) = result_from_json(&json, jobs).map_err(corrupt)?;
            sink(StreamRecord::Result(index, Box::new(result)));
        }
        off += 4 + len + 8;
    }
    Ok(off as u64)
}

/// Parses a **headerless** stream of journal-framed records — the
/// process-isolation executor's child→parent result protocol
/// ([`crate::exec`]). The frames are exactly the journal's record frames;
/// a child killed mid-write leaves a torn tail, tolerated the same way.
pub(crate) fn parse_record_stream(
    bytes: &[u8],
    jobs: &[SimJob],
) -> Result<Vec<StreamRecord>, JournalError> {
    let mut records = Vec::new();
    parse_frames(bytes, 0, jobs, |record| records.push(record))?;
    Ok(records)
}

/// Reads and replays a sweep journal file.
pub fn read_journal(
    path: impl AsRef<Path>,
    jobs: &[SimJob],
) -> Result<BTreeMap<usize, JobResult>, JournalError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    Ok(parse_bytes(&bytes, jobs)?.0)
}

/// The farm's append handle on a sweep journal. One record is written (in
/// a single `write_all`) and flushed per completed job; see the module
/// docs for the format and crash semantics.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    path: PathBuf,
}

impl JournalWriter {
    /// Creates (or truncates) a journal for this job list, writes the
    /// header, and makes both the header and the journal's directory entry
    /// durable (fsync of the file, then of the containing directory — a
    /// host crash right after create must not leave a resumable sweep
    /// pointing at a journal that was never durably linked).
    pub fn create(path: impl AsRef<Path>, jobs: &[SimJob]) -> Result<JournalWriter, JournalError> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::create(&path)?;
        file.write_all(&header_bytes(jobs)?)?;
        file.sync_all()?;
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            crate::checkpoint::fsync_dir(parent);
        }
        Ok(JournalWriter { file, path })
    }

    /// Opens an existing journal for resumption: validates the header
    /// against `jobs`, replays the completed records, truncates any torn
    /// tail, and positions the handle for appending. Returns the writer and
    /// the completed results by job index. Use [`JournalWriter::resume_full`]
    /// to also see mid-job partial progress.
    pub fn resume(
        path: impl AsRef<Path>,
        jobs: &[SimJob],
    ) -> Result<(JournalWriter, BTreeMap<usize, JobResult>), JournalError> {
        let (writer, replay) = JournalWriter::resume_full(path, jobs)?;
        Ok((writer, replay.completed))
    }

    /// [`JournalWriter::resume`] returning the full [`JournalReplay`]
    /// (completed results plus the latest durable mid-job progress of
    /// interrupted jobs).
    pub fn resume_full(
        path: impl AsRef<Path>,
        jobs: &[SimJob],
    ) -> Result<(JournalWriter, JournalReplay), JournalError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let replay = parse_bytes_full(&bytes, jobs)?;
        file.set_len(replay.valid_len)?;
        file.seek(SeekFrom::Start(replay.valid_len))?;
        file.sync_data()?;
        Ok((JournalWriter { file, path }, replay))
    }

    /// Appends one completed job atomically (single write) and fsyncs it —
    /// once this returns, the result survives a host crash, not just a
    /// process crash.
    pub fn record(&mut self, index: usize, result: &JobResult) -> Result<(), JournalError> {
        self.file.write_all(&record_bytes(index, result)?)?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Appends one durable mid-job progress record (job `index` sealed a
    /// checkpoint at `cycle`), fsynced like [`JournalWriter::record`].
    pub fn record_partial(&mut self, index: usize, cycle: u64) -> Result<(), JournalError> {
        self.file.write_all(&partial_record_bytes(index, cycle)?)?;
        self.file.sync_data()?;
        Ok(())
    }

    /// The journal's path (for operator messages).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

// ---------------------------------------------------------------------------
// JSON encoding of completed jobs
// ---------------------------------------------------------------------------

/// Encodes a u64 counter losslessly: a JSON number while exact in `f64`,
/// a `"0x…"` hex string beyond 2^53 (the same fallback the farm report
/// already uses for digests). [`get_u64`] accepts both spellings.
fn num(v: u64) -> Json {
    Json::lossless_u64(v)
}

/// Decodes either counter spelling: an exact JSON number, or the hex-string
/// fallback [`num`] emits above 2^53.
fn json_u64(j: &Json) -> Option<u64> {
    j.lossless_as_u64()
}

fn get_u64(j: &Json, key: &str) -> Result<u64, String> {
    j.get(key)
        .and_then(json_u64)
        .ok_or_else(|| format!("missing or non-integer `{key}`"))
}

fn get_str<'a>(j: &'a Json, key: &str) -> Result<&'a str, String> {
    j.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string `{key}`"))
}

fn stall_kind_name(kind: StallKind) -> &'static str {
    match kind {
        StallKind::Wedged => "wedged",
        StallKind::Livelock => "livelock",
        StallKind::Starvation => "starvation",
    }
}

fn stall_kind_parse(s: &str) -> Result<StallKind, String> {
    match s {
        "wedged" => Ok(StallKind::Wedged),
        "livelock" => Ok(StallKind::Livelock),
        "starvation" => Ok(StallKind::Starvation),
        other => Err(format!("unknown stall kind `{other}`")),
    }
}

fn outcome_to_json(outcome: &JobOutcome) -> Json {
    let mut obj = BTreeMap::new();
    match outcome {
        JobOutcome::Halted => {
            obj.insert("kind".into(), Json::Str("halted".into()));
        }
        JobOutcome::BudgetExhausted => {
            obj.insert("kind".into(), Json::Str("budget-exhausted".into()));
        }
        JobOutcome::Failed(message) => {
            obj.insert("kind".into(), Json::Str("failed".into()));
            obj.insert("message".into(), Json::Str(message.clone()));
        }
        JobOutcome::Panicked { payload, .. } => {
            // The captured backtrace is deliberately not journaled: it is
            // ASLR-dependent, and journal records must stay deterministic.
            obj.insert("kind".into(), Json::Str("panicked".into()));
            obj.insert("payload".into(), Json::Str(payload.clone()));
        }
        JobOutcome::Killed { signal } => {
            obj.insert("kind".into(), Json::Str("killed".into()));
            obj.insert("signal".into(), num(u64::from(signal.unsigned_abs())));
        }
        JobOutcome::Stalled(s) => {
            obj.insert("kind".into(), Json::Str("stalled".into()));
            obj.insert(
                "stall_kind".into(),
                Json::Str(stall_kind_name(s.kind).into()),
            );
            obj.insert("cycle".into(), num(s.cycle));
            obj.insert("stalled_for".into(), num(s.stalled_for));
            obj.insert("budget".into(), num(s.budget));
            obj.insert("detail".into(), Json::Str(s.detail.clone()));
        }
        JobOutcome::DeadlineExceeded { cycles, deadline_ms } => {
            obj.insert("kind".into(), Json::Str("deadline-exceeded".into()));
            obj.insert("cycles".into(), num(*cycles));
            obj.insert("deadline_ms".into(), num(*deadline_ms));
        }
        JobOutcome::Quarantined { attempts, last } => {
            obj.insert("kind".into(), Json::Str("quarantined".into()));
            obj.insert("attempts".into(), num(u64::from(*attempts)));
            obj.insert("last".into(), outcome_to_json(last));
        }
    }
    Json::Obj(obj)
}

fn outcome_from_json(j: &Json) -> Result<JobOutcome, String> {
    match get_str(j, "kind")? {
        "halted" => Ok(JobOutcome::Halted),
        "budget-exhausted" => Ok(JobOutcome::BudgetExhausted),
        "failed" => Ok(JobOutcome::Failed(get_str(j, "message")?.to_owned())),
        "panicked" => Ok(JobOutcome::Panicked {
            payload: get_str(j, "payload")?.to_owned(),
            backtrace: None,
        }),
        "killed" => Ok(JobOutcome::Killed {
            signal: i32::try_from(get_u64(j, "signal")?)
                .map_err(|_| "signal out of range".to_owned())?,
        }),
        "stalled" => Ok(JobOutcome::Stalled(StallSummary {
            kind: stall_kind_parse(get_str(j, "stall_kind")?)?,
            cycle: get_u64(j, "cycle")?,
            stalled_for: get_u64(j, "stalled_for")?,
            budget: get_u64(j, "budget")?,
            detail: get_str(j, "detail")?.to_owned(),
        })),
        "deadline-exceeded" => Ok(JobOutcome::DeadlineExceeded {
            cycles: get_u64(j, "cycles")?,
            deadline_ms: get_u64(j, "deadline_ms")?,
        }),
        "quarantined" => Ok(JobOutcome::Quarantined {
            attempts: u32::try_from(get_u64(j, "attempts")?)
                .map_err(|_| "attempts out of range".to_owned())?,
            last: Box::new(outcome_from_json(
                j.get("last").ok_or("missing `last`")?,
            )?),
        }),
        other => Err(format!("unknown outcome kind `{other}`")),
    }
}

fn stats_to_json(stats: &Stats) -> Json {
    let mut obj = BTreeMap::new();
    obj.insert("cycles".into(), num(stats.cycles));
    obj.insert("transitions".into(), num(stats.transitions));
    obj.insert("condition_failures".into(), num(stats.condition_failures));
    obj.insert("vetoed_edges".into(), num(stats.vetoed_edges));
    obj.insert("idle_steps".into(), num(stats.idle_steps));
    obj.insert("restarts".into(), num(stats.restarts));
    let named: BTreeMap<String, Json> = stats
        .named()
        .map(|(name, value)| (name.to_owned(), num(value)))
        .collect();
    obj.insert("named".into(), Json::Obj(named));
    Json::Obj(obj)
}

fn stats_from_json(j: &Json) -> Result<Stats, String> {
    let mut stats = Stats::new();
    stats.cycles = get_u64(j, "cycles")?;
    stats.transitions = get_u64(j, "transitions")?;
    stats.condition_failures = get_u64(j, "condition_failures")?;
    stats.vetoed_edges = get_u64(j, "vetoed_edges")?;
    stats.idle_steps = get_u64(j, "idle_steps")?;
    stats.restarts = get_u64(j, "restarts")?;
    if let Some(Json::Obj(named)) = j.get("named") {
        for (name, value) in named {
            let value =
                json_u64(value).ok_or_else(|| format!("non-integer named counter `{name}`"))?;
            stats.incr_dyn(name, value);
        }
    }
    Ok(stats)
}

/// Only the metrics fields the farm report renders survive the journal;
/// the full per-state/per-manager breakdowns are recomputable by re-running
/// the job and are deliberately not persisted.
fn metrics_to_json(m: &MetricsReport) -> Json {
    let mut obj = BTreeMap::new();
    obj.insert("completions".into(), num(m.completions));
    obj.insert("token_grants".into(), num(m.token_grants));
    obj.insert("token_denials".into(), num(m.token_denials));
    Json::Obj(obj)
}

fn metrics_from_json(j: &Json) -> Result<MetricsReport, String> {
    Ok(MetricsReport {
        cycles: 0,
        transitions: 0,
        completions: get_u64(j, "completions")?,
        token_grants: get_u64(j, "token_grants")?,
        token_denials: get_u64(j, "token_denials")?,
        restarts: 0,
        states: Vec::new(),
        managers: Vec::new(),
        window: 0,
        throughput: Vec::new(),
        stalls: None,
    })
}

fn faults_to_json(s: &FaultStats) -> Json {
    let mut obj = BTreeMap::new();
    obj.insert("denied_allocates".into(), num(s.denied_allocates));
    obj.insert("denied_inquires".into(), num(s.denied_inquires));
    obj.insert("deferred_releases".into(), num(s.deferred_releases));
    obj.insert("dropped_tokens".into(), num(s.dropped_tokens));
    obj.insert("corrupted_tokens".into(), num(s.corrupted_tokens));
    Json::Obj(obj)
}

fn faults_from_json(j: &Json) -> Result<FaultStats, String> {
    Ok(FaultStats {
        denied_allocates: get_u64(j, "denied_allocates")?,
        denied_inquires: get_u64(j, "denied_inquires")?,
        deferred_releases: get_u64(j, "deferred_releases")?,
        dropped_tokens: get_u64(j, "dropped_tokens")?,
        corrupted_tokens: get_u64(j, "corrupted_tokens")?,
    })
}

fn result_to_json(index: usize, r: &JobResult) -> Json {
    let mut obj = BTreeMap::new();
    obj.insert("index".into(), num(index as u64));
    obj.insert("name".into(), Json::Str(r.name.clone()));
    obj.insert("model".into(), Json::Str(r.model.name().into()));
    obj.insert("workload".into(), Json::Str(r.workload.clone()));
    obj.insert("outcome".into(), outcome_to_json(&r.outcome));
    obj.insert("cycles".into(), num(r.cycles));
    obj.insert("retired".into(), num(r.retired));
    obj.insert("exit_code".into(), num(u64::from(r.exit_code)));
    obj.insert("digest".into(), Json::Str(format!("{:016x}", r.digest)));
    obj.insert("attempts".into(), num(u64::from(r.attempts)));
    if let Some(cycle) = r.restored_from {
        obj.insert("restored_from".into(), num(cycle));
    }
    if let Some(stats) = &r.stats {
        obj.insert("stats".into(), stats_to_json(stats));
    }
    if let Some(metrics) = &r.metrics {
        obj.insert("metrics".into(), metrics_to_json(metrics));
    }
    if let Some(faults) = &r.fault_stats {
        obj.insert("faults".into(), faults_to_json(faults));
    }
    Json::Obj(obj)
}

fn result_from_json(j: &Json, jobs: &[SimJob]) -> Result<(usize, JobResult), String> {
    let index = get_u64(j, "index")? as usize;
    if index >= jobs.len() {
        return Err(format!("job index {index} out of range ({} jobs)", jobs.len()));
    }
    let model_name = get_str(j, "model")?;
    let model = ModelKind::parse(model_name)
        .ok_or_else(|| format!("unknown model `{model_name}`"))?;
    let digest_hex = get_str(j, "digest")?;
    let digest = u64::from_str_radix(digest_hex, 16)
        .map_err(|_| format!("bad digest `{digest_hex}`"))?;
    let result = JobResult {
        name: get_str(j, "name")?.to_owned(),
        model,
        workload: get_str(j, "workload")?.to_owned(),
        outcome: outcome_from_json(j.get("outcome").ok_or("missing `outcome`")?)?,
        cycles: get_u64(j, "cycles")?,
        retired: get_u64(j, "retired")?,
        exit_code: u32::try_from(get_u64(j, "exit_code")?)
            .map_err(|_| "exit_code out of range".to_owned())?,
        digest,
        attempts: u32::try_from(get_u64(j, "attempts")?)
            .map_err(|_| "attempts out of range".to_owned())?,
        restored_from: j
            .get("restored_from")
            .map(|v| json_u64(v).ok_or_else(|| "non-integer `restored_from`".to_owned()))
            .transpose()?,
        stats: j.get("stats").map(stats_from_json).transpose()?,
        metrics: j.get("metrics").map(metrics_from_json).transpose()?,
        fault_stats: j.get("faults").map(faults_from_json).transpose()?,
    };
    Ok((index, result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::run_job;

    fn sample_jobs() -> Vec<SimJob> {
        (0..3)
            .map(|i| SimJob::minirisc_random(i, 32, 10_000))
            .collect()
    }

    fn journal_bytes_for(jobs: &[SimJob], upto: usize) -> Vec<u8> {
        let mut bytes = header_bytes(jobs).unwrap();
        for (i, job) in jobs.iter().take(upto).enumerate() {
            bytes.extend_from_slice(&record_bytes(i, &run_job(job)).unwrap());
        }
        bytes
    }

    #[test]
    fn outcomes_round_trip_through_json() {
        let outcomes = [
            JobOutcome::Halted,
            JobOutcome::BudgetExhausted,
            JobOutcome::Failed("some \"quoted\" error\nwith newline".into()),
            JobOutcome::Panicked {
                payload: "chaos:panic workload fired".into(),
                backtrace: None,
            },
            JobOutcome::Killed { signal: 9 },
            JobOutcome::Stalled(StallSummary {
                kind: StallKind::Livelock,
                cycle: 1234,
                stalled_for: 500,
                budget: 500,
                detail: "livelock detected at control step 1234".into(),
            }),
            JobOutcome::DeadlineExceeded {
                cycles: 99,
                deadline_ms: 10,
            },
            JobOutcome::Quarantined {
                attempts: 2,
                last: Box::new(JobOutcome::Panicked {
                    payload: "inner".into(),
                    backtrace: None,
                }),
            },
            JobOutcome::Quarantined {
                attempts: 3,
                last: Box::new(JobOutcome::Killed { signal: 6 }),
            },
        ];
        for outcome in outcomes {
            let encoded = outcome_to_json(&outcome).to_string();
            let decoded = outcome_from_json(&parse(&encoded).unwrap()).unwrap();
            assert_eq!(decoded, outcome, "{encoded}");
        }
    }

    #[test]
    fn records_round_trip_byte_identically() {
        let jobs = sample_jobs();
        let bytes = journal_bytes_for(&jobs, 3);
        let (completed, valid_len) = parse_bytes(&bytes, &jobs).unwrap();
        assert_eq!(valid_len as usize, bytes.len());
        assert_eq!(completed.len(), 3);
        for (i, job) in jobs.iter().enumerate() {
            let original = run_job(job);
            let replayed = &completed[&i];
            assert_eq!(replayed.name, original.name);
            assert_eq!(replayed.digest, original.digest);
            assert_eq!(replayed.outcome, original.outcome);
            assert_eq!(replayed.cycles, original.cycles);
            // Re-encoding the replayed result reproduces the exact record.
            assert_eq!(record_bytes(i, replayed).unwrap(), record_bytes(i, &original).unwrap());
        }
    }

    #[test]
    fn torn_tail_is_tolerated_corrupt_record_rejected() {
        let jobs = sample_jobs();
        let full = journal_bytes_for(&jobs, 2);
        let header_and_one = journal_bytes_for(&jobs, 1).len();

        // Torn tail: cut anywhere inside the second record.
        let torn = &full[..header_and_one + 5];
        let (completed, valid_len) = parse_bytes(torn, &jobs).unwrap();
        assert_eq!(completed.len(), 1);
        assert_eq!(valid_len as usize, header_and_one);

        // Corrupt record: flip a payload byte of the first record.
        let mut corrupt = full.clone();
        corrupt[HEADER_LEN + 10] ^= 0xFF;
        match parse_bytes(&corrupt, &jobs) {
            Err(JournalError::CorruptRecord { offset, .. }) => {
                assert_eq!(offset as usize, HEADER_LEN)
            }
            other => panic!("expected CorruptRecord, got {other:?}"),
        }
    }

    #[test]
    fn mismatched_job_list_is_rejected() {
        let jobs = sample_jobs();
        let bytes = journal_bytes_for(&jobs, 1);
        let mut other = sample_jobs();
        other[0].seed = 999;
        match parse_bytes(&bytes, &other) {
            Err(JournalError::ManifestMismatch { .. }) => {}
            other => panic!("expected ManifestMismatch, got {other:?}"),
        }
        // Same list parses fine.
        assert!(parse_bytes(&bytes, &jobs).is_ok());
    }

    /// Regression: u64 counters above 2^53 must round-trip through the
    /// journal's JSON payload bit-exactly. The old `Json::Num(v as f64)`
    /// encoding silently rounded them (2^53 + 1 re-read as 2^53), so a
    /// resumed long-haul sweep would consolidate wrong totals.
    #[test]
    fn counters_above_2_pow_53_round_trip_losslessly() {
        let big = (1u64 << 53) + 1;
        assert_ne!(big as f64 as u64, big, "2^53+1 is not exact in f64");
        let jobs = sample_jobs();
        let mut result = run_job(&jobs[0]);
        result.cycles = big;
        result.retired = big;
        let mut stats = Stats::new();
        stats.transitions = big;
        result.stats = Some(stats);
        let mut bytes = header_bytes(&jobs).unwrap();
        bytes.extend_from_slice(&record_bytes(0, &result).unwrap());
        let (completed, _) = parse_bytes(&bytes, &jobs).unwrap();
        let replayed = &completed[&0];
        assert_eq!(replayed.cycles, big);
        assert_eq!(replayed.retired, big);
        assert_eq!(replayed.stats.as_ref().map(|s| s.transitions), Some(big));
        // The spelling in the payload is the 0x-hex fallback, not a
        // rounded number.
        let payload = String::from_utf8_lossy(&bytes);
        assert!(payload.contains(&format!("\"0x{big:x}\"")), "{payload}");
    }

    /// Regression: the format's u32 length fields refuse values they would
    /// otherwise silently truncate (`jobs.len() as u32`,
    /// `payload.len() as u32`).
    #[test]
    fn oversized_length_fields_are_refused_not_truncated() {
        match len_u32("job count", u32::MAX as usize + 1) {
            Err(JournalError::TooLarge { what, len }) => {
                assert_eq!(what, "job count");
                assert_eq!(len, u64::from(u32::MAX) + 1);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
        // In-range lengths pass through exactly.
        assert_eq!(len_u32("record payload", 42).unwrap(), 42);
        assert_eq!(
            len_u32("record payload", u32::MAX as usize).unwrap(),
            u32::MAX
        );
        // And the public encoders stay fine for ordinary inputs.
        let jobs = sample_jobs();
        assert!(header_bytes(&jobs).is_ok());
        assert!(record_bytes(0, &run_job(&jobs[0])).is_ok());
    }

    #[test]
    fn partial_records_replay_and_results_supersede_them() {
        let jobs = sample_jobs();
        let mut bytes = header_bytes(&jobs).unwrap();
        bytes.extend_from_slice(&partial_record_bytes(0, 2048).unwrap());
        bytes.extend_from_slice(&partial_record_bytes(1, 4096).unwrap());
        bytes.extend_from_slice(&partial_record_bytes(1, 8192).unwrap());
        let replay = parse_bytes_full(&bytes, &jobs).unwrap();
        assert!(replay.completed.is_empty());
        assert_eq!(replay.partials[&0], 2048);
        assert_eq!(replay.partials[&1], 8192, "later partial wins");

        // A completed result supersedes the partial for its index.
        bytes.extend_from_slice(&record_bytes(1, &run_job(&jobs[1])).unwrap());
        let replay = parse_bytes_full(&bytes, &jobs).unwrap();
        assert_eq!(replay.partials.keys().copied().collect::<Vec<_>>(), vec![0]);
        assert!(replay.completed.contains_key(&1));

        // The compatibility wrapper sees only completed results.
        let (completed, valid_len) = parse_bytes(&bytes, &jobs).unwrap();
        assert_eq!(completed.len(), 1);
        assert_eq!(valid_len as usize, bytes.len());

        // A torn partial record is tolerated like any torn tail.
        let torn = &bytes[..bytes.len() - 3];
        assert!(parse_bytes_full(torn, &jobs).is_ok());

        // An out-of-range partial index is corruption, not silence.
        let mut oor = header_bytes(&jobs).unwrap();
        oor.extend_from_slice(&partial_record_bytes(99, 1).unwrap());
        assert!(matches!(
            parse_bytes_full(&oor, &jobs),
            Err(JournalError::CorruptRecord { .. })
        ));
    }

    #[test]
    fn journal_create_record_resume_in_a_fresh_directory_is_durable() {
        // Exercises the fsync paths end to end: create (file + directory
        // sync), per-record sync, partial records, and a resume that sees
        // both record kinds.
        let dir = std::env::temp_dir().join(format!("simfarm-journal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.journal");
        let jobs = sample_jobs();
        {
            let mut w = JournalWriter::create(&path, &jobs).unwrap();
            w.record_partial(2, 4096).unwrap();
            w.record(0, &run_job(&jobs[0])).unwrap();
        }
        let (w, replay) = JournalWriter::resume_full(&path, &jobs).unwrap();
        assert_eq!(w.path(), path);
        assert_eq!(replay.completed.keys().copied().collect::<Vec<_>>(), vec![0]);
        assert_eq!(replay.partials[&2], 4096);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn jobs_digest_tracks_every_supervision_field() {
        let base = sample_jobs();
        let d0 = jobs_digest(&base);
        for mutate in [
            (|j: &mut SimJob| j.stall_budget = Some(1)) as fn(&mut SimJob),
            |j| j.deadline_ms = Some(1),
            |j| j.retries = 9,
            |j| j.max_cycles += 1,
            |j| j.seed += 1,
            |j| j.name.push('x'),
        ] {
            let mut jobs = base.clone();
            mutate(&mut jobs[0]);
            assert_ne!(jobs_digest(&jobs), d0);
        }
        // The checkpoint cadence is operational, not behavioral: tuning it
        // must not orphan an existing journal.
        let mut jobs = base.clone();
        jobs[0].checkpoint_every = 10_000;
        assert_eq!(jobs_digest(&jobs), d0);
    }
}
