//! The work-stealing farm: `std::thread` workers over per-worker deques.
//!
//! Each worker owns a deque of job indices. It pops work from the **front**
//! of its own deque and, when empty, steals from the **back** of the other
//! workers' deques (classic Arora-Blumofe-Plotkin discipline, here with
//! mutexed `VecDeque`s since jobs are coarse — whole simulations — and the
//! queue is touched once per job, not per task). Results are delivered
//! through a channel tagged with the job index and re-assembled into job
//! order, so aggregation is independent of completion order.

use crate::job::{run_job, JobResult, SimJob};
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::Mutex;

/// Runs every job on the calling thread, in job order. The oracle the
/// parallel farm is checked against (`simfarm_smoke` asserts digest parity).
pub fn run_serial(jobs: &[SimJob]) -> Vec<JobResult> {
    jobs.iter().map(run_job).collect()
}

/// Runs the job list across `workers` threads with work stealing and
/// returns the results **in job-index order** regardless of completion
/// order.
///
/// Jobs are distributed round-robin across the worker deques up front
/// (good initial balance for homogeneous sweeps); stealing rebalances
/// heterogeneous ones. `workers` is clamped to `[1, jobs.len()]`.
pub fn run_parallel(jobs: &[SimJob], workers: usize) -> Vec<JobResult> {
    if jobs.is_empty() {
        return Vec::new();
    }
    let workers = workers.clamp(1, jobs.len());
    if workers == 1 {
        return run_serial(jobs);
    }

    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            Mutex::new(
                (0..jobs.len())
                    .filter(|idx| idx % workers == w)
                    .collect::<VecDeque<usize>>(),
            )
        })
        .collect();
    let (tx, rx) = mpsc::channel::<(usize, JobResult)>();

    std::thread::scope(|scope| {
        for me in 0..workers {
            let tx = tx.clone();
            let deques = &deques;
            scope.spawn(move || {
                while let Some(idx) = next_job(deques, me) {
                    // A worker panicking inside run_job poisons nothing the
                    // others depend on: its deque stays stealable and the
                    // missing result is caught by the assembly check below.
                    let result = run_job(&jobs[idx]);
                    if tx.send((idx, result)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
    });

    let mut slots: Vec<Option<JobResult>> = (0..jobs.len()).map(|_| None).collect();
    for (idx, result) in rx {
        slots[idx] = Some(result);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(idx, slot)| slot.unwrap_or_else(|| panic!("job {idx} produced no result")))
        .collect()
}

/// Pops the next index: own deque front first, then steal from the back of
/// the other deques (scanning cyclically from the right neighbour). Returns
/// `None` only when every deque is empty — no job generates new jobs, so
/// that is a stable termination condition.
fn next_job(deques: &[Mutex<VecDeque<usize>>], me: usize) -> Option<usize> {
    if let Some(idx) = deques[me].lock().unwrap().pop_front() {
        return Some(idx);
    }
    let n = deques.len();
    for offset in 1..n {
        let victim = (me + offset) % n;
        if let Some(idx) = deques[victim].lock().unwrap().pop_back() {
            return Some(idx);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::SimJob;

    fn jobs(n: u64) -> Vec<SimJob> {
        (0..n).map(|i| SimJob::minirisc_random(i, 32, 20_000)).collect()
    }

    #[test]
    fn parallel_matches_serial_digests_in_order() {
        let js = jobs(8);
        let serial = run_serial(&js);
        let parallel = run_parallel(&js, 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.name, p.name, "results must come back in job order");
            assert_eq!(s.digest, p.digest);
            assert_eq!(s.cycles, p.cycles);
        }
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let js = jobs(2);
        let results = run_parallel(&js, 16);
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn empty_job_list_yields_empty_results() {
        assert!(run_parallel(&[], 4).is_empty());
    }

    #[test]
    fn stealing_drains_unbalanced_deques() {
        // 9 jobs on 8 workers: worker 0 gets two, everyone else one; the
        // extra job is stolen or run — either way all 9 results arrive.
        let js = jobs(9);
        let results = run_parallel(&js, 8);
        assert_eq!(results.len(), 9);
        assert!(results.iter().all(|r| r.is_ok()));
    }
}
