//! The supervised work-stealing farm: `std::thread` workers over per-worker
//! deques.
//!
//! Each worker owns a deque of job indices. It pops work from the **front**
//! of its own deque and, when empty, steals from the **back** of the other
//! workers' deques (classic Arora-Blumofe-Plotkin discipline, here with
//! mutexed `VecDeque`s since jobs are coarse — whole simulations — and the
//! queue is touched once per job, not per task). Results are delivered
//! through a channel tagged with the job index; the coordinating thread
//! drains it *while workers run*, journaling each completed job and
//! re-assembling results into job order, so aggregation is independent of
//! completion order.
//!
//! ## Supervision
//!
//! Every job runs through [`run_job_supervised`]: panics are caught and
//! typed, unhealthy jobs are retried and quarantined, stall budgets and
//! wall deadlines are enforced inside the job itself. Worker threads
//! therefore never unwind out of the farm. Deques are locked
//! poison-tolerantly anyway (`Mutex` poisoning only flags that a panic
//! happened mid-critical-section; a `VecDeque<usize>` has no invariant a
//! failed `pop` can break), so even a hypothetical unwind leaves the other
//! workers draining the queue instead of cascading
//! `PoisonError` unwraps across the farm. A job slot that still comes back
//! empty (a worker died without reporting) surfaces as the typed
//! [`FarmError::MissingResult`] — the seed's `panic!("job {idx} produced no
//! result")` assembly hole, demoted from crash to error.

use crate::checkpoint::CheckpointCtl;
use crate::error::FarmError;
use crate::exec::{self, ProcessIsolation};
use crate::job::{JobResult, SimJob};
use crate::journal::JournalWriter;
use crate::observe::{FarmObserver, FarmSchedule, JobSpan, WorkerTelemetry};
use crate::supervise::{
    run_job_supervised, run_job_supervised_ckpt, run_job_supervised_observed, CancelToken,
};
use std::collections::{BTreeMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::Mutex;

/// What a worker reports to the coordinator: a completed job, or durable
/// mid-job progress (a checkpoint was sealed at `cycle`) to be journaled
/// as a partial record.
enum Msg {
    Result(usize, Box<JobResult>),
    Partial(usize, u64),
}

/// Everything optional a supervised sweep can carry: a cancellation token,
/// previously-completed results to skip (durable resume), a journal to
/// record completions into, and a completion hook.
#[derive(Default)]
pub struct FarmOptions {
    /// Cooperative cancellation: once cancelled, workers finish their
    /// in-flight jobs, the journal is flushed, and [`run_farm`] returns a
    /// partial [`SweepRun`] with `cancelled = true`.
    pub cancel: CancelToken,
    /// Results restored from a sweep journal, by job index; these jobs are
    /// **not** re-run. Produced by [`JournalWriter::resume`] /
    /// [`crate::read_journal`].
    pub completed: BTreeMap<usize, JobResult>,
    /// When present, every newly completed job is appended (and flushed)
    /// the moment it arrives, in completion order.
    pub journal: Option<JournalWriter>,
    /// Called on the coordinating thread for each newly completed job, in
    /// completion order (after the journal append). Tests and CLIs hook
    /// progress and kill-switches here.
    #[allow(clippy::type_complexity)]
    pub on_result: Option<Box<dyn FnMut(usize, &JobResult)>>,
    /// Farm-scope observability: when present, workers record per-job
    /// lifecycle spans and per-worker telemetry into it, and the finished
    /// [`FarmSchedule`] is attached to the returned [`SweepRun`]. When
    /// absent the workers run the exact pre-observer hot loop — results are
    /// bit-identical either way (timing never feeds back into execution).
    pub observer: Option<FarmObserver>,
    /// Directory for durable mid-job checkpoints. When present, every job
    /// that opted in ([`SimJob::checkpoint_every`]) seals a checkpoint on
    /// cadence, the coordinator journals a partial-progress record per
    /// seal, and a resumed (or retried) job restores from its last durable
    /// checkpoint instead of cycle 0. `None` disables mid-job
    /// checkpointing entirely.
    pub checkpoint_dir: Option<PathBuf>,
    /// When present, every job attempt runs in a re-exec'd subprocess
    /// under the given resource budgets ([`crate::exec`]); hard crashes
    /// become [`crate::JobOutcome::Killed`]. `None` (the default) runs
    /// jobs in-process on the worker threads.
    pub isolation: Option<ProcessIsolation>,
}

impl std::fmt::Debug for FarmOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FarmOptions")
            .field("cancelled", &self.cancel.is_cancelled())
            .field("completed", &self.completed.len())
            .field("journal", &self.journal)
            .field("on_result", &self.on_result.is_some())
            .field("observer", &self.observer.is_some())
            .field("checkpoint_dir", &self.checkpoint_dir)
            .field("isolation", &self.isolation.is_some())
            .finish()
    }
}

/// The product of a supervised sweep: completed results by job index, plus
/// what happened around them.
#[derive(Debug)]
pub struct SweepRun {
    /// Total jobs in the sweep (completed + pending).
    pub jobs_total: usize,
    /// Completed results by job index (restored + newly run).
    pub completed: BTreeMap<usize, JobResult>,
    /// How many of `completed` were restored from the journal rather than
    /// run in this process.
    pub restored: usize,
    /// True if the sweep was cancelled before every job completed; the
    /// journal (if any) holds everything in `completed`, so a later
    /// `--resume` picks up exactly the pending jobs.
    pub cancelled: bool,
    /// What the [`FarmObserver`] recorded, when one was attached. Purely
    /// timing-derived — never part of any canonical rendering.
    pub schedule: Option<FarmSchedule>,
}

impl SweepRun {
    /// Job indices that did not complete (non-empty only after
    /// cancellation).
    pub fn pending(&self) -> Vec<usize> {
        (0..self.jobs_total)
            .filter(|idx| !self.completed.contains_key(idx))
            .collect()
    }

    /// True when every job completed.
    pub fn is_complete(&self) -> bool {
        self.completed.len() == self.jobs_total
    }

    /// Unwraps a *complete* run into results in job-index order. A hole in
    /// an un-cancelled run is the farm's broken assembly invariant,
    /// surfaced as [`FarmError::MissingResult`]; calling this on a
    /// cancelled partial run reports its first pending job the same way.
    pub fn into_results(mut self) -> Result<Vec<JobResult>, FarmError> {
        let mut out = Vec::with_capacity(self.jobs_total);
        for idx in 0..self.jobs_total {
            match self.completed.remove(&idx) {
                Some(result) => out.push(result),
                None => {
                    return Err(FarmError::MissingResult {
                        index: idx,
                        name: String::new(),
                    })
                }
            }
        }
        Ok(out)
    }
}

/// Locks a worker deque, recovering from poisoning: the protected value is
/// a plain `VecDeque<usize>` with no invariant a mid-`pop` unwind could
/// break, so a poisoned lock is safe to adopt. This is what keeps one
/// worker's panic from cascading `PoisonError` panics across every other
/// worker that later touches the deque.
fn lock_deque(m: &Mutex<VecDeque<usize>>) -> std::sync::MutexGuard<'_, VecDeque<usize>> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Runs every job on the calling thread, in job order, under full
/// supervision (crash isolation, retries, quarantine). The oracle the
/// parallel farm is checked against (`simfarm_smoke` asserts digest parity).
pub fn run_serial(jobs: &[SimJob]) -> Vec<JobResult> {
    jobs.iter().map(run_job_supervised).collect()
}

/// Runs the job list across `workers` threads with work stealing and
/// returns the results **in job-index order** regardless of completion
/// order. Every job is supervised — a panicking, stalling or overrunning
/// job becomes its typed [`crate::JobOutcome`], never a dead farm.
///
/// This is the plain entry point; [`run_farm`] is the full one (journal,
/// resume, cancellation). `workers` is clamped to `[1, jobs.len()]`.
pub fn run_parallel(jobs: &[SimJob], workers: usize) -> Result<Vec<JobResult>, FarmError> {
    run_farm(jobs, workers, FarmOptions::default())?.into_results()
}

/// The supervised sweep: work-stealing execution of every job not already
/// in `options.completed`, with per-completion journaling and cooperative
/// cancellation.
///
/// Jobs are distributed round-robin across the worker deques up front
/// (good initial balance for homogeneous sweeps); stealing rebalances
/// heterogeneous ones. The coordinating thread (the caller's) drains the
/// result channel concurrently: each arriving result is appended to the
/// journal, handed to `on_result`, and slotted by index. A journal append
/// failure cancels the sweep (workers finish in-flight jobs) and surfaces
/// as `Err` — results are never silently dropped while the journal claims
/// otherwise.
pub fn run_farm(
    jobs: &[SimJob],
    workers: usize,
    options: FarmOptions,
) -> Result<SweepRun, FarmError> {
    let FarmOptions {
        cancel,
        completed,
        mut journal,
        mut on_result,
        observer,
        checkpoint_dir,
        isolation,
    } = options;
    let mut completed: BTreeMap<usize, JobResult> = completed
        .into_iter()
        .filter(|(idx, _)| *idx < jobs.len())
        .collect();
    let restored = completed.len();
    let pending: Vec<usize> = (0..jobs.len())
        .filter(|idx| !completed.contains_key(idx))
        .collect();
    if pending.is_empty() {
        return Ok(SweepRun {
            jobs_total: jobs.len(),
            completed,
            restored,
            cancelled: cancel.is_cancelled(),
            schedule: observer.map(|obs| obs.finish(jobs.len())),
        });
    }
    let workers = workers.clamp(1, pending.len());

    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            Mutex::new(
                pending
                    .iter()
                    .copied()
                    .skip(w)
                    .step_by(workers)
                    .collect::<VecDeque<usize>>(),
            )
        })
        .collect();
    let (tx, rx) = mpsc::channel::<Msg>();

    let mut journal_error: Option<FarmError> = None;
    std::thread::scope(|scope| {
        for me in 0..workers {
            let tx = tx.clone();
            let deques = &deques;
            let cancel = cancel.clone();
            let observer = observer.clone();
            let ckpt_dir = checkpoint_dir.as_deref();
            let isolation = isolation.as_ref();
            scope.spawn(move || match observer {
                None => worker_plain(deques, me, &cancel, &tx, jobs, ckpt_dir, isolation),
                Some(obs) => {
                    worker_observed(deques, me, &cancel, &tx, jobs, &obs, ckpt_dir, isolation)
                }
            });
        }
        drop(tx);

        // Drain while the workers run: journal + hook + slot, in completion
        // order. The loop ends when the last worker drops its sender.
        for msg in rx {
            let (idx, result) = match msg {
                Msg::Partial(idx, cycle) => {
                    // Partial progress is advisory (the checkpoint file is
                    // already durable); a failing journal still cancels —
                    // the account must not silently diverge from disk.
                    if journal_error.is_none() {
                        if let Some(journal) = journal.as_mut() {
                            if let Err(e) = journal.record_partial(idx, cycle) {
                                journal_error = Some(e.into());
                                cancel.cancel();
                            }
                        }
                    }
                    continue;
                }
                Msg::Result(idx, result) => (idx, *result),
            };
            if journal_error.is_none() {
                if let Some(journal) = journal.as_mut() {
                    if let Err(e) = journal.record(idx, &result) {
                        journal_error = Some(e.into());
                        cancel.cancel();
                    }
                }
            }
            if let Some(hook) = on_result.as_mut() {
                hook(idx, &result);
            }
            completed.insert(idx, result);
        }
    });

    if let Some(e) = journal_error {
        return Err(e);
    }
    let run = SweepRun {
        jobs_total: jobs.len(),
        completed,
        restored,
        cancelled: cancel.is_cancelled(),
        schedule: observer.map(|obs| obs.finish(jobs.len())),
    };
    if !run.cancelled && !run.is_complete() {
        // A worker died without reporting — the assembly invariant is
        // broken. Typed error, not a panic (satellite of the seed's
        // `panic!("job {idx} produced no result")`).
        let index = run.pending()[0];
        return Err(FarmError::MissingResult {
            index,
            name: jobs[index].name.clone(),
        });
    }
    Ok(run)
}

/// Builds the optional checkpoint controller for one in-process job,
/// wiring its save notifications to the coordinator as partial-progress
/// messages.
fn job_ckpt_ctl<'a>(
    jobs: &[SimJob],
    idx: usize,
    ckpt_dir: Option<&Path>,
    tx: &'a mpsc::Sender<Msg>,
) -> Option<CheckpointCtl<'a>> {
    let dir = ckpt_dir?;
    Some(
        CheckpointCtl::new(&jobs[idx], idx, dir)?
            .with_notify(move |cycle| {
                let _ = tx.send(Msg::Partial(idx, cycle));
            }),
    )
}

/// The worker body when no observer is attached: the pre-observability hot
/// loop, with no clock reads and no telemetry bookkeeping.
#[allow(clippy::too_many_arguments)]
fn worker_plain(
    deques: &[Mutex<VecDeque<usize>>],
    me: usize,
    cancel: &CancelToken,
    tx: &mpsc::Sender<Msg>,
    jobs: &[SimJob],
    ckpt_dir: Option<&Path>,
    isolation: Option<&ProcessIsolation>,
) {
    while !cancel.is_cancelled() {
        let Some((idx, _stolen)) = next_job(deques, me) else { break };
        let result = match isolation {
            Some(iso) => exec::run_child_supervised(iso, jobs, idx, ckpt_dir, &mut |cycle| {
                let _ = tx.send(Msg::Partial(idx, cycle));
            }),
            None => {
                let mut ctl = job_ckpt_ctl(jobs, idx, ckpt_dir, tx);
                run_job_supervised_ckpt(&jobs[idx], ctl.as_mut())
            }
        };
        if tx.send(Msg::Result(idx, Box::new(result))).is_err() {
            break;
        }
    }
}

/// The worker body with a [`FarmObserver`] attached: the same job flow,
/// plus busy/idle accounting, pop-vs-steal counting, and one recorded
/// [`JobSpan`] per completed job. Timing is read only at job boundaries —
/// the simulation itself is bit-identical to the plain path.
#[allow(clippy::too_many_arguments)]
fn worker_observed(
    deques: &[Mutex<VecDeque<usize>>],
    me: usize,
    cancel: &CancelToken,
    tx: &mpsc::Sender<Msg>,
    jobs: &[SimJob],
    obs: &FarmObserver,
    ckpt_dir: Option<&Path>,
    isolation: Option<&ProcessIsolation>,
) {
    let mut telemetry = WorkerTelemetry {
        worker: me,
        ..WorkerTelemetry::default()
    };
    let mut idle_mark = obs.now_ns();
    while !cancel.is_cancelled() {
        let Some((idx, stolen)) = next_job(deques, me) else { break };
        let started_ns = obs.now_ns();
        telemetry.idle_ns += started_ns.saturating_sub(idle_mark);
        if stolen {
            telemetry.steals += 1;
        } else {
            telemetry.own_pops += 1;
        }
        let (result, attempts) = match isolation {
            Some(iso) => exec::run_child_supervised_observed(
                iso,
                jobs,
                idx,
                ckpt_dir,
                &mut |cycle| {
                    let _ = tx.send(Msg::Partial(idx, cycle));
                },
                || obs.now_ns(),
            ),
            None => {
                let mut ctl = job_ckpt_ctl(jobs, idx, ckpt_dir, tx);
                run_job_supervised_observed(&jobs[idx], ctl.as_mut(), || obs.now_ns())
            }
        };
        let finished_ns = obs.now_ns();
        telemetry.busy_ns += finished_ns.saturating_sub(started_ns);
        telemetry.jobs_completed += 1;
        idle_mark = finished_ns;
        obs.record_span(JobSpan {
            index: idx,
            name: result.name.clone(),
            worker: me,
            stolen,
            started_ns,
            finished_ns,
            attempts,
            outcome: result.outcome.label(),
            cycles: result.cycles,
        });
        if tx.send(Msg::Result(idx, Box::new(result))).is_err() {
            break;
        }
    }
    telemetry.idle_ns += obs.now_ns().saturating_sub(idle_mark);
    obs.record_worker(telemetry);
}

/// Pops the next index: own deque front first, then steal from the back of
/// the other deques (scanning cyclically from the right neighbour). The
/// flag reports whether the job was stolen. Returns `None` only when every
/// deque is empty — no job generates new jobs, so that is a stable
/// termination condition. Poisoned deques are adopted, not propagated (see
/// [`lock_deque`]).
fn next_job(deques: &[Mutex<VecDeque<usize>>], me: usize) -> Option<(usize, bool)> {
    if let Some(idx) = lock_deque(&deques[me]).pop_front() {
        return Some((idx, false));
    }
    let n = deques.len();
    for offset in 1..n {
        let victim = (me + offset) % n;
        if let Some(idx) = lock_deque(&deques[victim]).pop_back() {
            return Some((idx, true));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobOutcome, SimJob};

    fn jobs(n: u64) -> Vec<SimJob> {
        (0..n).map(|i| SimJob::minirisc_random(i, 32, 20_000)).collect()
    }

    #[test]
    fn parallel_matches_serial_digests_in_order() {
        let js = jobs(8);
        let serial = run_serial(&js);
        let parallel = run_parallel(&js, 4).unwrap();
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.name, p.name, "results must come back in job order");
            assert_eq!(s.digest, p.digest);
            assert_eq!(s.cycles, p.cycles);
        }
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let js = jobs(2);
        let results = run_parallel(&js, 16).unwrap();
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn empty_job_list_yields_empty_results() {
        assert!(run_parallel(&[], 4).unwrap().is_empty());
    }

    #[test]
    fn stealing_drains_unbalanced_deques() {
        // 9 jobs on 8 workers: worker 0 gets two, everyone else one; the
        // extra job is stolen or run — either way all 9 results arrive.
        let js = jobs(9);
        let results = run_parallel(&js, 8).unwrap();
        assert_eq!(results.len(), 9);
        assert!(results.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn poisoned_deque_is_adopted_not_cascaded() {
        // Regression for the seed's `.lock().unwrap()`: poison a deque the
        // way a worker panic mid-critical-section would, then show both the
        // lock helper and the full steal scan still drain it.
        let deques: Vec<Mutex<VecDeque<usize>>> = vec![
            Mutex::new(VecDeque::new()),
            Mutex::new(VecDeque::from([7usize, 8])),
        ];
        let caught = std::panic::catch_unwind(|| {
            let _guard = deques[1].lock().unwrap();
            panic!("worker died holding the deque lock");
        });
        assert!(caught.is_err());
        assert!(deques[1].is_poisoned());
        assert_eq!(lock_deque(&deques[1]).front(), Some(&7));
        // Worker 0's steal path crosses the poisoned mutex.
        assert_eq!(next_job(&deques, 0), Some((8, true)));
        assert_eq!(next_job(&deques, 1), Some((7, false)));
        assert_eq!(next_job(&deques, 0), None);
    }

    #[test]
    fn panicking_job_does_not_kill_the_farm() {
        // One chaos job in the middle of a healthy sweep: the farm returns
        // every result, the chaos job typed and quarantined.
        let mut js = jobs(5);
        let mut chaos = SimJob::chaos_panic("boom#2");
        chaos.retries = 0;
        js.insert(2, chaos);
        let results = run_parallel(&js, 4).unwrap();
        assert_eq!(results.len(), 6);
        assert!(matches!(
            &results[2].outcome,
            JobOutcome::Quarantined { attempts: 1, last }
                if matches!(last.as_ref(), JobOutcome::Panicked { .. })
        ));
        for (i, r) in results.iter().enumerate() {
            if i != 2 {
                assert!(r.is_ok(), "job {i}: {:?}", r.outcome);
            }
        }
    }

    #[test]
    fn cancellation_is_cooperative_and_resumable_in_memory() {
        // Cancel after the second completion. How many jobs slip through
        // before the workers observe the token is timing-dependent, so the
        // assertions are about the *contract*: the run reports cancelled,
        // at least the two seen completions are present, and resuming from
        // whatever completed reproduces the uninterrupted sweep exactly.
        let js = jobs(6);
        let cancel = CancelToken::new();
        let hook_cancel = cancel.clone();
        let mut seen = 0usize;
        let first = run_farm(
            &js,
            2,
            FarmOptions {
                cancel,
                on_result: Some(Box::new(move |_, _| {
                    seen += 1;
                    if seen == 2 {
                        hook_cancel.cancel();
                    }
                })),
                ..FarmOptions::default()
            },
        )
        .unwrap();
        assert!(first.cancelled);
        assert!(first.completed.len() >= 2, "{}", first.completed.len());
        assert_eq!(first.completed.len() + first.pending().len(), 6);

        let second = run_farm(
            &js,
            2,
            FarmOptions {
                completed: first.completed,
                ..FarmOptions::default()
            },
        )
        .unwrap();
        assert!(second.is_complete());
        assert!(!second.cancelled);

        let resumed = second.into_results().unwrap();
        let oracle = run_serial(&js);
        for (r, o) in resumed.iter().zip(&oracle) {
            assert_eq!(r.digest, o.digest);
            assert_eq!(r.name, o.name);
        }
    }

    #[test]
    fn partial_resume_skips_restored_jobs_deterministically() {
        // Hand the farm the first three results as "already completed":
        // only the remaining three run, and the assembled sweep equals the
        // uninterrupted oracle job-for-job.
        let js = jobs(6);
        let oracle = run_serial(&js);
        let completed: BTreeMap<usize, JobResult> = oracle
            .iter()
            .take(3)
            .cloned()
            .enumerate()
            .collect();
        let run = run_farm(
            &js,
            2,
            FarmOptions {
                completed,
                ..FarmOptions::default()
            },
        )
        .unwrap();
        assert_eq!(run.restored, 3);
        assert!(run.is_complete());
        let results = run.into_results().unwrap();
        for (r, o) in results.iter().zip(&oracle) {
            assert_eq!(r.digest, o.digest);
            assert_eq!(r.cycles, o.cycles);
        }
    }

    #[test]
    fn observed_farm_records_a_span_per_job_and_consistent_telemetry() {
        let mut js = jobs(5);
        let mut chaos = SimJob::chaos_panic("boom#5");
        chaos.retries = 1;
        js.push(chaos);
        let observer = FarmObserver::new();
        let run = run_farm(
            &js,
            2,
            FarmOptions {
                observer: Some(observer),
                ..FarmOptions::default()
            },
        )
        .unwrap();
        let schedule = run.schedule.as_ref().expect("observer attached");
        assert_eq!(schedule.jobs_total, 6);
        assert_eq!(schedule.spans.len(), 6, "one span per executed job");
        // Spans come back sorted by job index, with matching names.
        for (i, span) in schedule.spans.iter().enumerate() {
            assert_eq!(span.index, i);
            assert_eq!(span.name, js[i].name);
            assert!(span.finished_ns >= span.started_ns);
            assert!(!span.attempts.is_empty());
        }
        // The chaos job shows its retry in the span.
        assert_eq!(schedule.spans[5].attempts.len(), 2);
        assert!(schedule.spans[5].outcome.starts_with("quarantined"));
        // Worker counters reconcile with the spans.
        let completed: u64 = schedule.workers.iter().map(|w| w.jobs_completed).sum();
        assert_eq!(completed, 6);
        for w in &schedule.workers {
            assert_eq!(w.own_pops + w.steals, w.jobs_completed);
        }
        // Determinism: results equal the unobserved serial oracle.
        let oracle = run_serial(&js);
        for (idx, o) in oracle.iter().enumerate() {
            let r = &run.completed[&idx];
            assert_eq!(r.digest, o.digest);
            assert_eq!(r.outcome, o.outcome);
        }
    }

    #[test]
    fn missing_result_is_a_typed_error() {
        let run = SweepRun {
            jobs_total: 3,
            completed: BTreeMap::from([(0usize, run_serial(&jobs(1)).remove(0))]),
            restored: 0,
            cancelled: false,
            schedule: None,
        };
        match run.into_results() {
            Err(FarmError::MissingResult { index: 1, .. }) => {}
            other => panic!("expected MissingResult, got {other:?}"),
        }
    }
}
