//! Farm-scope observability: per-job lifecycle spans and per-worker
//! telemetry, recorded *outside* the canonical determinism contract.
//!
//! PR 2 made every machine observable; this module makes the **farm**
//! observable. A [`FarmObserver`] handed to [`crate::run_farm`] (via
//! [`crate::FarmOptions::observer`]) records, per job, when it started on
//! which worker, whether it arrived by steal, each supervised attempt's
//! setup/sim/teardown timing breakdown, and the outcome — and, per worker,
//! busy/idle time, own-deque pops vs steals, and jobs completed. The
//! product is a [`FarmSchedule`], renderable as a Chrome/Perfetto trace
//! ([`FarmSchedule::trace_json`]: workers as tracks, jobs as slices, steals
//! and retries as instants) and folded into
//! [`crate::FarmReport::timing_json`].
//!
//! ## Cost model
//!
//! Everything here is wall-clock derived and therefore **nondeterministic**
//! — none of it may leak into `canonical_text()`/`canonical_json()`. The
//! observer records per *job* (a whole simulation, typically 10⁴–10⁶
//! cycles), never per cycle: one `Instant::now()` pair per phase boundary
//! and one short mutex-protected push per completed job. With no observer
//! attached the farm runs the exact pre-observer worker loop — no clock
//! reads, no extra branches inside the simulation itself — which is what
//! keeps the `simfarm_smoke` speedup floor honest.

use osm_core::export::{json_escape, TraceJsonBuilder};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Per-attempt phase timing breakdown, in nanoseconds on the observer's
/// clock. `setup` covers workload resolution, machine construction and
/// fault installation; `sim` is the run loop itself; `teardown` is digest
/// extraction and result assembly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobTiming {
    /// Workload resolve + machine build + fault install.
    pub setup_ns: u64,
    /// The chunked run loop.
    pub sim_ns: u64,
    /// Digest/stats extraction and result assembly.
    pub teardown_ns: u64,
}

impl JobTiming {
    /// Total attributed time across the three phases.
    pub fn total_ns(&self) -> u64 {
        self.setup_ns
            .saturating_add(self.sim_ns)
            .saturating_add(self.teardown_ns)
    }
}

/// One supervised attempt as observed on a worker. A panicked attempt keeps
/// its span (the crash is part of the schedule) but loses its phase
/// breakdown — the timing lived on the unwound stack.
#[derive(Debug, Clone)]
pub struct AttemptSpan {
    /// 1-based attempt number within the job's supervision loop.
    pub attempt: u32,
    /// Attempt start, ns since the observer's epoch.
    pub start_ns: u64,
    /// Attempt end, ns since the observer's epoch.
    pub end_ns: u64,
    /// Phase breakdown (zeroed when the attempt panicked).
    pub timing: JobTiming,
    /// Whether this attempt came back healthy.
    pub healthy: bool,
}

/// The full lifecycle of one job on the farm: which worker ran it, how it
/// got there, when, and what each attempt did.
#[derive(Debug, Clone)]
pub struct JobSpan {
    /// Job index in the sweep.
    pub index: usize,
    /// Job label.
    pub name: String,
    /// Worker that executed the job.
    pub worker: usize,
    /// True when the job was stolen from another worker's deque rather than
    /// popped from this worker's own.
    pub stolen: bool,
    /// Execution start, ns since the observer's epoch.
    pub started_ns: u64,
    /// Execution end, ns since the observer's epoch.
    pub finished_ns: u64,
    /// Every supervised attempt, in order.
    pub attempts: Vec<AttemptSpan>,
    /// The final outcome's label (see [`crate::JobOutcome::label`]).
    pub outcome: String,
    /// Cycles the final attempt executed.
    pub cycles: u64,
}

impl JobSpan {
    /// Wall time the job occupied its worker.
    pub fn wall_ns(&self) -> u64 {
        self.finished_ns.saturating_sub(self.started_ns)
    }

    /// Retries beyond the first attempt.
    pub fn retries(&self) -> usize {
        self.attempts.len().saturating_sub(1)
    }
}

/// Counters one worker accumulates over a sweep.
#[derive(Debug, Clone, Default)]
pub struct WorkerTelemetry {
    /// Worker index.
    pub worker: usize,
    /// Time spent executing jobs, ns.
    pub busy_ns: u64,
    /// Time spent between jobs (queue scans, waiting out the drain), ns.
    pub idle_ns: u64,
    /// Jobs popped from the worker's own deque.
    pub own_pops: u64,
    /// Jobs stolen from other workers' deques.
    pub steals: u64,
    /// Jobs this worker completed (== `own_pops + steals`).
    pub jobs_completed: u64,
}

impl WorkerTelemetry {
    /// Busy fraction of the worker's observed lifetime, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let total = self.busy_ns.saturating_add(self.idle_ns);
        if total == 0 {
            0.0
        } else {
            self.busy_ns as f64 / total as f64
        }
    }
}

/// Everything a [`FarmObserver`] recorded about one sweep: job spans (by
/// job index), worker telemetry (by worker index), and the sweep's wall
/// time on the observer's clock. All of it is timing-derived and
/// nondeterministic; restored-from-journal jobs have no span (they did not
/// run in this process).
#[derive(Debug, Clone, Default)]
pub struct FarmSchedule {
    /// Total jobs in the sweep (spans may be fewer: restored jobs).
    pub jobs_total: usize,
    /// Sweep wall time, ns from observer creation to [`FarmObserver::finish`].
    pub wall_ns: u64,
    /// Per-worker counters, sorted by worker index.
    pub workers: Vec<WorkerTelemetry>,
    /// Per-job spans, sorted by job index.
    pub spans: Vec<JobSpan>,
}

impl FarmSchedule {
    /// Renders the schedule as a Chrome/Perfetto trace: one process
    /// ("simfarm"), one thread track per worker, a complete ("X") slice per
    /// job, and instant events marking steals and retries. Validated
    /// against `schemas/farm_trace.schema.json` in CI (`farm_trace_smoke`).
    pub fn trace_json(&self) -> String {
        let mut trace = TraceJsonBuilder::new();
        trace.process_name(0, "simfarm");
        let mut workers: Vec<usize> = self.workers.iter().map(|w| w.worker).collect();
        for span in &self.spans {
            if !workers.contains(&span.worker) {
                workers.push(span.worker);
            }
        }
        workers.sort_unstable();
        for &w in &workers {
            trace.thread_name(0, w as u64, &format!("worker {w}"));
        }
        for span in &self.spans {
            let ts = span.started_ns / 1_000;
            let dur = span.wall_ns() / 1_000;
            trace.complete(
                &span.name,
                0,
                span.worker as u64,
                ts,
                dur,
                &format!(
                    r#"{{"index":{},"outcome":"{}","attempts":{},"cycles":{}}}"#,
                    span.index,
                    json_escape(&span.outcome),
                    span.attempts.len().max(1),
                    span.cycles
                ),
            );
            if span.stolen {
                trace.instant(
                    "steal",
                    0,
                    span.worker as u64,
                    ts,
                    &format!(r#"{{"job":"{}"}}"#, json_escape(&span.name)),
                );
            }
            for attempt in span.attempts.iter().skip(1) {
                trace.instant(
                    "retry",
                    0,
                    span.worker as u64,
                    attempt.start_ns / 1_000,
                    &format!(
                        r#"{{"job":"{}","attempt":{}}}"#,
                        json_escape(&span.name),
                        attempt.attempt
                    ),
                );
            }
        }
        trace.finish(&[
            ("jobs_total", self.jobs_total as u64),
            ("jobs_recorded", self.spans.len() as u64),
            ("workers", workers.len() as u64),
        ])
    }
}

/// The shared collector the farm threads record into. Cloning shares the
/// underlying schedule; [`FarmObserver::finish`] extracts it. All
/// timestamps are nanoseconds since the observer's construction, so one
/// observer spans exactly one sweep.
#[derive(Debug, Clone)]
pub struct FarmObserver {
    epoch: Instant,
    inner: Arc<Mutex<FarmSchedule>>,
}

impl Default for FarmObserver {
    fn default() -> FarmObserver {
        FarmObserver::new()
    }
}

/// Locks the schedule, adopting poisoning the same way the farm's deques
/// do: the protected value is plain data with no invariant a mid-push
/// unwind could break.
fn lock_schedule(m: &Mutex<FarmSchedule>) -> std::sync::MutexGuard<'_, FarmSchedule> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl FarmObserver {
    /// A fresh observer; its epoch (timestamp zero) is *now*.
    pub fn new() -> FarmObserver {
        FarmObserver {
            epoch: Instant::now(),
            inner: Arc::new(Mutex::new(FarmSchedule::default())),
        }
    }

    /// Nanoseconds since the observer's epoch.
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Records one completed job span (called from worker threads).
    pub(crate) fn record_span(&self, span: JobSpan) {
        lock_schedule(&self.inner).spans.push(span);
    }

    /// Records one worker's final counters (called as each worker exits).
    pub(crate) fn record_worker(&self, telemetry: WorkerTelemetry) {
        lock_schedule(&self.inner).workers.push(telemetry);
    }

    /// Stamps the wall time and extracts the schedule, with spans sorted by
    /// job index and workers by worker index (recording order is
    /// completion order, which is nondeterministic even for the renderings
    /// that are allowed to be timing-dependent — sorting keeps the *shape*
    /// stable).
    pub fn finish(&self, jobs_total: usize) -> FarmSchedule {
        let mut schedule = std::mem::take(&mut *lock_schedule(&self.inner));
        schedule.jobs_total = jobs_total;
        schedule.wall_ns = self.now_ns();
        schedule.spans.sort_by_key(|s| s.index);
        schedule.workers.sort_by_key(|w| w.worker);
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built two-worker schedule with fixed timestamps (timing is
    /// nondeterministic at runtime; tests pin the rendering instead).
    pub(crate) fn fixed_schedule() -> FarmSchedule {
        FarmSchedule {
            jobs_total: 3,
            wall_ns: 9_000_000,
            workers: vec![
                WorkerTelemetry {
                    worker: 0,
                    busy_ns: 6_000_000,
                    idle_ns: 2_000_000,
                    own_pops: 2,
                    steals: 0,
                    jobs_completed: 2,
                },
                WorkerTelemetry {
                    worker: 1,
                    busy_ns: 4_000_000,
                    idle_ns: 4_000_000,
                    own_pops: 0,
                    steals: 1,
                    jobs_completed: 1,
                },
            ],
            spans: vec![
                JobSpan {
                    index: 0,
                    name: "a".into(),
                    worker: 0,
                    stolen: false,
                    started_ns: 0,
                    finished_ns: 4_000_000,
                    attempts: vec![AttemptSpan {
                        attempt: 1,
                        start_ns: 0,
                        end_ns: 4_000_000,
                        timing: JobTiming {
                            setup_ns: 500_000,
                            sim_ns: 3_000_000,
                            teardown_ns: 500_000,
                        },
                        healthy: true,
                    }],
                    outcome: "halted".into(),
                    cycles: 1000,
                },
                JobSpan {
                    index: 1,
                    name: "b".into(),
                    worker: 1,
                    stolen: true,
                    started_ns: 1_000_000,
                    finished_ns: 5_000_000,
                    attempts: vec![
                        AttemptSpan {
                            attempt: 1,
                            start_ns: 1_000_000,
                            end_ns: 3_000_000,
                            timing: JobTiming::default(),
                            healthy: false,
                        },
                        AttemptSpan {
                            attempt: 2,
                            start_ns: 3_000_000,
                            end_ns: 5_000_000,
                            timing: JobTiming::default(),
                            healthy: false,
                        },
                    ],
                    outcome: "quarantined after 2 attempt(s); last: panicked: chaos".into(),
                    cycles: 0,
                },
                JobSpan {
                    index: 2,
                    name: "c".into(),
                    worker: 0,
                    stolen: false,
                    started_ns: 4_200_000,
                    finished_ns: 6_200_000,
                    attempts: vec![AttemptSpan {
                        attempt: 1,
                        start_ns: 4_200_000,
                        end_ns: 6_200_000,
                        timing: JobTiming {
                            setup_ns: 200_000,
                            sim_ns: 1_700_000,
                            teardown_ns: 100_000,
                        },
                        healthy: true,
                    }],
                    outcome: "budget-exhausted".into(),
                    cycles: 2000,
                },
            ],
        }
    }

    #[test]
    fn trace_json_carries_workers_jobs_and_instants() {
        let json = fixed_schedule().trace_json();
        assert!(json.contains(r#""name":"worker 0""#), "{json}");
        assert!(json.contains(r#""name":"worker 1""#), "{json}");
        // Job slices are X events on the owning worker's tid.
        assert!(json.contains(r#""name":"a","ph":"X","pid":0,"tid":0,"ts":0,"dur":4000"#));
        assert!(json.contains(r#""name":"b","ph":"X","pid":0,"tid":1,"ts":1000,"dur":4000"#));
        // The stolen job and the retry surface as instants.
        assert!(json.contains(r#""name":"steal","ph":"i""#));
        assert!(json.contains(r#""name":"retry","ph":"i""#));
        assert!(json.contains(r#""attempt":2"#));
        assert!(json.contains(r#""jobs_total":3"#));
        assert!(json.contains(r#""jobs_recorded":3"#));
        assert!(json.contains(r#""workers":2"#));
    }

    #[test]
    fn observer_finish_sorts_and_stamps() {
        let obs = FarmObserver::new();
        obs.record_span(JobSpan {
            index: 2,
            name: "late".into(),
            worker: 1,
            stolen: false,
            started_ns: 10,
            finished_ns: 20,
            attempts: vec![],
            outcome: "halted".into(),
            cycles: 1,
        });
        obs.record_span(JobSpan {
            index: 0,
            name: "early".into(),
            worker: 0,
            stolen: true,
            started_ns: 0,
            finished_ns: 5,
            attempts: vec![],
            outcome: "halted".into(),
            cycles: 1,
        });
        obs.record_worker(WorkerTelemetry {
            worker: 1,
            ..WorkerTelemetry::default()
        });
        obs.record_worker(WorkerTelemetry {
            worker: 0,
            ..WorkerTelemetry::default()
        });
        let schedule = obs.finish(4);
        assert_eq!(schedule.jobs_total, 4);
        assert_eq!(schedule.spans[0].index, 0);
        assert_eq!(schedule.spans[1].index, 2);
        assert_eq!(schedule.workers[0].worker, 0);
        assert_eq!(schedule.workers[1].worker, 1);
        assert_eq!(schedule.spans[0].wall_ns(), 5);
    }

    #[test]
    fn utilization_is_a_busy_fraction() {
        let w = WorkerTelemetry {
            worker: 0,
            busy_ns: 3,
            idle_ns: 1,
            ..WorkerTelemetry::default()
        };
        assert!((w.utilization() - 0.75).abs() < 1e-12);
        assert_eq!(WorkerTelemetry::default().utilization(), 0.0);
    }
}
