//! Typed farm-level errors.
//!
//! Job-level misbehavior (panics, stalls, deadline overruns) is *data* —
//! it lives in [`crate::JobOutcome`] and never aborts a sweep. The errors
//! here are the farm's own failures: the assembly invariant broken (a
//! scheduled job produced no result), or the sweep journal unusable.

use std::fmt;

/// Why a sweep journal could not be created, appended to, or replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// An underlying I/O operation failed (message is the OS error's
    /// rendering; `std::io::Error` itself is neither `Clone` nor `Eq`).
    Io(String),
    /// The file is not a sweep journal, or its header is damaged beyond
    /// the torn-write tolerance.
    BadHeader {
        /// What was wrong.
        why: String,
    },
    /// The journal belongs to a different job list than the manifest being
    /// run (job-list digests disagree), so its completed-job records cannot
    /// be trusted for this sweep.
    ManifestMismatch {
        /// Digest recorded in the journal header.
        journal: u64,
        /// Digest of the job list being resumed.
        manifest: u64,
    },
    /// A fully-present record failed its integrity digest or did not decode
    /// — corruption, not a torn trailing write — and is rejected rather
    /// than silently skipped.
    CorruptRecord {
        /// Byte offset of the offending record.
        offset: u64,
        /// What was wrong.
        why: String,
    },
    /// A size that the on-disk format stores as a `u32` (the header's job
    /// count, a record's payload length) exceeded `u32::MAX`. Writing it
    /// would silently truncate into a journal that round-trips wrong, so
    /// the encoder refuses up front instead (the journal-side analogue of
    /// the PR-3 `as u32` ID-truncation cleanup in osm-core).
    TooLarge {
        /// Which length field overflowed (`"job count"`, `"record payload"`).
        what: &'static str,
        /// The actual value that does not fit.
        len: u64,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::BadHeader { why } => write!(f, "bad journal header: {why}"),
            JournalError::ManifestMismatch { journal, manifest } => write!(
                f,
                "journal belongs to a different sweep (journal job-list digest \
                 {journal:016x}, manifest {manifest:016x})"
            ),
            JournalError::CorruptRecord { offset, why } => {
                write!(f, "corrupt journal record at byte {offset}: {why}")
            }
            JournalError::TooLarge { what, len } => write!(
                f,
                "journal {what} {len} exceeds the format's u32 limit ({})",
                u32::MAX
            ),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> JournalError {
        JournalError::Io(e.to_string())
    }
}

/// A farm-level failure (as opposed to a job-level outcome).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FarmError {
    /// A scheduled job produced no result and the sweep was not cancelled —
    /// the work-stealing assembly invariant is broken (a worker died
    /// without reporting). Replaces the seed's `panic!("job {idx} produced
    /// no result")` assembly hole with a typed error the CLI maps to a
    /// distinct exit code.
    MissingResult {
        /// Index of the silent job.
        index: usize,
        /// Its label.
        name: String,
    },
    /// The sweep journal failed (see [`JournalError`]).
    Journal(JournalError),
}

impl fmt::Display for FarmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FarmError::MissingResult { index, name } => {
                write!(f, "job {index} (`{name}`) produced no result")
            }
            FarmError::Journal(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FarmError {}

impl From<JournalError> for FarmError {
    fn from(e: JournalError) -> FarmError {
        FarmError::Journal(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = FarmError::MissingResult {
            index: 3,
            name: "sa1100/specint#3".into(),
        };
        assert!(e.to_string().contains("job 3"));
        assert!(e.to_string().contains("sa1100/specint#3"));

        let e: FarmError = JournalError::ManifestMismatch {
            journal: 0xAB,
            manifest: 0xCD,
        }
        .into();
        let s = e.to_string();
        assert!(s.contains("00000000000000ab"), "{s}");
        assert!(s.contains("00000000000000cd"), "{s}");

        let e = JournalError::CorruptRecord {
            offset: 24,
            why: "integrity digest mismatch".into(),
        };
        assert!(e.to_string().contains("byte 24"));
    }
}
