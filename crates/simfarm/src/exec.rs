//! Opt-in subprocess isolation: each job attempt runs in a re-exec'd child
//! process under resource budgets, so *hard* crashes — SIGSEGV, the
//! allocator aborting on OOM, a runaway loop burning its CPU budget, an
//! operator's `kill -9` — become typed [`JobOutcome`]s feeding the normal
//! retry/quarantine machinery instead of dead worker threads.
//!
//! ## Protocol
//!
//! The parent spawns its own binary as `simfarm --run-one <manifest>
//! <index>` through a `sh` shim that applies `ulimit -v` (address space)
//! and `ulimit -t` (CPU seconds) before `exec`ing the child. The child
//! runs exactly **one** attempt of the job — the retry/quarantine loop
//! stays in the parent, so the attempt sequence is identical to in-process
//! supervision — and speaks the sweep journal's record framing over stdout:
//! zero or more partial-progress frames (one per durable mid-job
//! checkpoint, [`crate::SimJob::checkpoint_every`]) followed by one final
//! result frame. A child killed mid-write leaves a torn tail, tolerated
//! exactly like a torn journal.
//!
//! ## Outcome mapping
//!
//! * clean exit + final result frame → that [`JobResult`], verbatim;
//! * exit by signal (resource budget, crash, `kill -9`) →
//!   [`JobOutcome::Killed`] with the signal number;
//! * wall-clock overrun past the hard kill bound (twice the job's
//!   cooperative [`crate::SimJob::deadline_ms`], plus grace) → the parent
//!   SIGKILLs the child and reports [`JobOutcome::DeadlineExceeded`] — the
//!   deadline is now *enforced*, not just requested;
//! * anything else (spawn failure, exit without a result frame) →
//!   [`JobOutcome::Failed`].
//!
//! In-process execution remains the default; a sweep's canonical report is
//! byte-identical across isolation modes (crash-free sweeps produce the
//! same results, and kill-then-retry provenance is scrubbed from canonical
//! renderings).

use crate::checkpoint::CheckpointCtl;
use crate::job::{JobOutcome, JobResult, SimJob};
use crate::journal::{self, StreamRecord};
use crate::observe::{AttemptSpan, JobTiming};
use crate::supervise::{run_attempt, supervise};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::process::{Command, ExitStatus, Stdio};
use std::time::{Duration, Instant};

/// Extra wall-clock grace (ms) past `2 × deadline_ms` before the parent
/// hard-kills a child: covers process spawn, manifest re-parse and
/// checkpoint restore, so the cooperative in-child deadline always gets a
/// chance to fire first and report its typed outcome.
const HARD_KILL_GRACE_MS: u64 = 2_000;

/// How a worker executes its jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IsolationMode {
    /// Jobs run on the worker thread itself (the default): fastest, with
    /// soft-failure isolation only (panics caught, stalls budgeted,
    /// deadlines cooperative).
    #[default]
    InProcess,
    /// Every job attempt runs in a re-exec'd subprocess under resource
    /// budgets; hard crashes become [`JobOutcome::Killed`].
    Process,
}

impl IsolationMode {
    /// Parses the CLI/manifest spelling (`"in-process"` or `"process"`).
    pub fn parse(s: &str) -> Option<IsolationMode> {
        match s {
            "in-process" => Some(IsolationMode::InProcess),
            "process" => Some(IsolationMode::Process),
            _ => None,
        }
    }

    /// The canonical spelling [`IsolationMode::parse`] accepts.
    pub fn name(self) -> &'static str {
        match self {
            IsolationMode::InProcess => "in-process",
            IsolationMode::Process => "process",
        }
    }
}

/// Everything the parent needs to run jobs in isolated subprocesses: the
/// binary to re-exec (it must understand `--run-one`), the manifest file
/// the child re-derives the job list from, and the optional resource
/// budgets applied via `ulimit` before the child starts.
#[derive(Debug, Clone)]
pub struct ProcessIsolation {
    /// Binary to spawn (normally [`std::env::current_exe`]).
    pub exe: PathBuf,
    /// Sweep manifest the child loads job `<index>` from; must produce the
    /// same job list the parent is sweeping.
    pub manifest: PathBuf,
    /// Address-space budget in MiB (`ulimit -v`); an allocation beyond it
    /// aborts the child, surfacing as [`JobOutcome::Killed`].
    pub memory_limit_mb: Option<u64>,
    /// CPU budget in seconds (`ulimit -t`); a child burning past it is
    /// killed by the kernel, surfacing as [`JobOutcome::Killed`].
    pub cpu_limit_secs: Option<u64>,
}

impl ProcessIsolation {
    /// Isolation via the currently running binary and the given manifest,
    /// with no resource budgets.
    ///
    /// # Errors
    /// Propagates [`std::env::current_exe`]'s failure.
    pub fn current_exe(manifest: impl Into<PathBuf>) -> io::Result<ProcessIsolation> {
        Ok(ProcessIsolation {
            exe: std::env::current_exe()?,
            manifest: manifest.into(),
            memory_limit_mb: None,
            cpu_limit_secs: None,
        })
    }
}

/// The exit signal of a child, when it was killed by one.
#[cfg(unix)]
fn exit_signal(status: &ExitStatus) -> Option<i32> {
    use std::os::unix::process::ExitStatusExt;
    status.signal()
}

#[cfg(not(unix))]
fn exit_signal(_status: &ExitStatus) -> Option<i32> {
    None
}

/// Spawns one child attempt and waits for it, hard-killing on wall-clock
/// overrun. Returns the exit status, the raw stdout bytes, and whether the
/// parent had to kill the child.
fn spawn_and_collect(
    iso: &ProcessIsolation,
    job: &SimJob,
    index: usize,
    ckpt_dir: Option<&Path>,
) -> io::Result<(ExitStatus, Vec<u8>, bool)> {
    let mem_kb = iso
        .memory_limit_mb
        .map_or_else(|| "unlimited".to_owned(), |mb| mb.saturating_mul(1024).to_string());
    let cpu_secs = iso
        .cpu_limit_secs
        .map_or_else(|| "unlimited".to_owned(), |s| s.to_string());
    let mut cmd = Command::new("sh");
    cmd.arg("-c")
        .arg("ulimit -v \"$1\" 2>/dev/null; ulimit -t \"$2\" 2>/dev/null; shift 2; exec \"$@\"")
        .arg("sh")
        .arg(mem_kb)
        .arg(cpu_secs)
        .arg(&iso.exe)
        .arg("--run-one")
        .arg(&iso.manifest)
        .arg(index.to_string());
    if let Some(dir) = ckpt_dir {
        cmd.arg("--checkpoint-dir").arg(dir);
    }
    cmd.stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    let mut child = cmd.spawn()?;

    // Drain stdout on a side thread so a chatty child never deadlocks
    // against a full pipe while the parent only polls for exit.
    let mut out = child.stdout.take().expect("stdout was piped");
    let reader = std::thread::spawn(move || {
        let mut bytes = Vec::new();
        let _ = out.read_to_end(&mut bytes);
        bytes
    });

    let hard_limit = job.deadline_ms.map(|ms| {
        Duration::from_millis(ms.saturating_mul(2).saturating_add(HARD_KILL_GRACE_MS))
    });
    let started = Instant::now();
    let mut hard_killed = false;
    let status = loop {
        if let Some(status) = child.try_wait()? {
            break status;
        }
        if let Some(limit) = hard_limit {
            if !hard_killed && started.elapsed() >= limit {
                hard_killed = true;
                let _ = child.kill();
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    let stdout = reader.join().unwrap_or_default();
    Ok((status, stdout, hard_killed))
}

/// One subprocess-isolated attempt of job `index`: spawn, budget, collect,
/// and map the exit to a typed [`JobResult`] (see the module docs for the
/// mapping). Partial-progress frames the child streamed before finishing
/// (or dying) are forwarded to `on_partial` for journaling.
pub(crate) fn run_child_attempt(
    iso: &ProcessIsolation,
    jobs: &[SimJob],
    index: usize,
    ckpt_dir: Option<&Path>,
    on_partial: &mut dyn FnMut(u64),
) -> JobResult {
    let job = &jobs[index];
    let (status, stdout, hard_killed) = match spawn_and_collect(iso, job, index, ckpt_dir) {
        Ok(collected) => collected,
        Err(e) => {
            return JobResult::aborted(
                job,
                JobOutcome::Failed(format!("isolated worker spawn failed: {e}")),
            )
        }
    };

    let mut final_result = None;
    let mut last_cycle = None;
    if let Ok(records) = journal::parse_record_stream(&stdout, jobs) {
        for record in records {
            match record {
                StreamRecord::Partial { index: i, cycle } if i == index => {
                    last_cycle = Some(cycle);
                    on_partial(cycle);
                }
                StreamRecord::Result(i, result) if i == index => final_result = Some(result),
                _ => {} // a frame for some other job: ignore, never adopt
            }
        }
    }

    if hard_killed {
        let mut result = JobResult::aborted(
            job,
            JobOutcome::DeadlineExceeded {
                cycles: last_cycle.unwrap_or(0),
                deadline_ms: job.deadline_ms.unwrap_or(0),
            },
        );
        result.cycles = last_cycle.unwrap_or(0);
        return result;
    }
    if let Some(signal) = exit_signal(&status) {
        return JobResult::aborted(job, JobOutcome::Killed { signal });
    }
    match final_result {
        Some(result) => *result,
        None => JobResult::aborted(
            job,
            JobOutcome::Failed(format!(
                "isolated worker exited ({status}) without reporting a result"
            )),
        ),
    }
}

/// The full supervised run of job `index` with subprocess isolation: the
/// in-parent retry/quarantine loop over [`run_child_attempt`]s. Each retry
/// spawns a fresh child, which restores from the job's last durable
/// checkpoint — so a child killed mid-job resumes, it does not start over.
pub(crate) fn run_child_supervised(
    iso: &ProcessIsolation,
    jobs: &[SimJob],
    index: usize,
    ckpt_dir: Option<&Path>,
    on_partial: &mut dyn FnMut(u64),
) -> JobResult {
    supervise(&jobs[index], |_| {
        run_child_attempt(iso, jobs, index, ckpt_dir, on_partial)
    })
}

/// [`run_child_supervised`] with farm observability: one [`AttemptSpan`]
/// per spawned child. The setup/simulate/teardown breakdown lives inside
/// the child and is not reported back, so spans carry wall-clock bounds
/// with a zero [`JobTiming`] breakdown.
pub(crate) fn run_child_supervised_observed(
    iso: &ProcessIsolation,
    jobs: &[SimJob],
    index: usize,
    ckpt_dir: Option<&Path>,
    on_partial: &mut dyn FnMut(u64),
    now_ns: impl Fn() -> u64,
) -> (JobResult, Vec<AttemptSpan>) {
    let mut spans = Vec::new();
    let result = supervise(&jobs[index], |attempt| {
        let start_ns = now_ns();
        let result = run_child_attempt(iso, jobs, index, ckpt_dir, on_partial);
        spans.push(AttemptSpan {
            attempt,
            start_ns,
            end_ns: now_ns(),
            timing: JobTiming::default(),
            healthy: result.outcome.is_healthy(),
        });
        result
    });
    (result, spans)
}

// ---------------------------------------------------------------------------
// Child side
// ---------------------------------------------------------------------------

/// Writes one journal-framed partial-progress record to stdout, flushed
/// immediately so the parent sees it even if the child dies right after.
fn emit_partial(index: usize, cycle: u64) {
    if let Ok(frame) = journal::partial_record_bytes(index, cycle) {
        let mut stdout = io::stdout().lock();
        let _ = stdout.write_all(&frame).and_then(|()| stdout.flush());
    }
}

fn run_one(args: &[String]) -> Result<(), String> {
    const USAGE: &str = "usage: simfarm --run-one <manifest> <index> [--checkpoint-dir <dir>]";
    let mut manifest_path: Option<&str> = None;
    let mut index: Option<usize> = None;
    let mut ckpt_dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--checkpoint-dir" => {
                ckpt_dir = Some(PathBuf::from(
                    it.next().ok_or("--checkpoint-dir needs a path")?,
                ));
            }
            other if manifest_path.is_none() => manifest_path = Some(other),
            other if index.is_none() => {
                index = Some(
                    other
                        .parse::<usize>()
                        .map_err(|_| format!("bad job index `{other}`"))?,
                );
            }
            other => return Err(format!("unexpected argument `{other}`\n{USAGE}")),
        }
    }
    let manifest_path = manifest_path.ok_or(USAGE)?;
    let index = index.ok_or(USAGE)?;
    let text = std::fs::read_to_string(manifest_path)
        .map_err(|e| format!("{manifest_path}: {e}"))?;
    let manifest = crate::manifest::parse_manifest(&text).map_err(|e| e.to_string())?;
    let job = manifest.jobs.get(index).ok_or_else(|| {
        format!(
            "job index {index} out of range ({} jobs in {manifest_path})",
            manifest.jobs.len()
        )
    })?;

    let mut ctl = ckpt_dir
        .as_deref()
        .and_then(|dir| CheckpointCtl::new(job, index, dir))
        .map(|ctl| ctl.with_notify(move |cycle| emit_partial(index, cycle)));
    let result = run_attempt(job, ctl.as_mut());

    let frame = journal::record_bytes(index, &result).map_err(|e| e.to_string())?;
    let mut stdout = io::stdout().lock();
    stdout
        .write_all(&frame)
        .and_then(|()| stdout.flush())
        .map_err(|e| e.to_string())?;
    Ok(())
}

/// The `simfarm --run-one` entry point: runs exactly one attempt of one
/// manifest job, speaking the result protocol on stdout (see the module
/// docs). Returns the process exit code — `0` whenever the attempt itself
/// completed, healthy or not (unhealthy outcomes travel in-band; a nonzero
/// exit means the *harness* failed, e.g. a missing manifest).
pub fn run_one_main(args: &[String]) -> i32 {
    match run_one(args) {
        Ok(()) => 0,
        Err(message) => {
            eprintln!("simfarm --run-one: {message}");
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolation_mode_spellings_round_trip() {
        for mode in [IsolationMode::InProcess, IsolationMode::Process] {
            assert_eq!(IsolationMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(IsolationMode::parse("container"), None);
        assert_eq!(IsolationMode::default(), IsolationMode::InProcess);
    }

    #[test]
    fn run_one_rejects_bad_invocations() {
        assert_eq!(run_one_main(&[]), 2, "missing arguments");
        assert_eq!(
            run_one_main(&["/no/such/manifest.json".into(), "0".into()]),
            2,
            "missing manifest file"
        );
        assert_eq!(
            run_one_main(&["m.json".into(), "not-a-number".into()]),
            2,
            "bad index"
        );
    }

    #[test]
    fn spawn_failure_is_a_typed_failed_outcome_not_a_crash() {
        let jobs = vec![SimJob::minirisc_random(0, 32, 1_000)];
        let iso = ProcessIsolation {
            exe: PathBuf::from("/no/such/binary"),
            manifest: PathBuf::from("/no/such/manifest.json"),
            memory_limit_mb: None,
            cpu_limit_secs: None,
        };
        // `sh` itself spawns fine and then fails to exec the missing
        // binary, so this surfaces as a child that exits without a result.
        let mut partials = Vec::new();
        let result = run_child_attempt(&iso, &jobs, 0, None, &mut |c| partials.push(c));
        assert!(
            matches!(&result.outcome, JobOutcome::Failed(_)),
            "{:?}",
            result.outcome
        );
        assert!(partials.is_empty());
    }
}
