//! The job abstraction: one self-contained simulation, runnable on any
//! thread, producing a deterministic [`JobResult`].
//!
//! Supervision hooks live here too: every job carries a stall budget
//! (armed on the model's PR-1 watchdog, on by default), an optional
//! wall-clock deadline enforced cooperatively between run chunks, and a
//! retry bound used by [`crate::run_job_supervised`]. Everything except the
//! wall-clock deadline is a pure function of the [`SimJob`], which is what
//! the farm's determinism-under-failure guarantee rests on.

use crate::checkpoint::CheckpointCtl;
use crate::observe::JobTiming;
use osm_core::{
    FaultPlan, FaultStats, MetricsReport, ModelError, SchedulerMode, StallKind, Stats, Trace,
};
use ppc750::{PpcConfig, PpcOsmSim};
use sa1100::{SaConfig, SaOsmSim};
use std::fmt;
use std::time::{Duration, Instant};
use vliw::{schedule, VliwConfig, VliwIr, VliwProgram, VliwSim};
use workloads::{kernels40, mediabench, random_program, specint_mix, Workload};

/// FNV-1a offset basis (same constants as `osm_core::Trace`, so ISS digests
/// live in the same hash family as OSM trace digests).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Default stall budget armed on every OSM job: comfortably above any
/// natural no-progress stretch of the bundled models (worst observed is a
/// few hundred cycles under aggressive blackhole faults), far below typical
/// cycle budgets, so a wedged or livelocked job is diagnosed instead of
/// pinning a worker until its whole cycle budget drains.
pub const DEFAULT_STALL_BUDGET: u64 = 25_000;

/// Default retry bound: one deterministic re-run before quarantine.
pub const DEFAULT_RETRIES: u32 = 1;

/// Cycles run between cooperative deadline/cancellation checks.
const DEADLINE_CHUNK: u64 = 2048;

#[inline]
fn fnv_mix(mut digest: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        digest ^= u64::from(b);
        digest = digest.wrapping_mul(FNV_PRIME);
    }
    digest
}

/// Which machine model a [`SimJob`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// The SA-1100 StrongARM OSM pipeline model.
    Sa1100,
    /// The PPC-750 out-of-order superscalar OSM model.
    Ppc750,
    /// The MiniRISC interpreted instruction-set simulator (no OSM layer).
    MiniRiscIss,
    /// The VLIW OSM model.
    Vliw,
    /// A machine synthesized on the fly from an inline ADL description
    /// carried by [`WorkloadSpec::AdlMachine`]. This is how generated
    /// machines (the `osm-fuzz` differential fuzzer, corpus replays) ride
    /// the farm's serial/parallel matrix as first-class jobs.
    Adl,
}

impl ModelKind {
    /// Manifest spelling of the model name.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Sa1100 => "sa1100",
            ModelKind::Ppc750 => "ppc750",
            ModelKind::MiniRiscIss => "minirisc",
            ModelKind::Vliw => "vliw",
            ModelKind::Adl => "adl",
        }
    }

    /// Parses a manifest model name.
    pub fn parse(s: &str) -> Option<ModelKind> {
        match s {
            "sa1100" => Some(ModelKind::Sa1100),
            "ppc750" => Some(ModelKind::Ppc750),
            "minirisc" => Some(ModelKind::MiniRiscIss),
            "vliw" => Some(ModelKind::Vliw),
            "adl" => Some(ModelKind::Adl),
            _ => None,
        }
    }
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What program a [`SimJob`] runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadSpec {
    /// A named workload from the `workloads` crate (`"specint"`, a
    /// mediabench name, or a `"k40/..."` kernel).
    Named(String),
    /// A seeded random MiniRISC program (`"random:<block_len>"` in
    /// manifests); the generator seed is the job's `seed`.
    Random {
        /// Straight-line block length handed to the generator.
        block_len: usize,
    },
    /// A synthetic VLIW countdown loop with a body of independent adds
    /// (`"ilp:<iters>:<body>"` in manifests). The only workload form the
    /// VLIW model accepts (it executes bundled IR, not MiniRISC assembly).
    Ilp {
        /// Loop iterations.
        iters: i32,
        /// Independent operations per iteration.
        body: usize,
    },
    /// A job that panics the moment it runs (`"chaos:panic"` in manifests).
    /// Exists so chaos manifests and the supervision tests can exercise
    /// crash isolation deterministically; [`run_job`] panics with a fixed,
    /// job-named payload, and the supervised runner turns that into
    /// [`JobOutcome::Panicked`].
    ChaosPanic,
    /// An inline ADL machine description for the [`ModelKind::Adl`] model:
    /// the source text is parsed and synthesized at run time, `osms`
    /// instances are spawned round-robin across the declared classes (with
    /// the inert behavior — the workload *is* the machine structure), and
    /// the machine is driven to the job's cycle budget. Constructed
    /// programmatically (by the `osm-fuzz` harness and corpus replays);
    /// there is no manifest spelling carrying inline source, so
    /// [`WorkloadSpec::parse`] never produces it and [`WorkloadSpec::spelling`]
    /// renders a digest-based label (`adl:<osms>@<source-digest>`) that
    /// keeps sweep journals bound to the exact source text.
    AdlMachine {
        /// The machine description (ADL source text).
        source: String,
        /// How many OSM instances to spawn (round-robin over classes).
        osms: u32,
    },
}

impl WorkloadSpec {
    /// Parses the manifest spelling (see the variant docs).
    pub fn parse(s: &str) -> Result<WorkloadSpec, String> {
        if s == "chaos:panic" {
            return Ok(WorkloadSpec::ChaosPanic);
        }
        if let Some(rest) = s.strip_prefix("random:") {
            let block_len = rest
                .parse::<usize>()
                .map_err(|_| format!("bad random workload `{s}`: expected `random:<len>`"))?;
            return Ok(WorkloadSpec::Random { block_len });
        }
        if let Some(rest) = s.strip_prefix("ilp:") {
            let mut parts = rest.splitn(2, ':');
            let parse = |p: Option<&str>| p.and_then(|v| v.parse::<i64>().ok());
            match (parse(parts.next()), parse(parts.next())) {
                (Some(iters), Some(body)) if iters > 0 && body > 0 => {
                    return Ok(WorkloadSpec::Ilp {
                        iters: iters as i32,
                        body: body as usize,
                    });
                }
                _ => return Err(format!("bad ilp workload `{s}`: expected `ilp:<iters>:<body>`")),
            }
        }
        Ok(WorkloadSpec::Named(s.to_owned()))
    }

    /// The manifest spelling. [`WorkloadSpec::AdlMachine`] has no inline
    /// manifest form; its spelling is a stable digest-based label binding
    /// journals and reports to the exact source text.
    pub fn spelling(&self) -> String {
        match self {
            WorkloadSpec::Named(n) => n.clone(),
            WorkloadSpec::Random { block_len } => format!("random:{block_len}"),
            WorkloadSpec::Ilp { iters, body } => format!("ilp:{iters}:{body}"),
            WorkloadSpec::ChaosPanic => "chaos:panic".to_owned(),
            WorkloadSpec::AdlMachine { source, osms } => {
                let digest = fnv_mix(FNV_OFFSET, source.as_bytes());
                format!("adl:{osms}@{digest:016x}")
            }
        }
    }

    fn resolve(&self, seed: u64) -> Result<Workload, String> {
        match self {
            WorkloadSpec::Random { block_len } => Ok(random_program(seed, *block_len)),
            WorkloadSpec::Ilp { .. } => {
                Err("ilp workloads only run on the vliw model".to_owned())
            }
            WorkloadSpec::ChaosPanic => {
                Err("chaos:panic never resolves to a program".to_owned())
            }
            WorkloadSpec::AdlMachine { .. } => {
                Err("adl workloads only run on the adl model".to_owned())
            }
            WorkloadSpec::Named(name) => {
                if name == "specint" {
                    return Ok(specint_mix());
                }
                mediabench()
                    .into_iter()
                    .chain(kernels40())
                    .find(|w| w.name == *name)
                    .ok_or_else(|| format!("unknown workload `{name}`"))
            }
        }
    }
}

/// One self-contained simulation: model × workload × config × seed ×
/// observability flags × supervision bounds. Jobs are `Send + Sync` (plain
/// data) and [`run_job`] builds, runs and tears down the whole machine on
/// the calling thread, which is what makes job-level sharding deterministic.
#[derive(Debug, Clone)]
pub struct SimJob {
    /// Human-readable job label (defaults to `model/workload#index` when
    /// built from a manifest).
    pub name: String,
    /// Which machine model to run.
    pub model: ModelKind,
    /// What program to run.
    pub workload: WorkloadSpec,
    /// Seed for seeded workloads (`random:`) — also mixed into the job name
    /// by the manifest loader so sweeps over seeds stay distinguishable.
    pub seed: u64,
    /// Cycle (ISS: instruction) budget.
    pub max_cycles: u64,
    /// Director scheduling mode (OSM models; ignored by the ISS).
    pub scheduler: SchedulerMode,
    /// Enable the full observability stack (event log, metrics, stall
    /// attribution) and attach the [`MetricsReport`] to the result.
    pub observability: bool,
    /// Optional fault plan, installed in front of the model's fetch-side
    /// manager (SA-1100: fetch stage; PPC-750: fetch queue; VLIW: fetch
    /// stage; ignored by the ISS, which has no token managers).
    pub faults: Option<FaultPlan>,
    /// Stall budget armed on the model's watchdog
    /// ([`osm_core::Machine::set_stall_limit`]): a livelocked or wedged job
    /// yields [`JobOutcome::Stalled`] after this many cycles without
    /// progress instead of pinning a worker for its whole cycle budget.
    /// `Some(`[`DEFAULT_STALL_BUDGET`]`)` by default; `None` disarms
    /// (manifest spelling `"stall_budget": 0`). Ignored by the ISS, whose
    /// steps always retire an instruction.
    pub stall_budget: Option<u64>,
    /// Optional wall-clock deadline in milliseconds, checked cooperatively
    /// every few thousand cycles; an overrunning job yields
    /// [`JobOutcome::DeadlineExceeded`]. Unlike every other field this
    /// depends on host speed, so deadline outcomes are *not* deterministic —
    /// keep deadline jobs out of byte-identity gates.
    pub deadline_ms: Option<u64>,
    /// How many times [`crate::run_job_supervised`] re-runs an unhealthy job
    /// before quarantining it ([`DEFAULT_RETRIES`] by default). Jobs are
    /// deterministic, so retries only help against environmental flakes
    /// (and bound the cost of poison jobs either way).
    pub retries: u32,
    /// Durable mid-job checkpoint cadence in cycles (ISS: instructions);
    /// `0` (the default) disables checkpointing. When set and the farm runs
    /// with a checkpoint directory, the job's machine state is sealed to
    /// disk every `checkpoint_every` cycles
    /// ([`crate::checkpoint`]), and an interrupted job restarts from its
    /// last checkpoint with a digest identical to an uninterrupted run.
    /// Like the wall deadline this is *operational*, not behavioral — it is
    /// deliberately excluded from [`crate::journal::jobs_digest`], so
    /// changing the cadence neither orphans a journal nor a checkpoint.
    /// Ignored (with a warning at manifest level) for observability jobs:
    /// event logs and metrics are not part of a machine checkpoint.
    pub checkpoint_every: u64,
}

impl SimJob {
    /// A plain job with no observability and no faults; stall watchdog
    /// armed at [`DEFAULT_STALL_BUDGET`], no wall deadline,
    /// [`DEFAULT_RETRIES`] retries.
    pub fn new(model: ModelKind, workload: WorkloadSpec, max_cycles: u64) -> SimJob {
        SimJob {
            name: format!("{model}/{}", workload.spelling()),
            model,
            workload,
            seed: 0,
            max_cycles,
            scheduler: SchedulerMode::Fast,
            observability: false,
            faults: None,
            stall_budget: Some(DEFAULT_STALL_BUDGET),
            deadline_ms: None,
            retries: DEFAULT_RETRIES,
            checkpoint_every: 0,
        }
    }

    /// Convenience: a seeded random-program ISS job (used in doctests and
    /// smoke checks).
    pub fn minirisc_random(seed: u64, block_len: usize, max_steps: u64) -> SimJob {
        let mut job = SimJob::new(
            ModelKind::MiniRiscIss,
            WorkloadSpec::Random { block_len },
            max_steps,
        );
        job.seed = seed;
        job.name = format!("{}#{}", job.name, seed);
        job
    }

    /// Convenience: a job whose only act is to panic (crash-isolation
    /// tests and chaos manifests).
    pub fn chaos_panic(name: impl Into<String>) -> SimJob {
        let mut job = SimJob::new(ModelKind::MiniRiscIss, WorkloadSpec::ChaosPanic, 1);
        job.name = name.into();
        job
    }

    /// Convenience: an inline-ADL machine job spawning `osms` operation
    /// instances (round-robin over the declared classes). This is how the
    /// model fuzzer rides the farm's serial/parallel matrix.
    pub fn adl(
        name: impl Into<String>,
        source: impl Into<String>,
        osms: u32,
        max_cycles: u64,
    ) -> SimJob {
        let mut job = SimJob::new(
            ModelKind::Adl,
            WorkloadSpec::AdlMachine {
                source: source.into(),
                osms,
            },
            max_cycles,
        );
        job.name = name.into();
        job
    }
}

/// Deterministic summary of a watchdog stall, carried by
/// [`JobOutcome::Stalled`]. The scalar fields mirror
/// [`osm_core::StallReport`]; `detail` preserves the report's full
/// rendering (blocked OSMs, denied primitives, attribution) so the farm
/// report and the sweep journal reproduce it byte-for-byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallSummary {
    /// The watchdog's classification.
    pub kind: StallKind,
    /// Control step at which the watchdog fired.
    pub cycle: u64,
    /// How many cycles the condition had persisted.
    pub stalled_for: u64,
    /// The armed stall budget that fired.
    pub budget: u64,
    /// The full [`osm_core::StallReport`] rendering.
    pub detail: String,
}

/// How a job finished.
///
/// Equality is manual: the nondeterministic diagnostic ride-alongs on
/// [`JobOutcome::Panicked`] (captured backtrace) are ignored, so outcome
/// comparisons — and everything built on them: retry decisions, byte-identity
/// gates, journal round-trip tests — stay deterministic.
#[derive(Debug, Clone)]
pub enum JobOutcome {
    /// The program ran to its halt instruction within the budget.
    Halted,
    /// The cycle/step budget elapsed before halt.
    BudgetExhausted,
    /// The model failed (deadlock, decode error, bad workload, ...). The
    /// message is the model error's rendering.
    Failed(String),
    /// The job panicked; the worker caught the unwind and isolated it.
    Panicked {
        /// The panic payload, rendered (`<non-string panic payload>` when
        /// the payload was not a string).
        payload: String,
        /// Backtrace captured by the farm's quiet panic hook at panic time
        /// (honoring `RUST_BACKTRACE`, `None` when disabled). Diagnostic
        /// only: ASLR makes it nondeterministic, so it is excluded from
        /// equality, from [`JobOutcome::label`], and from the sweep journal.
        backtrace: Option<String>,
    },
    /// An isolated worker subprocess died to a signal (resource-budget
    /// abort, OOM kill, a hard deadline SIGKILL, a real native crash)
    /// before delivering a result. Only produced by the process-isolation
    /// executor — in-process jobs can't lose their host and live.
    Killed {
        /// The fatal signal number (e.g. 6 = SIGABRT, 9 = SIGKILL).
        signal: i32,
    },
    /// The stall watchdog fired: no forward progress within the job's
    /// [`SimJob::stall_budget`].
    Stalled(StallSummary),
    /// The wall-clock [`SimJob::deadline_ms`] elapsed before halt or cycle
    /// budget. The only non-deterministic outcome (host-speed dependent).
    DeadlineExceeded {
        /// Cycles completed when the deadline was detected.
        cycles: u64,
        /// The configured deadline, for the record.
        deadline_ms: u64,
    },
    /// The job stayed unhealthy through every allowed attempt and was
    /// quarantined; `last` is the final attempt's outcome.
    Quarantined {
        /// Attempts made (1 + retries).
        attempts: u32,
        /// Outcome of the last attempt.
        last: Box<JobOutcome>,
    },
}

impl PartialEq for JobOutcome {
    fn eq(&self, other: &JobOutcome) -> bool {
        use JobOutcome::*;
        match (self, other) {
            (Halted, Halted) | (BudgetExhausted, BudgetExhausted) => true,
            (Failed(a), Failed(b)) => a == b,
            // Backtraces are diagnostic ride-alongs, deliberately ignored.
            (Panicked { payload: a, .. }, Panicked { payload: b, .. }) => a == b,
            (Killed { signal: a }, Killed { signal: b }) => a == b,
            (Stalled(a), Stalled(b)) => a == b,
            (
                DeadlineExceeded { cycles: ca, deadline_ms: da },
                DeadlineExceeded { cycles: cb, deadline_ms: db },
            ) => ca == cb && da == db,
            (
                Quarantined { attempts: aa, last: la },
                Quarantined { attempts: ab, last: lb },
            ) => aa == ab && la == lb,
            _ => false,
        }
    }
}

impl Eq for JobOutcome {}

impl JobOutcome {
    /// True for the two outcomes that complete a job's work (ran to halt,
    /// or consumed its whole cycle budget). Everything else is grounds for
    /// retry and quarantine.
    pub fn is_healthy(&self) -> bool {
        matches!(self, JobOutcome::Halted | JobOutcome::BudgetExhausted)
    }

    /// One-line rendering used by the farm report (text and JSON) and the
    /// sweep journal. Stable and deterministic for every variant except
    /// `DeadlineExceeded` (whose cycle count is host-speed dependent).
    pub fn label(&self) -> String {
        match self {
            JobOutcome::Halted => "halted".into(),
            JobOutcome::BudgetExhausted => "budget-exhausted".into(),
            JobOutcome::Failed(msg) => format!("failed: {msg}"),
            JobOutcome::Panicked { payload, .. } => format!("panicked: {payload}"),
            JobOutcome::Killed { signal } => format!("killed: signal {signal}"),
            JobOutcome::Stalled(s) => {
                format!("stalled: {} at cycle {} (budget {})", s.kind, s.cycle, s.budget)
            }
            JobOutcome::DeadlineExceeded { cycles, deadline_ms } => {
                format!("deadline-exceeded: {deadline_ms}ms elapsed at cycle {cycles}")
            }
            JobOutcome::Quarantined { attempts, last } => {
                format!("quarantined after {attempts} attempt(s); last: {}", last.label())
            }
        }
    }
}

/// The deterministic product of one job. Everything here is a pure function
/// of the [`SimJob`] — independent of which thread ran it and of what else
/// was running — which is what the farm's digest-parity guarantee rests on.
/// (Exception: [`JobOutcome::DeadlineExceeded`], see [`SimJob::deadline_ms`].)
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The job's label.
    pub name: String,
    /// The model that ran.
    pub model: ModelKind,
    /// Workload spelling.
    pub workload: String,
    /// How the run ended.
    pub outcome: JobOutcome,
    /// Cycles executed (ISS: instructions retired).
    pub cycles: u64,
    /// Instructions (VLIW: operations) retired.
    pub retired: u64,
    /// Program exit code.
    pub exit_code: u32,
    /// FNV-1a digest: the machine's transition-trace digest for OSM models,
    /// or a digest over every executed `(pc, taken)` pair for the ISS. Equal
    /// digests mean behaviorally identical runs.
    pub digest: u64,
    /// Attempts the supervised runner made (1 when the first try sufficed;
    /// always 1 from bare [`run_job`]).
    pub attempts: u32,
    /// Cycle this run restored a durable mid-job checkpoint from, when it
    /// did ([`SimJob::checkpoint_every`]). Operational provenance, not
    /// machine output: the digest/stats are identical either way, so the
    /// canonical report renderings scrub it.
    pub restored_from: Option<u64>,
    /// Scheduler statistics (OSM models only).
    pub stats: Option<Stats>,
    /// Derived metrics, when the job asked for observability.
    pub metrics: Option<MetricsReport>,
    /// Injected-fault counters, when the job carried a fault plan.
    pub fault_stats: Option<FaultStats>,
}

impl JobResult {
    /// A result with no machine output — the job never got far enough to
    /// produce any (bad workload, panic before the first cycle, ...).
    pub(crate) fn aborted(job: &SimJob, outcome: JobOutcome) -> JobResult {
        JobResult {
            name: job.name.clone(),
            model: job.model,
            workload: job.workload.spelling(),
            outcome,
            cycles: 0,
            retired: 0,
            exit_code: 0,
            digest: 0,
            attempts: 1,
            restored_from: None,
            stats: None,
            metrics: None,
            fault_stats: None,
        }
    }

    fn failed(job: &SimJob, message: String) -> JobResult {
        JobResult::aborted(job, JobOutcome::Failed(message))
    }

    /// True if the job ran to completion or budget without a model error,
    /// panic, stall, deadline overrun or quarantine.
    pub fn is_ok(&self) -> bool {
        self.outcome.is_healthy()
    }
}

/// Wall-clock deadline tracker for the cooperative chunked run loop.
struct Deadline {
    at: Option<Instant>,
    ms: u64,
}

impl Deadline {
    fn start(deadline_ms: Option<u64>) -> Deadline {
        Deadline {
            at: deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms)),
            ms: deadline_ms.unwrap_or(0),
        }
    }

    fn expired(&self) -> bool {
        self.at.is_some_and(|at| Instant::now() >= at)
    }
}

/// Phase-boundary stopwatch for [`run_job_timed`]: records into its target
/// only when one is attached, so the plain [`run_job`] path never touches
/// the clock and stays the pre-observability hot path.
struct PhaseTimer<'a> {
    out: Option<(&'a mut JobTiming, Instant)>,
}

impl<'a> PhaseTimer<'a> {
    fn new(out: Option<&'a mut JobTiming>) -> PhaseTimer<'a> {
        PhaseTimer {
            out: out.map(|timing| (timing, Instant::now())),
        }
    }

    fn lap(&mut self, phase: impl FnOnce(&mut JobTiming) -> &mut u64) {
        if let Some((timing, mark)) = self.out.as_mut() {
            let now = Instant::now();
            let elapsed = u64::try_from((now - *mark).as_nanos()).unwrap_or(u64::MAX);
            let slot = phase(timing);
            *slot = slot.saturating_add(elapsed);
            *mark = now;
        }
    }

    /// Closes the setup phase (workload resolve + machine build + faults).
    fn setup_done(&mut self) {
        self.lap(|t| &mut t.setup_ns);
    }

    /// Closes the simulation phase (the chunked run loop).
    fn sim_done(&mut self) {
        self.lap(|t| &mut t.sim_ns);
    }

    /// Closes the teardown phase (digest/stats extraction, assembly).
    fn teardown_done(&mut self) {
        self.lap(|t| &mut t.teardown_ns);
    }
}

/// Maps a model error to its typed outcome (watchdog stalls get their own
/// variant; everything else keeps the rendered message).
fn outcome_from_model_error(e: ModelError) -> JobOutcome {
    match e {
        ModelError::Stalled(report) => JobOutcome::Stalled(StallSummary {
            kind: report.kind,
            cycle: report.cycle,
            stalled_for: report.stalled_for,
            budget: report.budget,
            detail: report.to_string(),
        }),
        other => JobOutcome::Failed(other.to_string()),
    }
}

/// The slice length jobs are driven in: [`DEADLINE_CHUNK`] cycles, or the
/// checkpoint cadence when that is finer — a `checkpoint_every` below the
/// chunk size must still produce save points (short fuzz-generated machines
/// run their whole budget inside one chunk otherwise).
fn checkpoint_stride(ctl: &Option<&mut CheckpointCtl<'_>>) -> u64 {
    ctl.as_ref()
        .map(|c| c.cadence().min(DEADLINE_CHUNK))
        .unwrap_or(DEADLINE_CHUNK)
        .max(1)
}

/// Drives one OSM simulator in `stride`-cycle slices (see
/// [`checkpoint_stride`]) so the wall deadline is checked — and checkpoints
/// come due — cooperatively. `chunk(target)` must advance the machine to
/// `target` cycles (or halt/error) and report `(halted, cycle, result)`.
/// `start_cycle` is where the machine already stands (nonzero after a
/// checkpoint restore). Returns the outcome and the last chunk's result
/// (`None` only if the very first chunk errored).
fn drive_osm<R>(
    job: &SimJob,
    start_cycle: u64,
    stride: u64,
    mut chunk: impl FnMut(u64) -> Result<(bool, u64, R), ModelError>,
) -> (JobOutcome, Option<R>) {
    let deadline = Deadline::start(job.deadline_ms);
    let mut cycles = start_cycle;
    let mut last = None;
    loop {
        let target = cycles.saturating_add(stride).min(job.max_cycles);
        match chunk(target) {
            Ok((halted, cycle, res)) => {
                cycles = cycle;
                last = Some(res);
                if halted {
                    return (JobOutcome::Halted, last);
                }
                if cycles >= job.max_cycles {
                    return (JobOutcome::BudgetExhausted, last);
                }
                if deadline.expired() {
                    return (
                        JobOutcome::DeadlineExceeded {
                            cycles,
                            deadline_ms: deadline.ms,
                        },
                        last,
                    );
                }
            }
            Err(e) => return (outcome_from_model_error(e), last),
        }
    }
}

/// Runs one job to completion on the calling thread.
///
/// Never panics on bad input — unknown workloads and model errors are
/// reported through the typed [`JobOutcome`] variants — with one deliberate
/// exception: a [`WorkloadSpec::ChaosPanic`] job panics by design, which is
/// what [`crate::run_job_supervised`] (and therefore the farm) catches and
/// isolates. Arms the job's stall budget on the model watchdog and checks
/// the wall deadline cooperatively.
pub fn run_job(job: &SimJob) -> JobResult {
    run_job_inner(job, None, None)
}

/// [`run_job`] with a setup/sim/teardown wall-time breakdown for the farm
/// observer. Timing is wall-clock derived and therefore nondeterministic —
/// the [`JobResult`] itself is bit-identical to the untimed run's (the
/// clock is only read at the three phase boundaries, never inside the
/// simulation).
pub fn run_job_timed(job: &SimJob) -> (JobResult, JobTiming) {
    let mut timing = JobTiming::default();
    let result = run_job_inner(job, Some(&mut timing), None);
    (result, timing)
}

/// [`run_job`] under a durable checkpoint controller: restores from the
/// controller's last valid checkpoint (if any), re-seeds the trace digest
/// so the final digest equals an uninterrupted run's, and seals fresh
/// checkpoints every [`SimJob::checkpoint_every`] cycles. With `ctl = None`
/// this *is* [`run_job`], byte for byte.
pub fn run_job_checkpointed(job: &SimJob, ctl: Option<&mut CheckpointCtl<'_>>) -> JobResult {
    run_job_inner(job, None, ctl)
}

/// [`run_job_checkpointed`] with the farm observer's timing breakdown
/// (checkpoint I/O lands in the sim phase; restore lands in setup).
pub fn run_job_checkpointed_timed(
    job: &SimJob,
    ctl: Option<&mut CheckpointCtl<'_>>,
) -> (JobResult, JobTiming) {
    let mut timing = JobTiming::default();
    let result = run_job_inner(job, Some(&mut timing), ctl);
    (result, timing)
}

fn run_job_inner(
    job: &SimJob,
    timing: Option<&mut JobTiming>,
    ctl: Option<&mut CheckpointCtl<'_>>,
) -> JobResult {
    if matches!(job.workload, WorkloadSpec::ChaosPanic) {
        panic!("chaos:panic workload fired (job `{}`)", job.name);
    }
    let mut timer = PhaseTimer::new(timing);
    match job.model {
        ModelKind::Sa1100 => run_sa1100(job, &mut timer, ctl),
        ModelKind::Ppc750 => run_ppc750(job, &mut timer, ctl),
        ModelKind::MiniRiscIss => run_iss(job, &mut timer, ctl),
        ModelKind::Vliw => run_vliw(job, &mut timer, ctl),
        ModelKind::Adl => run_adl(job, &mut timer, ctl),
    }
}

/// Runs an inline-ADL machine job: load the source, spawn `osms` instances
/// round-robin over the declared classes with the inert behavior, and drive
/// to the cycle budget. ADL machines have no halt concept, so healthy runs
/// end in [`JobOutcome::BudgetExhausted`]; deadlocks, watchdog stalls and
/// synthesis failures surface through the usual typed outcomes. Faults (if
/// any) install on the first declared manager, mirroring the fetch-side
/// convention of the named models.
fn run_adl(
    job: &SimJob,
    timer: &mut PhaseTimer<'_>,
    mut ctl: Option<&mut CheckpointCtl<'_>>,
) -> JobResult {
    use osm_core::{FaultInjector, InertBehavior, Machine, ManagerId};

    let WorkloadSpec::AdlMachine { source, osms } = &job.workload else {
        return JobResult::failed(
            job,
            format!(
                "the adl model needs an inline `WorkloadSpec::AdlMachine` workload, got `{}`",
                job.workload.spelling()
            ),
        );
    };
    let synth = match osm_adl::load(source) {
        Ok(s) => s,
        Err(e) => return JobResult::failed(job, format!("adl load failed: {e}")),
    };
    if synth.specs.is_empty() {
        return JobResult::failed(job, "adl machine declares no osm classes".to_owned());
    }
    let mut machine: Machine<()> = Machine::new(());
    synth.install_managers(&mut machine);
    for k in 0..*osms {
        let (_, spec) = &synth.specs[(k as usize) % synth.specs.len()];
        machine.add_osm(spec, InertBehavior);
    }
    machine.set_scheduler_mode(job.scheduler);
    machine.set_stall_limit(job.stall_budget);
    if job.observability {
        machine.enable_event_log();
        machine.enable_metrics();
        machine.enable_stall_attribution();
    }
    let handle = job.faults.clone().and_then(|plan| {
        (!machine.managers.is_empty())
            .then(|| FaultInjector::install(&mut machine.managers, ManagerId(0), plan))
    });
    // Synthesized machines use the osm-core checkpoint codec directly (unit
    // shared state encodes as zero bytes).
    let mut trace = Trace::digest_only();
    let mut start_cycle = 0u64;
    let mut restored_from = None;
    if let Some(ctl) = ctl.as_deref_mut() {
        if let Some(ckpt) = ctl.load() {
            let decoded = machine
                .decode_checkpoint(&ckpt.machine, |b| b.is_empty().then_some(()))
                .ok();
            if decoded.is_some_and(|c| machine.restore(&c).is_ok()) {
                trace = Trace::digest_only_resumed(ckpt.trace_hash, ckpt.trace_total);
                start_cycle = ckpt.cycle;
                restored_from = Some(ckpt.cycle);
                ctl.mark_restored(ckpt.cycle);
            }
        }
    }
    machine.enable_trace_with(trace);
    timer.setup_done();
    let stride = checkpoint_stride(&ctl);
    let (outcome, _last) = drive_osm(job, start_cycle, stride, |target| {
        let remaining = target.saturating_sub(machine.cycle());
        machine.run(remaining)?;
        let cycle = machine.cycle();
        if let Some(ctl) = ctl.as_deref_mut() {
            if cycle < job.max_cycles && ctl.due(cycle) {
                let bytes = machine
                    .checkpoint()
                    .and_then(|c| machine.encode_checkpoint(&c, &[]));
                if let (Ok(bytes), Some(t)) = (bytes, machine.trace()) {
                    ctl.save(cycle, t.digest(), t.total(), &bytes);
                }
            }
        }
        Ok((false, cycle, ()))
    });
    timer.sim_done();
    let result = JobResult {
        name: job.name.clone(),
        model: job.model,
        workload: job.workload.spelling(),
        outcome,
        cycles: machine.cycle(),
        retired: machine.stats.transitions,
        exit_code: 0,
        digest: machine.take_trace().map(|t| t.digest()).unwrap_or(0),
        attempts: 1,
        restored_from,
        stats: Some(machine.stats.clone()),
        metrics: machine.metrics_report(),
        fault_stats: handle.map(|h| h.stats()),
    };
    timer.teardown_done();
    result
}

fn run_sa1100(
    job: &SimJob,
    timer: &mut PhaseTimer<'_>,
    mut ctl: Option<&mut CheckpointCtl<'_>>,
) -> JobResult {
    let workload = match job.workload.resolve(job.seed) {
        Ok(w) => w,
        Err(e) => return JobResult::failed(job, e),
    };
    let mut sim = SaOsmSim::new(SaConfig::paper(), &workload.program());
    sim.machine_mut().set_scheduler_mode(job.scheduler);
    sim.set_stall_limit(job.stall_budget);
    if job.observability {
        sim.enable_observability();
    }
    let fetch = sim.ids.mf;
    let handle = job.faults.clone().map(|plan| sim.inject_faults(fetch, plan));
    // Restore the last durable checkpoint the machine accepts (faults must
    // already be installed so the manager shapes match), then continue the
    // trace digest from the checkpointed hash — the final digest equals an
    // uninterrupted run's.
    let mut trace = Trace::digest_only();
    let mut start_cycle = 0u64;
    let mut restored_from = None;
    if let Some(ctl) = ctl.as_deref_mut() {
        if let Some(ckpt) = ctl.load() {
            if sim.restore_checkpoint_bytes(&ckpt.machine).is_ok() {
                trace = Trace::digest_only_resumed(ckpt.trace_hash, ckpt.trace_total);
                start_cycle = ckpt.cycle;
                restored_from = Some(ckpt.cycle);
                ctl.mark_restored(ckpt.cycle);
            }
        }
    }
    sim.machine_mut().enable_trace_with(trace);
    timer.setup_done();
    let stride = checkpoint_stride(&ctl);
    let (outcome, last) = drive_osm(job, start_cycle, stride, |target| {
        let res = sim.run_to_halt(target)?;
        let halted = sim.machine().shared.halted;
        let cycle = sim.machine().cycle();
        if let Some(ctl) = ctl.as_deref_mut() {
            if !halted && cycle < job.max_cycles && ctl.due(cycle) {
                if let (Ok(bytes), Some(t)) = (sim.checkpoint_bytes(), sim.machine().trace()) {
                    ctl.save(cycle, t.digest(), t.total(), &bytes);
                }
            }
        }
        Ok((halted, cycle, res))
    });
    timer.sim_done();
    let (cycles, retired, exit_code) = match &last {
        Some(res) => (res.cycles, res.retired, res.exit_code),
        None => (sim.machine().cycle(), 0, 0),
    };
    let cycles = if last.is_some() && !outcome.is_healthy() && !matches!(outcome, JobOutcome::DeadlineExceeded { .. }) {
        sim.machine().cycle()
    } else {
        cycles
    };
    let result = JobResult {
        name: job.name.clone(),
        model: job.model,
        workload: job.workload.spelling(),
        outcome,
        cycles,
        retired,
        exit_code,
        digest: sim
            .machine_mut()
            .take_trace()
            .map(|t| t.digest())
            .unwrap_or(0),
        attempts: 1,
        restored_from,
        stats: Some(sim.machine().stats.clone()),
        metrics: sim.metrics_report(),
        fault_stats: handle.map(|h| h.stats()),
    };
    timer.teardown_done();
    result
}

fn run_ppc750(
    job: &SimJob,
    timer: &mut PhaseTimer<'_>,
    mut ctl: Option<&mut CheckpointCtl<'_>>,
) -> JobResult {
    let workload = match job.workload.resolve(job.seed) {
        Ok(w) => w,
        Err(e) => return JobResult::failed(job, e),
    };
    let mut sim = PpcOsmSim::new(PpcConfig::paper(), &workload.program());
    sim.machine_mut().set_scheduler_mode(job.scheduler);
    sim.set_stall_limit(job.stall_budget);
    if job.observability {
        sim.enable_observability();
    }
    let fetch_queue = sim.ids.fq;
    let handle = job
        .faults
        .clone()
        .map(|plan| sim.inject_faults(fetch_queue, plan));
    let mut trace = Trace::digest_only();
    let mut start_cycle = 0u64;
    let mut restored_from = None;
    if let Some(ctl) = ctl.as_deref_mut() {
        if let Some(ckpt) = ctl.load() {
            if sim.restore_checkpoint_bytes(&ckpt.machine).is_ok() {
                trace = Trace::digest_only_resumed(ckpt.trace_hash, ckpt.trace_total);
                start_cycle = ckpt.cycle;
                restored_from = Some(ckpt.cycle);
                ctl.mark_restored(ckpt.cycle);
            }
        }
    }
    sim.machine_mut().enable_trace_with(trace);
    timer.setup_done();
    let stride = checkpoint_stride(&ctl);
    let (outcome, last) = drive_osm(job, start_cycle, stride, |target| {
        let res = sim.run_to_halt(target)?;
        let halted = sim.machine().shared.halted;
        let cycle = sim.machine().cycle();
        if let Some(ctl) = ctl.as_deref_mut() {
            if !halted && cycle < job.max_cycles && ctl.due(cycle) {
                if let (Ok(bytes), Some(t)) = (sim.checkpoint_bytes(), sim.machine().trace()) {
                    ctl.save(cycle, t.digest(), t.total(), &bytes);
                }
            }
        }
        Ok((halted, cycle, res))
    });
    timer.sim_done();
    let (cycles, retired, exit_code) = match &last {
        Some(res) => (res.cycles, res.retired, res.exit_code),
        None => (sim.machine().cycle(), 0, 0),
    };
    let cycles = if last.is_some() && !outcome.is_healthy() && !matches!(outcome, JobOutcome::DeadlineExceeded { .. }) {
        sim.machine().cycle()
    } else {
        cycles
    };
    let result = JobResult {
        name: job.name.clone(),
        model: job.model,
        workload: job.workload.spelling(),
        outcome,
        cycles,
        retired,
        exit_code,
        digest: sim
            .machine_mut()
            .take_trace()
            .map(|t| t.digest())
            .unwrap_or(0),
        attempts: 1,
        restored_from,
        stats: Some(sim.machine().stats.clone()),
        metrics: sim.metrics_report(),
        fault_stats: handle.map(|h| h.stats()),
    };
    timer.teardown_done();
    result
}

fn run_vliw(
    job: &SimJob,
    timer: &mut PhaseTimer<'_>,
    mut ctl: Option<&mut CheckpointCtl<'_>>,
) -> JobResult {
    let WorkloadSpec::Ilp { iters, body } = job.workload else {
        return JobResult::failed(
            job,
            format!(
                "the vliw model needs an `ilp:<iters>:<body>` workload, got `{}`",
                job.workload.spelling()
            ),
        );
    };
    let program = ilp_program(iters, body);
    let mut sim = VliwSim::new(VliwConfig::default(), &program);
    sim.machine_mut().set_scheduler_mode(job.scheduler);
    sim.set_stall_limit(job.stall_budget);
    if job.observability {
        sim.machine_mut().enable_event_log();
        sim.machine_mut().enable_metrics();
        sim.machine_mut().enable_stall_attribution();
    }
    let fetch = sim.ids().mf;
    let handle = job.faults.clone().map(|plan| sim.inject_faults(fetch, plan));
    let mut trace = Trace::digest_only();
    let mut start_cycle = 0u64;
    let mut restored_from = None;
    if let Some(ctl) = ctl.as_deref_mut() {
        if let Some(ckpt) = ctl.load() {
            if sim.restore_checkpoint_bytes(&ckpt.machine).is_ok() {
                trace = Trace::digest_only_resumed(ckpt.trace_hash, ckpt.trace_total);
                start_cycle = ckpt.cycle;
                restored_from = Some(ckpt.cycle);
                ctl.mark_restored(ckpt.cycle);
            }
        }
    }
    sim.machine_mut().enable_trace_with(trace);
    timer.setup_done();
    let stride = checkpoint_stride(&ctl);
    let (outcome, last) = drive_osm(job, start_cycle, stride, |target| {
        let res = sim.run_to_halt(target)?;
        let halted = sim.halted();
        let cycle = sim.machine().cycle();
        if let Some(ctl) = ctl.as_deref_mut() {
            if !halted && cycle < job.max_cycles && ctl.due(cycle) {
                if let (Ok(bytes), Some(t)) = (sim.checkpoint_bytes(), sim.machine().trace()) {
                    ctl.save(cycle, t.digest(), t.total(), &bytes);
                }
            }
        }
        Ok((halted, cycle, res))
    });
    timer.sim_done();
    let (cycles, retired, exit_code) = match &last {
        Some(res) => (res.cycles, res.retired_ops, res.exit_code),
        None => (sim.machine().cycle(), 0, 0),
    };
    let cycles = if last.is_some() && !outcome.is_healthy() && !matches!(outcome, JobOutcome::DeadlineExceeded { .. }) {
        sim.machine().cycle()
    } else {
        cycles
    };
    let result = JobResult {
        name: job.name.clone(),
        model: job.model,
        workload: job.workload.spelling(),
        outcome,
        cycles,
        retired,
        exit_code,
        digest: sim
            .machine_mut()
            .take_trace()
            .map(|t| t.digest())
            .unwrap_or(0),
        attempts: 1,
        restored_from,
        stats: Some(sim.machine().stats.clone()),
        metrics: sim.machine().metrics_report(),
        fault_stats: handle.map(|h| h.stats()),
    };
    timer.teardown_done();
    result
}

fn run_iss(
    job: &SimJob,
    timer: &mut PhaseTimer<'_>,
    mut ctl: Option<&mut CheckpointCtl<'_>>,
) -> JobResult {
    use minirisc::{Iss, SparseMemory};
    let workload = match job.workload.resolve(job.seed) {
        Ok(w) => w,
        Err(e) => return JobResult::failed(job, e),
    };
    let mut iss = Iss::with_program(SparseMemory::new(), &workload.program());
    // ISS checkpoints carry the complete simulator state; the running
    // `(pc, taken)` digest accumulator rides in the trace fields.
    let mut digest = FNV_OFFSET;
    let mut steps = 0u64;
    let mut restored_from = None;
    if let Some(ctl) = ctl.as_deref_mut() {
        if let Some(ckpt) = ctl.load() {
            if iss.import_state(&ckpt.machine) {
                digest = ckpt.trace_hash;
                steps = ckpt.trace_total;
                restored_from = Some(ckpt.cycle);
                ctl.mark_restored(ckpt.cycle);
            }
        }
    }
    timer.setup_done();
    let deadline = Deadline::start(job.deadline_ms);
    let stride = checkpoint_stride(&ctl);
    let outcome = loop {
        if iss.halted {
            break JobOutcome::Halted;
        }
        if steps >= job.max_cycles {
            break JobOutcome::BudgetExhausted;
        }
        if steps.is_multiple_of(stride) && steps > 0 {
            if deadline.expired() {
                break JobOutcome::DeadlineExceeded {
                    cycles: steps,
                    deadline_ms: job.deadline_ms.unwrap_or(0),
                };
            }
            if let Some(ctl) = ctl.as_deref_mut() {
                if ctl.due(steps) {
                    ctl.save(steps, digest, steps, &iss.export_state());
                }
            }
        }
        match iss.step() {
            Ok(executed) => {
                digest = fnv_mix(digest, &executed.pc.to_le_bytes());
                digest = fnv_mix(digest, &executed.taken.unwrap_or(0).to_le_bytes());
            }
            Err(e) => break JobOutcome::Failed(e.to_string()),
        }
        steps += 1;
    };
    timer.sim_done();
    let result = JobResult {
        name: job.name.clone(),
        model: job.model,
        workload: job.workload.spelling(),
        outcome,
        cycles: iss.retired,
        retired: iss.retired,
        exit_code: iss.exit_code,
        digest,
        attempts: 1,
        restored_from,
        stats: None,
        metrics: None,
        fault_stats: None,
    };
    timer.teardown_done();
    result
}

/// Builds the standard ILP workload: a countdown loop whose body is `body`
/// independent adds (mirrors the VLIW crate's test fixture).
fn ilp_program(iters: i32, body: usize) -> VliwProgram {
    use minirisc::{AluOp, BranchCond, Instr, Reg};
    let addi = |rd: u8, rs1: u8, imm: i32| Instr::AluImm {
        op: AluOp::Add,
        rd: Reg(rd),
        rs1: Reg(rs1),
        imm,
    };
    let mut ir = VliwIr::new();
    ir.push(addi(1, 0, iters));
    let top = ir.instrs.len();
    for k in 0..body {
        ir.push(addi(2 + (k % 6) as u8, 0, (k % 4096) as i32));
    }
    ir.push(addi(1, 1, -1));
    ir.branch(
        Instr::Branch {
            cond: BranchCond::Ne,
            rs1: Reg(1),
            rs2: Reg(0),
            offset: 0,
        },
        top,
    );
    // Exit syscall reporting r1 (0 on a completed countdown).
    ir.push(addi(10, 0, 0));
    ir.push(Instr::Alu {
        op: AluOp::Add,
        rd: Reg(11),
        rs1: Reg(1),
        rs2: Reg(0),
    });
    ir.push(Instr::Syscall);
    schedule(&ir, vec![])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_spec_parses_all_forms() {
        assert_eq!(
            WorkloadSpec::parse("random:128").unwrap(),
            WorkloadSpec::Random { block_len: 128 }
        );
        assert_eq!(
            WorkloadSpec::parse("ilp:500:8").unwrap(),
            WorkloadSpec::Ilp { iters: 500, body: 8 }
        );
        assert_eq!(
            WorkloadSpec::parse("k40/x").unwrap(),
            WorkloadSpec::Named("k40/x".into())
        );
        assert_eq!(
            WorkloadSpec::parse("chaos:panic").unwrap(),
            WorkloadSpec::ChaosPanic
        );
        assert!(WorkloadSpec::parse("random:x").is_err());
        assert!(WorkloadSpec::parse("ilp:0:0").is_err());
    }

    #[test]
    fn unknown_workload_fails_cleanly() {
        let job = SimJob::new(
            ModelKind::Sa1100,
            WorkloadSpec::Named("no-such-workload".into()),
            1000,
        );
        let r = run_job(&job);
        assert!(matches!(r.outcome, JobOutcome::Failed(_)));
    }

    #[test]
    fn iss_job_is_deterministic() {
        let job = SimJob::minirisc_random(7, 48, 50_000);
        let a = run_job(&job);
        let b = run_job(&job);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.retired, b.retired);
        assert_ne!(a.digest, 0);
    }

    const ADL_PIPE: &str = "
        machine pipe {
            manager mf : exclusive(1);
            manager mx : counting(2);
            osm op {
                states I, F, X;
                initial I;
                edge fetch : I -> F { allocate mf[0]; }
                edge issue : F -> X { allocate mx[any]; release mf[held]; }
                edge done : X -> I { release mx[held]; }
            }
        }
    ";

    #[test]
    fn adl_job_runs_and_is_deterministic_across_scheduler_modes() {
        let mut seed_job = SimJob::adl("pipe", ADL_PIPE, 4, 200);
        seed_job.scheduler = SchedulerMode::Seed;
        let mut fast_job = seed_job.clone();
        fast_job.scheduler = SchedulerMode::Fast;
        let a = run_job(&seed_job);
        let b = run_job(&fast_job);
        assert_eq!(a.outcome, JobOutcome::BudgetExhausted);
        assert_eq!(b.outcome, JobOutcome::BudgetExhausted);
        assert_eq!(a.cycles, 200);
        assert_ne!(a.digest, 0);
        assert_eq!(a.digest, b.digest, "Seed and Fast diverged on an ADL job");
        assert!(a.retired > 0);
    }

    #[test]
    fn adl_job_observability_and_faults_ride_along() {
        let mut job = SimJob::adl("pipe-obs", ADL_PIPE, 2, 100);
        job.observability = true;
        job.faults = Some(osm_core::FaultPlan::new(9).deny_allocate(0.5));
        let r = run_job(&job);
        assert_eq!(r.outcome, JobOutcome::BudgetExhausted);
        assert!(r.metrics.is_some());
        assert!(r.fault_stats.is_some());
        // Fault plans are deterministic too.
        let r2 = run_job(&job);
        assert_eq!(r.digest, r2.digest);
    }

    #[test]
    fn adl_job_rejects_bad_source_and_wrong_workload() {
        let bad = SimJob::adl("broken", "machine oops {", 1, 10);
        let r = run_job(&bad);
        match r.outcome {
            JobOutcome::Failed(msg) => assert!(msg.contains("adl load failed"), "{msg}"),
            other => panic!("expected Failed, got {other:?}"),
        }
        let mismatched = SimJob::new(ModelKind::Adl, WorkloadSpec::Random { block_len: 8 }, 10);
        let r = run_job(&mismatched);
        assert!(matches!(r.outcome, JobOutcome::Failed(_)));
        // And the inline workload refuses to resolve for program models.
        let cross = SimJob::new(
            ModelKind::MiniRiscIss,
            WorkloadSpec::AdlMachine {
                source: ADL_PIPE.into(),
                osms: 1,
            },
            10,
        );
        let r = run_job(&cross);
        assert!(matches!(r.outcome, JobOutcome::Failed(_)));
    }

    #[test]
    fn adl_workload_spelling_is_digest_stable() {
        let a = WorkloadSpec::AdlMachine {
            source: ADL_PIPE.into(),
            osms: 4,
        };
        let b = WorkloadSpec::AdlMachine {
            source: ADL_PIPE.into(),
            osms: 4,
        };
        assert_eq!(a.spelling(), b.spelling());
        assert!(a.spelling().starts_with("adl:4@"));
        let c = WorkloadSpec::AdlMachine {
            source: format!("{ADL_PIPE} "),
            osms: 4,
        };
        assert_ne!(a.spelling(), c.spelling(), "source changes must change the spelling");
    }

    #[test]
    fn vliw_ilp_job_halts() {
        let mut job = SimJob::new(
            ModelKind::Vliw,
            WorkloadSpec::Ilp { iters: 50, body: 6 },
            100_000,
        );
        job.observability = true;
        let r = run_job(&job);
        assert_eq!(r.outcome, JobOutcome::Halted);
        assert!(r.metrics.is_some());
        assert!(r.stats.is_some());
    }

    #[test]
    fn sa_job_digest_matches_between_runs_with_faults() {
        let mut job = SimJob::new(
            ModelKind::Sa1100,
            WorkloadSpec::Named("specint".into()),
            20_000,
        );
        job.faults = Some(FaultPlan::new(0xFA0).deny_allocate(0.02));
        let a = run_job(&job);
        let b = run_job(&job);
        assert!(a.is_ok(), "{:?}", a.outcome);
        assert_eq!(a.digest, b.digest);
        assert_eq!(
            a.fault_stats.unwrap().total(),
            b.fault_stats.unwrap().total()
        );
    }

    #[test]
    fn blackholed_job_yields_typed_stall_not_a_pinned_worker() {
        // A permanent blackhole on the fetch stage wedges the pipeline; the
        // default-armed watchdog must convert that into a typed, fully
        // deterministic Stalled outcome long before max_cycles.
        let mut job = SimJob::new(
            ModelKind::Sa1100,
            WorkloadSpec::Named("specint".into()),
            50_000_000,
        );
        job.stall_budget = Some(500);
        job.faults = Some(FaultPlan::new(1).blackhole(100, u64::MAX));
        let a = run_job(&job);
        let b = run_job(&job);
        match (&a.outcome, &b.outcome) {
            (JobOutcome::Stalled(sa), JobOutcome::Stalled(sb)) => {
                assert_eq!(sa, sb, "stall summaries must be deterministic");
                assert_eq!(sa.budget, 500);
                assert!(sa.detail.contains("budget 500"), "{}", sa.detail);
            }
            other => panic!("expected deterministic stalls, got {other:?}"),
        }
        assert!(a.cycles < 100_000, "watchdog fired late: {}", a.cycles);
    }

    #[test]
    fn deadline_job_reports_overrun() {
        // Host-speed dependent by design: a multi-billion-cycle VLIW loop
        // with a tiny wall deadline must come back as DeadlineExceeded, not
        // run to budget.
        let mut job = SimJob::new(
            ModelKind::Vliw,
            WorkloadSpec::Ilp { iters: 2_000_000_000, body: 4 },
            u64::MAX / 2,
        );
        job.deadline_ms = Some(5);
        let r = run_job(&job);
        assert!(
            matches!(r.outcome, JobOutcome::DeadlineExceeded { .. }),
            "{:?}",
            r.outcome
        );
    }

    #[test]
    fn outcome_labels_are_stable() {
        assert_eq!(JobOutcome::Halted.label(), "halted");
        assert_eq!(
            JobOutcome::Failed("boom".into()).label(),
            "failed: boom"
        );
        let q = JobOutcome::Quarantined {
            attempts: 2,
            last: Box::new(JobOutcome::Panicked {
                payload: "chaos".into(),
                backtrace: None,
            }),
        };
        assert_eq!(q.label(), "quarantined after 2 attempt(s); last: panicked: chaos");
        assert!(!q.is_healthy());
        assert!(JobOutcome::BudgetExhausted.is_healthy());
        let k = JobOutcome::Killed { signal: 9 };
        assert_eq!(k.label(), "killed: signal 9");
        assert!(!k.is_healthy());
    }
}
