//! The job abstraction: one self-contained simulation, runnable on any
//! thread, producing a deterministic [`JobResult`].

use osm_core::{FaultPlan, FaultStats, MetricsReport, SchedulerMode, Stats, Trace};
use ppc750::{PpcConfig, PpcOsmSim};
use sa1100::{SaConfig, SaOsmSim};
use std::fmt;
use vliw::{schedule, VliwConfig, VliwIr, VliwProgram, VliwSim};
use workloads::{kernels40, mediabench, random_program, specint_mix, Workload};

/// FNV-1a offset basis (same constants as `osm_core::Trace`, so ISS digests
/// live in the same hash family as OSM trace digests).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x100_0000_01b3;

#[inline]
fn fnv_mix(mut digest: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        digest ^= u64::from(b);
        digest = digest.wrapping_mul(FNV_PRIME);
    }
    digest
}

/// Which machine model a [`SimJob`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// The SA-1100 StrongARM OSM pipeline model.
    Sa1100,
    /// The PPC-750 out-of-order superscalar OSM model.
    Ppc750,
    /// The MiniRISC interpreted instruction-set simulator (no OSM layer).
    MiniRiscIss,
    /// The VLIW OSM model.
    Vliw,
}

impl ModelKind {
    /// Manifest spelling of the model name.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Sa1100 => "sa1100",
            ModelKind::Ppc750 => "ppc750",
            ModelKind::MiniRiscIss => "minirisc",
            ModelKind::Vliw => "vliw",
        }
    }

    /// Parses a manifest model name.
    pub fn parse(s: &str) -> Option<ModelKind> {
        match s {
            "sa1100" => Some(ModelKind::Sa1100),
            "ppc750" => Some(ModelKind::Ppc750),
            "minirisc" => Some(ModelKind::MiniRiscIss),
            "vliw" => Some(ModelKind::Vliw),
            _ => None,
        }
    }
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What program a [`SimJob`] runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadSpec {
    /// A named workload from the `workloads` crate (`"specint"`, a
    /// mediabench name, or a `"k40/..."` kernel).
    Named(String),
    /// A seeded random MiniRISC program (`"random:<block_len>"` in
    /// manifests); the generator seed is the job's `seed`.
    Random {
        /// Straight-line block length handed to the generator.
        block_len: usize,
    },
    /// A synthetic VLIW countdown loop with a body of independent adds
    /// (`"ilp:<iters>:<body>"` in manifests). The only workload form the
    /// VLIW model accepts (it executes bundled IR, not MiniRISC assembly).
    Ilp {
        /// Loop iterations.
        iters: i32,
        /// Independent operations per iteration.
        body: usize,
    },
}

impl WorkloadSpec {
    /// Parses the manifest spelling (see the variant docs).
    pub fn parse(s: &str) -> Result<WorkloadSpec, String> {
        if let Some(rest) = s.strip_prefix("random:") {
            let block_len = rest
                .parse::<usize>()
                .map_err(|_| format!("bad random workload `{s}`: expected `random:<len>`"))?;
            return Ok(WorkloadSpec::Random { block_len });
        }
        if let Some(rest) = s.strip_prefix("ilp:") {
            let mut parts = rest.splitn(2, ':');
            let parse = |p: Option<&str>| p.and_then(|v| v.parse::<i64>().ok());
            match (parse(parts.next()), parse(parts.next())) {
                (Some(iters), Some(body)) if iters > 0 && body > 0 => {
                    return Ok(WorkloadSpec::Ilp {
                        iters: iters as i32,
                        body: body as usize,
                    });
                }
                _ => return Err(format!("bad ilp workload `{s}`: expected `ilp:<iters>:<body>`")),
            }
        }
        Ok(WorkloadSpec::Named(s.to_owned()))
    }

    /// The manifest spelling.
    pub fn spelling(&self) -> String {
        match self {
            WorkloadSpec::Named(n) => n.clone(),
            WorkloadSpec::Random { block_len } => format!("random:{block_len}"),
            WorkloadSpec::Ilp { iters, body } => format!("ilp:{iters}:{body}"),
        }
    }

    fn resolve(&self, seed: u64) -> Result<Workload, String> {
        match self {
            WorkloadSpec::Random { block_len } => Ok(random_program(seed, *block_len)),
            WorkloadSpec::Ilp { .. } => {
                Err("ilp workloads only run on the vliw model".to_owned())
            }
            WorkloadSpec::Named(name) => {
                if name == "specint" {
                    return Ok(specint_mix());
                }
                mediabench()
                    .into_iter()
                    .chain(kernels40())
                    .find(|w| w.name == *name)
                    .ok_or_else(|| format!("unknown workload `{name}`"))
            }
        }
    }
}

/// One self-contained simulation: model × workload × config × seed ×
/// observability flags. Jobs are `Send + Sync` (plain data) and
/// [`run_job`] builds, runs and tears down the whole machine on the calling
/// thread, which is what makes job-level sharding deterministic.
#[derive(Debug, Clone)]
pub struct SimJob {
    /// Human-readable job label (defaults to `model/workload#index` when
    /// built from a manifest).
    pub name: String,
    /// Which machine model to run.
    pub model: ModelKind,
    /// What program to run.
    pub workload: WorkloadSpec,
    /// Seed for seeded workloads (`random:`) — also mixed into the job name
    /// by the manifest loader so sweeps over seeds stay distinguishable.
    pub seed: u64,
    /// Cycle (ISS: instruction) budget.
    pub max_cycles: u64,
    /// Director scheduling mode (OSM models; ignored by the ISS).
    pub scheduler: SchedulerMode,
    /// Enable the full observability stack (event log, metrics, stall
    /// attribution) and attach the [`MetricsReport`] to the result.
    pub observability: bool,
    /// Optional fault plan, installed in front of the model's fetch-side
    /// manager (SA-1100: fetch stage; PPC-750: fetch queue; VLIW: fetch
    /// stage; ignored by the ISS, which has no token managers).
    pub faults: Option<FaultPlan>,
}

impl SimJob {
    /// A plain job with no observability and no faults.
    pub fn new(model: ModelKind, workload: WorkloadSpec, max_cycles: u64) -> SimJob {
        SimJob {
            name: format!("{model}/{}", workload.spelling()),
            model,
            workload,
            seed: 0,
            max_cycles,
            scheduler: SchedulerMode::Fast,
            observability: false,
            faults: None,
        }
    }

    /// Convenience: a seeded random-program ISS job (used in doctests and
    /// smoke checks).
    pub fn minirisc_random(seed: u64, block_len: usize, max_steps: u64) -> SimJob {
        let mut job = SimJob::new(
            ModelKind::MiniRiscIss,
            WorkloadSpec::Random { block_len },
            max_steps,
        );
        job.seed = seed;
        job.name = format!("{}#{}", job.name, seed);
        job
    }
}

/// How a job finished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// The program ran to its halt instruction within the budget.
    Halted,
    /// The cycle/step budget elapsed before halt.
    BudgetExhausted,
    /// The model failed (deadlock, stall watchdog, decode error, bad
    /// workload, ...). The message is the model error's rendering.
    Failed(String),
}

/// The deterministic product of one job. Everything here is a pure function
/// of the [`SimJob`] — independent of which thread ran it and of what else
/// was running — which is what the farm's digest-parity guarantee rests on.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The job's label.
    pub name: String,
    /// The model that ran.
    pub model: ModelKind,
    /// Workload spelling.
    pub workload: String,
    /// How the run ended.
    pub outcome: JobOutcome,
    /// Cycles executed (ISS: instructions retired).
    pub cycles: u64,
    /// Instructions (VLIW: operations) retired.
    pub retired: u64,
    /// Program exit code.
    pub exit_code: u32,
    /// FNV-1a digest: the machine's transition-trace digest for OSM models,
    /// or a digest over every executed `(pc, taken)` pair for the ISS. Equal
    /// digests mean behaviorally identical runs.
    pub digest: u64,
    /// Scheduler statistics (OSM models only).
    pub stats: Option<Stats>,
    /// Derived metrics, when the job asked for observability.
    pub metrics: Option<MetricsReport>,
    /// Injected-fault counters, when the job carried a fault plan.
    pub fault_stats: Option<FaultStats>,
}

impl JobResult {
    fn failed(job: &SimJob, message: String) -> JobResult {
        JobResult {
            name: job.name.clone(),
            model: job.model,
            workload: job.workload.spelling(),
            outcome: JobOutcome::Failed(message),
            cycles: 0,
            retired: 0,
            exit_code: 0,
            digest: 0,
            stats: None,
            metrics: None,
            fault_stats: None,
        }
    }

    /// True if the job ran to completion or budget without a model error.
    pub fn is_ok(&self) -> bool {
        !matches!(self.outcome, JobOutcome::Failed(_))
    }
}

/// Runs one job to completion on the calling thread.
///
/// Never panics on bad input: unknown workloads and model errors are
/// reported through [`JobOutcome::Failed`] so one poisoned job cannot take
/// down a farm worker.
pub fn run_job(job: &SimJob) -> JobResult {
    match job.model {
        ModelKind::Sa1100 => run_sa1100(job),
        ModelKind::Ppc750 => run_ppc750(job),
        ModelKind::MiniRiscIss => run_iss(job),
        ModelKind::Vliw => run_vliw(job),
    }
}

fn run_sa1100(job: &SimJob) -> JobResult {
    let workload = match job.workload.resolve(job.seed) {
        Ok(w) => w,
        Err(e) => return JobResult::failed(job, e),
    };
    let mut sim = SaOsmSim::new(SaConfig::paper(), &workload.program());
    sim.machine_mut().set_scheduler_mode(job.scheduler);
    sim.machine_mut().enable_trace_with(Trace::digest_only());
    if job.observability {
        sim.enable_observability();
    }
    let fetch = sim.ids.mf;
    let handle = job.faults.clone().map(|plan| sim.inject_faults(fetch, plan));
    let run = sim.run_to_halt(job.max_cycles);
    let halted = sim.machine().shared.halted;
    let (outcome, cycles, retired, exit_code) = match run {
        Ok(res) => (
            if halted {
                JobOutcome::Halted
            } else {
                JobOutcome::BudgetExhausted
            },
            res.cycles,
            res.retired,
            res.exit_code,
        ),
        Err(e) => (JobOutcome::Failed(e.to_string()), sim.machine().cycle(), 0, 0),
    };
    JobResult {
        name: job.name.clone(),
        model: job.model,
        workload: job.workload.spelling(),
        outcome,
        cycles,
        retired,
        exit_code,
        digest: sim
            .machine_mut()
            .take_trace()
            .map(|t| t.digest())
            .unwrap_or(0),
        stats: Some(sim.machine().stats.clone()),
        metrics: sim.metrics_report(),
        fault_stats: handle.map(|h| h.stats()),
    }
}

fn run_ppc750(job: &SimJob) -> JobResult {
    let workload = match job.workload.resolve(job.seed) {
        Ok(w) => w,
        Err(e) => return JobResult::failed(job, e),
    };
    let mut sim = PpcOsmSim::new(PpcConfig::paper(), &workload.program());
    sim.machine_mut().set_scheduler_mode(job.scheduler);
    sim.machine_mut().enable_trace_with(Trace::digest_only());
    if job.observability {
        sim.enable_observability();
    }
    let fetch_queue = sim.ids.fq;
    let handle = job
        .faults
        .clone()
        .map(|plan| sim.inject_faults(fetch_queue, plan));
    let run = sim.run_to_halt(job.max_cycles);
    let halted = sim.machine().shared.halted;
    let (outcome, cycles, retired, exit_code) = match run {
        Ok(res) => (
            if halted {
                JobOutcome::Halted
            } else {
                JobOutcome::BudgetExhausted
            },
            res.cycles,
            res.retired,
            res.exit_code,
        ),
        Err(e) => (JobOutcome::Failed(e.to_string()), sim.machine().cycle(), 0, 0),
    };
    JobResult {
        name: job.name.clone(),
        model: job.model,
        workload: job.workload.spelling(),
        outcome,
        cycles,
        retired,
        exit_code,
        digest: sim
            .machine_mut()
            .take_trace()
            .map(|t| t.digest())
            .unwrap_or(0),
        stats: Some(sim.machine().stats.clone()),
        metrics: sim.metrics_report(),
        fault_stats: handle.map(|h| h.stats()),
    }
}

fn run_vliw(job: &SimJob) -> JobResult {
    let WorkloadSpec::Ilp { iters, body } = job.workload else {
        return JobResult::failed(
            job,
            format!(
                "the vliw model needs an `ilp:<iters>:<body>` workload, got `{}`",
                job.workload.spelling()
            ),
        );
    };
    let program = ilp_program(iters, body);
    let mut sim = VliwSim::new(VliwConfig::default(), &program);
    sim.machine_mut().set_scheduler_mode(job.scheduler);
    sim.machine_mut().enable_trace_with(Trace::digest_only());
    if job.observability {
        sim.machine_mut().enable_event_log();
        sim.machine_mut().enable_metrics();
        sim.machine_mut().enable_stall_attribution();
    }
    let fetch = sim.ids().mf;
    let handle = job.faults.clone().map(|plan| sim.inject_faults(fetch, plan));
    let run = sim.run_to_halt(job.max_cycles);
    let (outcome, cycles, retired, exit_code) = match run {
        Ok(res) => (
            // run_to_halt loops while !halted && cycle < max, so stopping
            // short of the budget means the halting bundle retired.
            if res.cycles < job.max_cycles {
                JobOutcome::Halted
            } else {
                JobOutcome::BudgetExhausted
            },
            res.cycles,
            res.retired_ops,
            res.exit_code,
        ),
        Err(e) => (JobOutcome::Failed(e.to_string()), sim.machine().cycle(), 0, 0),
    };
    JobResult {
        name: job.name.clone(),
        model: job.model,
        workload: job.workload.spelling(),
        outcome,
        cycles,
        retired,
        exit_code,
        digest: sim
            .machine_mut()
            .take_trace()
            .map(|t| t.digest())
            .unwrap_or(0),
        stats: Some(sim.machine().stats.clone()),
        metrics: sim.machine().metrics_report(),
        fault_stats: handle.map(|h| h.stats()),
    }
}

fn run_iss(job: &SimJob) -> JobResult {
    use minirisc::{Iss, SparseMemory};
    let workload = match job.workload.resolve(job.seed) {
        Ok(w) => w,
        Err(e) => return JobResult::failed(job, e),
    };
    let mut iss = Iss::with_program(SparseMemory::new(), &workload.program());
    let mut digest = FNV_OFFSET;
    let mut steps = 0u64;
    let outcome = loop {
        if iss.halted {
            break JobOutcome::Halted;
        }
        if steps >= job.max_cycles {
            break JobOutcome::BudgetExhausted;
        }
        match iss.step() {
            Ok(executed) => {
                digest = fnv_mix(digest, &executed.pc.to_le_bytes());
                digest = fnv_mix(digest, &executed.taken.unwrap_or(0).to_le_bytes());
            }
            Err(e) => break JobOutcome::Failed(e.to_string()),
        }
        steps += 1;
    };
    JobResult {
        name: job.name.clone(),
        model: job.model,
        workload: job.workload.spelling(),
        outcome,
        cycles: iss.retired,
        retired: iss.retired,
        exit_code: iss.exit_code,
        digest,
        stats: None,
        metrics: None,
        fault_stats: None,
    }
}

/// Builds the standard ILP workload: a countdown loop whose body is `body`
/// independent adds (mirrors the VLIW crate's test fixture).
fn ilp_program(iters: i32, body: usize) -> VliwProgram {
    use minirisc::{AluOp, BranchCond, Instr, Reg};
    let addi = |rd: u8, rs1: u8, imm: i32| Instr::AluImm {
        op: AluOp::Add,
        rd: Reg(rd),
        rs1: Reg(rs1),
        imm,
    };
    let mut ir = VliwIr::new();
    ir.push(addi(1, 0, iters));
    let top = ir.instrs.len();
    for k in 0..body {
        ir.push(addi(2 + (k % 6) as u8, 0, (k % 4096) as i32));
    }
    ir.push(addi(1, 1, -1));
    ir.branch(
        Instr::Branch {
            cond: BranchCond::Ne,
            rs1: Reg(1),
            rs2: Reg(0),
            offset: 0,
        },
        top,
    );
    // Exit syscall reporting r1 (0 on a completed countdown).
    ir.push(addi(10, 0, 0));
    ir.push(Instr::Alu {
        op: AluOp::Add,
        rd: Reg(11),
        rs1: Reg(1),
        rs2: Reg(0),
    });
    ir.push(Instr::Syscall);
    schedule(&ir, vec![])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_spec_parses_all_forms() {
        assert_eq!(
            WorkloadSpec::parse("random:128").unwrap(),
            WorkloadSpec::Random { block_len: 128 }
        );
        assert_eq!(
            WorkloadSpec::parse("ilp:500:8").unwrap(),
            WorkloadSpec::Ilp { iters: 500, body: 8 }
        );
        assert_eq!(
            WorkloadSpec::parse("k40/x").unwrap(),
            WorkloadSpec::Named("k40/x".into())
        );
        assert!(WorkloadSpec::parse("random:x").is_err());
        assert!(WorkloadSpec::parse("ilp:0:0").is_err());
    }

    #[test]
    fn unknown_workload_fails_cleanly() {
        let job = SimJob::new(
            ModelKind::Sa1100,
            WorkloadSpec::Named("no-such-workload".into()),
            1000,
        );
        let r = run_job(&job);
        assert!(matches!(r.outcome, JobOutcome::Failed(_)));
    }

    #[test]
    fn iss_job_is_deterministic() {
        let job = SimJob::minirisc_random(7, 48, 50_000);
        let a = run_job(&job);
        let b = run_job(&job);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.retired, b.retired);
        assert_ne!(a.digest, 0);
    }

    #[test]
    fn vliw_ilp_job_halts() {
        let mut job = SimJob::new(
            ModelKind::Vliw,
            WorkloadSpec::Ilp { iters: 50, body: 6 },
            100_000,
        );
        job.observability = true;
        let r = run_job(&job);
        assert_eq!(r.outcome, JobOutcome::Halted);
        assert!(r.metrics.is_some());
        assert!(r.stats.is_some());
    }

    #[test]
    fn sa_job_digest_matches_between_runs_with_faults() {
        let mut job = SimJob::new(
            ModelKind::Sa1100,
            WorkloadSpec::Named("specint".into()),
            20_000,
        );
        job.faults = Some(FaultPlan::new(0xFA0).deny_allocate(0.02));
        let a = run_job(&job);
        let b = run_job(&job);
        assert!(a.is_ok(), "{:?}", a.outcome);
        assert_eq!(a.digest, b.digest);
        assert_eq!(
            a.fault_stats.unwrap().total(),
            b.fault_stats.unwrap().total()
        );
    }
}
