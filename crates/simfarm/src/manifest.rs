//! JSON sweep manifests: the `simfarm` CLI's input format.
//!
//! ```json
//! {
//!   "workers": 4,
//!   "defaults": { "max_cycles": 100000, "scheduler": "fast", "observability": false },
//!   "jobs": [
//!     { "model": "sa1100", "workload": "specint" },
//!     { "model": "minirisc", "workload": "random:64", "seed": 3 },
//!     { "model": "vliw", "workload": "ilp:500:8",
//!       "faults": { "seed": 7, "deny_allocate": 0.02 } }
//!   ]
//! }
//! ```
//!
//! Every job field except `model` and `workload` is optional and falls back
//! to the `defaults` object, then to built-in defaults (`max_cycles` 100000,
//! scheduler `fast`, observability off, seed 0, no faults).
//!
//! ## Supervision knobs
//!
//! Three more per-job fields (also honored in `defaults`) configure the
//! supervised farm:
//!
//! * `"stall_budget"` — cycles without forward progress before the PR-1
//!   watchdog declares the job stalled. Armed at
//!   [`crate::DEFAULT_STALL_BUDGET`] when omitted; `0` disarms the
//!   watchdog entirely.
//! * `"deadline_ms"` — wall-clock deadline per job, in milliseconds
//!   (`0` = none, the default). Host-speed dependent by nature; keep it out
//!   of manifests whose reports must be byte-reproducible.
//! * `"retries"` — how many times an unhealthy job is deterministically
//!   re-run before quarantine ([`crate::DEFAULT_RETRIES`] when omitted).
//!
//! ## Hard-crash survival knobs
//!
//! * `"checkpoint_every"` (per-job and in `defaults`) — durable mid-job
//!   checkpoint cadence in cycles; `0` (the default) disables
//!   checkpointing ([`crate::SimJob::checkpoint_every`]). Ignored for
//!   observability jobs.
//! * `"isolation"` (top level) — `"in-process"` (default) or `"process"`:
//!   run every job attempt in a re-exec'd subprocess so hard crashes
//!   become typed outcomes ([`crate::exec`]). CLI flags override.
//! * `"memory_limit_mb"` / `"cpu_limit_secs"` (top level) — resource
//!   budgets applied to each isolated subprocess (`0` = unlimited, the
//!   default). Meaningful only with `"isolation": "process"`.

use crate::exec::IsolationMode;
use crate::job::{ModelKind, SimJob, WorkloadSpec, DEFAULT_RETRIES, DEFAULT_STALL_BUDGET};
use bench::json::{parse, Json};
use osm_core::{FaultPlan, SchedulerMode};
use std::fmt;

/// A parsed sweep manifest.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Worker-thread count requested by the manifest (CLI flags override).
    pub workers: Option<usize>,
    /// Top-level `"farm_observability"` flag: attach a
    /// [`crate::FarmObserver`] to the sweep (worker telemetry, job spans,
    /// farm-trace export). Off by default — the disabled farm runs the
    /// exact pre-observer hot loop. Distinct from per-job
    /// `"observability"`, which enables the *machine*-level event log and
    /// metrics inside each job.
    pub farm_observability: bool,
    /// Top-level `"isolation"` knob: how workers execute job attempts
    /// (CLI flags override). [`IsolationMode::InProcess`] by default.
    pub isolation: IsolationMode,
    /// Top-level `"memory_limit_mb"`: address-space budget per isolated
    /// subprocess (`None` = unlimited).
    pub memory_limit_mb: Option<u64>,
    /// Top-level `"cpu_limit_secs"`: CPU budget per isolated subprocess
    /// (`None` = unlimited).
    pub cpu_limit_secs: Option<u64>,
    /// The job list, in manifest order.
    pub jobs: Vec<SimJob>,
}

/// A manifest rejection, with enough context to fix the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestError {
    /// What was wrong.
    pub message: String,
}

impl ManifestError {
    fn new(message: impl Into<String>) -> ManifestError {
        ManifestError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "manifest error: {}", self.message)
    }
}

impl std::error::Error for ManifestError {}

/// Per-job fallbacks from the manifest's `defaults` object.
#[derive(Debug, Clone, Copy)]
struct Defaults {
    max_cycles: u64,
    scheduler: SchedulerMode,
    observability: bool,
    stall_budget: Option<u64>,
    deadline_ms: Option<u64>,
    retries: u32,
    checkpoint_every: u64,
}

impl Default for Defaults {
    fn default() -> Defaults {
        Defaults {
            max_cycles: 100_000,
            scheduler: SchedulerMode::Fast,
            observability: false,
            stall_budget: Some(DEFAULT_STALL_BUDGET),
            deadline_ms: None,
            retries: DEFAULT_RETRIES,
            checkpoint_every: 0,
        }
    }
}

/// Parses a `stall_budget`/`deadline_ms`-style knob: an integer where `0`
/// means "off" (`None`).
fn zero_is_off(v: &Json, ctx: &str) -> Result<Option<u64>, ManifestError> {
    let n = v
        .as_u64()
        .ok_or_else(|| ManifestError::new(format!("{ctx} must be a non-negative integer")))?;
    Ok(if n == 0 { None } else { Some(n) })
}

/// Parses a manifest document into a job list.
pub fn parse_manifest(text: &str) -> Result<Manifest, ManifestError> {
    let root = parse(text).map_err(|e| ManifestError::new(e.to_string()))?;
    let Json::Obj(_) = &root else {
        return Err(ManifestError::new(format!(
            "top level must be an object, found {}",
            root.type_name()
        )));
    };

    let workers = match root.get("workers") {
        None => None,
        Some(v) => Some(
            v.as_u64()
                .ok_or_else(|| ManifestError::new("`workers` must be a positive integer"))
                .and_then(|w| {
                    if w == 0 {
                        Err(ManifestError::new("`workers` must be at least 1"))
                    } else {
                        Ok(w as usize)
                    }
                })?,
        ),
    };

    let farm_observability = match root.get("farm_observability") {
        None => false,
        Some(v) => v.as_bool().ok_or_else(|| {
            ManifestError::new("`farm_observability` must be a boolean")
        })?,
    };

    let mut defaults = Defaults::default();
    if let Some(d) = root.get("defaults") {
        if let Some(mc) = d.get("max_cycles") {
            defaults.max_cycles = mc
                .as_u64()
                .ok_or_else(|| ManifestError::new("defaults.max_cycles must be an integer"))?;
        }
        if let Some(s) = d.get("scheduler") {
            defaults.scheduler = scheduler_mode(s, "defaults.scheduler")?;
        }
        if let Some(o) = d.get("observability") {
            defaults.observability = o
                .as_bool()
                .ok_or_else(|| ManifestError::new("defaults.observability must be a boolean"))?;
        }
        if let Some(v) = d.get("stall_budget") {
            defaults.stall_budget = zero_is_off(v, "defaults.stall_budget")?;
        }
        if let Some(v) = d.get("deadline_ms") {
            defaults.deadline_ms = zero_is_off(v, "defaults.deadline_ms")?;
        }
        if let Some(v) = d.get("retries") {
            defaults.retries = v
                .as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| ManifestError::new("defaults.retries must be a small integer"))?;
        }
        if let Some(v) = d.get("checkpoint_every") {
            defaults.checkpoint_every = v.as_u64().ok_or_else(|| {
                ManifestError::new("defaults.checkpoint_every must be a non-negative integer")
            })?;
        }
    }

    let isolation = match root.get("isolation") {
        None => IsolationMode::default(),
        Some(v) => v
            .as_str()
            .and_then(IsolationMode::parse)
            .ok_or_else(|| {
                ManifestError::new("`isolation` must be \"in-process\" or \"process\"")
            })?,
    };
    let memory_limit_mb = match root.get("memory_limit_mb") {
        None => None,
        Some(v) => zero_is_off(v, "`memory_limit_mb`")?,
    };
    let cpu_limit_secs = match root.get("cpu_limit_secs") {
        None => None,
        Some(v) => zero_is_off(v, "`cpu_limit_secs`")?,
    };

    let jobs_json = root
        .get("jobs")
        .ok_or_else(|| ManifestError::new("missing `jobs` array"))?
        .as_arr()
        .ok_or_else(|| ManifestError::new("`jobs` must be an array"))?;
    if jobs_json.is_empty() {
        return Err(ManifestError::new("`jobs` must not be empty"));
    }

    let jobs = jobs_json
        .iter()
        .enumerate()
        .map(|(index, j)| parse_job(j, index, defaults))
        .collect::<Result<Vec<SimJob>, ManifestError>>()?;

    Ok(Manifest {
        workers,
        farm_observability,
        isolation,
        memory_limit_mb,
        cpu_limit_secs,
        jobs,
    })
}

fn parse_job(j: &Json, index: usize, defaults: Defaults) -> Result<SimJob, ManifestError> {
    let ctx = |field: &str| format!("jobs[{index}].{field}");

    let model_name = j
        .get("model")
        .and_then(Json::as_str)
        .ok_or_else(|| ManifestError::new(format!("{} must be a string", ctx("model"))))?;
    let model = ModelKind::parse(model_name).ok_or_else(|| {
        ManifestError::new(format!(
            "{}: unknown model `{model_name}` (expected sa1100, ppc750, minirisc or vliw)",
            ctx("model")
        ))
    })?;

    let workload_name = j
        .get("workload")
        .and_then(Json::as_str)
        .ok_or_else(|| ManifestError::new(format!("{} must be a string", ctx("workload"))))?;
    let workload = WorkloadSpec::parse(workload_name)
        .map_err(|e| ManifestError::new(format!("{}: {e}", ctx("workload"))))?;

    let mut job = SimJob::new(model, workload, defaults.max_cycles);
    job.scheduler = defaults.scheduler;
    job.observability = defaults.observability;
    job.stall_budget = defaults.stall_budget;
    job.deadline_ms = defaults.deadline_ms;
    job.retries = defaults.retries;
    job.checkpoint_every = defaults.checkpoint_every;
    job.name = format!("{}/{}#{}", model.name(), workload_name, index);

    if let Some(v) = j.get("name") {
        job.name = v
            .as_str()
            .ok_or_else(|| ManifestError::new(format!("{} must be a string", ctx("name"))))?
            .to_owned();
    }
    if let Some(v) = j.get("seed") {
        job.seed = v
            .as_u64()
            .ok_or_else(|| ManifestError::new(format!("{} must be an integer", ctx("seed"))))?;
    }
    if let Some(v) = j.get("max_cycles") {
        job.max_cycles = v.as_u64().ok_or_else(|| {
            ManifestError::new(format!("{} must be an integer", ctx("max_cycles")))
        })?;
    }
    if let Some(v) = j.get("scheduler") {
        job.scheduler = scheduler_mode(v, &ctx("scheduler"))?;
    }
    if let Some(v) = j.get("observability") {
        job.observability = v
            .as_bool()
            .ok_or_else(|| ManifestError::new(format!("{} must be a boolean", ctx("observability"))))?;
    }
    if let Some(v) = j.get("stall_budget") {
        job.stall_budget = zero_is_off(v, &ctx("stall_budget"))?;
    }
    if let Some(v) = j.get("deadline_ms") {
        job.deadline_ms = zero_is_off(v, &ctx("deadline_ms"))?;
    }
    if let Some(v) = j.get("retries") {
        job.retries = v
            .as_u64()
            .and_then(|n| u32::try_from(n).ok())
            .ok_or_else(|| ManifestError::new(format!("{} must be a small integer", ctx("retries"))))?;
    }
    if let Some(v) = j.get("checkpoint_every") {
        job.checkpoint_every = v.as_u64().ok_or_else(|| {
            ManifestError::new(format!(
                "{} must be a non-negative integer",
                ctx("checkpoint_every")
            ))
        })?;
    }
    if let Some(v) = j.get("faults") {
        job.faults = Some(parse_faults(v, &ctx("faults"))?);
    }
    Ok(job)
}

fn scheduler_mode(v: &Json, ctx: &str) -> Result<SchedulerMode, ManifestError> {
    match v.as_str() {
        Some("fast") => Ok(SchedulerMode::Fast),
        Some("seed") => Ok(SchedulerMode::Seed),
        _ => Err(ManifestError::new(format!(
            "{ctx} must be \"fast\" or \"seed\""
        ))),
    }
}

fn parse_faults(v: &Json, ctx: &str) -> Result<FaultPlan, ManifestError> {
    let seed = match v.get("seed") {
        None => 0,
        Some(s) => s
            .as_u64()
            .ok_or_else(|| ManifestError::new(format!("{ctx}.seed must be an integer")))?,
    };
    let mut plan = FaultPlan::new(seed);
    let prob = |field: &str| -> Result<Option<f64>, ManifestError> {
        match v.get(field) {
            None => Ok(None),
            Some(p) => {
                let p = p.as_num().ok_or_else(|| {
                    ManifestError::new(format!("{ctx}.{field} must be a number"))
                })?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(ManifestError::new(format!(
                        "{ctx}.{field} must be a probability in [0, 1]"
                    )));
                }
                Ok(Some(p))
            }
        }
    };
    if let Some(p) = prob("deny_allocate")? {
        plan = plan.deny_allocate(p);
    }
    if let Some(p) = prob("deny_inquire")? {
        plan = plan.deny_inquire(p);
    }
    if let Some(p) = prob("defer_release")? {
        plan = plan.defer_release(p);
    }
    if let Some(p) = prob("drop_token")? {
        plan = plan.drop_token(p);
    }
    if let Some(p) = prob("corrupt_token")? {
        plan = plan.corrupt_token(p);
    }
    if let Some(b) = v.get("blackhole") {
        let arr = b
            .as_arr()
            .filter(|a| a.len() == 2)
            .ok_or_else(|| {
                ManifestError::new(format!("{ctx}.blackhole must be a [start, end] cycle pair"))
            })?;
        let start = arr[0]
            .as_u64()
            .ok_or_else(|| ManifestError::new(format!("{ctx}.blackhole[0] must be an integer")))?;
        let end = arr[1]
            .as_u64()
            .ok_or_else(|| ManifestError::new(format!("{ctx}.blackhole[1] must be an integer")))?;
        plan = plan.blackhole(start, end);
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::ModelKind;

    #[test]
    fn full_manifest_parses() {
        let text = r#"{
            "workers": 4,
            "defaults": { "max_cycles": 50000, "scheduler": "seed", "observability": true },
            "jobs": [
                { "model": "sa1100", "workload": "specint" },
                { "model": "minirisc", "workload": "random:64", "seed": 3,
                  "scheduler": "fast", "observability": false },
                { "model": "vliw", "workload": "ilp:100:4",
                  "faults": { "seed": 7, "deny_allocate": 0.02, "blackhole": [100, 200] } }
            ]
        }"#;
        let m = parse_manifest(text).unwrap();
        assert_eq!(m.workers, Some(4));
        assert!(!m.farm_observability, "off unless requested");
        assert_eq!(m.jobs.len(), 3);
        assert_eq!(m.jobs[0].model, ModelKind::Sa1100);
        assert_eq!(m.jobs[0].max_cycles, 50_000);
        assert_eq!(m.jobs[0].scheduler, osm_core::SchedulerMode::Seed);
        assert!(m.jobs[0].observability);
        assert_eq!(m.jobs[0].name, "sa1100/specint#0");
        assert_eq!(m.jobs[1].seed, 3);
        assert_eq!(m.jobs[1].scheduler, osm_core::SchedulerMode::Fast);
        assert!(!m.jobs[1].observability);
        assert!(m.jobs[2].faults.is_some());
    }

    #[test]
    fn missing_jobs_is_an_error() {
        let err = parse_manifest(r#"{"workers": 2}"#).unwrap_err();
        assert!(err.message.contains("jobs"), "{err}");
    }

    #[test]
    fn bad_model_is_reported_with_index() {
        let err =
            parse_manifest(r#"{"jobs": [{"model": "z80", "workload": "specint"}]}"#).unwrap_err();
        assert!(err.message.contains("jobs[0]"), "{err}");
        assert!(err.message.contains("z80"), "{err}");
    }

    #[test]
    fn bad_probability_is_rejected() {
        let err = parse_manifest(
            r#"{"jobs": [{"model": "sa1100", "workload": "specint",
                          "faults": {"deny_allocate": 1.5}}]}"#,
        )
        .unwrap_err();
        assert!(err.message.contains("probability"), "{err}");
    }

    #[test]
    fn supervision_knobs_parse_with_defaults_and_overrides() {
        let text = r#"{
            "defaults": { "stall_budget": 5000, "retries": 3 },
            "jobs": [
                { "model": "sa1100", "workload": "specint" },
                { "model": "sa1100", "workload": "specint",
                  "stall_budget": 0, "deadline_ms": 250, "retries": 0 },
                { "model": "minirisc", "workload": "chaos:panic" }
            ]
        }"#;
        let m = parse_manifest(text).unwrap();
        assert_eq!(m.jobs[0].stall_budget, Some(5000));
        assert_eq!(m.jobs[0].deadline_ms, None);
        assert_eq!(m.jobs[0].retries, 3);
        assert_eq!(m.jobs[1].stall_budget, None, "0 disarms the watchdog");
        assert_eq!(m.jobs[1].deadline_ms, Some(250));
        assert_eq!(m.jobs[1].retries, 0);
        assert_eq!(
            m.jobs[2].workload,
            crate::job::WorkloadSpec::ChaosPanic,
            "chaos workloads are manifest-spellable"
        );
        // Untouched manifests keep the built-in supervision defaults.
        let plain =
            parse_manifest(r#"{"jobs":[{"model":"sa1100","workload":"specint"}]}"#).unwrap();
        assert_eq!(plain.jobs[0].stall_budget, Some(DEFAULT_STALL_BUDGET));
        assert_eq!(plain.jobs[0].retries, DEFAULT_RETRIES);
    }

    #[test]
    fn crash_survival_knobs_parse_with_defaults_and_overrides() {
        let text = r#"{
            "isolation": "process",
            "memory_limit_mb": 512,
            "cpu_limit_secs": 30,
            "defaults": { "checkpoint_every": 10000 },
            "jobs": [
                { "model": "sa1100", "workload": "specint" },
                { "model": "minirisc", "workload": "random:64",
                  "checkpoint_every": 0 },
                { "model": "vliw", "workload": "ilp:100:4",
                  "checkpoint_every": 2500 }
            ]
        }"#;
        let m = parse_manifest(text).unwrap();
        assert_eq!(m.isolation, IsolationMode::Process);
        assert_eq!(m.memory_limit_mb, Some(512));
        assert_eq!(m.cpu_limit_secs, Some(30));
        assert_eq!(m.jobs[0].checkpoint_every, 10_000, "defaults apply");
        assert_eq!(m.jobs[1].checkpoint_every, 0, "per-job opt-out");
        assert_eq!(m.jobs[2].checkpoint_every, 2_500, "per-job override");

        // Untouched manifests: in-process, unlimited, no checkpointing.
        let plain =
            parse_manifest(r#"{"jobs":[{"model":"sa1100","workload":"specint"}]}"#).unwrap();
        assert_eq!(plain.isolation, IsolationMode::InProcess);
        assert_eq!(plain.memory_limit_mb, None);
        assert_eq!(plain.cpu_limit_secs, None);
        assert_eq!(plain.jobs[0].checkpoint_every, 0);

        // Bad spellings are rejected with the field named.
        let err = parse_manifest(
            r#"{"isolation": "container",
                "jobs":[{"model":"sa1100","workload":"specint"}]}"#,
        )
        .unwrap_err();
        assert!(err.message.contains("isolation"), "{err}");
        let err = parse_manifest(
            r#"{"jobs":[{"model":"sa1100","workload":"specint",
                         "checkpoint_every": -3}]}"#,
        )
        .unwrap_err();
        assert!(err.message.contains("checkpoint_every"), "{err}");
    }

    #[test]
    fn farm_observability_flag_parses_and_rejects_non_booleans() {
        let m = parse_manifest(
            r#"{"farm_observability": true,
                "jobs":[{"model":"sa1100","workload":"specint"}]}"#,
        )
        .unwrap();
        assert!(m.farm_observability);
        let err = parse_manifest(
            r#"{"farm_observability": 1,
                "jobs":[{"model":"sa1100","workload":"specint"}]}"#,
        )
        .unwrap_err();
        assert!(err.message.contains("farm_observability"), "{err}");
    }

    #[test]
    fn fractional_workers_is_rejected() {
        let err = parse_manifest(r#"{"workers": 2.5, "jobs": []}"#).unwrap_err();
        assert!(err.message.contains("workers"), "{err}");
    }
}
