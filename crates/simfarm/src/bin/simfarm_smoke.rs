//! `simfarm_smoke` — the CI gate for the parallel farm.
//!
//! Runs a fixed 8-job sweep twice — serially, then across worker threads —
//! and enforces, in order of importance:
//!
//! 1. **Digest parity** (hard, always): every per-job trace digest from the
//!    parallel run is bit-identical to the serial run's. This is the farm's
//!    determinism contract and fails the build on any mismatch.
//! 2. **Speedup** (hard when the machine can show it): with at least 4
//!    hardware threads, parallel wall-clock must beat serial by the floor
//!    (default 3.0x, override with `SIMFARM_SMOKE_FLOOR=<f64>`; set `0` to
//!    disable). On smaller machines the speedup check is skipped with a
//!    notice — parity is still enforced.

use osm_core::{FaultPlan, SchedulerMode};
use simfarm::{run_parallel, run_serial, FarmReport, ModelKind, SimJob, WorkloadSpec};
use std::process::ExitCode;
use std::time::Instant;

/// Generous cycle budget; the random workloads below halt well before it.
const BUDGET: u64 = 2_000_000;

fn jobs() -> Vec<SimJob> {
    let mut out = Vec::new();
    // Four SA-1100 (`random:1600`, ~90k cycles) then four PPC-750
    // (`random:1400`, ~35k slower cycles) jobs — block lengths chosen so
    // every job carries roughly the same wall-clock weight, and the
    // round-robin deal gives each of four workers one of each, so the
    // initial split is already even and stealing only covers OS noise.
    for (i, scheduler) in [SchedulerMode::Fast, SchedulerMode::Seed]
        .into_iter()
        .cycle()
        .take(4)
        .enumerate()
    {
        let mut job = SimJob::new(
            ModelKind::Sa1100,
            WorkloadSpec::Random { block_len: 1600 },
            BUDGET,
        );
        job.seed = i as u64;
        job.scheduler = scheduler;
        if i >= 2 {
            job.faults = Some(FaultPlan::new(0x5EED + i as u64).deny_allocate(0.01));
        }
        job.name = format!("smoke/sa1100#{i}");
        out.push(job);
    }
    for (i, scheduler) in [SchedulerMode::Fast, SchedulerMode::Seed]
        .into_iter()
        .cycle()
        .take(4)
        .enumerate()
    {
        let mut job = SimJob::new(
            ModelKind::Ppc750,
            WorkloadSpec::Random { block_len: 1400 },
            BUDGET,
        );
        job.seed = i as u64;
        job.scheduler = scheduler;
        if i >= 2 {
            job.faults = Some(FaultPlan::new(0xFADE + i as u64).deny_inquire(0.01));
        }
        job.name = format!("smoke/ppc750#{i}");
        out.push(job);
    }
    out
}

fn main() -> ExitCode {
    let jobs = jobs();
    let hardware = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers = hardware.clamp(1, 8).max(4.min(hardware));

    println!(
        "simfarm_smoke: {} jobs, {} hardware thread(s), {} worker(s)",
        jobs.len(),
        hardware,
        workers
    );

    let t0 = Instant::now();
    let serial = run_serial(&jobs);
    let serial_wall = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let parallel = match run_parallel(&jobs, workers) {
        Ok(results) => results,
        Err(e) => {
            eprintln!("simfarm_smoke: FAIL — farm error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let parallel_wall = t1.elapsed().as_secs_f64();

    // Gate 1: digest parity, job by job, in job order.
    let mut mismatches = 0;
    for (s, p) in serial.iter().zip(&parallel) {
        let ok = s.digest == p.digest && s.cycles == p.cycles && s.outcome == p.outcome;
        println!(
            "  {:<20} serial {:016x}  parallel {:016x}  {}",
            s.name,
            s.digest,
            p.digest,
            if ok { "ok" } else { "MISMATCH" }
        );
        if !ok {
            mismatches += 1;
        }
        if !s.is_ok() {
            println!("    serial job failed: {:?}", s.outcome);
            mismatches += 1;
        }
    }
    if mismatches > 0 {
        eprintln!("simfarm_smoke: FAIL — {mismatches} digest/outcome mismatch(es)");
        return ExitCode::FAILURE;
    }

    let report = FarmReport::consolidate(parallel, workers, parallel_wall);
    let speedup = if parallel_wall > 0.0 {
        serial_wall / parallel_wall
    } else {
        f64::INFINITY
    };
    println!(
        "serial {:.3}s, parallel {:.3}s on {} workers -> {:.2}x speedup, {:.0} cycles/s",
        serial_wall,
        parallel_wall,
        workers,
        speedup,
        report.cycles_per_second()
    );

    // Gate 2: speedup floor.
    let floor: f64 = std::env::var("SIMFARM_SMOKE_FLOOR")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0);
    if hardware < 4 {
        println!(
            "simfarm_smoke: only {hardware} hardware thread(s) — speedup floor skipped \
             (digest parity still enforced)"
        );
    } else if floor > 0.0 && speedup < floor {
        eprintln!(
            "simfarm_smoke: FAIL — speedup {speedup:.2}x below the {floor:.2}x floor \
             (override with SIMFARM_SMOKE_FLOOR)"
        );
        return ExitCode::FAILURE;
    }

    println!("simfarm_smoke: PASS");
    ExitCode::SUCCESS
}
