//! CI smoke check for the farm-scope observability exporters: runs a small
//! sweep with a [`FarmObserver`] attached, re-parses the exported farm
//! schedule trace and fleet timing JSON with the strict `bench` parser,
//! validates both against the checked-in schemas under `schemas/`, and
//! proves the determinism contract — the canonical report renderings are
//! byte-identical to an observability-off run and across worker counts.
//!
//! Run with: `cargo run --release -p simfarm --bin farm_trace_smoke`
//! Optional: `-- --out-dir <dir>` also writes the two JSON files there.
//!
//! Exits non-zero on any schema violation, coverage gap, or canonical
//! divergence.

use bench::json::{check_schema, parse, Json};
use simfarm::{run_farm, FarmObserver, FarmOptions, FarmReport, ModelKind, SimJob, WorkloadSpec};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Generous cycle budget; the random workloads below halt well before it.
const BUDGET: u64 = 2_000_000;

fn schema_dir() -> PathBuf {
    // crates/simfarm -> repository root.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../schemas")
}

fn load_schema(name: &str) -> Json {
    let path = schema_dir().join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    parse(&text).unwrap_or_else(|e| panic!("{name} is not valid JSON: {e}"))
}

/// A small heterogeneous sweep: two OSM models plus the MiniRISC ISS, tiny
/// blocks so the whole check stays well under a second.
fn jobs() -> Vec<SimJob> {
    let mut out = Vec::new();
    for (i, (model, block_len)) in [
        (ModelKind::Sa1100, 400),
        (ModelKind::Ppc750, 300),
        (ModelKind::Sa1100, 400),
        (ModelKind::Ppc750, 300),
        (ModelKind::MiniRiscIss, 600),
        (ModelKind::MiniRiscIss, 600),
    ]
    .into_iter()
    .enumerate()
    {
        let mut job = SimJob::new(model, WorkloadSpec::Random { block_len }, BUDGET);
        job.seed = i as u64;
        job.name = format!("farm_trace_smoke#{i}");
        out.push(job);
    }
    out
}

fn observed_report(jobs: &[SimJob], workers: usize) -> FarmReport {
    let options = FarmOptions {
        observer: Some(FarmObserver::new()),
        ..FarmOptions::default()
    };
    let run = run_farm(jobs, workers, options).expect("farm runs");
    assert!(run.is_complete(), "sweep did not complete");
    FarmReport::consolidate_sweep(&run, workers, 0.0)
}

fn main() -> ExitCode {
    let mut out_dir: Option<PathBuf> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out-dir" => out_dir = Some(it.next().expect("--out-dir takes a path").into()),
            other => panic!("unknown flag {other}"),
        }
    }

    let jobs = jobs();
    println!(
        "farm_trace_smoke: {} jobs (SA-1100 / PPC-750 / MiniRISC ISS)",
        jobs.len()
    );

    let mut failures = 0usize;
    let mut fail = |msg: String| {
        eprintln!("FAIL: {msg}");
        failures += 1;
    };

    // 1. Determinism contract: canonical renderings are byte-identical with
    //    observability off and on, across worker counts.
    let plain = {
        let run = run_farm(&jobs, 2, FarmOptions::default()).expect("farm runs");
        FarmReport::consolidate_sweep(&run, 2, 0.0)
    };
    let baseline_text = plain.canonical_text();
    let baseline_json = plain.canonical_json();
    let mut observed = Vec::new();
    for workers in [1usize, 2, 8] {
        let report = observed_report(&jobs, workers);
        if report.canonical_text() != baseline_text {
            fail(format!(
                "canonical_text diverges at {workers} worker(s) with observability on"
            ));
        }
        if report.canonical_json() != baseline_json {
            fail(format!(
                "canonical_json diverges at {workers} worker(s) with observability on"
            ));
        }
        observed.push(report);
    }
    println!("canonical report byte-identical across observability off/on x 1/2/8 workers");

    // 2. Export the farm trace and fleet timing from the 2-worker run.
    let report = &observed[1];
    let schedule = report.schedule.as_ref().expect("observer attached");
    let trace_text = schedule.trace_json();
    let timing_text = report
        .timing_json()
        .expect("timing available with a schedule")
        .to_string();
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create out dir");
        std::fs::write(dir.join("farm_trace.json"), &trace_text).expect("write farm_trace.json");
        std::fs::write(dir.join("farm_metrics.json"), &timing_text)
            .expect("write farm_metrics.json");
        println!(
            "wrote farm_trace.json and farm_metrics.json to {}",
            dir.display()
        );
    }

    // 3. Both documents must be strictly parseable and schema-valid.
    let trace = match parse(&trace_text) {
        Ok(v) => Some(v),
        Err(e) => {
            fail(format!("farm trace does not parse: {e}"));
            None
        }
    };
    let timing = match parse(&timing_text) {
        Ok(v) => Some(v),
        Err(e) => {
            fail(format!("timing JSON does not parse: {e}"));
            None
        }
    };
    if let Some(trace) = &trace {
        for p in check_schema(trace, &load_schema("farm_trace.schema.json")) {
            fail(format!("farm trace schema: {p}"));
        }
    }
    if let Some(timing) = &timing {
        for p in check_schema(timing, &load_schema("farm_metrics.schema.json")) {
            fail(format!("farm metrics schema: {p}"));
        }
    }

    // 4. Coverage: the schedule must account for every executed job, and
    //    the worker telemetry must sum to the job count.
    if let Some(trace) = &trace {
        let recorded = trace
            .get("otherData")
            .and_then(|d| d.get("jobs_recorded"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        if recorded != jobs.len() as u64 {
            fail(format!(
                "trace otherData.jobs_recorded {recorded} != {} jobs",
                jobs.len()
            ));
        }
        let slices = trace
            .get("traceEvents")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .count();
        if slices != jobs.len() {
            fail(format!("trace has {slices} job slices, expected {}", jobs.len()));
        }
    }
    let mut indices: Vec<usize> = schedule.spans.iter().map(|s| s.index).collect();
    indices.sort_unstable();
    if indices != (0..jobs.len()).collect::<Vec<_>>() {
        fail(format!("schedule spans cover {indices:?}, expected 0..{}", jobs.len()));
    }
    let completed: u64 = schedule.workers.iter().map(|w| w.jobs_completed).sum();
    if completed != jobs.len() as u64 {
        fail(format!(
            "worker telemetry sums to {completed} jobs completed, expected {}",
            jobs.len()
        ));
    }
    println!(
        "farm schedule: {} spans across {} worker track(s), telemetry reconciled",
        schedule.spans.len(),
        schedule.workers.len()
    );

    if failures == 0 {
        println!("farm_trace_smoke: OK");
        ExitCode::SUCCESS
    } else {
        eprintln!("farm_trace_smoke: {failures} failure(s)");
        ExitCode::FAILURE
    }
}
