//! `simfarm` — run a sweep manifest across worker threads.
//!
//! ```text
//! simfarm <manifest.json> [--workers N] [--serial] [--json] [--out FILE]
//! ```
//!
//! Prints the consolidated BENCH-style report to stdout (or its JSON form
//! with `--json`); `--out` additionally writes the JSON report to a file.

use simfarm::{parse_manifest, run_parallel, run_serial, FarmReport};
use std::process::ExitCode;
use std::time::Instant;

fn usage() -> ! {
    eprintln!("usage: simfarm <manifest.json> [--workers N] [--serial] [--json] [--out FILE]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut manifest_path: Option<String> = None;
    let mut workers_flag: Option<usize> = None;
    let mut serial = false;
    let mut json = false;
    let mut out: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => workers_flag = Some(n),
                _ => usage(),
            },
            "--serial" => serial = true,
            "--json" => json = true,
            "--out" => match args.next() {
                Some(path) => out = Some(path),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            _ if manifest_path.is_none() && !arg.starts_with('-') => manifest_path = Some(arg),
            _ => usage(),
        }
    }
    let Some(manifest_path) = manifest_path else {
        usage();
    };

    let text = match std::fs::read_to_string(&manifest_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("simfarm: cannot read {manifest_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let manifest = match parse_manifest(&text) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("simfarm: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Precedence: --serial > --workers > manifest "workers" > hardware.
    let workers = if serial {
        1
    } else {
        workers_flag
            .or(manifest.workers)
            .unwrap_or_else(default_workers)
    };

    let start = Instant::now();
    let results = if workers == 1 {
        run_serial(&manifest.jobs)
    } else {
        run_parallel(&manifest.jobs, workers)
    };
    let wall = start.elapsed().as_secs_f64();
    let report = FarmReport::consolidate(results, workers, wall);

    if json {
        println!("{}", report.to_json());
    } else {
        print!("{report}");
    }
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, format!("{}\n", report.to_json())) {
            eprintln!("simfarm: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if report.failures > 0 {
        eprintln!("simfarm: {} job(s) failed", report.failures);
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}
