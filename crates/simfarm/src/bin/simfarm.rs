//! `simfarm` — run a sweep manifest across worker threads, supervised.
//!
//! ```text
//! simfarm <manifest.json> [--workers N] [--serial] [--json] [--out FILE]
//!                         [--journal FILE | --resume FILE] [--max-wall SECS]
//!                         [--progress] [--heartbeat SECS]
//!                         [--farm-trace FILE] [--timing-out FILE]
//!                         [--isolation process|in-process]
//!                         [--mem-limit MB] [--cpu-limit SECS]
//!                         [--checkpoint-dir DIR]
//! simfarm --run-one <manifest.json> <job-index> [--checkpoint-dir DIR]
//! ```
//!
//! Prints a concise human summary to stdout by default; `--json` prints the
//! full report JSON instead, and `--out` additionally writes that JSON to a
//! file. All progress display goes to stderr, so stdout stays pipeable.
//!
//! * `--journal FILE` starts a fresh sweep journal: every completed job is
//!   appended (and flushed) the moment it finishes.
//! * `--resume FILE` replays an existing journal, skips every job already
//!   completed, and appends the rest. Torn trailing writes (a killed sweep)
//!   are tolerated; corrupt records and journals from a different manifest
//!   are rejected.
//! * `--max-wall SECS` cancels the sweep cooperatively after a wall-clock
//!   budget: in-flight jobs finish, the journal is flushed, and the run
//!   exits resumable. The cancellation notice carries elapsed-time and
//!   jobs-completed context through the progress channel.
//! * `--progress` draws a throttled live status line (jobs done/total,
//!   quarantined count, cycles/sec, ETA); `--heartbeat SECS` prints a
//!   snapshot line on a fixed interval instead/additionally (for logs that
//!   don't render `\r`).
//! * `--farm-trace FILE` writes the farm schedule as a Chrome/Perfetto
//!   trace (workers as tracks, jobs as slices, steals/retries as
//!   instants); `--timing-out FILE` writes the fleet timing JSON
//!   (utilization, per-job phase breakdown, histograms). Both imply farm
//!   observability, as does `"farm_observability": true` in the manifest.
//!   Timing output is explicitly **non-canonical**; the report renderings
//!   stay byte-identical with observability on or off.
//! * `--isolation process` runs every job attempt in a re-exec'd child
//!   process (`simfarm --run-one`), so hard crashes — aborts, OOM kills,
//!   stack overflows — are contained and surface as typed `killed`
//!   outcomes instead of taking the coordinator down. `--mem-limit MB`
//!   and `--cpu-limit SECS` apply `ulimit` budgets to each child;
//!   the flags override the manifest's `isolation` / `memory_limit_mb` /
//!   `cpu_limit_secs` knobs.
//! * Jobs with `checkpoint_every > 0` seal durable mid-job checkpoints.
//!   With `--journal`/`--resume` the checkpoint directory defaults to
//!   `<journal>.ckpt/`; `--checkpoint-dir DIR` overrides it (or enables
//!   checkpointing without a journal). On `--resume`, interrupted jobs
//!   restart from their last durable checkpoint instead of cycle 0 and
//!   report digests identical to an uninterrupted run.
//! * `--run-one` is the internal child-process entry point used by
//!   `--isolation process`; it runs one job attempt and speaks the
//!   journal record framing on stdout.
//!
//! Exit codes: `0` complete and healthy, `1` complete with unhealthy jobs
//! (failed/panicked/stalled/quarantined), `2` usage, `3` farm error (broken
//! assembly invariant, unusable journal), `5` cancelled before completion
//! (resume with `--resume`).

use simfarm::{
    parse_manifest, run_farm, FarmObserver, FarmOptions, FarmReport, IsolationMode, JournalWriter,
    ProcessIsolation, ProgressMeter,
};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: simfarm <manifest.json> [--workers N] [--serial] [--json] [--out FILE]\n\
         \x20                          [--journal FILE | --resume FILE] [--max-wall SECS]\n\
         \x20                          [--progress] [--heartbeat SECS]\n\
         \x20                          [--farm-trace FILE] [--timing-out FILE]\n\
         \x20                          [--isolation process|in-process]\n\
         \x20                          [--mem-limit MB] [--cpu-limit SECS]\n\
         \x20                          [--checkpoint-dir DIR]\n\
         \x20      simfarm --run-one <manifest.json> <job-index> [--checkpoint-dir DIR]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    // Child-process mode must win before any other parsing: the coordinator
    // re-execs this same binary as `simfarm --run-one ...` for each isolated
    // job attempt.
    let raw: Vec<String> = std::env::args().collect();
    if raw.get(1).map(String::as_str) == Some("--run-one") {
        return ExitCode::from(simfarm::exec::run_one_main(&raw[2..]) as u8);
    }

    let mut manifest_path: Option<String> = None;
    let mut workers_flag: Option<usize> = None;
    let mut serial = false;
    let mut json = false;
    let mut out: Option<String> = None;
    let mut journal_path: Option<String> = None;
    let mut resume = false;
    let mut max_wall: Option<f64> = None;
    let mut progress = false;
    let mut heartbeat: Option<f64> = None;
    let mut farm_trace: Option<String> = None;
    let mut timing_out: Option<String> = None;
    let mut isolation_flag: Option<IsolationMode> = None;
    let mut mem_limit: Option<u64> = None;
    let mut cpu_limit: Option<u64> = None;
    let mut checkpoint_dir_flag: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => workers_flag = Some(n),
                _ => usage(),
            },
            "--serial" => serial = true,
            "--json" => json = true,
            "--out" => match args.next() {
                Some(path) => out = Some(path),
                None => usage(),
            },
            "--journal" => match args.next() {
                Some(path) if journal_path.is_none() => journal_path = Some(path),
                _ => usage(),
            },
            "--resume" => match args.next() {
                Some(path) if journal_path.is_none() => {
                    journal_path = Some(path);
                    resume = true;
                }
                _ => usage(),
            },
            "--max-wall" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(s) if s > 0.0 => max_wall = Some(s),
                _ => usage(),
            },
            "--progress" => progress = true,
            "--heartbeat" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(s) if s > 0.0 => heartbeat = Some(s),
                _ => usage(),
            },
            "--farm-trace" => match args.next() {
                Some(path) => farm_trace = Some(path),
                None => usage(),
            },
            "--timing-out" => match args.next() {
                Some(path) => timing_out = Some(path),
                None => usage(),
            },
            "--isolation" => match args.next().as_deref().and_then(IsolationMode::parse) {
                Some(mode) => isolation_flag = Some(mode),
                None => usage(),
            },
            "--mem-limit" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(mb) if mb > 0 => mem_limit = Some(mb),
                _ => usage(),
            },
            "--cpu-limit" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(secs) if secs > 0 => cpu_limit = Some(secs),
                _ => usage(),
            },
            "--checkpoint-dir" => match args.next() {
                Some(dir) => checkpoint_dir_flag = Some(dir),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            _ if manifest_path.is_none() && !arg.starts_with('-') => manifest_path = Some(arg),
            _ => usage(),
        }
    }
    let Some(manifest_path) = manifest_path else {
        usage();
    };

    let text = match std::fs::read_to_string(&manifest_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("simfarm: cannot read {manifest_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let manifest = match parse_manifest(&text) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("simfarm: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Precedence: --serial > --workers > manifest "workers" > hardware.
    let workers = if serial {
        1
    } else {
        workers_flag
            .or(manifest.workers)
            .unwrap_or_else(default_workers)
    };

    let mut options = FarmOptions::default();
    if let Some(path) = &journal_path {
        if resume {
            match JournalWriter::resume_full(path, &manifest.jobs) {
                Ok((writer, replay)) => {
                    eprintln!(
                        "simfarm: resuming from {path}: {} of {} job(s) already completed",
                        replay.completed.len(),
                        manifest.jobs.len()
                    );
                    for (&index, &cycle) in &replay.partials {
                        let name = &manifest.jobs[index].name;
                        eprintln!(
                            "simfarm: job {index} ({name}) holds a durable checkpoint at cycle {cycle}"
                        );
                    }
                    options.journal = Some(writer);
                    options.completed = replay.completed;
                }
                Err(e) => {
                    eprintln!("simfarm: cannot resume {path}: {e}");
                    return ExitCode::from(3);
                }
            }
        } else {
            match JournalWriter::create(path, &manifest.jobs) {
                Ok(writer) => options.journal = Some(writer),
                Err(e) => {
                    eprintln!("simfarm: cannot create journal {path}: {e}");
                    return ExitCode::from(3);
                }
            }
        }
    }

    // Durable mid-job checkpoints: any job with `checkpoint_every > 0`
    // needs a directory to seal its state into. An explicit
    // `--checkpoint-dir` always wins; otherwise a journaled sweep derives
    // `<journal>.ckpt/` so `--resume` finds the same files again.
    let wants_checkpoints = manifest.jobs.iter().any(|j| j.checkpoint_every > 0);
    let checkpoint_dir: Option<PathBuf> = match (&checkpoint_dir_flag, &journal_path) {
        (Some(dir), _) => Some(PathBuf::from(dir)),
        (None, Some(journal)) if wants_checkpoints => Some(PathBuf::from(format!("{journal}.ckpt"))),
        _ => None,
    };
    if let Some(dir) = &checkpoint_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("simfarm: cannot create checkpoint dir {}: {e}", dir.display());
            return ExitCode::from(3);
        }
        options.checkpoint_dir = Some(dir.clone());
    }

    // Process isolation: the flag overrides the manifest knob; resource
    // budgets compose the same way. The child re-execs this very binary
    // with `--run-one`.
    let isolation_mode = isolation_flag.unwrap_or(manifest.isolation);
    if isolation_mode == IsolationMode::Process {
        match ProcessIsolation::current_exe(&manifest_path) {
            Ok(mut iso) => {
                iso.memory_limit_mb = mem_limit.or(manifest.memory_limit_mb);
                iso.cpu_limit_secs = cpu_limit.or(manifest.cpu_limit_secs);
                options.isolation = Some(iso);
            }
            Err(e) => {
                eprintln!("simfarm: cannot locate own executable for --isolation process: {e}");
                return ExitCode::from(3);
            }
        }
    }

    // Farm observability: asked for by the manifest, or implied by any flag
    // that needs the schedule. Off otherwise, keeping the farm on the plain
    // hot loop.
    let observe =
        manifest.farm_observability || farm_trace.is_some() || timing_out.is_some();
    if observe {
        options.observer = Some(FarmObserver::new());
    }

    // The progress meter exists whenever anything routes through it (live
    // line, heartbeat, wall-budget notices); the live redraw only with
    // `--progress`.
    let meter = ProgressMeter::new(manifest.jobs.len(), progress);
    meter.record_restored(options.completed.len());
    {
        let meter = meter.clone();
        options.on_result = Some(Box::new(move |_, result| meter.record(result)));
    }

    let heartbeat_stop = Arc::new(AtomicBool::new(false));
    let heartbeat_thread = heartbeat.map(|secs| {
        let meter = meter.clone();
        let stop = Arc::clone(&heartbeat_stop);
        std::thread::spawn(move || {
            let interval = Duration::from_secs_f64(secs);
            let mut next = Instant::now() + interval;
            while !stop.load(Ordering::Acquire) {
                if Instant::now() >= next {
                    meter.heartbeat();
                    next += interval;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        })
    });

    if let Some(secs) = max_wall {
        let cancel = options.cancel.clone();
        let meter = meter.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_secs_f64(secs));
            meter.note(&format!(
                "wall budget ({secs}s) exhausted — cancelling cooperatively"
            ));
            cancel.cancel();
        });
    }

    let start = Instant::now();
    let run = match run_farm(&manifest.jobs, workers, options) {
        Ok(run) => run,
        Err(e) => {
            heartbeat_stop.store(true, Ordering::Release);
            eprintln!("simfarm: {e}");
            return ExitCode::from(3);
        }
    };
    let wall = start.elapsed().as_secs_f64();
    heartbeat_stop.store(true, Ordering::Release);
    if let Some(handle) = heartbeat_thread {
        let _ = handle.join();
    }
    meter.finish();
    let report = FarmReport::consolidate_sweep(&run, workers, wall);

    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.summary_text());
    }
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, format!("{}\n", report.to_json())) {
            eprintln!("simfarm: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = farm_trace {
        match report.schedule.as_ref() {
            Some(schedule) => {
                if let Err(e) = std::fs::write(&path, schedule.trace_json()) {
                    eprintln!("simfarm: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            None => eprintln!("simfarm: no farm schedule recorded, skipping {path}"),
        }
    }
    if let Some(path) = timing_out {
        match report.timing_json() {
            Some(timing) => {
                if let Err(e) = std::fs::write(&path, format!("{timing}\n")) {
                    eprintln!("simfarm: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            None => eprintln!("simfarm: no farm schedule recorded, skipping {path}"),
        }
    }

    if run.cancelled && !run.is_complete() {
        let hint = journal_path
            .map(|p| format!(" (resume with --resume {p})"))
            .unwrap_or_default();
        eprintln!(
            "simfarm: cancelled with {} job(s) pending{hint}",
            report.pending
        );
        return ExitCode::from(5);
    }
    if report.failures > 0 {
        eprintln!("simfarm: {} unhealthy job(s)", report.failures);
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}
