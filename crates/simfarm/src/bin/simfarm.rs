//! `simfarm` — run a sweep manifest across worker threads, supervised.
//!
//! ```text
//! simfarm <manifest.json> [--workers N] [--serial] [--json] [--out FILE]
//!                         [--journal FILE | --resume FILE] [--max-wall SECS]
//! ```
//!
//! Prints the consolidated BENCH-style report to stdout (or its JSON form
//! with `--json`); `--out` additionally writes the JSON report to a file.
//!
//! * `--journal FILE` starts a fresh sweep journal: every completed job is
//!   appended (and flushed) the moment it finishes.
//! * `--resume FILE` replays an existing journal, skips every job already
//!   completed, and appends the rest. Torn trailing writes (a killed sweep)
//!   are tolerated; corrupt records and journals from a different manifest
//!   are rejected.
//! * `--max-wall SECS` cancels the sweep cooperatively after a wall-clock
//!   budget: in-flight jobs finish, the journal is flushed, and the run
//!   exits resumable.
//!
//! Exit codes: `0` complete and healthy, `1` complete with unhealthy jobs
//! (failed/panicked/stalled/quarantined), `2` usage, `3` farm error (broken
//! assembly invariant, unusable journal), `5` cancelled before completion
//! (resume with `--resume`).

use simfarm::{parse_manifest, run_farm, FarmOptions, FarmReport, JournalWriter};
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: simfarm <manifest.json> [--workers N] [--serial] [--json] [--out FILE]\n\
         \x20                          [--journal FILE | --resume FILE] [--max-wall SECS]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut manifest_path: Option<String> = None;
    let mut workers_flag: Option<usize> = None;
    let mut serial = false;
    let mut json = false;
    let mut out: Option<String> = None;
    let mut journal_path: Option<String> = None;
    let mut resume = false;
    let mut max_wall: Option<f64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => workers_flag = Some(n),
                _ => usage(),
            },
            "--serial" => serial = true,
            "--json" => json = true,
            "--out" => match args.next() {
                Some(path) => out = Some(path),
                None => usage(),
            },
            "--journal" => match args.next() {
                Some(path) if journal_path.is_none() => journal_path = Some(path),
                _ => usage(),
            },
            "--resume" => match args.next() {
                Some(path) if journal_path.is_none() => {
                    journal_path = Some(path);
                    resume = true;
                }
                _ => usage(),
            },
            "--max-wall" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(s) if s > 0.0 => max_wall = Some(s),
                _ => usage(),
            },
            "--help" | "-h" => usage(),
            _ if manifest_path.is_none() && !arg.starts_with('-') => manifest_path = Some(arg),
            _ => usage(),
        }
    }
    let Some(manifest_path) = manifest_path else {
        usage();
    };

    let text = match std::fs::read_to_string(&manifest_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("simfarm: cannot read {manifest_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let manifest = match parse_manifest(&text) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("simfarm: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Precedence: --serial > --workers > manifest "workers" > hardware.
    let workers = if serial {
        1
    } else {
        workers_flag
            .or(manifest.workers)
            .unwrap_or_else(default_workers)
    };

    let mut options = FarmOptions::default();
    if let Some(path) = &journal_path {
        if resume {
            match JournalWriter::resume(path, &manifest.jobs) {
                Ok((writer, completed)) => {
                    eprintln!(
                        "simfarm: resuming from {path}: {} of {} job(s) already completed",
                        completed.len(),
                        manifest.jobs.len()
                    );
                    options.journal = Some(writer);
                    options.completed = completed;
                }
                Err(e) => {
                    eprintln!("simfarm: cannot resume {path}: {e}");
                    return ExitCode::from(3);
                }
            }
        } else {
            match JournalWriter::create(path, &manifest.jobs) {
                Ok(writer) => options.journal = Some(writer),
                Err(e) => {
                    eprintln!("simfarm: cannot create journal {path}: {e}");
                    return ExitCode::from(3);
                }
            }
        }
    }

    if let Some(secs) = max_wall {
        let cancel = options.cancel.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_secs_f64(secs));
            eprintln!("simfarm: wall budget ({secs}s) exhausted — cancelling cooperatively");
            cancel.cancel();
        });
    }

    let start = Instant::now();
    let run = match run_farm(&manifest.jobs, workers, options) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("simfarm: {e}");
            return ExitCode::from(3);
        }
    };
    let wall = start.elapsed().as_secs_f64();
    let report = FarmReport::consolidate_sweep(&run, workers, wall);

    if json {
        println!("{}", report.to_json());
    } else {
        print!("{report}");
    }
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, format!("{}\n", report.to_json())) {
            eprintln!("simfarm: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if run.cancelled && !run.is_complete() {
        let hint = journal_path
            .map(|p| format!(" (resume with --resume {p})"))
            .unwrap_or_default();
        eprintln!(
            "simfarm: cancelled with {} job(s) pending{hint}",
            report.pending
        );
        return ExitCode::from(5);
    }
    if report.failures > 0 {
        eprintln!("simfarm: {} unhealthy job(s)", report.failures);
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}
