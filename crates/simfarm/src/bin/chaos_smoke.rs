//! `chaos_smoke` — the CI gate for the supervised farm.
//!
//! Runs a mixed sweep — healthy jobs alongside a panicking job, a
//! deterministically stalling job (permanent blackhole on the fetch stage,
//! tight stall budget) and a misconfigured job — and enforces, in order:
//!
//! 1. **Typed containment**: every healthy job completes with its normal
//!    outcome; every poison job comes back with its precise typed outcome
//!    (quarantined panic / stall / failure) instead of killing the sweep.
//! 2. **Byte-identity across worker counts**: the canonical report
//!    renderings (text and JSON) from 1-, 2- and 8-worker runs are equal
//!    byte for byte.
//! 3. **Byte-identity across interruption**: a journaled sweep cancelled
//!    mid-run and then resumed from its journal produces the same canonical
//!    renderings as an uninterrupted run.
//! 4. **Torn-tail tolerance**: truncating the journal mid-record loses only
//!    the torn record; replaying the valid prefix still resumes.

use osm_core::FaultPlan;
use simfarm::{
    journal, run_farm, CancelToken, FarmOptions, FarmReport, JournalWriter, ModelKind, SimJob,
    JobOutcome, WorkloadSpec,
};
use std::process::ExitCode;

fn jobs() -> Vec<SimJob> {
    let mut out = Vec::new();

    let mut healthy_sa = SimJob::new(
        ModelKind::Sa1100,
        WorkloadSpec::Named("specint".into()),
        200_000,
    );
    healthy_sa.name = "chaos/healthy-sa1100".into();
    out.push(healthy_sa);

    let mut chaos = SimJob::chaos_panic("chaos/panicker");
    chaos.retries = 1;
    out.push(chaos);

    let mut iss = SimJob::minirisc_random(7, 256, 500_000);
    iss.name = "chaos/healthy-iss".into();
    out.push(iss);

    // Permanent blackhole on the fetch stage + tight stall budget: wedges
    // deterministically, diagnosed by the watchdog, quarantined after
    // retry.
    let mut staller = SimJob::new(
        ModelKind::Sa1100,
        WorkloadSpec::Named("specint".into()),
        50_000_000,
    );
    staller.stall_budget = Some(500);
    staller.faults = Some(FaultPlan::new(1).blackhole(100, u64::MAX));
    staller.name = "chaos/staller".into();
    out.push(staller);

    let mut vliw = SimJob::new(
        ModelKind::Vliw,
        WorkloadSpec::Ilp { iters: 400, body: 6 },
        1_000_000,
    );
    vliw.name = "chaos/healthy-vliw".into();
    out.push(vliw);

    // Misconfigured: the VLIW model rejects non-ilp workloads; retried then
    // quarantined with the Failed message preserved.
    let mut broken = SimJob::new(
        ModelKind::Vliw,
        WorkloadSpec::Named("specint".into()),
        10_000,
    );
    broken.name = "chaos/misconfigured".into();
    out.push(broken);

    let mut ppc = SimJob::new(
        ModelKind::Ppc750,
        WorkloadSpec::Random { block_len: 600 },
        500_000,
    );
    ppc.seed = 3;
    ppc.name = "chaos/healthy-ppc".into();
    out.push(ppc);

    out
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("chaos_smoke: FAIL — {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    // No custom panic hook: the farm's quiet hook captures supervised
    // panics (payload + backtrace) into the typed outcome and prints
    // nothing, so the CI log stays clean without help. Panics on unarmed
    // threads — real bugs — still print normally.
    let jobs = jobs();
    println!("chaos_smoke: {} jobs (4 healthy, 3 poison)", jobs.len());

    // Gate 1+2: run at three worker counts; check containment and
    // canonical byte-identity.
    let mut canonical: Option<(String, String)> = None;
    for workers in [1usize, 2, 8] {
        let run = match run_farm(&jobs, workers, FarmOptions::default()) {
            Ok(run) => run,
            Err(e) => return fail(&format!("farm error at {workers} workers: {e}")),
        };
        let report = FarmReport::consolidate_sweep(&run, workers, 0.0);
        let healthy = [0usize, 2, 4, 6];
        for idx in healthy {
            if !report.jobs[idx].is_ok() {
                return fail(&format!(
                    "healthy job {} unhealthy at {workers} workers: {}",
                    report.jobs[idx].name,
                    report.jobs[idx].outcome.label()
                ));
            }
        }
        let expect_quarantined = |idx: usize, what: &str, inner: &dyn Fn(&JobOutcome) -> bool| {
            match &report.jobs[idx].outcome {
                JobOutcome::Quarantined { last, .. } if inner(last) => Ok(()),
                other => Err(format!(
                    "job {} should be a quarantined {what}, got: {}",
                    report.jobs[idx].name,
                    other.label()
                )),
            }
        };
        for check in [
            expect_quarantined(1, "panic", &|o| matches!(o, JobOutcome::Panicked { .. })),
            expect_quarantined(3, "stall", &|o| matches!(o, JobOutcome::Stalled(_))),
            expect_quarantined(5, "failure", &|o| matches!(o, JobOutcome::Failed(_))),
        ] {
            if let Err(msg) = check {
                return fail(&format!("{msg} ({workers} workers)"));
            }
        }
        let text = report.canonical_text();
        let json = report.canonical_json();
        match &canonical {
            None => {
                println!(
                    "  workers=1: {} failure(s), {} quarantined — canonical baseline captured",
                    report.failures, report.quarantined
                );
                canonical = Some((text, json));
            }
            Some((t0, j0)) => {
                if *t0 != text || *j0 != json {
                    return fail(&format!(
                        "canonical report at {workers} workers differs from the 1-worker baseline"
                    ));
                }
                println!("  workers={workers}: canonical report byte-identical");
            }
        }
    }
    let (canon_text, canon_json) = canonical.unwrap();

    // Gate 3: journaled, cancelled mid-run, resumed — canonical renderings
    // must match the uninterrupted baseline. How many jobs complete before
    // the cancel lands is timing-dependent; the byte-identity of the final
    // resumed report is not.
    let dir = std::env::temp_dir().join(format!("chaos_smoke_{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        return fail(&format!("cannot create {}: {e}", dir.display()));
    }
    let journal_path = dir.join("sweep.journal");
    let writer = match JournalWriter::create(&journal_path, &jobs) {
        Ok(w) => w,
        Err(e) => return fail(&format!("cannot create journal: {e}")),
    };
    let cancel = CancelToken::new();
    let hook_cancel = cancel.clone();
    let mut seen = 0usize;
    let first = match run_farm(
        &jobs,
        2,
        FarmOptions {
            cancel,
            journal: Some(writer),
            on_result: Some(Box::new(move |_, _| {
                seen += 1;
                if seen == 2 {
                    hook_cancel.cancel();
                }
            })),
            ..FarmOptions::default()
        },
    ) {
        Ok(run) => run,
        Err(e) => return fail(&format!("journaled run failed: {e}")),
    };
    println!(
        "  interrupted after {} of {} job(s) (cancelled={})",
        first.completed.len(),
        jobs.len(),
        first.cancelled
    );

    let (writer, completed) = match JournalWriter::resume(&journal_path, &jobs) {
        Ok(pair) => pair,
        Err(e) => return fail(&format!("resume failed: {e}")),
    };
    if completed.len() != first.completed.len() {
        return fail(&format!(
            "journal restored {} job(s), expected {}",
            completed.len(),
            first.completed.len()
        ));
    }
    let resumed = match run_farm(
        &jobs,
        2,
        FarmOptions {
            completed,
            journal: Some(writer),
            ..FarmOptions::default()
        },
    ) {
        Ok(run) => run,
        Err(e) => return fail(&format!("resumed run failed: {e}")),
    };
    if !resumed.is_complete() {
        return fail("resumed run did not complete");
    }
    let report = FarmReport::consolidate_sweep(&resumed, 2, 0.0);
    if report.canonical_text() != canon_text || report.canonical_json() != canon_json {
        return fail("resumed canonical report differs from the uninterrupted baseline");
    }
    println!("  kill-and-resume: canonical report byte-identical");

    // Gate 4: torn trailing write — drop bytes off the end of the journal
    // and replay; the valid prefix must parse with one fewer record and no
    // error.
    let bytes = match std::fs::read(&journal_path) {
        Ok(b) => b,
        Err(e) => return fail(&format!("cannot re-read journal: {e}")),
    };
    let (all, _) = match journal::parse_bytes(&bytes, &jobs) {
        Ok(r) => r,
        Err(e) => return fail(&format!("final journal does not parse: {e}")),
    };
    if all.len() != jobs.len() {
        return fail(&format!(
            "final journal holds {} record(s), expected {}",
            all.len(),
            jobs.len()
        ));
    }
    let torn = &bytes[..bytes.len() - 3];
    match journal::parse_bytes(torn, &jobs) {
        Ok((prefix, _)) if prefix.len() == jobs.len() - 1 => {
            println!("  torn tail: valid prefix of {} record(s) recovered", prefix.len());
        }
        Ok((prefix, _)) => {
            return fail(&format!(
                "torn journal recovered {} record(s), expected {}",
                prefix.len(),
                jobs.len() - 1
            ))
        }
        Err(e) => return fail(&format!("torn journal rejected instead of truncated: {e}")),
    }

    let _ = std::fs::remove_dir_all(&dir);
    println!("chaos_smoke: PASS");
    ExitCode::SUCCESS
}
