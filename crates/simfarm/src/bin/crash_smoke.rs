//! `crash_smoke` — the CI gate for hard-crash survival.
//!
//! Where `chaos_smoke` covers *soft* failures (panics, stalls,
//! misconfiguration) contained in-process, this gate covers failures no
//! amount of `catch_unwind` survives: a worker process dying to SIGKILL
//! mid-job, and the coordinator itself dying to SIGKILL mid-sweep. It
//! enforces, in order:
//!
//! 1. **Isolation invariance**: a sweep run under `--isolation process`
//!    (every attempt in a re-exec'd `simfarm --run-one` child) produces
//!    canonical report renderings byte-identical to the in-process
//!    baseline.
//! 2. **Worker-kill absorption**: SIGKILL-ing an isolated worker child
//!    mid-job surfaces as a typed kill, the retry restores the job from
//!    its last durable mid-job checkpoint, and the final canonical report
//!    is byte-identical to the baseline. The journal must contain the
//!    partial-progress records the child streamed before dying.
//! 3. **Coordinator-kill survival**: SIGKILL-ing the whole `simfarm`
//!    coordinator mid-sweep leaves a resumable journal + checkpoint
//!    directory; `--resume` completes the sweep and the canonical report
//!    is byte-identical to the baseline.
//!
//! Only meaningful on Unix (signals, `/proc`); exits 0 trivially
//! elsewhere.

use simfarm::{
    parse_manifest, run_farm, FarmOptions, FarmReport, JournalWriter, ProcessIsolation,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// The sweep shared by every phase, written to disk so the re-exec'd
/// `--run-one` children parse the exact same jobs. Job 0 is the kill
/// victim: long enough (several seconds of simulated VLIW ILP) that the
/// killer thread always lands mid-job, checkpointing every 50k cycles so
/// the post-kill retry restores instead of starting over.
const MANIFEST: &str = r#"{
  "workers": 2,
  "defaults": { "max_cycles": 50000000 },
  "jobs": [
    { "name": "crash/victim", "model": "vliw", "workload": "ilp:600000:8",
      "retries": 2, "checkpoint_every": 50000 },
    { "name": "crash/healthy-sa", "model": "sa1100", "workload": "specint" },
    { "name": "crash/healthy-iss", "model": "minirisc", "workload": "random:64", "seed": 5 },
    { "name": "crash/healthy-ppc", "model": "ppc750", "workload": "specint" }
  ]
}"#;

fn fail(msg: &str) -> ExitCode {
    eprintln!("crash_smoke: FAIL — {msg}");
    ExitCode::FAILURE
}

/// The `simfarm` CLI binary, sitting next to this smoke binary in the
/// cargo target directory.
fn simfarm_exe() -> Result<PathBuf, String> {
    let me = std::env::current_exe().map_err(|e| format!("cannot locate own exe: {e}"))?;
    let exe = me
        .parent()
        .ok_or("own exe has no parent directory")?
        .join(format!("simfarm{}", std::env::consts::EXE_SUFFIX));
    if !exe.exists() {
        return Err(format!(
            "{} not built — run `cargo build -p simfarm` first",
            exe.display()
        ));
    }
    Ok(exe)
}

/// Finds the pid of a live `simfarm --run-one` child working on the given
/// manifest, by scanning `/proc/<pid>/cmdline`.
fn find_run_one_child(manifest: &Path) -> Option<u32> {
    let manifest = manifest.to_string_lossy().into_owned();
    for entry in std::fs::read_dir("/proc").ok()?.flatten() {
        let name = entry.file_name();
        let Ok(pid) = name.to_string_lossy().parse::<u32>() else {
            continue;
        };
        let Ok(cmdline) = std::fs::read(format!("/proc/{pid}/cmdline")) else {
            continue;
        };
        let argv: Vec<&str> = cmdline
            .split(|&b| b == 0)
            .map(|s| std::str::from_utf8(s).unwrap_or(""))
            .collect();
        if argv.contains(&"--run-one") && argv.iter().any(|a| *a == manifest) {
            return Some(pid);
        }
    }
    None
}

/// SIGKILLs a pid. Spawns `kill` via the shell so no FFI is needed.
fn sigkill(pid: u32) {
    let _ = std::process::Command::new("sh")
        .arg("-c")
        .arg(format!("kill -9 {pid}"))
        .status();
}

fn main() -> ExitCode {
    if !cfg!(unix) {
        println!("crash_smoke: SKIP (requires Unix signals and /proc)");
        return ExitCode::SUCCESS;
    }
    let exe = match simfarm_exe() {
        Ok(exe) => exe,
        Err(msg) => return fail(&msg),
    };
    let dir = std::env::temp_dir().join(format!("crash_smoke_{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        return fail(&format!("cannot create {}: {e}", dir.display()));
    }
    let manifest_path = dir.join("sweep.json");
    if let Err(e) = std::fs::write(&manifest_path, MANIFEST) {
        return fail(&format!("cannot write manifest: {e}"));
    }
    let manifest = match parse_manifest(MANIFEST) {
        Ok(m) => m,
        Err(e) => return fail(&format!("manifest rejected: {e}")),
    };
    let jobs = manifest.jobs;
    println!("crash_smoke: {} jobs, victim = {}", jobs.len(), jobs[0].name);

    // Baseline: plain in-process run, no interference.
    let baseline = match run_farm(&jobs, 2, FarmOptions::default()) {
        Ok(run) => FarmReport::consolidate_sweep(&run, 2, 0.0),
        Err(e) => return fail(&format!("baseline run failed: {e}")),
    };
    if baseline.failures > 0 {
        return fail(&format!("baseline has {} failure(s)", baseline.failures));
    }
    let canon_text = baseline.canonical_text();
    let canon_json = baseline.canonical_json();
    println!("  baseline: {} jobs healthy, canonical captured", baseline.jobs.len());

    let isolation = |ckpt: &Path| {
        let mut iso = ProcessIsolation::current_exe(&manifest_path).unwrap();
        iso.exe = exe.clone();
        let _ = ckpt; // checkpoint dir travels via FarmOptions, not the iso config
        iso
    };

    // Gate 1: process isolation, unmolested — canonical must not move.
    let ckpt1 = dir.join("iso.ckpt");
    if let Err(e) = std::fs::create_dir_all(&ckpt1) {
        return fail(&format!("cannot create {}: {e}", ckpt1.display()));
    }
    let iso_run = match run_farm(
        &jobs,
        2,
        FarmOptions {
            isolation: Some(isolation(&ckpt1)),
            checkpoint_dir: Some(ckpt1.clone()),
            ..FarmOptions::default()
        },
    ) {
        Ok(run) => FarmReport::consolidate_sweep(&run, 2, 0.0),
        Err(e) => return fail(&format!("isolated run failed: {e}")),
    };
    if iso_run.canonical_text() != canon_text || iso_run.canonical_json() != canon_json {
        return fail("process-isolated canonical report differs from the in-process baseline");
    }
    println!("  isolation: canonical report byte-identical to in-process");

    // Gate 2: SIGKILL the victim's worker child mid-job. The killer waits
    // for the victim's first durable checkpoint, so the retry provably has
    // something to restore from; `retries: 2` absorbs the kill.
    let ckpt2 = dir.join("kill.ckpt");
    if let Err(e) = std::fs::create_dir_all(&ckpt2) {
        return fail(&format!("cannot create {}: {e}", ckpt2.display()));
    }
    let journal2 = dir.join("kill.journal");
    let writer = match JournalWriter::create(&journal2, &jobs) {
        Ok(w) => w,
        Err(e) => return fail(&format!("cannot create journal: {e}")),
    };
    let victim_ckpt = ckpt2.join("job-0.ckpt");
    let killer = {
        let manifest_path = manifest_path.clone();
        std::thread::spawn(move || {
            let deadline = Instant::now() + Duration::from_secs(60);
            while Instant::now() < deadline {
                if victim_ckpt.exists() {
                    if let Some(pid) = find_run_one_child(&manifest_path) {
                        sigkill(pid);
                        return Some(pid);
                    }
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            None
        })
    };
    let killed_run = match run_farm(
        &jobs,
        2,
        FarmOptions {
            isolation: Some(isolation(&ckpt2)),
            checkpoint_dir: Some(ckpt2.clone()),
            journal: Some(writer),
            ..FarmOptions::default()
        },
    ) {
        Ok(run) => FarmReport::consolidate_sweep(&run, 2, 0.0),
        Err(e) => return fail(&format!("worker-kill run failed: {e}")),
    };
    let Some(pid) = killer.join().unwrap_or(None) else {
        return fail("killer thread never saw a checkpointed --run-one child to kill");
    };
    if killed_run.jobs[0].attempts < 2 {
        return fail(&format!(
            "victim finished in {} attempt(s) — the SIGKILL of pid {pid} landed too late",
            killed_run.jobs[0].attempts
        ));
    }
    if killed_run.checkpoint_restores < 1 {
        return fail("post-kill retry did not restore from the durable checkpoint");
    }
    if killed_run.canonical_text() != canon_text || killed_run.canonical_json() != canon_json {
        return fail("worker-kill canonical report differs from the baseline");
    }
    let journal_bytes = match std::fs::read(&journal2) {
        Ok(b) => b,
        Err(e) => return fail(&format!("cannot read kill journal: {e}")),
    };
    if !journal_bytes
        .windows(br#""record":"partial""#.len())
        .any(|w| w == br#""record":"partial""#)
    {
        return fail("journal holds no partial-progress records from the isolated child");
    }
    println!(
        "  worker kill: pid {pid} SIGKILLed, {} attempt(s), {} checkpoint restore(s), canonical byte-identical",
        killed_run.jobs[0].attempts, killed_run.checkpoint_restores
    );

    // Gate 3: SIGKILL the whole coordinator mid-sweep, then resume from
    // the journal + checkpoint directory it left behind. The CLI derives
    // `<journal>.ckpt/` itself.
    let journal3 = dir.join("coord.journal");
    let ckpt3 = dir.join("coord.journal.ckpt");
    let mut coordinator = match std::process::Command::new(&exe)
        .arg(&manifest_path)
        .args(["--workers", "2", "--isolation", "process"])
        .arg("--journal")
        .arg(&journal3)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
    {
        Ok(child) => child,
        Err(e) => return fail(&format!("cannot spawn coordinator: {e}")),
    };
    let deadline = Instant::now() + Duration::from_secs(60);
    let victim_ckpt = ckpt3.join("job-0.ckpt");
    let mut armed = false;
    while Instant::now() < deadline {
        if let Ok(Some(status)) = coordinator.try_wait() {
            return fail(&format!(
                "coordinator finished ({status}) before the SIGKILL could land"
            ));
        }
        if victim_ckpt.exists() {
            armed = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    if !armed {
        let _ = coordinator.kill();
        return fail("coordinator never sealed the victim's first checkpoint");
    }
    if let Err(e) = coordinator.kill() {
        return fail(&format!("cannot SIGKILL coordinator: {e}"));
    }
    let _ = coordinator.wait();
    // Reap any orphaned --run-one children the dead coordinator left
    // behind before resuming, so they stop advancing checkpoints.
    while let Some(pid) = find_run_one_child(&manifest_path) {
        sigkill(pid);
        std::thread::sleep(Duration::from_millis(10));
    }
    let (writer, replay) = match JournalWriter::resume_full(&journal3, &jobs) {
        Ok(pair) => pair,
        Err(e) => return fail(&format!("cannot resume coordinator journal: {e}")),
    };
    println!(
        "  coordinator kill: journal replays {} completed, {} mid-job checkpoint(s)",
        replay.completed.len(),
        replay.partials.len()
    );
    let resumed = match run_farm(
        &jobs,
        2,
        FarmOptions {
            completed: replay.completed,
            journal: Some(writer),
            checkpoint_dir: Some(ckpt3.clone()),
            ..FarmOptions::default()
        },
    ) {
        Ok(run) => run,
        Err(e) => return fail(&format!("resumed run failed: {e}")),
    };
    if !resumed.is_complete() {
        return fail("resumed run did not complete the sweep");
    }
    let resumed = FarmReport::consolidate_sweep(&resumed, 2, 0.0);
    if resumed.canonical_text() != canon_text || resumed.canonical_json() != canon_json {
        return fail("post-coordinator-kill canonical report differs from the baseline");
    }
    println!("  coordinator kill: resumed sweep canonical byte-identical");

    let _ = std::fs::remove_dir_all(&dir);
    println!("crash_smoke: PASS");
    ExitCode::SUCCESS
}
